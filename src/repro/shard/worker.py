"""The shard worker process: one LTE replica behind a pipe-RPC loop.

Each worker owns a full single-process serving stack — an LTE replica
warm-started from the shared :mod:`repro.persist` checkpoint plus a
:class:`~repro.serve.SessionManager` — and speaks a tiny message-passing
protocol over a ``multiprocessing`` pipe:

    request:  ``(request_id, method, kwargs)``
    reply:    ``(request_id, "ok", result)`` or
              ``(request_id, "error", (exception_type_name, message))``

The worker is single-threaded and processes requests strictly in order,
so the per-worker view is exactly the single-process
:class:`~repro.serve.SessionManager` semantics — which is what makes
gateway predictions bit-identical to an unsharded manager.  Errors are
*replies*, never crashes: an exception inside a handler is serialized
back to the gateway (which re-raises it under the same type), and
per-session flush errors stay inside the manager's attributed error
state until that session polls.

Model-version broadcast: ``model_update`` first drains the pending
queue (label batches submitted under the old model adapt under it —
nothing is dropped), then installs the new pretrained weights via
:func:`repro.persist.load_pretrained`, which bumps every subspace's
artifact token so the encode cache can never serve stale encodes.
"""

from __future__ import annotations

import os

from ..obs import aggregate as _aggregate_metrics
from ..obs import reset_all_metrics
from ..persist import load_pretrained, model_fingerprint
from ..serve import SessionManager
from .rpc import serve_rpc

__all__ = ["worker_main"]


def worker_main(conn, lte, checkpoint_dir, worker_index):
    """Run the worker RPC loop until ``shutdown`` or pipe EOF.

    Parameters
    ----------
    conn:
        The worker end of a duplex ``multiprocessing`` pipe.
    lte:
        The fitted LTE replica (inherited through ``fork``; its learned
        weights are immediately re-installed from ``checkpoint_dir``, so
        the replica provably serves the checkpointed model).
    checkpoint_dir:
        Shared ``lte-pretrained`` checkpoint to warm-start from, or
        ``None`` to serve the inherited weights as-is.
    worker_index:
        This worker's index in the gateway's pool (for diagnostics).
    """
    # Forked registries carry the gateway process's counts; zero them so
    # this worker's ``metrics`` aggregate reports only its own activity.
    reset_all_metrics()
    if checkpoint_dir is not None:
        load_pretrained(checkpoint_dir, lte)
    manager = SessionManager(lte)
    debug = {"crash_on_flush": False}

    def worker_stats():
        stats = manager.stats
        stats["worker"] = int(worker_index)
        stats["model"] = model_fingerprint(lte)
        return stats

    def handle(method, kwargs):
        if method == "ping":
            return {"worker": int(worker_index),
                    "model": model_fingerprint(lte)}
        if method == "open_session":
            return manager.open_session(**kwargs)
        if method == "close_session":
            manager.close_session(kwargs["session_id"])
            return manager.stats["queued"]
        if method == "initial_tuples":
            return manager.initial_tuples(kwargs["session_id"])
        if method == "submit_labels":
            manager.submit_labels(kwargs["session_id"], kwargs["subspace"],
                                  kwargs["labels"])
            return manager.stats["queued"]
        if method == "add_labels":
            manager.add_labels(kwargs["session_id"], kwargs["subspace"],
                               kwargs["tuples"], kwargs["labels"])
            return manager.stats["queued"]
        if method == "flush":
            if debug["crash_on_flush"]:
                # Test hook: die exactly where a real worker would —
                # mid-flush, with label batches still queued.
                os._exit(17)
            done = manager.flush(raise_errors=False)
            return {"done": done, "queued": manager.stats["queued"]}
        if method == "poll":
            result = manager.poll(kwargs["session_id"],
                                  advance=kwargs.get("advance", True))
            result["worker_queued"] = manager.stats["queued"]
            return result
        if method == "predict":
            return manager.predict(kwargs["session_id"], kwargs["rows"])
        if method == "predict_subspace":
            return manager.predict_subspace(
                kwargs["session_id"], kwargs["subspace"], kwargs["points"])
        if method == "predict_many":
            return manager.predict_many(kwargs["session_ids"],
                                        kwargs["rows"])
        if method == "retrieve":
            return manager.retrieve(kwargs["session_id"],
                                    rows=kwargs.get("rows"),
                                    limit=kwargs.get("limit"))
        if method == "model_update":
            # Drain first: batches labelled under the old model adapt
            # under it, exactly as an unsharded manager would have —
            # the broadcast drops no session and no queued work.
            manager.flush(raise_errors=False)
            refresh = kwargs.get("refresh") or []
            if refresh:
                # Streaming-ingest rollout: catch the forked store view
                # up with appends committed on disk, then re-prepare the
                # refreshed subspaces from the grown data.  Preparation
                # is deterministic in (table, config, subspace index),
                # so the rebuilt scalers/encoders are bit-identical to
                # the publisher's and load_pretrained's identity check
                # passes; train=False because the checkpoint supplies
                # the trained weights next.
                table = lte.table
                if hasattr(table, "refresh"):
                    table.refresh()
                by_key = {s.key: s for s in lte.states}
                for names in refresh:
                    lte.refresh_subspace(table,
                                         by_key[tuple(sorted(names))],
                                         train=False)
            load_pretrained(kwargs["path"], lte)
            return model_fingerprint(lte)
        if method == "stats":
            return worker_stats()
        if method == "metrics":
            # The worker's whole-process metric state: the manager's
            # registry, any compile-backend registries, and the default
            # registry — one plain snapshot the gateway merges with the
            # other workers' (bucket bounds are fixed process-wide, so
            # the merge is a deterministic element-wise add).
            return _aggregate_metrics()
        if method == "_debug":
            # Test hooks only: fault injection the gateway tests use to
            # exercise crash and error-attribution paths for real.
            session_id = kwargs.pop("corrupt_session", None)
            if session_id is not None:
                def boom(labels):
                    raise RuntimeError("corrupt session")
                session = manager.session(session_id)
                for subsession in session._subsessions.values():
                    subsession.build_initial_request = boom
            debug.update(kwargs)
            return True
        raise ValueError("unknown RPC method {!r}".format(method))

    def on_shutdown(kwargs):
        # Graceful drain: every queued adaptation still completes
        # (per-session errors stay attributed, never raised here).
        manager.flush(raise_errors=False)
        return worker_stats()

    serve_rpc(conn, handle, on_shutdown=on_shutdown)
