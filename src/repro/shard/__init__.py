"""repro.shard — multi-process sharded serving for LTE sessions.

The single-process :class:`~repro.serve.SessionManager` fuses many
sessions' adaptation work into batched programs, but it is still one
Python process on one core.  This package is the horizontal scaling
tier above it: a :class:`ShardGateway` front end that

* spawns ``n_workers`` worker processes, each holding a full LTE
  replica warm-started from a shared :mod:`repro.persist` checkpoint
  behind its own :class:`~repro.serve.SessionManager`;
* routes every session deterministically to one worker
  (:func:`home_worker` / :func:`assign_worker`) so a session's online
  state has exactly one home;
* speaks the familiar submit / poll / flush / predict protocol over
  ``multiprocessing`` pipes, with pipelined fan-out for ``flush_all``
  and ``predict_many`` so adaptation and scoring run concurrently
  across cores;
* applies admission control — bounded per-worker pending queues and an
  optional session cap — rejecting overload with a typed
  :class:`Overloaded` instead of growing unbounded state;
* detects worker death promptly (typed :class:`WorkerCrashed`, never a
  hang) and re-routes *new* sessions to survivors;
* rolls model-version broadcasts (:meth:`ShardGateway.publish_model`)
  out worker by worker without dropping sessions, draining each queue
  under the old model before installing the new weights.

Per-worker semantics are exactly the single-process manager's, so
gateway predictions are bit-identical to an unsharded
:class:`~repro.serve.SessionManager` (``tests/shard``), while
``benchmarks/bench_shard_scaling.py`` measures the sessions/sec scaling
across worker counts.

Quickstart (mirrors ``examples/sharded_serving.py``)::

    from repro.shard import ShardGateway

    with ShardGateway(lte, n_workers=4) as gateway:
        sid = gateway.open_session(variant="meta_star")
        for subspace, tuples in gateway.initial_tuples(sid).items():
            gateway.submit_labels(sid, subspace, label(tuples))
        gateway.flush_all()                   # parallel adaptation
        mask = gateway.predict(sid, table.data)
"""

from .errors import Overloaded, ShardError, WorkerCrashed
from .gateway import ShardGateway
from .routing import assign_worker, home_worker
from .worker import worker_main

__all__ = [
    "ShardGateway",
    "ShardError", "Overloaded", "WorkerCrashed",
    "home_worker", "assign_worker",
    "worker_main",
]
