"""Deterministic session-to-worker routing.

Sessions are sticky: a session's online state (adapted classifiers,
few-shot regions, label history) lives in exactly one worker process, so
every call for a session must reach the same worker.  The gateway
assigns monotonically increasing global session ids and routes each to
its *home worker* by modulo — deterministic, stateless and uniformly
balanced for the gateway's sequential id stream.

When the home worker is dead, *new* sessions probe forward to the next
surviving worker (still deterministic given the same liveness picture);
*existing* sessions raise :class:`~repro.shard.errors.WorkerCrashed`
instead of silently landing on a replica that has none of their state.
"""

from __future__ import annotations

__all__ = ["home_worker", "assign_worker"]


def home_worker(session_id, n_workers):
    """The worker index a session id deterministically belongs to."""
    if n_workers < 1:
        raise ValueError("n_workers must be >= 1")
    return int(session_id) % int(n_workers)


def assign_worker(session_id, alive):
    """Pick the worker for a *new* session given per-worker liveness.

    ``alive`` is a boolean sequence (index = worker).  Starts at the
    session's home worker and probes forward cyclically to the first
    live one, so routing stays deterministic for a fixed liveness
    picture and sessions spread evenly while all workers are up.
    Returns the worker index, or ``None`` when every worker is dead.
    """
    n_workers = len(alive)
    home = home_worker(session_id, n_workers)
    for step in range(n_workers):
        index = (home + step) % n_workers
        if alive[index]:
            return index
    return None
