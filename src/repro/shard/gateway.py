"""Front-end gateway sharding sessions across worker processes.

:class:`ShardGateway` is the multi-process scaling tier over
:class:`~repro.serve.SessionManager`: it spawns a pool of worker
processes (``fork`` start method — the fitted LTE is inherited, then
warm-started from a shared :mod:`repro.persist` checkpoint so every
replica provably serves the checkpointed weights), routes each session
deterministically to one worker (:mod:`repro.shard.routing`), and
speaks the familiar submit / poll / flush / predict protocol over a
pipe RPC.

Scaling properties:

* **parallel adaptation** — ``flush_all`` broadcasts the flush to every
  worker *pipelined* (all requests sent before any reply is awaited),
  so the fused adaptation batches of all workers run concurrently on
  separate cores; the same pipelining drives ``predict_many`` scatter/
  gather.  Per-worker results are bit-identical to a single-process
  manager, so the gateway is too (``tests/shard``).
* **admission control** — each worker has a bounded pending-batch queue
  (``max_pending_per_worker``) and optionally a session cap; a full
  queue rejects with a typed :class:`~repro.shard.errors.Overloaded`
  *before* anything is enqueued, so overload never grows unbounded
  state.
* **error isolation** — a worker process dying raises a prompt, typed
  :class:`~repro.shard.errors.WorkerCrashed` (never a hang) for the
  sessions it owned; new sessions re-route to surviving workers; other
  workers' sessions never notice.  Per-session flush errors stay
  attributed inside each worker's manager and surface only in the
  owning session's ``poll``.
* **model-version broadcast** — :meth:`publish_model` rolls a
  re-pretrained phi (or refreshed scalers) out worker by worker: each
  worker drains its queue under the old model, installs the new
  checkpoint, and bumps its artifact tokens (invalidating encode
  caches); no session is dropped and the gateway verifies every
  replica reports the same :func:`~repro.persist.model_fingerprint`.
"""

from __future__ import annotations

import multiprocessing
import os
import shutil
import tempfile
import time

import numpy as np

from ..core.framework import LTE
from ..obs import MetricsRegistry, merge_snapshots
from ..persist import model_fingerprint, save_pretrained
from . import errors as _errors
from .errors import Overloaded, ShardError, WorkerCrashed
from .routing import assign_worker
from .rpc import PipeRpc, RpcLink
from .worker import worker_main

__all__ = ["ShardGateway"]


class _Worker(RpcLink):
    """Gateway-side handle of one worker process."""

    __slots__ = ("pending", "local_by_global", "sessions_lost")

    def __init__(self, index, process, conn):
        super().__init__(index, process, conn)
        self.pending = 0            # queued label batches (backpressure)
        self.local_by_global = {}   # global session id -> worker-local id
        self.sessions_lost = 0      # sessions owned at time of death


class ShardGateway:
    """Shard many exploration sessions across a pool of worker processes.

    Parameters
    ----------
    lte:
        The fitted :class:`~repro.core.LTE` system to replicate.
    n_workers:
        Pool size.  Each worker is a separate process with its own LTE
        replica and :class:`~repro.serve.SessionManager`.
    checkpoint_root:
        Directory under which the gateway saves model-generation
        checkpoints (``model-<fingerprint>`` subdirectories).  Default:
        a private temporary directory, removed on :meth:`close`.
    max_pending_per_worker:
        Bound on un-flushed label batches per worker; submissions beyond
        it raise :class:`~repro.shard.errors.Overloaded`.
    max_sessions_per_worker:
        Optional cap on live sessions per worker; ``open_session``
        beyond it raises :class:`~repro.shard.errors.Overloaded`.
    rpc_timeout:
        Seconds to wait for a single worker reply before raising
        :class:`~repro.shard.errors.ShardError` (a *dead* worker is
        detected promptly regardless); ``None`` disables the timeout.

    Example
    -------
    ::

        with ShardGateway(lte, n_workers=4) as gateway:
            sid = gateway.open_session(variant="meta_star")
            for subspace, tuples in gateway.initial_tuples(sid).items():
                gateway.submit_labels(sid, subspace, user_labels(tuples))
            gateway.flush_all()            # all workers adapt in parallel
            mask = gateway.predict(sid, table.data)
    """

    def __init__(self, lte, n_workers=2, checkpoint_root=None,
                 max_pending_per_worker=256, max_sessions_per_worker=None,
                 rpc_timeout=600.0):
        if not isinstance(lte, LTE):
            raise TypeError("ShardGateway needs a fitted LTE system")
        if not lte.states:
            raise ValueError("the LTE system is not fitted; run "
                             "fit_offline before sharding it")
        if n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        self.lte = lte
        # Gateway-side telemetry (shard.gateway.* — see
        # repro.obs.registry); worker-side metrics are fetched and
        # merged by :meth:`metrics`.
        self.gateway_metrics = MetricsRegistry()
        self._t_rpc = self.gateway_metrics.histogram(
            "shard.gateway.rpc.seconds")
        self._rpc_calls = self.gateway_metrics.counter(
            "shard.gateway.rpc.calls")
        self._workers_alive = self.gateway_metrics.gauge(
            "shard.gateway.workers.alive")
        self._workers_crashed = self.gateway_metrics.counter(
            "shard.gateway.workers.crashed")
        self._pending_depth = self.gateway_metrics.gauge(
            "shard.gateway.pending.depth")
        self.max_pending_per_worker = int(max_pending_per_worker)
        self.max_sessions_per_worker = max_sessions_per_worker
        self.rpc_timeout = rpc_timeout
        # Wire mechanics live in repro.shard.rpc; the gateway injects
        # its typed error family, crash-loss wording and telemetry.
        self._rpc = PipeRpc(
            timeout=rpc_timeout, crashed_type=WorkerCrashed,
            error_type=ShardError, error_modules=(_errors,),
            dead_hint="; its sessions are lost (re-open them or restore "
                      "a manager checkpoint)",
            crash_hint="; its sessions are lost",
            on_dead=self._on_worker_dead, on_reply=self._on_rpc_reply)
        self._owns_root = checkpoint_root is None
        self._root = checkpoint_root or tempfile.mkdtemp(
            prefix="repro-shard-")
        self.model_version = model_fingerprint(lte)
        checkpoint_dir = self._generation_dir(self.model_version)
        save_pretrained(checkpoint_dir, lte)
        # Workers fork *before* any sessions exist, so each child is a
        # clean replica: inherited offline artifacts, checkpointed
        # weights re-installed in worker_main.
        context = multiprocessing.get_context("fork")
        self._workers = []
        for index in range(int(n_workers)):
            parent_conn, child_conn = context.Pipe(duplex=True)
            process = context.Process(
                target=worker_main,
                args=(child_conn, lte, checkpoint_dir, index),
                daemon=True, name="repro-shard-worker-{}".format(index))
            process.start()
            child_conn.close()
            self._workers.append(_Worker(index, process, parent_conn))
        self._sessions = {}      # global sid -> worker index
        self._next_id = 0
        self._closed = False
        # Confirm every replica warm-started to the published model.
        for worker in self._workers:
            reply = self._call(worker, "ping", {})
            if reply["model"] != self.model_version:
                raise ShardError(
                    "worker {} warm-started to model {} instead of the "
                    "published {}".format(worker.index, reply["model"],
                                          self.model_version))
        self._workers_alive.set(len(self._workers))

    # ------------------------------------------------------------------
    # RPC plumbing
    # ------------------------------------------------------------------
    def _post(self, worker, method, kwargs):
        """Send one request without waiting (pipelined fan-out)."""
        return self._rpc.post(worker, method, kwargs)

    def _wait(self, worker, request_id, method):
        """Await one reply; detect worker death promptly (never hang)."""
        return self._rpc.wait(worker, request_id, method)

    def _call(self, worker, method, kwargs):
        return self._rpc.call(worker, method, kwargs)

    def _on_rpc_reply(self, worker, method, seconds):
        self._t_rpc.observe(seconds)
        self._rpc_calls.inc()

    def _mark_dead(self, worker):
        self._rpc.mark_dead(worker)

    def _on_worker_dead(self, worker):
        """Gateway bookkeeping when the RPC layer declares a worker dead."""
        worker.pending = 0
        worker.sessions_lost = len(worker.local_by_global)
        if not self._closed:   # graceful shutdown is not a crash
            self._workers_crashed.inc()
        self._workers_alive.set(
            sum(1 for w in self._workers if w.alive))
        self._note_pending()

    def _note_pending(self):
        """Refresh the pool-wide pending-batch depth gauge."""
        self._pending_depth.set(
            sum(w.pending for w in self._workers if w.alive))

    def _alive(self):
        """Refresh liveness (a worker can die between calls) and return
        the live worker list."""
        for worker in self._workers:
            if worker.alive and not worker.process.is_alive():
                self._mark_dead(worker)
        return [w for w in self._workers if w.alive]

    def _worker_of(self, session_id):
        if session_id not in self._sessions:
            raise KeyError("unknown session id {!r}".format(session_id))
        worker = self._workers[self._sessions[session_id]]
        if worker.alive and not worker.process.is_alive():
            self._mark_dead(worker)
        if not worker.alive:
            raise WorkerCrashed(
                "session {} lived on worker {}, which crashed; its "
                "online state is lost — open a new session".format(
                    session_id, worker.index))
        return worker

    # ------------------------------------------------------------------
    # Session lifecycle
    # ------------------------------------------------------------------
    def open_session(self, variant="meta_star", subspaces=None, seed=None):
        """Open a session on its deterministically routed worker.

        Returns a gateway-global session id.  Raises
        :class:`Overloaded` when the target worker's session table is
        full and :class:`WorkerCrashed` when no worker is alive.
        """
        self._require_open()
        alive = [w.alive and w.process.is_alive() for w in self._workers]
        index = assign_worker(self._next_id, alive)
        if index is None:
            raise WorkerCrashed("all workers are dead; the gateway "
                                "cannot place new sessions")
        worker = self._workers[index]
        if self.max_sessions_per_worker is not None and \
                len(worker.local_by_global) >= self.max_sessions_per_worker:
            raise Overloaded(
                "worker {} already holds {} sessions (cap {}); close "
                "sessions or add workers".format(
                    worker.index, len(worker.local_by_global),
                    self.max_sessions_per_worker))
        local_id = self._call(worker, "open_session",
                              {"variant": variant, "subspaces": subspaces,
                               "seed": seed})
        session_id = self._next_id
        self._next_id += 1
        self._sessions[session_id] = worker.index
        worker.local_by_global[session_id] = local_id
        return session_id

    def close_session(self, session_id):
        """Close a session and drop its queued work on its worker."""
        worker = self._worker_of(session_id)
        queued = self._call(worker, "close_session",
                            {"session_id":
                             worker.local_by_global[session_id]})
        worker.pending = int(queued)
        self._note_pending()
        del worker.local_by_global[session_id]
        del self._sessions[session_id]

    @property
    def n_sessions(self):
        return len(self._sessions)

    @property
    def n_workers(self):
        return len(self._workers)

    @property
    def alive_workers(self):
        return len(self._alive())

    # ------------------------------------------------------------------
    # Label submission (admission-controlled)
    # ------------------------------------------------------------------
    def initial_tuples(self, session_id):
        """{subspace: raw tuples} the session's user must label."""
        worker = self._worker_of(session_id)
        return self._call(worker, "initial_tuples",
                          {"session_id":
                           worker.local_by_global[session_id]})

    def _admit(self, worker):
        if worker.pending >= self.max_pending_per_worker:
            raise Overloaded(
                "worker {} has {} pending label batches (cap {}); poll "
                "or flush before submitting more".format(
                    worker.index, worker.pending,
                    self.max_pending_per_worker))

    def submit_labels(self, session_id, subspace, labels):
        """Queue a session's initial labels for one subspace.

        Validation happens synchronously on the owning worker;
        :class:`Overloaded` rejects *before* anything is enqueued when
        the worker's pending queue is full.
        """
        worker = self._worker_of(session_id)
        self._admit(worker)
        queued = self._call(worker, "submit_labels",
                            {"session_id":
                             worker.local_by_global[session_id],
                             "subspace": subspace,
                             "labels": np.asarray(labels)})
        worker.pending = int(queued)
        self._note_pending()

    def submit_all_labels(self, session_id, labels_by_subspace):
        for subspace, labels in labels_by_subspace.items():
            self.submit_labels(session_id, subspace, labels)

    def add_labels(self, session_id, subspace, tuples, labels):
        """Queue an iterative-exploration round (admission-controlled)."""
        worker = self._worker_of(session_id)
        self._admit(worker)
        queued = self._call(worker, "add_labels",
                            {"session_id":
                             worker.local_by_global[session_id],
                             "subspace": subspace,
                             "tuples": np.asarray(tuples),
                             "labels": np.asarray(labels)})
        worker.pending = int(queued)
        self._note_pending()

    # ------------------------------------------------------------------
    # Batched adaptation and prediction
    # ------------------------------------------------------------------
    def flush_all(self):
        """Flush every worker's queue — all fused batches in parallel.

        Pipelined: every worker receives its flush before any reply is
        awaited, so the per-worker adaptation programs run concurrently
        on separate cores.  Returns the total number of (session,
        subspace) adaptations performed across the pool.
        """
        self._require_open()
        posted = [(w, self._post(w, "flush", {})) for w in self._alive()]
        done = 0
        for worker, request_id in posted:
            reply = self._wait(worker, request_id, "flush")
            worker.pending = int(reply["queued"])
            done += int(reply["done"])
        self._note_pending()
        return done

    # The single-process manager calls this ``flush``; keep the alias so
    # code written against SessionManager ports over unchanged.
    flush = flush_all

    def poll(self, session_id, advance=True):
        """The session's serving state (see ``SessionManager.poll``).

        ``advance=True`` flushes the *owning worker* first; other
        workers' queues are untouched (use :meth:`flush_all` for a
        pool-wide barrier).  Flush errors attributed to this session
        surface in ``result["errors"]``; another session's bad batch
        never raises here, even across shards.
        """
        worker = self._worker_of(session_id)
        result = self._call(worker, "poll",
                            {"session_id":
                             worker.local_by_global[session_id],
                             "advance": advance})
        worker.pending = int(result.pop("worker_queued"))
        self._note_pending()
        return result

    def predict(self, session_id, rows):
        """Cached 0/1 UIR membership for full-space rows."""
        worker = self._worker_of(session_id)
        return self._call(worker, "predict",
                          {"session_id":
                           worker.local_by_global[session_id],
                           "rows": rows})

    def predict_subspace(self, session_id, subspace, points):
        """Cached 0/1 UIS membership for subspace-coordinate points."""
        worker = self._worker_of(session_id)
        return self._call(worker, "predict_subspace",
                          {"session_id":
                           worker.local_by_global[session_id],
                           "subspace": subspace, "points": points})

    def predict_many(self, session_ids, rows):
        """Predictions for many sessions — scatter/gather across shards.

        Sessions are grouped by owning worker; each worker scores its
        group in stacked forward passes (the single-process fused path)
        while the groups run concurrently across processes.  Returns
        ``{session_id: (n,) predictions}``.
        """
        self._require_open()
        by_worker = {}
        for session_id in session_ids:
            worker = self._worker_of(session_id)
            by_worker.setdefault(worker.index, []).append(session_id)
        posted = []
        for index, group in by_worker.items():
            worker = self._workers[index]
            local = [worker.local_by_global[sid] for sid in group]
            posted.append((worker, group,
                           self._post(worker, "predict_many",
                                      {"session_ids": local,
                                       "rows": rows})))
        results = {}
        for worker, group, request_id in posted:
            reply = self._wait(worker, request_id, "predict_many")
            for session_id in group:
                results[session_id] = \
                    reply[worker.local_by_global[session_id]]
        return results

    def retrieve(self, session_id, rows=None, limit=None):
        """Rows predicted interesting for the session (worker-cached)."""
        worker = self._worker_of(session_id)
        return self._call(worker, "retrieve",
                          {"session_id":
                           worker.local_by_global[session_id],
                           "rows": rows, "limit": limit})

    # ------------------------------------------------------------------
    # Model-version broadcast
    # ------------------------------------------------------------------
    def _generation_dir(self, fingerprint):
        return os.path.join(self._root, "model-{}".format(fingerprint))

    def publish_model(self, source, refresh=None):
        """Roll a new model out to every worker, one worker at a time.

        ``source`` is either a fitted :class:`~repro.core.LTE` carrying
        the re-pretrained weights (saved under the gateway's checkpoint
        root first) or a path to an existing ``lte-pretrained``
        checkpoint.  Each worker drains its pending queue under the old
        model, installs the new weights, and bumps its artifact tokens —
        live sessions and their adapted models are untouched, so no
        session is dropped.  The gateway verifies every worker reports
        the new :func:`~repro.persist.model_fingerprint` and returns it.

        ``refresh`` (optional) is a list of subspace-name lists whose
        offline artifacts were rebuilt over fresh data: each worker
        re-reads its store manifest (:meth:`ChunkStore.refresh
        <repro.store.ChunkStore.refresh>`) and re-prepares those
        subspaces from the grown store *before* installing the
        checkpointed weights, so the identity check inside
        ``load_pretrained`` passes against the same data generation the
        publisher fitted.  :meth:`refresh_model` drives this end to end.
        """
        self._require_open()
        if isinstance(source, LTE):
            fingerprint = model_fingerprint(source)
            path = self._generation_dir(fingerprint)
            save_pretrained(path, source)
        else:
            path = source
        refresh = [list(names) for names in refresh] if refresh else []
        new_version = None
        for worker in self._alive():
            reported = self._call(worker, "model_update",
                                  {"path": path, "refresh": refresh})
            if new_version is None:
                new_version = reported
            elif reported != new_version:
                raise ShardError(
                    "worker {} installed model {} while earlier workers "
                    "installed {}; replicas have diverged".format(
                        worker.index, reported, new_version))
        if new_version is None:
            raise WorkerCrashed("all workers are dead; nothing to "
                                "broadcast to")
        self.model_version = new_version
        return new_version

    def refresh_model(self, subspaces=None, train=True):
        """Refresh drifted offline artifacts and roll them out live.

        The streaming-ingest rollout path: after appends moved the data
        distribution (see :class:`~repro.store.FreshnessMonitor`), the
        gateway re-reads the master LTE's store view, rebuilds the
        offline artifacts — scaler, cluster summary, encoder and (with
        ``train=True``) a re-pretrained meta-learner — for the given
        subspaces on the master replica, then broadcasts the result via
        :meth:`publish_model`, which makes every worker catch up on the
        grown store and re-prepare the same subspaces before installing
        the new weights.  Live sessions keep serving throughout (their
        adapted state objects are replaced, never mutated).

        ``subspaces`` accepts :class:`~repro.core.subspace.Subspace`
        objects or name sequences; ``None`` refreshes every fitted
        subspace.  Returns the new model fingerprint.  Requires the
        shared table to be a *disk-backed* chunk store — that directory
        is the only channel through which appends reach the forked
        workers.
        """
        self._require_open()
        table = self.lte.table
        if getattr(table, "directory", None) is None:
            raise ShardError(
                "refresh_model needs a disk-backed chunk store shared "
                "with the workers; an in-memory table cannot propagate "
                "appends across processes")
        table.refresh()
        by_key = {s.key: s for s in self.lte.states}
        if subspaces is None:
            targets = list(self.lte.states)
        else:
            targets = []
            for item in subspaces:
                key = item.key if hasattr(item, "key") \
                    else tuple(sorted(item))
                if key not in by_key:
                    raise KeyError(
                        "no fitted subspace {!r} to refresh".format(key))
                targets.append(by_key[key])
        for subspace in targets:
            self.lte.refresh_subspace(table, subspace, train=train)
        return self.publish_model(
            self.lte, refresh=[list(s.names) for s in targets])

    # ------------------------------------------------------------------
    # Drain / shutdown / stats
    # ------------------------------------------------------------------
    def stats(self):
        """Pool-level counters plus each worker's manager stats.

        ``workers`` carries one entry per worker **in pool order,
        including dead ones**: an alive worker's entry is its manager
        stats dict extended with its gateway-observed ``queue_depth``
        (pending label batches), ``last_rpc_seconds`` /
        ``last_rpc_method`` and ``alive: True``; a dead worker reports
        a tombstone (``alive: False``, ``model: None``,
        ``sessions_lost``) instead of being silently omitted.
        """
        self._require_open()
        posted = [(w, self._post(w, "stats", {})) for w in self._alive()]
        replies = {w.index: self._wait(w, rid, "stats")
                   for w, rid in posted}
        workers = []
        for worker in self._workers:
            entry = replies.get(worker.index)
            if entry is None:
                entry = {"worker": worker.index, "alive": False,
                         "model": None,
                         "sessions_lost": worker.sessions_lost}
            else:
                entry = dict(entry)
                entry["alive"] = True
            entry["queue_depth"] = worker.pending
            entry["last_rpc_seconds"] = worker.last_rpc_seconds
            entry["last_rpc_method"] = worker.last_rpc_method
            workers.append(entry)
        return {
            "sessions": self.n_sessions,
            "workers": workers,
            "alive_workers": len(replies),
            "model": self.model_version,
            "pending": {w.index: w.pending for w in self._workers
                        if w.alive},
        }

    def metrics(self):
        """One merged view of the whole fleet's telemetry.

        Fans a pipelined ``metrics`` RPC out to every live worker; each
        returns its process-wide :func:`repro.obs.aggregate` snapshot
        (manager latency histograms, cache hit counters, compile-plan
        stats).  Returns::

            {"workers": {worker_index: snapshot | tombstone},
             "gateway": <gateway-side snapshot>,
             "merged":  <element-wise merge of all of the above>}

        Because every histogram shares the same fixed bucket bounds,
        the merge is a deterministic element-wise add — independent of
        worker reply order (workers merge in index order) and identical
        to merging on any other process.  Dead workers appear as
        ``{"dead": True, "sessions_lost": n}`` tombstones and
        contribute nothing to ``merged``.
        """
        self._require_open()
        posted = [(w, self._post(w, "metrics", {}))
                  for w in self._alive()]
        replies = {w.index: self._wait(w, rid, "metrics")
                   for w, rid in posted}
        workers = {}
        for worker in self._workers:
            if worker.index in replies:
                workers[worker.index] = replies[worker.index]
            else:
                workers[worker.index] = {
                    "dead": True, "sessions_lost": worker.sessions_lost}
        gateway_snap = self.gateway_metrics.snapshot()
        merged = merge_snapshots(
            [replies[index] for index in sorted(replies)]
            + [gateway_snap])
        return {"workers": workers, "gateway": gateway_snap,
                "merged": merged}

    def drain(self):
        """Flush every worker until no queued work remains anywhere."""
        total = 0
        while True:
            done = self.flush_all()
            total += done
            if done == 0 and all(w.pending == 0 for w in self._alive()):
                return total

    def close(self, drain=True):
        """Shut the pool down gracefully (idempotent).

        With ``drain=True`` every worker finishes its queued
        adaptations before exiting; workers that refuse to die are
        terminated.  The gateway's private checkpoint root (when it
        created one) is removed.
        """
        if self._closed:
            return
        self._closed = True
        for worker in self._workers:
            if not worker.alive:
                continue
            try:
                request_id = worker.next_request
                worker.next_request += 1
                worker.conn.send((request_id, "shutdown",
                                  {"drain": bool(drain)}))
                deadline = time.monotonic() + 30.0
                while time.monotonic() < deadline:
                    if worker.conn.poll(0.05):
                        worker.conn.recv()
                        break
                    if not worker.process.is_alive():
                        break
            except (BrokenPipeError, EOFError, OSError):
                pass
            worker.process.join(timeout=10.0)
            if worker.process.is_alive():
                worker.process.terminate()
                worker.process.join(timeout=5.0)
            self._mark_dead(worker)
        if self._owns_root:
            shutil.rmtree(self._root, ignore_errors=True)

    def _require_open(self):
        if self._closed:
            raise ShardError("the gateway is closed")

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc_value, traceback):
        self.close()
        return False

    def __del__(self):
        try:
            self.close(drain=False)
        except Exception:
            pass
