"""Typed failure modes of the sharded serving tier.

Every way the gateway can fail a caller has its own exception type, so
clients can react programmatically — shed load on :class:`Overloaded`,
re-open a session elsewhere on :class:`WorkerCrashed` — instead of
parsing message strings.  All of them subclass :class:`ShardError`
(itself a ``RuntimeError``), so ``except ShardError`` catches the whole
family.
"""

from __future__ import annotations

__all__ = ["ShardError", "Overloaded", "WorkerCrashed"]


class ShardError(RuntimeError):
    """A sharded-serving operation failed (base of the typed family)."""


class Overloaded(ShardError):
    """Admission control rejected the request: the target worker's
    pending queue (or session table) is full.  The request was *not*
    enqueued anywhere; retry after draining (``flush_all`` / ``poll``)
    or add workers."""


class WorkerCrashed(ShardError):
    """The worker process owning the session died (or all workers did).

    Raised promptly — never a hang — by any call routed to a dead
    worker.  Sessions on the dead worker are lost (their online state
    lived in that process); new sessions re-route to surviving workers
    automatically.  A manager-level checkpoint
    (:func:`repro.persist.save_manager`) is the recovery path for state
    that must survive worker loss.
    """
