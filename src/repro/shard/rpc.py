"""Shared pipe-RPC machinery for master/worker process fleets.

Both multi-process tiers — the sharded serving gateway
(:mod:`repro.shard.gateway`) and the data-parallel pretraining engine
(:mod:`repro.train.parallel`) — speak the same tiny message-passing
protocol over duplex ``multiprocessing`` pipes:

    request:  ``(request_id, method, kwargs)``
    reply:    ``(request_id, "ok", result)`` or
              ``(request_id, "error", (exception_type_name, message))``

This module owns the wire mechanics both sides share:

* :class:`RpcLink` — the master-side per-worker connection state
  (request counter, in-flight post times, last-RPC latency bookkeeping);
* :class:`PipeRpc` — pipelined ``post``/``wait``/``call`` with prompt
  typed crash detection (a dead worker raises, never hangs), stale-reply
  draining for abandoned pipelined fan-outs, reply-stream corruption
  checks and worker-side exception rebuild under the original type;
* :func:`serve_rpc` — the single-threaded worker-side dispatch loop
  (errors become *replies*, ``shutdown`` drains and exits, pipe EOF
  means the master went away).

The callers differ only in policy, which is injected: the typed error
family (``crashed_type`` / ``error_type`` / ``error_modules``), what the
loss of a worker means for the caller (``dead_hint`` / ``crash_hint``
message suffixes), and bookkeeping hooks (``on_dead`` fires exactly once
per link death, ``on_reply`` observes per-RPC latency for metrics).
"""

from __future__ import annotations

import builtins
import time

__all__ = ["RpcLink", "PipeRpc", "serve_rpc"]


class RpcLink:
    """Master-side state of one worker's pipe connection.

    Subclass (adding ``__slots__``) to attach tier-specific bookkeeping;
    the RPC layer touches only the slots declared here.
    """

    __slots__ = ("index", "process", "conn", "alive", "next_request",
                 "post_times", "last_rpc_seconds", "last_rpc_method")

    def __init__(self, index, process, conn):
        self.index = index
        self.process = process
        self.conn = conn
        self.alive = True
        self.next_request = 0
        self.post_times = {}        # in-flight request id -> send time
        self.last_rpc_seconds = None   # latency of the last finished RPC
        self.last_rpc_method = None


class PipeRpc:
    """Pipelined request/reply mechanics over a pool of :class:`RpcLink`.

    Parameters
    ----------
    timeout:
        Seconds to wait for a single reply before raising ``error_type``
        (a *dead* worker is detected promptly regardless); ``None``
        disables the timeout.
    crashed_type / error_type:
        Exception types raised for worker death and protocol-level
        failures respectively.
    error_modules:
        Modules searched (before ``builtins``) when rebuilding a
        worker-side exception under its original type name.
    dead_hint / crash_hint:
        Message suffixes appended when a request targets an
        already-dead link and when a link dies mid-call — the caller
        states what the loss means ("its sessions are lost", "resume
        from the last checkpoint", ...).
    on_dead:
        Optional callback ``(link)`` fired exactly once when a link is
        marked dead (before the raising call returns).
    on_reply:
        Optional callback ``(link, method, seconds)`` fired per
        completed RPC with its post-to-reply latency.
    """

    def __init__(self, *, timeout=600.0, crashed_type=RuntimeError,
                 error_type=RuntimeError, error_modules=(),
                 dead_hint="", crash_hint="", on_dead=None, on_reply=None):
        self.timeout = timeout
        self.crashed_type = crashed_type
        self.error_type = error_type
        self.error_modules = tuple(error_modules)
        self.dead_hint = dead_hint
        self.crash_hint = crash_hint
        self.on_dead = on_dead
        self.on_reply = on_reply

    # ------------------------------------------------------------------
    def mark_dead(self, link):
        """Mark a link dead (idempotent): bookkeeping hook + pipe close."""
        if not link.alive:
            return
        link.alive = False
        link.post_times.clear()
        if self.on_dead is not None:
            self.on_dead(link)
        try:
            link.conn.close()
        except OSError:
            pass

    def post(self, link, method, kwargs):
        """Send one request without waiting (pipelined fan-out)."""
        if not link.alive:
            raise self.crashed_type(
                "worker {} is dead{}".format(link.index, self.dead_hint))
        request_id = link.next_request
        link.next_request += 1
        link.post_times[request_id] = time.monotonic()
        try:
            link.conn.send((request_id, method, kwargs))
        except (BrokenPipeError, OSError):
            self.mark_dead(link)
            raise self.crashed_type(
                "worker {} died before accepting {!r}".format(
                    link.index, method))
        return request_id

    def wait(self, link, request_id, method):
        """Await one reply; detect worker death promptly (never hang)."""
        deadline = None if self.timeout is None \
            else time.monotonic() + self.timeout
        while True:
            try:
                if not link.conn.poll(0.05):
                    if not link.process.is_alive() \
                            and not link.conn.poll(0.2):
                        self.mark_dead(link)
                        raise self.crashed_type(
                            "worker {} died during {!r}{}".format(
                                link.index, method, self.crash_hint))
                    if deadline is not None \
                            and time.monotonic() > deadline:
                        raise self.error_type(
                            "worker {} did not answer {!r} within "
                            "{}s".format(link.index, method, self.timeout))
                    continue
                message = link.conn.recv()
            except (EOFError, OSError):
                self.mark_dead(link)
                raise self.crashed_type(
                    "worker {} died during {!r}{}".format(
                        link.index, method, self.crash_hint))
            reply_id, status, payload = message
            if reply_id < request_id:
                # Stale reply from a pipelined call whose wait was
                # abandoned (e.g. another worker crashed first and the
                # fan-out raised before collecting this one).  Workers
                # answer strictly in order, so it is safe to drop.
                continue
            if reply_id > request_id:
                self.mark_dead(link)
                raise self.error_type(
                    "worker {} answered request {} while {} was "
                    "expected; the RPC stream is corrupt".format(
                        link.index, reply_id, request_id))
            posted_at = link.post_times.pop(reply_id, None)
            if posted_at is not None:
                # Post-to-reply latency; for pipelined fan-outs this
                # includes time the request queued behind the worker's
                # earlier work, which is the latency a caller observes.
                link.last_rpc_seconds = time.monotonic() - posted_at
                link.last_rpc_method = method
                if self.on_reply is not None:
                    self.on_reply(link, method, link.last_rpc_seconds)
            if status == "error":
                raise self.rebuild_exception(link, method, payload)
            return payload

    def call(self, link, method, kwargs):
        return self.wait(link, self.post(link, method, kwargs), method)

    def rebuild_exception(self, link, method, payload):
        """Re-raise a worker-side exception under its original type."""
        type_name, message = payload
        exc_type = None
        for module in self.error_modules:
            exc_type = getattr(module, type_name, None)
            if exc_type is not None:
                break
        exc_type = exc_type or getattr(builtins, type_name, None)
        if isinstance(exc_type, type) and issubclass(exc_type, Exception):
            return exc_type(message)
        return self.error_type("worker {} failed {!r}: {}: {}".format(
            link.index, method, type_name, message))


def serve_rpc(conn, handle, on_shutdown=None):
    """Run a worker-side RPC dispatch loop until ``shutdown`` or EOF.

    ``handle(method, kwargs)`` serves every regular request; exceptions
    it raises are serialized back as typed error replies, never crashes.
    ``on_shutdown(kwargs)`` (optional) runs on the ``shutdown`` request
    and its return value is the final reply payload; the loop then
    exits.  Pipe EOF/closure means the master went away — the loop ends
    quietly.
    """
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            break   # master went away; nothing left to serve
        request_id, method, kwargs = message
        if method == "shutdown":
            result = None
            if on_shutdown is not None:
                try:
                    result = on_shutdown(kwargs or {})
                except Exception:
                    result = None
            conn.send((request_id, "ok", result))
            break
        try:
            result = handle(method, kwargs or {})
        except Exception as error:
            conn.send((request_id, "error",
                       (type(error).__name__, str(error))))
        else:
            conn.send((request_id, "ok", result))
    conn.close()
