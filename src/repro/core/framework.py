"""The Learn-to-Explore framework: offline training + online exploration.

Public entry point of the library (paper Section III-B, Figure 2)::

    from repro.core import LTE, LTEConfig
    from repro.data import make_sdss

    table = make_sdss()
    lte = LTE(LTEConfig(budget=30, n_tasks=300))
    lte.fit_offline(table)                       # unsupervised pre-training

    session = lte.start_session(variant="meta_star")
    for subspace, tuples in session.initial_tuples().items():
        session.submit_labels(subspace, oracle.label(subspace, tuples))
    interesting = session.predict(table.data)    # UIR membership

Three variants mirror the paper's competitors:

* ``basic`` — the UIS classifier with tabular preprocessing, trained online
  from random initialization;
* ``meta``  — meta-learned initialization + memories, fast adaptation;
* ``meta_star`` — ``meta`` plus the few-shot FP/FN optimizer.
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass, field

import numpy as np

from ..data.sampling import (random_indices, random_sample,
                             stratified_chunk_sample)
from ..data.subspaces import Subspace, random_decomposition
from ..ml.scaler import MinMaxScaler
from ..nn import Adam
from ..nn.functional import (balanced_pos_weight,
                             binary_cross_entropy_with_logits)
from .meta_learner import UISClassifier
from .meta_task import MetaTaskGenerator, uis_feature_vector
from .meta_training import AdaptedClassifier, MetaHyperParams, MetaTrainer
from .optimizer import FewShotOptimizer, HullRegistry
from .preprocessing import TabularPreprocessor
from .uis import UISMode

__all__ = ["LTEConfig", "LTE", "ExplorationSession", "SubspaceState",
           "AdaptRequest", "build_adapt_request", "build_readapt_request",
           "run_adapt_request", "VARIANTS"]

VARIANTS = ("basic", "meta", "meta_star")


@dataclass
class LTEConfig:
    """Framework configuration (paper defaults, Section VIII-A)."""

    # clustering / meta-task generation
    ku: int = 100
    kq: int = 200
    delta: int = 5
    budget: int = 30                 # labels per subspace; ks = budget - delta
    task_mode: UISMode = field(default_factory=lambda: UISMode(4, 20))
    n_tasks: int = 200               # |T^M| per meta-subspace (paper: 5000)
    cluster_sample_ratio: float = 0.01
    # preprocessing
    preprocessing_mode: str = "auto"
    n_components: int = 8
    preprocessing_sample_ratio: float = 0.01
    center_affinity: bool = True     # RBF-affinity channel (DESIGN.md §6)
    # classifier
    embed_size: int = 100
    hidden_size: int = 64
    # meta training
    meta: MetaHyperParams = field(default_factory=MetaHyperParams)
    use_memories: bool = True
    # online phase (the paper's local step sizes are 5-30)
    online_steps: int = 30
    online_lr: float = 0.01
    basic_steps: int = 100
    basic_lr: float = 0.01
    # few-shot optimizer (Meta*); the paper searches Nsup in 20-40% and
    # Nsub in 5-15% of ku — the conservative end of Nsub works best with
    # normalized subspaces.
    n_sup_ratio: float = 0.3
    n_sub_ratio: float = 0.05
    # decomposition
    subspace_dim: int = 2
    seed: int = 7
    # out-of-core offline fitting (chunk-store tables): size of the
    # normalized per-subspace sample standing in for the full projection
    # (clustering, preprocessing fits, extras, convergence statistics all
    # draw from it) — the knob bounding offline memory by sample size
    # rather than table size.
    store_sample_rows: int = 50_000

    @property
    def ks(self):
        ks = self.budget - self.delta
        if ks < 1:
            raise ValueError("budget must exceed delta")
        return ks


#: Process-global allocator for :attr:`SubspaceState.artifact_token`.
_ARTIFACT_TOKENS = itertools.count()


class SubspaceState:
    """Offline artifacts of one meta-subspace.

    The subspace is normalized internally: ``scaler`` maps raw attribute
    values to the unit cube, and ``data``, the cluster summary, meta-tasks
    and every geometric structure live in that normalized space.  Raw
    coordinates appear only at the public API boundary.

    ``artifact_token`` identifies the *current* model/scaler generation of
    this state within the process: caches of anything derived from the
    scaler, preprocessor or meta-learner (e.g. the serving layer's encode
    cache) must key by it.  Installing a new meta-learner or refreshed
    scalers calls :meth:`bump_artifacts`, so stale derived artifacts
    simply stop being reachable.
    """

    def __init__(self, subspace, data, scaler, preprocessor, task_generator,
                 trainer):
        self.subspace = subspace
        self.data = data                       # (n x d) normalized projection
        self.scaler = scaler                   # raw <-> normalized
        self.preprocessor = preprocessor
        self.task_generator = task_generator   # holds the ClusterSummary
        self.trainer = trainer                 # None until meta-trained
        self.artifact_token = next(_ARTIFACT_TOKENS)

    def bump_artifacts(self):
        """Mark the model/scaler artifacts as changed (new generation)."""
        self.artifact_token = next(_ARTIFACT_TOKENS)

    @property
    def summary(self):
        return self.task_generator.summary

    def encode(self, raw_points):
        """Raw subspace tuples -> representation vectors."""
        return self.encode_scaled(self.scaler.transform(raw_points))

    def encode_scaled(self, scaled_points):
        """Normalized subspace tuples -> representation vectors."""
        return self.preprocessor.transform(scaled_points)

    def to_raw(self, scaled_points):
        return self.scaler.inverse_transform(scaled_points)

    def to_scaled(self, raw_points):
        return self.scaler.transform(raw_points)


class LTE:
    """Learn-to-Explore: pre-trains per-meta-subspace meta-learners."""

    def __init__(self, config=None):
        self.config = config or LTEConfig()
        self.table = None
        self.states = {}   # Subspace -> SubspaceState
        self.offline_seconds_ = None

    # ------------------------------------------------------------------
    # Offline phase
    # ------------------------------------------------------------------
    def fit_offline(self, table, subspaces=None, train=True, progress=None,
                    engine=None, checkpoint=None, workers=None,
                    stream=None):
        """Run the full offline phase on an exploratory table.

        Parameters
        ----------
        table:
            A :class:`~repro.data.schema.Table`.
        subspaces:
            Optional explicit meta-subspace list; default: random
            decomposition into ``config.subspace_dim``-D groups.
        train:
            When False, stop after preprocessing + meta-task generation
            (used by benches that time the stages separately).
        progress:
            Optional callback ``(subspace, stage)``.  ``stage`` is
            ``"prepared"`` after a subspace's offline artifacts are
            built, ``("pretrain", epoch_index)`` after each of its joint
            pretraining epochs, ``("epoch", epoch_index,
            mean_query_loss)`` after each of its meta-training epochs,
            and ``"trained"`` once its meta-learner is done.
        engine:
            ``"batched"`` (default) meta-trains all subspaces pooled —
            epochs interleaved round-robin, shape-compatible meta-tasks
            from *all* subspaces fused into shared stacked programs
            (:mod:`repro.train`); ``"sequential"`` runs the
            task-at-a-time reference executor; ``"parallel"`` fans the
            fused compute out across ``workers`` forked processes
            (:mod:`repro.train.parallel`).  All produce bit-identical
            trainers.
        checkpoint:
            Optional directory for epoch-granular resumable pretraining
            checkpoints: the run saves trainer weights, memories, RNG
            state and per-subspace epoch cursors after every epoch, and
            a later ``fit_offline`` call pointed at the same directory
            (same table, config and decomposition) resumes from the last
            completed epoch — converging to the identical phi bit for
            bit.  Checkpoints resume interchangeably across engines and
            worker counts.
        workers:
            Worker-process count for ``engine="parallel"`` (default:
            ``REPRO_TRAIN_WORKERS``, else the core count).  Setting the
            environment variable alone also selects the parallel engine
            when ``engine`` is unspecified.
        stream:
            ``True`` (or a directory path) spills each subspace's
            encoded meta-task set into an on-disk chunk store and
            trains from it lazily, bounding peak offline memory by the
            chunk size instead of the task count — bit-identical to the
            in-memory path (:mod:`repro.train.stream`).
        """
        cfg = self.config
        self.table = table
        if subspaces is None:
            subspaces = random_decomposition(table, dim=cfg.subspace_dim,
                                             seed=cfg.seed)
        # Materialize: the list is walked twice (prepare, then train).
        subspaces = list(subspaces)
        start = time.perf_counter()
        for i, subspace in enumerate(subspaces):
            state = self._prepare_subspace(table, subspace, index=i)
            self.states[subspace] = state
            if progress is not None:
                progress(subspace, "prepared")
        if train:
            from ..train.offline import run_offline_training
            run_offline_training(self, subspaces, engine=engine,
                                 progress=progress, checkpoint=checkpoint,
                                 workers=workers, stream=stream)
        self.offline_seconds_ = time.perf_counter() - start
        return self

    def _prepare_subspace(self, table, subspace, index=0):
        cfg = self.config
        if hasattr(table, "iter_chunks"):
            # Chunk-store table: the scaler comes straight off the zone
            # maps (exact global bounds, no data pass) and the subspace
            # working set is a bounded stratified chunk sample instead
            # of the full normalized projection — offline memory scales
            # with store_sample_rows, never with the table.
            nan_cols = table.column_has_nan(subspace.columns)
            if nan_cols.any():
                raise ValueError(
                    "cannot fit subspace {}: attribute(s) {} contain NaN "
                    "values (zone maps flag them); impute or drop them "
                    "before fit_offline".format(
                        tuple(subspace.names),
                        [n for n, bad in zip(subspace.names, nan_cols)
                         if bad]))
            lo, hi = table.column_bounds(subspace.columns)
            scaler = MinMaxScaler.from_bounds(lo, hi)
            raw = stratified_chunk_sample(
                table, cfg.store_sample_rows, columns=subspace.columns,
                seed=cfg.seed + index)
        else:
            raw = subspace.project(table.data)
            scaler = MinMaxScaler().fit(raw)
        data = scaler.transform(raw)
        attributes = [table.attribute(name) for name in subspace.names]
        preprocessor = TabularPreprocessor(
            attributes, mode=cfg.preprocessing_mode,
            n_components=cfg.n_components,
            sample_ratio=cfg.preprocessing_sample_ratio,
            seed=cfg.seed + index).fit(data)
        generator = MetaTaskGenerator(
            data, ku=cfg.ku, ks=cfg.ks, kq=cfg.kq, mode=cfg.task_mode,
            delta=cfg.delta, sample_ratio=cfg.cluster_sample_ratio,
            seed=cfg.seed + 1000 + index)
        if cfg.center_affinity:
            preprocessor.attach_centers(generator.summary.centers_u)
        state = SubspaceState(subspace, data, scaler, preprocessor, generator,
                              None)
        state.quantization_baseline = self._quantization_error(
            state, data, seed=cfg.seed)
        return state

    @staticmethod
    def _quantization_error(state, scaled_points, sample=500, seed=0):
        """Mean nearest-C_u-center distance of a sample — the clustering
        fit statistic used by drift detection."""
        from ..ml.kmeans import pairwise_distances
        idx = random_indices(len(scaled_points), sample, seed=seed)
        dist = pairwise_distances(scaled_points[idx],
                                  state.summary.centers_u)
        return float(dist.min(axis=1).mean())

    # ------------------------------------------------------------------
    # Dynamic maintenance (paper Section V-E): when the data distribution
    # of a meta-subspace changes, its sampled cluster summary — and hence
    # its meta-tasks and meta-learner — go stale.
    # ------------------------------------------------------------------
    def drift_scores(self, table, seed=0):
        """Relative clustering-fit degradation per subspace on new data.

        Returns ``{subspace: score}`` where 0 means the existing cluster
        summary quantizes the new data as well as the training data and
        e.g. 0.5 means 50% higher quantization error — a practical trigger
        for :meth:`refresh_subspace`.
        """
        scores = {}
        for subspace, state in self.states.items():
            if hasattr(table, "iter_chunks"):
                raw = stratified_chunk_sample(
                    table, self.config.store_sample_rows,
                    columns=subspace.columns, seed=seed)
            else:
                raw = subspace.project(table.data)
            scaled = state.to_scaled(raw)
            error = self._quantization_error(state, scaled, seed=seed)
            baseline = max(state.quantization_baseline, 1e-12)
            scores[subspace] = error / baseline - 1.0
        return scores

    def refresh_subspace(self, table, subspace, train=True):
        """Rebuild one subspace's summary/preprocessor/meta-learner after
        a distribution change.

        The subspace's entry in :attr:`states` is *replaced*, never
        mutated: sessions opened before the refresh keep the state
        object (scaler, encoder, adapted model) they adapted under and
        serve unchanged predictions, while sessions opened afterwards
        pick up the fresh artifacts — the zero-downtime half of drift
        handling.
        """
        index = list(self.states).index(subspace)
        state = self._prepare_subspace(table, subspace, index=index)
        self.states[subspace] = state
        if train:
            self.train_subspace(subspace)
        return state

    def scaler_ranges(self):
        """Fitted raw-space ``{subspace: (min_, max_)}`` per subspace."""
        return {subspace: (state.scaler.min_.copy(),
                           state.scaler.max_.copy())
                for subspace, state in self.states.items()}

    def freshness_monitor(self, threshold=0.2):
        """A :class:`~repro.store.ingest.FreshnessMonitor` watching every
        fitted subspace's scaler range against the store's zone maps.

        ``monitor.observe(store)`` after appends; subspaces whose
        incoming chunk ranges escape the fitted range past ``threshold``
        (relative to the fitted span) show up in ``monitor.drifted()``
        and should go through :meth:`refresh_subspace` (or
        :meth:`refresh_drifted`, or a sharded gateway's
        ``refresh_model``).
        """
        from ..store.ingest import FreshnessMonitor
        monitor = FreshnessMonitor(threshold=threshold)
        for subspace, state in self.states.items():
            monitor.register(subspace, subspace.columns,
                             state.scaler.min_, state.scaler.max_)
        return monitor

    def refresh_drifted(self, table, monitor, train=True):
        """Refresh every subspace the monitor flags; re-register their
        new scaler ranges so the monitor scores future appends against
        the refreshed fit.  Returns the refreshed subspace list."""
        drifted = monitor.drifted()
        for subspace in drifted:
            state = self.refresh_subspace(table, subspace, train=train)
            monitor.register(subspace, subspace.columns,
                             state.scaler.min_, state.scaler.max_)
        return drifted

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def save(self, path):
        """Pickle the trained system (table reference included)."""
        import pickle
        with open(path, "wb") as fh:
            pickle.dump(self, fh)

    @staticmethod
    def load(path):
        import pickle
        with open(path, "rb") as fh:
            system = pickle.load(fh)
        if not isinstance(system, LTE):
            raise TypeError("{} does not contain a saved LTE system"
                            .format(path))
        return system

    def build_trainer(self, state):
        """Fresh (untrained) meta-learner for one prepared subspace —
        the single construction point shared by :meth:`train_subspace`
        and the pooled offline engine."""
        cfg = self.config
        return MetaTrainer(
            ku=state.summary.ku, input_width=state.preprocessor.width,
            embed_size=cfg.embed_size, hidden_size=cfg.hidden_size,
            params=cfg.meta, use_memories=cfg.use_memories, seed=cfg.seed)

    def train_subspace(self, subspace, n_tasks=None, epochs=None,
                       engine=None):
        """Generate meta-tasks and meta-train the subspace's learner."""
        cfg = self.config
        state = self.states[subspace]
        tasks = state.task_generator.generate(n_tasks or cfg.n_tasks)
        trainer = self.build_trainer(state)
        trainer.train(tasks, state.encode_scaled, epochs=epochs,
                      engine=engine)
        state.trainer = trainer
        return trainer

    # ------------------------------------------------------------------
    # Online phase
    # ------------------------------------------------------------------
    def start_session(self, variant="meta_star", subspaces=None, seed=None):
        """Open an online exploration session.

        Parameters
        ----------
        variant:
            ``"basic"``, ``"meta"`` or ``"meta_star"``.
        subspaces:
            Restrict the session to these subspaces (default: all trained
            meta-subspaces — the user-interest space equals the full space).
        """
        if variant not in VARIANTS:
            raise ValueError("unknown variant {!r}; options: {}".format(
                variant, VARIANTS))
        if not self.states:
            raise RuntimeError("fit_offline must run before start_session")
        chosen = list(self.states) if subspaces is None else list(subspaces)
        if not chosen:
            raise ValueError(
                "a session needs at least one subspace; an empty subspace "
                "list would make every row trivially 'interesting' "
                "(conjunction over nothing)")
        missing = [s for s in chosen if s not in self.states]
        if missing:
            raise KeyError("no offline state for subspaces: {}".format(missing))
        return ExplorationSession(self, chosen, variant,
                                  seed=self.config.seed if seed is None
                                  else seed)


# ----------------------------------------------------------------------
# Adaptation as data: the online few-shot fine-tuning of one (session,
# subspace) pair reduced to a pure value object plus pure executors.  The
# sequential session path and the batched serving path
# (:mod:`repro.serve`) both consume these, which is what makes them
# bit-compatible.
# ----------------------------------------------------------------------
@dataclass
class AdaptRequest:
    """One batchable unit of online adaptation work.

    Produced by :func:`build_adapt_request` (initial labels) or
    :func:`build_readapt_request` (iterative-exploration rounds) and
    executed either sequentially by :func:`run_adapt_request` or fused
    with other requests by :func:`repro.serve.run_adapt_requests`.
    """

    state: SubspaceState
    variant: str
    config: LTEConfig
    feature: np.ndarray          # v_R (ku,)
    encoded: np.ndarray          # (n, input_width) preprocessed tuples
    targets: np.ndarray          # (n,) float 0/1 labels
    center_bits: np.ndarray = None   # C_s labels; None on re-adaptation

    @property
    def steps(self):
        return self.config.basic_steps if self.variant == "basic" \
            else self.config.online_steps

    @property
    def lr(self):
        return self.config.basic_lr if self.variant == "basic" \
            else self.config.online_lr

    @property
    def optimizer_kind(self):
        return "adam" if self.variant == "basic" \
            else self.state.trainer.params.local_optimizer

    @property
    def balance_classes(self):
        return self.config.meta.balance_classes if self.variant == "basic" \
            else self.state.trainer.params.balance_classes

    @property
    def use_conversion(self):
        return self.variant != "basic" and self.state.trainer.use_memories

    @property
    def builds_optimizer(self):
        return self.variant == "meta_star" and self.center_bits is not None

    def shape_key(self):
        """Hashable bucket key: requests sharing it can train fused."""
        summary = self.state.summary
        return (self.variant, self.optimizer_kind, self.use_conversion,
                self.balance_classes, self.steps, float(self.lr),
                summary.ku, self.state.preprocessor.width,
                self.encoded.shape[0], self.config.embed_size,
                self.config.hidden_size)


def build_adapt_request(state, variant, config, scaled_points, labels):
    """Initial-labels adaptation request for one (session, subspace).

    ``scaled_points`` are the session's initial tuples in normalized
    coordinates (C_s centers first); ``labels`` the user's 0/1 answers.
    """
    if variant not in VARIANTS:
        raise ValueError("unknown variant {!r}; options: {}".format(
            variant, VARIANTS))
    if variant != "basic" and state.trainer is None:
        raise RuntimeError("subspace {} has no trained meta-learner".format(
            state.subspace))
    labels = np.asarray(labels).ravel().astype(np.int64)
    center_bits = labels[:state.summary.ks]
    feature = uis_feature_vector(center_bits, state.summary)
    return AdaptRequest(
        state=state, variant=variant, config=config, feature=feature,
        encoded=state.encode_scaled(scaled_points),
        targets=labels.astype(np.float64), center_bits=center_bits)


def build_readapt_request(state, variant, config, feature, encoded, labels):
    """Re-adaptation request from accumulated iterative-exploration labels.

    Keeps the session's existing UIS feature vector and does not rebuild
    the few-shot optimizer (matching
    :meth:`ExplorationSession.add_labels` semantics).
    """
    if variant != "basic" and state.trainer is None:
        raise RuntimeError("subspace {} has no trained meta-learner".format(
            state.subspace))
    labels = np.asarray(labels).ravel().astype(np.float64)
    return AdaptRequest(
        state=state, variant=variant, config=config,
        feature=np.asarray(feature, dtype=np.float64),
        encoded=np.atleast_2d(np.asarray(encoded, dtype=np.float64)),
        targets=labels, center_bits=None)


def _train_basic_classifier(request):
    """Train the Basic (non-meta) classifier for one request."""
    cfg = request.config
    state = request.state
    model = UISClassifier(
        ku=state.summary.ku, input_width=state.preprocessor.width,
        embed_size=cfg.embed_size, hidden_size=cfg.hidden_size,
        use_conversion=False, seed=cfg.seed)
    optimizer = Adam(model.parameters(), lr=cfg.basic_lr)
    targets = request.targets
    pos_weight = balanced_pos_weight(targets) \
        if cfg.meta.balance_classes else None
    for _ in range(cfg.basic_steps):
        optimizer.zero_grad()
        logits = model.forward(request.feature, request.encoded)
        loss = binary_cross_entropy_with_logits(logits, targets,
                                                pos_weight=pos_weight)
        loss.backward()
        optimizer.step()
    return AdaptedClassifier(model, request.feature)


def run_adapt_request(request):
    """Execute one request sequentially.

    Returns ``(AdaptedClassifier, FewShotOptimizer | None)`` — the
    few-shot optimizer only for initial ``meta_star`` requests.
    """
    cfg = request.config
    state = request.state
    if request.variant == "basic":
        adapted = _train_basic_classifier(request)
    else:
        adapted, _ = state.trainer.adapt(
            request.feature, request.encoded, request.targets,
            local_steps=cfg.online_steps, local_lr=cfg.online_lr)
    optimizer = None
    if request.builds_optimizer:
        optimizer = FewShotOptimizer(
            state.summary, n_sup_ratio=cfg.n_sup_ratio,
            n_sub_ratio=cfg.n_sub_ratio).fit(request.center_bits)
    return adapted, optimizer


class _SubspaceSession:
    """Online state of one subspace inside a session."""

    def __init__(self, state, variant, config, seed):
        self.state = state
        self.variant = variant
        self.config = config
        rng = np.random.default_rng(seed)
        extras = random_sample(state.data, config.delta,
                               seed=int(rng.integers(2 ** 31)))
        centers = state.summary.centers_s
        self._initial_scaled = np.vstack([centers, extras]) if config.delta \
            else centers
        # Raw coordinates at the user-facing boundary.
        self.initial_x = state.to_raw(self._initial_scaled)
        self.labels = None
        self.adapted = None
        self.optimizer = None
        self.adapt_seconds = None
        self.model_version = 0   # bumped on every (re-)adaptation
        self.extra_x = None   # iterative-exploration labels (beyond initial)
        self.extra_y = None

    # ------------------------------------------------------------------
    def validate_initial_labels(self, labels):
        """Check an initial label vector; returns it as int64."""
        labels = np.asarray(labels).ravel().astype(np.int64)
        if labels.size != len(self.initial_x):
            raise ValueError("expected {} labels, got {}".format(
                len(self.initial_x), labels.size))
        return labels

    def validate_extra_labels(self, tuples, labels):
        """Check an iterative-exploration round; returns (tuples, labels)."""
        tuples = np.atleast_2d(np.asarray(tuples, dtype=np.float64))
        labels = np.asarray(labels).ravel().astype(np.int64)
        if len(tuples) != len(labels):
            raise ValueError("tuples/labels length mismatch")
        if tuples.shape[1] != self.initial_x.shape[1]:
            raise ValueError("expected {}-D subspace tuples, got {}-D".format(
                self.initial_x.shape[1], tuples.shape[1]))
        return tuples, labels

    def build_initial_request(self, labels):
        """Validate labels and package the adaptation as an AdaptRequest."""
        labels = self.validate_initial_labels(labels)
        return build_adapt_request(self.state, self.variant, self.config,
                                   self._initial_scaled, labels)

    def submit_labels(self, labels):
        request = self.build_initial_request(labels)
        start = time.perf_counter()
        adapted, optimizer = run_adapt_request(request)
        self.install_adaptation(request, adapted, optimizer,
                                time.perf_counter() - start)

    def install_adaptation(self, request, adapted, optimizer, seconds):
        """Install an (externally computed) initial adaptation result.

        The batched serving layer runs many requests fused and installs
        each result here, so the session afterwards is indistinguishable
        from one adapted sequentially.
        """
        self.labels = request.targets.astype(np.int64)
        self.adapted = adapted
        if optimizer is not None:
            self.optimizer = optimizer
        self.adapt_seconds = seconds
        self.model_version += 1

    def install_readaptation(self, adapted, extras=None):
        """Install a re-adaptation result (keeps labels and optimizer).

        ``extras`` is the ``(tuples, labels)`` pair returned by
        :meth:`build_readapt_request_for`; it is recorded here — after
        the adaptation succeeded — not at build time.
        """
        if extras is not None:
            tuples, labels = extras
            if self.extra_x is None:
                self.extra_x, self.extra_y = tuples, labels
            else:
                self.extra_x = np.vstack([self.extra_x, tuples])
                self.extra_y = np.concatenate([self.extra_y, labels])
        self.adapted = adapted
        self.model_version += 1

    # ------------------------------------------------------------------
    # Iterative exploration (paper Section III-B, "Other IDE Modules"):
    # additional labelled tuples from further rounds — e.g. picked by
    # active learning — re-adapt the learner from the meta initialization.
    # ------------------------------------------------------------------
    def build_readapt_request_for(self, tuples, labels):
        """Package a re-adaptation over the accumulated + new labels.

        Pure with respect to session state: the new extras are returned
        alongside the request and only recorded by
        :meth:`install_readaptation`, so a failed (or abandoned)
        adaptation leaves the session exactly as it was.
        """
        if self.labels is None:
            raise RuntimeError("submit the initial labels first")
        tuples, labels = self.validate_extra_labels(tuples, labels)
        extra_x = tuples if self.extra_x is None \
            else np.vstack([self.extra_x, tuples])
        extra_y = labels if self.extra_y is None \
            else np.concatenate([self.extra_y, labels])
        all_x = np.vstack([self.initial_x, extra_x])
        all_y = np.concatenate([self.labels, extra_y])
        request = build_readapt_request(
            self.state, self.variant, self.config,
            self.adapted.feature_vector, self.state.encode(all_x), all_y)
        return request, (tuples, labels)

    def add_labels(self, tuples, labels):
        request, extras = self.build_readapt_request_for(tuples, labels)
        adapted, _ = run_adapt_request(request)
        self.install_readaptation(adapted, extras)

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    def state_dict(self, hull_registry=None):
        """Checkpointable online state of this (session, subspace) pair.

        Everything the online phase accumulated — the drawn initial
        tuples, labels, the adapted classifier, the few-shot optimizer's
        regions, the model version — but none of the offline artifacts
        (those are restored from the LTE system itself).
        """

        def array_or_none(value):
            return None if value is None else np.asarray(value).copy()

        return {
            "initial_scaled": self._initial_scaled.copy(),
            "labels": array_or_none(self.labels),
            "extra_x": array_or_none(self.extra_x),
            "extra_y": array_or_none(self.extra_y),
            "model_version": int(self.model_version),
            "adapt_seconds": None if self.adapt_seconds is None
            else float(self.adapt_seconds),
            "adapted": None if self.adapted is None
            else self.adapted.state_dict(),
            "optimizer": None if self.optimizer is None
            else self.optimizer.state_dict(hull_registry),
        }

    @classmethod
    def from_state_dict(cls, state, subspace_state, variant, config,
                        hulls=None):
        """Rebuild the online state captured by :meth:`state_dict`.

        ``subspace_state`` is the live :class:`SubspaceState` from the
        (re-trained or restored) LTE system; ``hulls`` the shared hull
        list when the optimizer state was captured against a
        :class:`~repro.core.optimizer.HullRegistry`.
        """
        session = cls.__new__(cls)
        session.state = subspace_state
        session.variant = variant
        session.config = config
        session._initial_scaled = np.asarray(state["initial_scaled"],
                                             dtype=np.float64)
        session.initial_x = subspace_state.to_raw(session._initial_scaled)
        session.labels = None if state["labels"] is None \
            else np.asarray(state["labels"]).astype(np.int64)
        session.extra_x = None if state["extra_x"] is None \
            else np.asarray(state["extra_x"], dtype=np.float64)
        session.extra_y = None if state["extra_y"] is None \
            else np.asarray(state["extra_y"]).astype(np.int64)
        session.model_version = int(state["model_version"])
        session.adapt_seconds = state["adapt_seconds"]
        session.adapted = None if state["adapted"] is None \
            else AdaptedClassifier.from_state_dict(state["adapted"])
        session.optimizer = None if state["optimizer"] is None \
            else FewShotOptimizer.from_state_dict(
                state["optimizer"], subspace_state.summary, hulls=hulls)
        return session

    def most_uncertain(self, candidates, k=1):
        """Indices of the k candidates nearest the decision boundary."""
        if self.adapted is None:
            raise RuntimeError("labels not yet submitted for subspace {}"
                               .format(self.state.subspace))
        candidates = np.atleast_2d(np.asarray(candidates, dtype=np.float64))
        proba = self.adapted.predict_proba(self.state.encode(candidates))
        return np.argsort(np.abs(proba - 0.5))[:k]

    # ------------------------------------------------------------------
    def predict(self, raw_points):
        if self.adapted is None:
            raise RuntimeError("labels not yet submitted for subspace {}"
                               .format(self.state.subspace))
        raw_points = np.atleast_2d(np.asarray(raw_points, dtype=np.float64))
        scaled = self.state.to_scaled(raw_points)
        predictions = self.adapted.predict(
            self.state.encode_scaled(scaled))
        if self.optimizer is not None:
            # The optimizer's hull geometry lives in normalized space.
            predictions = self.optimizer.refine(scaled, predictions)
        return predictions


class ExplorationSession:
    """An online explore-by-example session over trained meta-subspaces."""

    def __init__(self, lte, subspaces, variant, seed=7):
        self.lte = lte
        self.variant = variant
        self._subsessions = {}
        # Freshness watermarks per store uid: the store version this
        # session last answered at plus the answer itself, so the next
        # predict_store only scans chunks newer than the watermark.
        self._store_marks = {}
        self.last_store_scan = None
        for i, subspace in enumerate(subspaces):
            self._subsessions[subspace] = _SubspaceSession(
                lte.states[subspace], variant, lte.config, seed=seed + i)

    @property
    def subspaces(self):
        return list(self._subsessions)

    # ------------------------------------------------------------------
    # Checkpointing (resumable sessions)
    # ------------------------------------------------------------------
    def state_dict(self, hull_registry=None):
        """Checkpointable state of the whole session.

        Subspaces are identified by attribute names (not indices), so the
        state restores against any LTE system trained over the same
        decomposition.  Pass a shared
        :class:`~repro.core.optimizer.HullRegistry` when snapshotting
        many sessions at once (the serving layer does); without one the
        state embeds its own hull table and is self-contained.
        """
        registry = hull_registry if hull_registry is not None \
            else HullRegistry()
        state = {
            "variant": self.variant,
            "subspaces": [list(s.names) for s in self._subsessions],
            "sessions": [ss.state_dict(registry)
                         for ss in self._subsessions.values()],
        }
        if hull_registry is None:
            state["hulls"] = registry.state()
        return state

    @classmethod
    def from_state_dict(cls, lte, state, hulls=None):
        """Rebuild a session captured by :meth:`state_dict` over ``lte``.

        The LTE system supplies every offline artifact (scalers,
        preprocessors, cluster summaries, meta-learners); the state
        supplies the online remainder.  A subspace in the state with no
        offline counterpart in ``lte`` raises ``KeyError``.
        """
        if hulls is None and "hulls" in state:
            hulls = HullRegistry.restore(state["hulls"]).hulls
        by_key = {s.key: s for s in lte.states}
        session = cls.__new__(cls)
        session.lte = lte
        session.variant = state["variant"]
        session._subsessions = {}
        session._store_marks = {}
        session.last_store_scan = None
        for names, sub_state in zip(state["subspaces"], state["sessions"]):
            key = tuple(sorted(names))
            if key not in by_key:
                raise KeyError(
                    "no offline state for subspace {} in the target LTE "
                    "system; the checkpoint belongs to a different "
                    "decomposition".format(tuple(names)))
            subspace = by_key[key]
            session._subsessions[subspace] = _SubspaceSession.from_state_dict(
                sub_state, lte.states[subspace], session.variant, lte.config,
                hulls=hulls)
        return session

    # ------------------------------------------------------------------
    def initial_tuples(self):
        """{subspace: (n x d) raw tuples} the user must label (budget each)."""
        return {s: ss.initial_x for s, ss in self._subsessions.items()}

    def submit_labels(self, subspace, labels):
        """Feed the user's 0/1 labels for one subspace's initial tuples."""
        self._subsessions[subspace].submit_labels(labels)

    def submit_all_labels(self, labels_by_subspace):
        for subspace, labels in labels_by_subspace.items():
            self.submit_labels(subspace, labels)

    @property
    def total_budget(self):
        """Total number of labels the session requests from the user."""
        return sum(len(ss.initial_x) for ss in self._subsessions.values())

    @property
    def adapt_seconds(self):
        """Total online adaptation time across subspaces (None before labels)."""
        times = [ss.adapt_seconds for ss in self._subsessions.values()]
        if any(t is None for t in times):
            return None
        return float(sum(times))

    # ------------------------------------------------------------------
    # Iterative exploration plug-in
    # ------------------------------------------------------------------
    def add_labels(self, subspace, tuples, labels):
        """Feed further labelled tuples (active-learning rounds) and
        re-adapt the subspace's learner."""
        self._subsessions[subspace].add_labels(tuples, labels)

    def most_uncertain(self, subspace, candidates, k=1):
        """Candidate indices the current learner is least certain about —
        the selection rule explore-by-example active learning uses."""
        return self._subsessions[subspace].most_uncertain(candidates, k=k)

    # ------------------------------------------------------------------
    # Convergence indicator (paper Section III-B: "our framework can
    # incorporate additional indicators, like the three-set metric in
    # DSM, for supporting the determination of exploration convergence").
    # ------------------------------------------------------------------
    def convergence_estimate(self, subspace, sample_rows=500, seed=0):
        """Three-set-style resolved fraction for one subspace.

        A sampled point is *resolved* when the geometric side-structures
        and the classifier agree on it: inside the conservative
        inner-subregion (certainly interesting), outside the generous
        outer-subregion (certainly not), or classified consistently with
        the region it falls in.  The unresolved remainder approximates the
        region boundary still in question; exploration can stop when the
        estimate is high enough.  Requires the ``meta_star`` variant
        (the only one that builds the subregions).
        """
        subsession = self._subsessions[subspace]
        if subsession.optimizer is None:
            raise RuntimeError(
                "convergence_estimate needs the meta_star variant")
        state = subsession.state
        scaled = state.data[random_indices(len(state.data), sample_rows,
                                           seed=seed)]
        optimizer = subsession.optimizer
        # Each subregion's contains runs on its cached compiled pack.
        inner = optimizer.inner_region.contains(scaled) \
            if optimizer.inner_region is not None \
            else np.zeros(len(scaled), dtype=bool)
        outer = optimizer.outer_region.contains(scaled) \
            if optimizer.outer_region is not None \
            else np.ones(len(scaled), dtype=bool)
        preds = subsession.adapted.predict(state.encode_scaled(scaled))
        resolved = inner | ~outer \
            | ((preds == 1) & inner) | ((preds == 0) & ~outer)
        # Points in the middle band whose classification is confident
        # (probability far from 0.5) also count as resolved.
        proba = subsession.adapted.predict_proba(state.encode_scaled(scaled))
        confident = np.abs(proba - 0.5) > 0.4
        resolved |= confident
        return float(np.mean(resolved))

    # ------------------------------------------------------------------
    # Final retrieval (paper Section III-B: "an IDE system returns a
    # sampled (or complete) set of user interest tuples").
    # ------------------------------------------------------------------
    def retrieve(self, rows=None, limit=None):
        """Rows of the explored table predicted interesting.

        Parameters
        ----------
        rows:
            Candidate rows, or a :class:`~repro.store.ChunkStore`;
            default: the full exploratory table (whichever substrate the
            system was fitted on).
        limit:
            Optional cap on the number of returned rows.
        """
        if rows is None:
            rows = self.lte.table if hasattr(self.lte.table, "iter_chunks") \
                else self.lte.table.data
        if hasattr(rows, "iter_chunks"):
            indices = np.flatnonzero(self.predict_store(rows) == 1)
            if limit is not None:
                indices = indices[:int(limit)]
            return rows.take(indices)
        rows = np.atleast_2d(np.asarray(rows, dtype=np.float64))
        mask = self.predict(rows) == 1
        result = rows[mask]
        if limit is not None:
            result = result[:int(limit)]
        return result

    # ------------------------------------------------------------------
    def predict_subspace(self, subspace, raw_points):
        """0/1 UIS membership for points given in subspace coordinates."""
        return self._subsessions[subspace].predict(raw_points)

    def predict(self, rows):
        """0/1 UIR membership for full-space rows (conjunctive combination).

        ``rows`` may also be a :class:`~repro.store.ChunkStore`, in which
        case the evaluation runs chunk-wise with zone-map pruning
        (:meth:`predict_store`) — same bits, bounded memory.
        """
        if hasattr(rows, "iter_chunks"):
            return self.predict_store(rows)
        self._require_predictable()
        rows = np.atleast_2d(np.asarray(rows, dtype=np.float64))
        result = np.ones(len(rows), dtype=np.int64)
        for subspace, subsession in self._subsessions.items():
            projected = subspace.project(rows)
            result &= subsession.predict(projected)
        return result

    def _require_predictable(self):
        """The conjunction over subspaces is only meaningful when there is
        at least one: with none, every row would come back positive."""
        if not self._subsessions:
            raise RuntimeError(
                "session has no subspaces; predictions over an empty "
                "conjunction would mark every row interesting")

    def predict_store(self, store):
        """0/1 UIR membership over a chunk store, zone-map pruned.

        Chunks no subspace's few-shot refinement could mark positive
        (outside both the outer and inner subregion bounding boxes, in
        raw coordinates through the subspace scaler) are skipped without
        touching their bytes: the Meta* refinement demotes every
        positive prediction outside the outer subregion, so those rows
        end up 0 either way — the result is **bit-identical** to
        ``predict(store.data)`` while reading only the chunks a user's
        interest region can overlap.  Basic/Meta sessions (no geometric
        refinement) evaluate every chunk, still at chunk-bounded memory.

        Serving is additionally **watermarked**: the session remembers
        the ``store_version`` it last answered at (per store ``uid``)
        together with that answer, and a later call over an appended
        store re-evaluates only chunks at or past the previously closed
        prefix — closed chunks are immutable, and the session's adapted
        models are unchanged (checked via per-subspace model versions),
        so the merged result is bit-identical to a full rescan.  Any
        re-adaptation invalidates the watermark.  :attr:`last_store_scan`
        reports the accounting of the most recent call.
        """
        from ..store.scan import session_chunk_keep

        self._require_predictable()
        for subsession in self._subsessions.values():
            if subsession.adapted is None:
                raise RuntimeError(
                    "labels not yet submitted for subspace {}".format(
                        subsession.state.subspace))
        uid = getattr(store, "uid", None)
        models = tuple(ss.model_version
                       for ss in self._subsessions.values())
        mark = self._store_marks.get(uid) if uid is not None else None
        valid = (
            mark is not None and mark["models"] == models
            and store.store_version >= mark["version"]
            and store.n_chunks >= mark["closed"]
            and (mark["closed"] == 0
                 or store.zone_maps.digests[mark["closed"] - 1]
                 == mark["tail_digest"]))
        if valid and store.store_version == mark["version"] \
                and store.n_rows == mark["n_rows"]:
            self.last_store_scan = {
                "chunks": int(store.n_chunks),
                "chunks_watermarked": int(store.n_chunks),
                "chunks_scanned": 0, "chunks_pruned": 0,
            }
            return mark["result"].astype(np.int64)
        start_chunk, prefix_rows = (mark["closed"], mark["closed_rows"]) \
            if valid else (0, 0)
        keep = session_chunk_keep(store, self._subsessions)
        result = np.zeros(store.n_rows, dtype=np.int64)
        if prefix_rows:
            result[:prefix_rows] = mark["result"][:prefix_rows]
        scanned = 0
        for ci in np.flatnonzero(keep):
            if ci < start_chunk:
                continue
            block = store.chunk(ci)
            out = np.ones(len(block), dtype=np.int64)
            for subspace, subsession in self._subsessions.items():
                if not out.any():
                    break
                out &= subsession.predict(block[:, list(subspace.columns)])
            start = int(store.offsets[ci])
            result[start:start + len(block)] = out
            scanned += 1
        self.last_store_scan = {
            "chunks": int(store.n_chunks),
            "chunks_watermarked": int(start_chunk),
            "chunks_scanned": scanned,
            "chunks_pruned": int(store.n_chunks - start_chunk - scanned),
        }
        if uid is not None:
            closed = store.closed_chunks
            self._store_marks[uid] = {
                "version": int(store.store_version),
                "n_rows": int(store.n_rows),
                "closed": int(closed),
                "closed_rows": int(store.offsets[closed]),
                "tail_digest": store.zone_maps.digests[closed - 1]
                if closed else None,
                "models": models,
                "result": result.astype(np.int8),
            }
        return result
