"""Few-shot prediction optimizer (paper Section VII-B).

With only a handful of labels, a classifier makes two systematic error
types, each fixed by a geometric side-structure built from the positively
labelled cluster centers:

* **false positives** — far from every labelled tuple the classifier's
  output is essentially random.  The *outer-subregion* is a generous union
  of convex hulls around each positive anchor (its ``n_sup`` nearest C_u
  centers); predictions outside it are demoted to negative.
* **false negatives** — small spurious "holes" inside the true region.  The
  *inner-subregion* uses a conservative expansion (``n_sub`` << ``n_sup``);
  predictions inside it are promoted to positive.

The optimizer layers strictly on top of a meta-learner's prediction
(Meta* = Meta + optimizer) and cannot be used alone.
"""

from __future__ import annotations

import numpy as np

from ..geometry.convex_hull import Hull
from ..geometry.regions import UnionRegion

__all__ = ["FewShotOptimizer"]


class FewShotOptimizer:
    """Builds outer/inner subregions and polishes few-shot predictions.

    Parameters
    ----------
    summary:
        The meta-subspace :class:`~repro.core.meta_task.ClusterSummary`
        (provides C_s, C_u and the proximity matrix P_s).
    n_sup_ratio:
        Outer expansion as a fraction of ku (paper: 20-40%).
    n_sub_ratio:
        Inner (conservative) expansion as a fraction of ku (paper: 5-15%).
    """

    def __init__(self, summary, n_sup_ratio=0.3, n_sub_ratio=0.1):
        if not 0.0 < n_sub_ratio <= n_sup_ratio <= 1.0:
            raise ValueError(
                "need 0 < n_sub_ratio <= n_sup_ratio <= 1, got {} / {}"
                .format(n_sub_ratio, n_sup_ratio))
        self.summary = summary
        self.n_sup = max(2, int(round(n_sup_ratio * summary.ku)))
        self.n_sub = max(2, int(round(n_sub_ratio * summary.ku)))
        self.outer_region = None
        self.inner_region = None

    # ------------------------------------------------------------------
    def _expanded_region(self, positive_center_indices, n_neighbours):
        """Union of hulls over each anchor's n nearest C_u centers."""
        hulls = []
        for s_idx in positive_center_indices:
            order = np.argsort(self.summary.proximity_s[s_idx])
            members = self.summary.centers_u[order[:n_neighbours]]
            # Include the anchor itself so the hull always covers it.
            pts = np.vstack([self.summary.centers_s[s_idx][None, :], members])
            hulls.append(Hull(pts))
        return UnionRegion(hulls) if hulls else None

    def fit(self, support_labels_on_centers):
        """Build both subregions from the C_s center labels.

        Parameters
        ----------
        support_labels_on_centers:
            0/1 labels of the ks initial centers (the user's labelling of
            the initial tuples, restricted to the C_s part).
        """
        labels = np.asarray(support_labels_on_centers).ravel()
        if labels.size != self.summary.ks:
            raise ValueError("expected {} center labels, got {}".format(
                self.summary.ks, labels.size))
        anchors = np.flatnonzero(labels == 1)
        self.outer_region = self._expanded_region(anchors, self.n_sup)
        self.inner_region = self._expanded_region(anchors, self.n_sub)
        return self

    # ------------------------------------------------------------------
    def refine(self, points, predictions):
        """Apply the FP then FN corrections to raw 0/1 predictions.

        ``points`` are raw subspace tuples (n x d); ``predictions`` the
        classifier's 0/1 output for them.
        """
        predictions = np.asarray(predictions).astype(np.int64).copy()
        points = np.atleast_2d(np.asarray(points, dtype=np.float64))
        if len(points) != len(predictions):
            raise ValueError("points/predictions length mismatch")
        if self.outer_region is None and self.inner_region is None:
            return predictions
        if self.outer_region is not None:
            # FP fix: a positive prediction outside the outer-subregion is
            # beyond any plausible extension of the labelled interest.
            outside = ~self.outer_region.contains(points)
            predictions[outside & (predictions == 1)] = 0
        if self.inner_region is not None:
            # FN fix: points within the conservative inner-subregion are
            # inside the real UIS.
            inside = self.inner_region.contains(points)
            predictions[inside & (predictions == 0)] = 1
        return predictions
