"""Few-shot prediction optimizer (paper Section VII-B).

With only a handful of labels, a classifier makes two systematic error
types, each fixed by a geometric side-structure built from the positively
labelled cluster centers:

* **false positives** — far from every labelled tuple the classifier's
  output is essentially random.  The *outer-subregion* is a generous union
  of convex hulls around each positive anchor (its ``n_sup`` nearest C_u
  centers); predictions outside it are demoted to negative.
* **false negatives** — small spurious "holes" inside the true region.  The
  *inner-subregion* uses a conservative expansion (``n_sub`` << ``n_sup``);
  predictions inside it are promoted to positive.

The optimizer layers strictly on top of a meta-learner's prediction
(Meta* = Meta + optimizer) and cannot be used alone.
"""

from __future__ import annotations

import numpy as np

from ..geometry.convex_hull import HalfspaceSystem, Hull
from ..geometry.engine import PackedHulls, union_masks
from ..geometry.regions import UnionRegion

__all__ = ["FewShotOptimizer", "HullRegistry"]


class HullRegistry:
    """Identity-dedup table of :class:`Hull` objects for checkpointing.

    Optimizers built through :meth:`FewShotOptimizer.fit_batch` *share*
    hull objects, and :meth:`FewShotOptimizer.refine_batch` deduplicates
    membership tests by hull identity.  Serializing each optimizer on its
    own would lose that sharing (and re-inflate both disk size and the
    restored serving cost), so checkpoints route every hull through one
    registry: each distinct hull is stored once and every region refers
    to it by index.  :meth:`restore` rebuilds the shared objects, so a
    restored :class:`~repro.serve.SessionManager` keeps the O(anchors)
    dedup profile of the original.

    The checkpointed form includes each hull's **packed halfspace
    lowering** alongside its point set, so restores rebuild hulls via
    :meth:`~repro.geometry.convex_hull.Hull.from_halfspaces` — no SVD or
    Qhull run, and the restored facet rows (hence every membership mask)
    are bit-identical by construction.
    """

    def __init__(self, hulls=None):
        self.hulls = list(hulls or [])
        self._index = {id(h): i for i, h in enumerate(self.hulls)}

    def add(self, hull):
        """Intern ``hull`` and return its registry index."""
        idx = self._index.get(id(hull))
        if idx is None:
            idx = len(self.hulls)
            self._index[id(hull)] = idx
            self.hulls.append(hull)
        return idx

    def pack(self):
        """A :class:`~repro.geometry.engine.PackedHulls` over every
        registered hull.

        Stateless — packing precompiled lowerings is cheap.  Only
        meaningful for a *same-dimension* registry (e.g. one scoped to
        a single subspace's sessions); a checkpoint registry spanning
        subspaces of different dimensionality raises ``ValueError``,
        since a query point set has one width.
        """
        return PackedHulls(self.hulls)

    def membership(self, points):
        """``(n, n_hulls)`` membership of ``points`` in every registered
        hull — all points x all hulls in one engine call.  Same-dim
        registries only; see :meth:`pack`."""
        return self.pack().membership(points)

    def state(self):
        """Checkpointable per-hull state, in registry order.

        Each entry carries the point set plus the packed facet form
        (``A``, ``b``, ``tol_scale``, ``tol_fixed``).
        """
        out = []
        for hull in self.hulls:
            system = hull.halfspaces()
            out.append({
                "points": hull.points.copy(),
                "A": system.A.copy(),
                "b": system.b.copy(),
                "tol_scale": system.tol_scale.copy(),
                "tol_fixed": system.tol_fixed.copy(),
            })
        return out

    @classmethod
    def restore(cls, entries):
        """Rebuild the shared hull objects from :meth:`state` output.

        New-format entries (dicts with the packed facet arrays) restore
        without recompiling; legacy entries (bare point arrays from
        pre-engine checkpoints) fall back to rebuilding the hull, which
        is deterministic in the point set.
        """
        hulls = []
        for entry in entries:
            if isinstance(entry, dict) and "A" in entry:
                hulls.append(Hull.from_halfspaces(
                    np.asarray(entry["points"], dtype=np.float64),
                    HalfspaceSystem(
                        np.asarray(entry["A"], dtype=np.float64),
                        np.asarray(entry["b"], dtype=np.float64),
                        np.asarray(entry["tol_scale"], dtype=np.float64),
                        np.asarray(entry["tol_fixed"], dtype=np.float64))))
            else:
                points = entry["points"] if isinstance(entry, dict) else entry
                hulls.append(Hull(np.asarray(points, dtype=np.float64)))
        return cls(hulls)


class FewShotOptimizer:
    """Builds outer/inner subregions and polishes few-shot predictions.

    Parameters
    ----------
    summary:
        The meta-subspace :class:`~repro.core.meta_task.ClusterSummary`
        (provides C_s, C_u and the proximity matrix P_s).
    n_sup_ratio:
        Outer expansion as a fraction of ku (paper: 20-40%).
    n_sub_ratio:
        Inner (conservative) expansion as a fraction of ku (paper: 5-15%).
    """

    def __init__(self, summary, n_sup_ratio=0.3, n_sub_ratio=0.1):
        if not 0.0 < n_sub_ratio <= n_sup_ratio <= 1.0:
            raise ValueError(
                "need 0 < n_sub_ratio <= n_sup_ratio <= 1, got {} / {}"
                .format(n_sub_ratio, n_sup_ratio))
        self.summary = summary
        self.n_sup = max(2, int(round(n_sup_ratio * summary.ku)))
        self.n_sub = max(2, int(round(n_sub_ratio * summary.ku)))
        self.outer_region = None
        self.inner_region = None
        self._pack_cache = None   # compiled-geometry reuse for refine()

    # ------------------------------------------------------------------
    def _expanded_region(self, positive_center_indices, n_neighbours,
                         proximity_order=None, hull_cache=None):
        """Union of hulls over each anchor's n nearest C_u centers."""
        hulls = []
        for s_idx in positive_center_indices:
            key = (int(s_idx), int(n_neighbours))
            hull = hull_cache.get(key) if hull_cache is not None else None
            if hull is None:
                order = proximity_order[s_idx] \
                    if proximity_order is not None \
                    else np.argsort(self.summary.proximity_s[s_idx])
                members = self.summary.centers_u[order[:n_neighbours]]
                # Include the anchor itself so the hull always covers it.
                pts = np.vstack([self.summary.centers_s[s_idx][None, :],
                                 members])
                hull = Hull(pts)
                if hull_cache is not None:
                    hull_cache[key] = hull
            hulls.append(hull)
        return UnionRegion(hulls) if hulls else None

    def fit(self, support_labels_on_centers, proximity_order=None,
            hull_cache=None):
        """Build both subregions from the C_s center labels.

        Parameters
        ----------
        support_labels_on_centers:
            0/1 labels of the ks initial centers (the user's labelling of
            the initial tuples, restricted to the C_s part).
        proximity_order:
            Optional precomputed ``argsort(proximity_s, axis=1)``; lets
            batched fitting share one sort across every optimizer built on
            the same cluster summary.
        hull_cache:
            Optional dict memoizing hulls by (anchor index, n_neighbours).
            A hull depends only on the summary geometry — not on which
            session labelled the anchor positive — so concurrent sessions
            over one subspace share hulls instead of rebuilding them.
        """
        labels = np.asarray(support_labels_on_centers).ravel()
        if labels.size != self.summary.ks:
            raise ValueError("expected {} center labels, got {}".format(
                self.summary.ks, labels.size))
        anchors = np.flatnonzero(labels == 1)
        self.outer_region = self._expanded_region(
            anchors, self.n_sup, proximity_order, hull_cache)
        self.inner_region = self._expanded_region(
            anchors, self.n_sub, proximity_order, hull_cache)
        self._pack_cache = None   # regions changed; drop compiled packs
        return self

    @classmethod
    def fit_batch(cls, items):
        """Build many optimizers, sharing geometry across one summary.

        Amortizes the two batch-friendly invariants: the proximity sort
        (one ``argsort`` per summary instead of one per anchor) and the
        anchor hulls (each distinct (anchor, expansion) hull is built
        once and shared by every session that labelled that center
        positive — with K concurrent sessions per subspace this collapses
        O(K * anchors) convex-hull constructions to O(anchors)).

        Parameters
        ----------
        items:
            Iterable of ``(summary, center_bits, n_sup_ratio, n_sub_ratio)``
            tuples — typically one per concurrent serving session.

        Returns
        -------
        List of fitted :class:`FewShotOptimizer`, in input order.
        """
        order_cache, hull_caches = {}, {}
        fitted = []
        for summary, center_bits, n_sup_ratio, n_sub_ratio in items:
            order = order_cache.get(id(summary))
            if order is None:
                order = np.argsort(summary.proximity_s, axis=1)
                order_cache[id(summary)] = order
                hull_caches[id(summary)] = {}
            fitted.append(cls(summary, n_sup_ratio=n_sup_ratio,
                              n_sub_ratio=n_sub_ratio)
                          .fit(center_bits, proximity_order=order,
                               hull_cache=hull_caches[id(summary)]))
        return fitted

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    def state_dict(self, hull_registry=None):
        """Checkpointable state: expansion sizes + region hull indices.

        Parameters
        ----------
        hull_registry:
            Optional shared :class:`HullRegistry`.  When given, hulls are
            interned there (callers snapshotting many optimizers persist
            the registry once and sharing survives the round trip) and
            the returned state holds only indices; when omitted, a
            private registry is used and its hull points are embedded
            under ``"hulls"`` so the state is self-contained.
        """
        registry = hull_registry if hull_registry is not None \
            else HullRegistry()

        def region_state(region):
            if region is None:
                return None
            return [registry.add(hull) for hull in region.hulls]

        state = {
            "n_sup": int(self.n_sup),
            "n_sub": int(self.n_sub),
            "outer": region_state(self.outer_region),
            "inner": region_state(self.inner_region),
        }
        if hull_registry is None:
            state["hulls"] = registry.state()
        return state

    @classmethod
    def from_state_dict(cls, state, summary, hulls=None):
        """Rebuild a fitted optimizer from :meth:`state_dict` output.

        Parameters
        ----------
        state:
            The captured state.
        summary:
            The subspace's :class:`~repro.core.meta_task.ClusterSummary`
            (geometry is *not* serialized with the optimizer — it belongs
            to the offline artifacts the optimizer was built over).
        hulls:
            The restored shared hull list (``HullRegistry.restore(...)
            .hulls``) when the state was captured against a shared
            registry; ``None`` for self-contained states.
        """
        if hulls is None:
            hulls = HullRegistry.restore(state["hulls"]).hulls
        optimizer = cls.__new__(cls)
        optimizer.summary = summary
        optimizer.n_sup = int(state["n_sup"])
        optimizer.n_sub = int(state["n_sub"])
        optimizer._pack_cache = None

        def rebuild(indices):
            if indices is None:
                return None
            return UnionRegion([hulls[int(i)] for i in indices])

        optimizer.outer_region = rebuild(state["outer"])
        optimizer.inner_region = rebuild(state["inner"])
        return optimizer

    # ------------------------------------------------------------------
    @staticmethod
    def refine_batch(optimizers, points, predictions_list, pack_cache=None):
        """Refine many sessions' predictions over one shared point set.

        All (points x hulls x sessions) membership tests run as **one**
        packed-engine call: hulls are deduplicated by identity across
        every optimizer's outer and inner regions (optimizers built via
        :meth:`fit_batch` share hull objects), stacked into a single
        halfspace system, and evaluated in one matmul
        (:func:`~repro.geometry.engine.union_masks`).  Entries whose
        optimizer is None pass through unchanged.  Result i equals
        ``optimizers[i].refine(points, predictions_list[i])``.

        Parameters
        ----------
        pack_cache:
            Optional :class:`~repro.geometry.engine.HullPackCache`; the
            compiled pack for this hull set is then reused across calls
            (the serving layer passes its own, so re-adapted model
            versions never recompile their geometry).
        """
        points = np.atleast_2d(np.asarray(points, dtype=np.float64))
        active = [o for o in optimizers
                  if o is not None and (o.outer_region is not None
                                        or o.inner_region is not None)]
        hull_lists = []
        for optimizer in active:
            for region in (optimizer.outer_region, optimizer.inner_region):
                hull_lists.append([] if region is None else region.hulls)
        masks = iter(union_masks(hull_lists, points, pack_cache=pack_cache))

        results = []
        for optimizer, predictions in zip(optimizers, predictions_list):
            predictions = np.asarray(predictions).astype(np.int64).copy()
            if optimizer is None or (optimizer.outer_region is None
                                     and optimizer.inner_region is None):
                results.append(predictions)
                continue
            if len(points) != len(predictions):
                raise ValueError("points/predictions length mismatch")
            outer_mask, inner_mask = next(masks), next(masks)
            if optimizer.outer_region is not None:
                # FP fix: a positive prediction outside the
                # outer-subregion is beyond any plausible extension of
                # the labelled interest.
                predictions[~outer_mask & (predictions == 1)] = 0
            if optimizer.inner_region is not None:
                # FN fix: points within the conservative inner-subregion
                # are inside the real UIS.
                predictions[inner_mask & (predictions == 0)] = 1
            results.append(predictions)
        return results

    def refine(self, points, predictions):
        """Apply the FP then FN corrections to raw 0/1 predictions.

        ``points`` are raw subspace tuples (n x d); ``predictions`` the
        classifier's 0/1 output for them.  Outer and inner regions are
        tested in one packed-engine call (the single-session case of
        :meth:`refine_batch`), so the sequential path and the batched
        serving path execute the identical kernel.
        """
        if len(np.atleast_2d(np.asarray(points))) != \
                len(np.asarray(predictions).ravel()):
            raise ValueError("points/predictions length mismatch")
        if self._pack_cache is None:
            # Sized for the one hull set this optimizer's regions form.
            from ..geometry.engine import HullPackCache
            self._pack_cache = HullPackCache(capacity=2)
        return self.refine_batch([self], points, [predictions],
                                 pack_cache=self._pack_cache)[0]
