"""Memory-augmented meta-optimization (paper Section VI-B).

Plain MAML hands every task the *same* initialization; LTE keeps two
memories (inspired by MAMO, KDD'20) so the initialization is *task-wise*:

* the **UIS-feature memory** — a pattern matrix ``M_vR`` (m x ku) holding m
  implicit UIS modes, and a parameter matrix ``M_R`` (m x |theta_R|).
  For a task with feature vector ``v_R``, the attention
  ``a_R = softmax(cos(v_R, M_vR))`` (Eq. 7) retrieves a bias
  ``omega_R = a_R^T M_R`` (Eq. 8) that shifts the UIS-block initialization:
  ``theta_R <- phi_R - sigma * omega_R`` (Eq. 6);
* the **embedding-conversion memory** ``M_CP`` (m x Ne x 3Ne), from which
  ``M_cp = a_R^T M_CP`` (Eq. 10) converts the concatenated embedding before
  classification (Eq. 9).

Both memories are EMA-updated in the global phase (Eqs. 14-16).
"""

from __future__ import annotations

from collections import OrderedDict

import numpy as np

__all__ = ["MetaMemories", "LRUStore", "softmax_cosine_attention"]


def softmax_cosine_attention(vector, matrix):
    """softmax over cosine similarities between ``vector`` and matrix rows."""
    vector = np.asarray(vector, dtype=np.float64).ravel()
    matrix = np.atleast_2d(np.asarray(matrix, dtype=np.float64))
    v_norm = np.linalg.norm(vector) + 1e-12
    m_norm = np.linalg.norm(matrix, axis=1) + 1e-12
    sims = matrix @ vector / (v_norm * m_norm)
    shifted = sims - sims.max()
    exp = np.exp(shifted)
    return exp / exp.sum()


class LRUStore:
    """Bounded key-value store with least-recently-used eviction.

    The fixed-size EMA memories above hold *learned* state; this is their
    unbounded-key cousin for *derived* artifacts — the serving layer keeps
    per-(session, subspace, model-version) prediction vectors in one so
    repeated predictions over the same rows cost a dictionary lookup.

    Aliasing contract: the store holds *references* — :meth:`put` does
    not copy the value and :meth:`get` returns the stored object itself.
    A caller that mutates a retrieved value mutates the store.  Layers
    that hand stored values across a trust boundary must either copy on
    the way out or store immutable values; the serving layer's
    :class:`~repro.serve.cache.PredictionCache` does the latter (it
    freezes arrays on ``put``), and checkpoint restore always deep-copies
    so a restored store never aliases the snapshot it came from.
    """

    def __init__(self, capacity=1024):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = int(capacity)
        self._data = OrderedDict()

    def __len__(self):
        return len(self._data)

    def __contains__(self, key):
        return key in self._data

    def get(self, key, default=None):
        """Fetch and mark most-recently-used."""
        if key not in self._data:
            return default
        self._data.move_to_end(key)
        return self._data[key]

    def put(self, key, value):
        """Insert/overwrite; evicts the least-recently-used past capacity."""
        if key in self._data:
            self._data.move_to_end(key)
        self._data[key] = value
        while len(self._data) > self.capacity:
            self._data.popitem(last=False)

    def items(self):
        """``(key, value)`` pairs, least- to most-recently used.

        Pure iteration: recency is *not* updated (unlike :meth:`get`), so
        a snapshot taken through this method leaves the eviction order
        untouched and replaying ``put`` in yielded order reproduces it.
        """
        return iter(list(self._data.items()))

    def evict(self, predicate):
        """Drop every entry whose key satisfies ``predicate``; returns count."""
        doomed = [k for k in self._data if predicate(k)]
        for key in doomed:
            del self._data[key]
        return len(doomed)

    def clear(self):
        self._data.clear()


class MetaMemories:
    """The two memories plus their retrieval and EMA update rules.

    Parameters
    ----------
    m:
        Number of implicit UIS modes/patterns.
    ku:
        UIS feature vector length.
    theta_r_size:
        Flattened size of the UIS embedding block parameters.
    embed_size:
        Ne; the conversion matrices are (Ne x 2Ne).
    """

    def __init__(self, m, ku, theta_r_size, embed_size, seed=None):
        if m < 1:
            raise ValueError("m must be >= 1")
        rng = np.random.default_rng(seed)
        self.m = int(m)
        self.ku = int(ku)
        self.theta_r_size = int(theta_r_size)
        self.embed_size = int(embed_size)
        self.M_vR = rng.normal(0.0, 0.1, size=(m, ku))
        self.M_R = rng.normal(0.0, 0.01, size=(m, theta_r_size))
        # Conversion memory: initialize every mode near the "averaging"
        # projection [I | I | I] / 3 so the converted embedding starts as
        # the mean of emb_R, emb_tau and their interaction — a trainable
        # but non-destructive start.  (The classifier input is 3Ne wide;
        # see the implementation note in meta_learner.py.)
        base = np.hstack([np.eye(embed_size)] * 3) / 3.0
        noise = rng.normal(0.0, 0.01, size=(m, embed_size, 3 * embed_size))
        self.M_CP = base[None, :, :] + noise

    # ------------------------------------------------------------------
    # Retrieval
    # ------------------------------------------------------------------
    def attention(self, feature_vector):
        """a_R in R^m (Eq. 7)."""
        return softmax_cosine_attention(feature_vector, self.M_vR)

    def omega_r(self, attention):
        """Task-wise bias for theta_R (Eq. 8)."""
        return np.asarray(attention) @ self.M_R

    def conversion(self, attention):
        """Task-wise conversion matrix M_cp (Eq. 10), shape (Ne, 3Ne)."""
        return np.einsum("m,mij->ij", np.asarray(attention), self.M_CP)

    # ------------------------------------------------------------------
    # Global EMA updates
    # ------------------------------------------------------------------
    def update_feature_patterns(self, attention, feature_vector, eta):
        """Eq. 14: M_vR <- eta * (a_R x v_R^T) + (1 - eta) * M_vR."""
        self._check_rate(eta, "eta")
        outer = np.outer(attention, np.asarray(feature_vector).ravel())
        self.M_vR = eta * outer + (1.0 - eta) * self.M_vR

    def update_parameter_memory(self, attention, theta_r_grad, beta):
        """Eq. 15: attentive EMA of the theta_R gradient into M_R."""
        self._check_rate(beta, "beta")
        grad = np.asarray(theta_r_grad, dtype=np.float64).ravel()
        if grad.size != self.theta_r_size:
            raise ValueError("theta_R grad size {} != {}".format(
                grad.size, self.theta_r_size))
        outer = np.outer(attention, grad)
        self.M_R = beta * outer + (1.0 - beta) * self.M_R

    def update_conversion_memory(self, attention, conversion_local, gamma):
        """Eq. 16: M_CP <- gamma * (a_R (x) M_cp) + (1 - gamma) * M_CP."""
        self._check_rate(gamma, "gamma")
        local = np.asarray(conversion_local, dtype=np.float64)
        expected = (self.embed_size, 3 * self.embed_size)
        if local.shape != expected:
            raise ValueError("conversion shape {} != {}".format(
                local.shape, expected))
        tensor = np.asarray(attention)[:, None, None] * local[None, :, :]
        self.M_CP = gamma * tensor + (1.0 - gamma) * self.M_CP

    @staticmethod
    def _check_rate(value, name):
        if not 0.0 <= value <= 1.0:
            raise ValueError("{} must be in [0, 1], got {}".format(name, value))

    # ------------------------------------------------------------------
    def state_dict(self):
        return {"M_vR": self.M_vR.copy(), "M_R": self.M_R.copy(),
                "M_CP": self.M_CP.copy()}

    def load_state_dict(self, state):
        self.M_vR = np.asarray(state["M_vR"], dtype=np.float64).copy()
        self.M_R = np.asarray(state["M_R"], dtype=np.float64).copy()
        self.M_CP = np.asarray(state["M_CP"], dtype=np.float64).copy()
