"""LTE core: the paper's primary contribution.

Meta-task generation (Section V), the UIS classifier and memory-augmented
meta-training (Section VI), tabular preprocessing and the few-shot FP/FN
optimizer (Section VII), and the public offline/online framework
(Section III-B).
"""

from .framework import (LTE, AdaptRequest, ExplorationSession, LTEConfig,
                        SubspaceState, VARIANTS, build_adapt_request,
                        build_readapt_request, run_adapt_request)
from .memory import LRUStore, MetaMemories, softmax_cosine_attention
from .meta_learner import UISClassifier
from .meta_task import (ClusterSummary, MetaTask, MetaTaskGenerator,
                        build_cluster_summary, expand_bits,
                        uis_feature_vector)
from .meta_training import AdaptedClassifier, MetaHyperParams, MetaTrainer
from .optimizer import FewShotOptimizer, HullRegistry
from .preprocessing import (AttributeEncoder, GMMEncoder, JKCEncoder,
                            MinMaxEncoder, TabularPreprocessor)
from .uis import PAPER_MODES, UISGenerator, UISMode

__all__ = [
    "LTE", "LTEConfig", "ExplorationSession", "SubspaceState", "VARIANTS",
    "AdaptRequest", "build_adapt_request", "build_readapt_request",
    "run_adapt_request",
    "UISClassifier", "MetaMemories", "LRUStore", "softmax_cosine_attention",
    "MetaTask", "MetaTaskGenerator", "ClusterSummary",
    "build_cluster_summary", "uis_feature_vector", "expand_bits",
    "MetaTrainer", "MetaHyperParams", "AdaptedClassifier",
    "FewShotOptimizer", "HullRegistry",
    "TabularPreprocessor", "AttributeEncoder", "GMMEncoder", "JKCEncoder",
    "MinMaxEncoder",
    "UISMode", "UISGenerator", "PAPER_MODES",
]
