"""The basic UIS classifier (paper Section VI-A).

Three building blocks, each a stack of fully connected layers:

* **UIS-feature embedding** ``f_thetaR``: embeds the ku-bit UIS feature
  vector ``v_R`` (which C_u cluster centers the user finds interesting,
  after l-NN expansion) into R^Ne;
* **data-tuple embedding** ``f_thetaTau``: embeds a preprocessed tuple
  representation vector into R^Ne;
* **classification block** ``f_thetaClf``: maps the concatenation
  ``[emb_R, emb_tau]`` to an interestingness logit (Eq. 5) — optionally
  through a task-wise conversion matrix ``M_cp`` retrieved from the
  embedding-conversion memory (Eq. 9).

Implementation note: the concatenation is augmented with the elementwise
interaction ``emb_R * emb_tau`` (so the block input is 3Ne wide and
``M_cp`` is Ne x 3Ne).  Region membership is inherently a *bilinear*
match between where the tuple lies and where ``v_R`` says the interest is;
the explicit product term lets a few meta-gradient steps discover that
alignment, which pure concatenation only reaches after far longer
training.  This is a documented deviation from the paper's Eq. 5/9 (see
DESIGN.md section 6) and changes no other interface.
"""

from __future__ import annotations

import numpy as np

from .. import nn
from ..nn.tensor import Parameter, Tensor

__all__ = ["UISClassifier"]


class UISClassifier(nn.Module):
    """NN classifier deciding tuple membership in a user-interest subregion.

    Parameters
    ----------
    ku:
        Length of the UIS feature vector ``v_R``.
    input_width:
        Width of preprocessed tuple representation vectors ``v_tau``.
    embed_size:
        Ne, the shared embedding width of both blocks.
    hidden_size:
        Hidden width of the classification block.
    use_conversion:
        When True the classifier expects a task-wise (Ne x 2Ne) conversion
        matrix at forward time (the memory-augmented variants Meta/Meta*);
        when False (Basic) the classification block consumes the raw 2Ne
        concatenation.
    """

    def __init__(self, ku, input_width, embed_size=100, hidden_size=64,
                 use_conversion=False, seed=None):
        super().__init__()
        rng = np.random.default_rng(seed)
        self.config = {
            "ku": int(ku),
            "input_width": int(input_width),
            "embed_size": int(embed_size),
            "hidden_size": int(hidden_size),
            "use_conversion": bool(use_conversion),
        }
        self.ku = int(ku)
        self.input_width = int(input_width)
        self.embed_size = int(embed_size)
        self.use_conversion = bool(use_conversion)
        self.uis_block = nn.MLP([ku, embed_size], rng=rng,
                                final_activation=nn.ReLU())
        self.tuple_block = nn.MLP([input_width, embed_size], rng=rng,
                                  final_activation=nn.ReLU())
        clf_in = embed_size if use_conversion else 3 * embed_size
        self.clf_block = nn.MLP([clf_in, hidden_size, 1], rng=rng)

    # ------------------------------------------------------------------
    @classmethod
    def from_config(cls, config, seed=None):
        return cls(seed=seed, **config)

    def clone(self, seed=None):
        """Architecture copy with deep-copied parameters."""
        twin = UISClassifier.from_config(self.config, seed=seed)
        twin.load_state_dict(self.state_dict())
        return twin

    # ------------------------------------------------------------------
    # theta_R access (the UIS-feature memory adjusts exactly this block)
    # ------------------------------------------------------------------
    @property
    def theta_r_size(self):
        """Number of scalars in theta_R = parameters of the UIS block."""
        return self.uis_block.num_parameters()

    def get_theta_r_flat(self):
        return self.uis_block.flat_parameters()

    def set_theta_r_flat(self, vector):
        self.uis_block.load_flat_parameters(vector)

    # ------------------------------------------------------------------
    def forward(self, feature_vector, tuple_vectors, conversion=None):
        """Interestingness logits for a batch of tuples.

        Parameters
        ----------
        feature_vector:
            The UIS feature vector ``v_R`` (length ku) for the current task.
        tuple_vectors:
            (n x input_width) preprocessed tuple representations.
        conversion:
            Optional (embed_size x 2*embed_size) task-wise conversion
            matrix ``M_cp`` (required iff ``use_conversion``).

        Returns
        -------
        Tensor of shape (n,) with raw logits.
        """
        if self.use_conversion and conversion is None:
            raise ValueError("use_conversion=True requires a conversion matrix")
        if not self.use_conversion and conversion is not None:
            raise ValueError("conversion given but use_conversion=False")
        v_r = Tensor._wrap(feature_vector)
        x = Tensor._wrap(tuple_vectors)
        if x.ndim == 1:
            x = x.reshape(1, -1)
        n = x.shape[0]

        emb_r = self.uis_block(v_r.reshape(1, self.ku))      # (1, Ne)
        emb_x = self.tuple_block(x)                          # (n, Ne)
        # Differentiable broadcast of emb_R to every row.
        tiler = Tensor(np.ones((n, 1)))
        emb_r_rows = tiler @ emb_r                            # (n, Ne)
        interaction = emb_r_rows * emb_x                      # (n, Ne)
        combined = Tensor.concat([emb_r_rows, emb_x, interaction],
                                 axis=1)                      # (n, 3Ne)
        if conversion is not None:
            conversion = Tensor._wrap(conversion)
            combined = combined @ conversion.T                # (n, Ne)
        logits = self.clf_block(combined)                     # (n, 1)
        return logits.reshape(-1)

    # ------------------------------------------------------------------
    def predict_proba(self, feature_vector, tuple_vectors, conversion=None):
        """Interest probabilities in [0, 1] (no graph construction)."""
        with nn.no_grad():
            logits = self.forward(feature_vector, tuple_vectors,
                                  conversion=conversion)
        return logits.sigmoid().numpy()

    def predict(self, feature_vector, tuple_vectors, conversion=None,
                threshold=0.5):
        """0/1 interestingness labels."""
        proba = self.predict_proba(feature_vector, tuple_vectors,
                                   conversion=conversion)
        return (proba >= threshold).astype(np.int64)
