"""Simulated user-interest-subregion (UIS) formulation (Section V-C).

A UIS is generated as the union of ``alpha`` convex hulls; each hull
circumscribes the ``psi`` nearest cluster-center neighbours of a randomly
chosen seed center from C_u.  By convex decomposition, unions of convex
parts cover concave and disconnected regions, so meta-tasks (and the test
workloads built from the same machinery) span arbitrary UIS shapes.
Existing works' shapes are special cases — e.g. DSM's single connected
convex region is ``alpha = 1``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..geometry.convex_hull import Hull
from ..geometry.engine import union_masks
from ..geometry.regions import UnionRegion

__all__ = ["UISMode", "PAPER_MODES", "UISGenerator"]


@dataclass(frozen=True)
class UISMode:
    """A UIS complexity mode: number of parts and part size (Table III)."""

    alpha: int
    psi: int

    def __post_init__(self):
        if self.alpha < 1:
            raise ValueError("alpha must be >= 1")
        if self.psi < 2:
            raise ValueError("psi must be >= 2")


#: The seven test-benchmark modes of Table III.
PAPER_MODES = {
    "M1": UISMode(alpha=4, psi=20),
    "M2": UISMode(alpha=4, psi=15),
    "M3": UISMode(alpha=4, psi=10),
    "M4": UISMode(alpha=4, psi=5),
    "M5": UISMode(alpha=1, psi=20),
    "M6": UISMode(alpha=2, psi=20),
    "M7": UISMode(alpha=3, psi=20),
}


class UISGenerator:
    """Draws random simulated UISs over a fixed cluster-center summary.

    Parameters
    ----------
    centers:
        C_u, the (ku x d) cluster centers summarizing the meta-subspace.
    proximity:
        P_u, the (ku x ku) center-to-center distance matrix (precomputed in
        the clustering step for O(ku) neighbour retrieval).
    mode:
        The :class:`UISMode` (alpha, psi) controlling region complexity.
    seed:
        RNG seed for reproducible workload generation.
    """

    def __init__(self, centers, proximity, mode, seed=None):
        self.centers = np.atleast_2d(np.asarray(centers, dtype=np.float64))
        self.proximity = np.asarray(proximity, dtype=np.float64)
        ku = len(self.centers)
        if self.proximity.shape != (ku, ku):
            raise ValueError("proximity must be ku x ku")
        if mode.psi > ku:
            raise ValueError("psi={} exceeds number of centers {}".format(
                mode.psi, ku))
        self.mode = mode
        self.rng = np.random.default_rng(seed)

    # ------------------------------------------------------------------
    def _draw_region(self):
        """Draw one UIS region (advances the RNG; no membership test)."""
        hulls = []
        for _ in range(self.mode.alpha):
            seed_idx = int(self.rng.integers(len(self.centers)))
            # psi nearest neighbours of the seed center (including itself),
            # via the precomputed proximity row.
            order = np.argsort(self.proximity[seed_idx])
            neighbour_idx = order[:self.mode.psi]
            hulls.append(Hull(self.centers[neighbour_idx]))
        return UnionRegion(hulls)

    def generate(self):
        """One simulated UIS: a :class:`UnionRegion` of alpha convex hulls.

        Returns ``(region, member_mask)`` where ``member_mask`` is the
        boolean ku-vector of which C_u centers fall inside the region
        (used to seed UIS feature vectors without re-testing containment).
        """
        region = self._draw_region()
        member_mask = region.contains(self.centers)
        return region, member_mask

    def generate_batch(self, count):
        """Generate ``count`` independent UISs.

        Draws exactly the random stream :meth:`generate` would, then
        computes every region's center-membership mask with **one**
        packed-engine call over all ``count * alpha`` hulls
        (:func:`~repro.geometry.engine.union_masks`) instead of one
        region at a time — the meta-task generation hot loop.
        """
        regions = [self._draw_region() for _ in range(count)]
        masks = union_masks([r.hulls for r in regions], self.centers)
        return list(zip(regions, masks))
