"""Meta-task generation (paper Section V, Algorithm 1).

A meta-task ``t = (R_t, S_sp, S_qs)`` simulates one exploration episode:
``R_t`` is a synthetic UIS, the support set plays the role of the tuples a
user would label, the query set evaluates the locally adapted learner.
Generation is fully unsupervised:

1. *Clustering step* — three independent k-means rounds (k = ku, ks, kq) on
   a ~1% sample give center sets C_u, C_s, C_q and proximity matrices
   P_u (ku x ku, for UIS construction) and P_s (ks x ku, for feature-vector
   expansion and the FP/FN optimizer).
2. *Task generation step* — a UIS is a random union of convex hulls over
   C_u (``uis.UISGenerator``); the support set is the C_s centers plus
   ``delta`` random tuples, labelled by region membership; the query set is
   built likewise from C_q.

The C_s centers double as the *initial tuples* shown to a real user at the
start of online exploration, so offline simulation and online adaptation
see identically constructed inputs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..data.sampling import random_sample, ratio_sample
from ..ml.kmeans import KMeans, pairwise_distances
from .uis import UISGenerator, UISMode

__all__ = ["ClusterSummary", "MetaTask", "MetaTaskGenerator",
           "build_cluster_summary", "uis_feature_vector", "expand_bits"]


@dataclass
class ClusterSummary:
    """Clustering-step output for one meta-subspace (Section V-B)."""

    centers_u: np.ndarray          # (ku, d)
    centers_s: np.ndarray          # (ks, d)
    centers_q: np.ndarray          # (kq, d)
    proximity_u: np.ndarray        # (ku, ku) distances within C_u
    proximity_s: np.ndarray        # (ks, ku) distances C_s -> C_u

    @property
    def ku(self):
        return len(self.centers_u)

    @property
    def ks(self):
        return len(self.centers_s)

    @property
    def kq(self):
        return len(self.centers_q)


def build_cluster_summary(data, ku, ks, kq, sample_ratio=0.01, seed=None):
    """Run the clustering step on a sampled subset of ``data``.

    ``data`` is the (n x d) projection of the database onto one
    meta-subspace; sampling keeps the three k-means rounds cheap.
    """
    data = np.atleast_2d(np.asarray(data, dtype=np.float64))
    sample = ratio_sample(data, sample_ratio, seed=seed,
                          min_rows=max(10 * max(ku, ks, kq), 100)) \
        if len(data) > 100 else data
    base = seed if seed is not None else 0
    centers_u = KMeans(min(ku, len(sample)), seed=base).fit(sample).centers_
    centers_s = KMeans(min(ks, len(sample)), seed=base + 1).fit(sample).centers_
    centers_q = KMeans(min(kq, len(sample)), seed=base + 2).fit(sample).centers_
    return ClusterSummary(
        centers_u=centers_u,
        centers_s=centers_s,
        centers_q=centers_q,
        proximity_u=pairwise_distances(centers_u, centers_u),
        proximity_s=pairwise_distances(centers_s, centers_u),
    )


def expand_bits(bits_s, proximity_s, ku, expansion):
    """Heuristically expand a ks-bit vector over C_s to a ku-bit vector.

    For every set bit (an "interesting" C_s center) the ``expansion``
    nearest C_u centers (by the precomputed P_s row) are switched on in the
    output (Section VI-A).  The result is the dense UIS feature vector
    ``v_R`` consumed by the UIS-feature embedding block.
    """
    bits_s = np.asarray(bits_s).astype(bool).ravel()
    if proximity_s.shape != (bits_s.size, ku):
        raise ValueError("proximity_s shape {} inconsistent with ks={} ku={}"
                         .format(proximity_s.shape, bits_s.size, ku))
    expansion = max(1, min(int(expansion), ku))
    vector = np.zeros(ku)
    for s_idx in np.flatnonzero(bits_s):
        neighbours = np.argsort(proximity_s[s_idx])[:expansion]
        vector[neighbours] = 1.0
    return vector


def uis_feature_vector(support_labels_on_centers, summary, expansion=None):
    """Build v_R from the labels of the C_s centers.

    ``expansion`` defaults to the paper's l = 0.1 * ku.
    """
    if expansion is None:
        expansion = max(1, int(round(0.1 * summary.ku)))
    return expand_bits(support_labels_on_centers, summary.proximity_s,
                       summary.ku, expansion)


@dataclass
class MetaTask:
    """One generated meta-task (Definition 2)."""

    region: object                      # the simulated UIS (UnionRegion)
    support_x: np.ndarray               # (ks + delta, d) raw tuples
    support_y: np.ndarray               # 0/1 labels
    query_x: np.ndarray                 # (kq + delta, d)
    query_y: np.ndarray
    feature_vector: np.ndarray          # v_R, length ku
    center_member_mask: np.ndarray = field(default=None)

    @property
    def positive_rate(self):
        """Fraction of interesting tuples in the support set."""
        return float(self.support_y.mean()) if self.support_y.size else 0.0


class MetaTaskGenerator:
    """Algorithm 1: generate a meta-task set for one meta-subspace.

    Parameters
    ----------
    data:
        (n x d) database projection onto the meta-subspace.
    ku, ks, kq:
        Cluster counts of the three rounds.  ``ks + delta`` equals the
        exploration label budget B the trained meta-learner targets.
    mode:
        The (alpha, psi) :class:`~repro.core.uis.UISMode` used for
        simulated UISs.
    delta:
        Number of extra random tuples added to each support/query set.
    """

    def __init__(self, data, ku=100, ks=25, kq=200, mode=None, delta=5,
                 sample_ratio=0.01, seed=None):
        self.data = np.atleast_2d(np.asarray(data, dtype=np.float64))
        self.mode = mode or UISMode(alpha=4, psi=20)
        self.delta = int(delta)
        self.seed = seed
        self.summary = build_cluster_summary(
            self.data, ku=ku, ks=ks, kq=kq, sample_ratio=sample_ratio,
            seed=seed)
        self._uis_generator = UISGenerator(
            self.summary.centers_u, self.summary.proximity_u, self.mode,
            seed=seed)
        self._rng = np.random.default_rng(seed)

    # ------------------------------------------------------------------
    def _labelled_set(self, centers, region):
        """Centers + delta random tuples, labelled by region membership."""
        extras = random_sample(self.data, self.delta,
                               seed=int(self._rng.integers(2 ** 31)))
        tuples = np.vstack([centers, extras]) if self.delta else centers
        labels = region.label(tuples)
        return tuples, labels

    def generate_task(self):
        """Generate a single :class:`MetaTask`."""
        region, member_mask = self._uis_generator.generate()
        return self._task_for(region, member_mask)

    def _task_for(self, region, member_mask):
        support_x, support_y = self._labelled_set(self.summary.centers_s,
                                                  region)
        query_x, query_y = self._labelled_set(self.summary.centers_q, region)
        # v_R derives from the labels on the C_s centers only (the bits a
        # user's initial labelling would produce).
        bits_s = support_y[:self.summary.ks].astype(bool)
        feature = uis_feature_vector(bits_s, self.summary)
        return MetaTask(region=region,
                        support_x=support_x, support_y=support_y,
                        query_x=query_x, query_y=query_y,
                        feature_vector=feature,
                        center_member_mask=member_mask)

    def generate(self, n_tasks):
        """Generate the meta-task set T^M (collect ``n_tasks`` tasks).

        UIS regions are drawn up front and their center-membership masks
        computed through one packed-engine call
        (:meth:`~repro.core.uis.UISGenerator.generate_batch`); the
        simulated-UIS and extra-tuple random streams are independent
        generators, so the tasks are bit-identical to sequential
        :meth:`generate_task` calls.
        """
        if n_tasks < 1:
            raise ValueError("n_tasks must be >= 1")
        return [self._task_for(region, member_mask)
                for region, member_mask
                in self._uis_generator.generate_batch(n_tasks)]
