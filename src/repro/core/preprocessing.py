"""Tabular data preprocessing (paper Section VII-A, Algorithm 3).

Plain min-max normalization of low-dimensional numeric tuples starves NN
classifiers trained with few labels (gradient saturation).  LTE instead
builds *multi-modal* attribute features: each attribute value is encoded as

    one_hot(component/interval)  (+)  [position within that component]

where the component structure comes from a Gaussian mixture model (for
unimodal/multimodal "peaky" attributes) or Jenks natural-breaks intervals
(for smooth trend-like attributes).  A tuple's representation vector is the
concatenation of its attribute encodings.

Models are fitted on a bounded random sample of the database (paper limits
the ratio to 1%) so preprocessing scales with constant cost.
"""

from __future__ import annotations

import numpy as np

from ..data.sampling import ratio_sample
from ..ml.gmm import GaussianMixture1D
from ..ml.jenks import JenksBreaks
from ..ml.scaler import normalize_within  # noqa: F401 (re-exported for tests)

__all__ = ["AttributeEncoder", "GMMEncoder", "JKCEncoder", "MinMaxEncoder",
           "CenterAffinityEncoder", "TabularPreprocessor"]


class AttributeEncoder:
    """Interface: encode a 1-D array of attribute values into vectors."""

    #: width of the produced encoding
    width = None

    def fit(self, values):
        raise NotImplementedError

    def transform(self, values):
        """(n,) values -> (n, width) encoding."""
        raise NotImplementedError


class GMMEncoder(AttributeEncoder):
    """One-hot of the max-likelihood GMM component + in-component position.

    The positional part normalizes the value within mean +/- 2 std of its
    component (Algorithm 3 line 4).
    """

    def __init__(self, n_components=8, seed=None):
        self.n_components = n_components
        self.seed = seed
        self.model = None
        self.width = n_components + 1

    def fit(self, values):
        values = np.asarray(values, dtype=np.float64).ravel()
        k = min(self.n_components, max(1, np.unique(values).size))
        self.model = GaussianMixture1D(k, seed=self.seed).fit(values)
        self.width = self.n_components + 1
        return self

    def transform(self, values):
        if self.model is None:
            raise RuntimeError("GMMEncoder used before fit")
        values = np.asarray(values, dtype=np.float64).ravel()
        comp = self.model.predict(values)
        onehot = np.zeros((values.size, self.n_components))
        onehot[np.arange(values.size), comp] = 1.0
        means = self.model.means_[comp]
        stds = self.model.stds_[comp]
        # Per-row normalization interval: mean +/- 2 std of the component.
        lo = means - 2 * stds
        hi = means + 2 * stds
        span = np.where(hi > lo, hi - lo, 1.0)
        norm = np.clip((values - lo) / span, 0.0, 1.0)
        return np.column_stack([onehot, norm])


class JKCEncoder(AttributeEncoder):
    """One-hot of the Jenks interval + min-max position inside it."""

    def __init__(self, n_intervals=8, seed=None):
        self.n_intervals = n_intervals
        self.seed = seed
        self.model = None
        self.width = n_intervals + 1

    def fit(self, values):
        self.model = JenksBreaks(self.n_intervals, seed=self.seed).fit(values)
        self.width = self.n_intervals + 1
        return self

    def transform(self, values):
        if self.model is None:
            raise RuntimeError("JKCEncoder used before fit")
        values = np.asarray(values, dtype=np.float64).ravel()
        idx = self.model.predict(values)
        onehot = np.zeros((values.size, self.n_intervals))
        onehot[np.arange(values.size), np.minimum(idx, self.n_intervals - 1)] = 1.0
        bounds = self.model.bounds_
        lo = bounds[idx]
        hi = bounds[idx + 1]
        span = np.where(hi > lo, hi - lo, 1.0)
        norm = np.clip((values - lo) / span, 0.0, 1.0)
        return np.column_stack([onehot, norm])


class MinMaxEncoder(AttributeEncoder):
    """Plain [0, 1] scaling — the baseline encoding the paper argues against."""

    width = 1

    def __init__(self):
        self.lo = None
        self.hi = None

    def fit(self, values):
        values = np.asarray(values, dtype=np.float64).ravel()
        self.lo = float(values.min())
        self.hi = float(values.max())
        return self

    def transform(self, values):
        if self.lo is None:
            raise RuntimeError("MinMaxEncoder used before fit")
        return normalize_within(np.asarray(values, dtype=np.float64).ravel(),
                                self.lo, self.hi)[:, None]


class CenterAffinityEncoder:
    """RBF affinities of a subspace tuple to the C_u cluster centers.

    The UIS feature vector ``v_R`` is a mask over the C_u centers, so the
    classifier must relate a tuple's *position among those centers* to
    ``v_R``.  This channel makes that relation explicit: feature j is
    ``exp(-||tau - c_j||^2 / (2 sigma^2))`` with sigma set to the median
    nearest-neighbour spacing of the centers.  It is built from the same
    unsupervised clustering step as the rest of the framework (no labels)
    and is an ablatable extension of Algorithm 3 (DESIGN.md section 6).
    """

    def __init__(self, centers):
        self.centers = np.atleast_2d(np.asarray(centers, dtype=np.float64))
        if len(self.centers) < 2:
            raise ValueError("need at least two centers")
        from ..ml.kmeans import pairwise_distances
        dist = pairwise_distances(self.centers, self.centers)
        np.fill_diagonal(dist, np.inf)
        self.sigma = float(np.median(dist.min(axis=1)))
        if self.sigma <= 0:
            self.sigma = 1.0
        self.width = len(self.centers)

    def transform(self, points):
        from ..ml.kmeans import pairwise_distances
        points = np.atleast_2d(np.asarray(points, dtype=np.float64))
        dist = pairwise_distances(points, self.centers)
        return np.exp(-dist ** 2 / (2.0 * self.sigma ** 2))


_MODES = ("auto", "gmm", "jkc", "both", "minmax")


class TabularPreprocessor:
    """Tuple -> representation-vector transformer for one attribute group.

    Parameters
    ----------
    attributes:
        The :class:`~repro.data.schema.Attribute` list of the (sub)space;
        hints steer per-attribute model choice in ``"auto"`` mode.
    mode:
        ``"auto"`` (hint-driven GMM/JKC), ``"gmm"``, ``"jkc"``,
        ``"both"`` (concatenate GMM and JKC encodings — the integrated
        variant of Fig. 8(a)), or ``"minmax"`` (ablation baseline).
    n_components:
        Number of GMM components / JKC intervals per attribute.
    sample_ratio:
        Fraction of rows used to fit the per-attribute models (<= 1%).
    """

    def __init__(self, attributes, mode="auto", n_components=8,
                 sample_ratio=0.01, seed=None):
        if mode not in _MODES:
            raise ValueError("unknown mode {!r}; options: {}".format(
                mode, _MODES))
        self.attributes = list(attributes)
        self.mode = mode
        self.n_components = n_components
        self.sample_ratio = sample_ratio
        self.seed = seed
        self._encoders = None  # list of lists (one or two per attribute)
        self._affinity = None  # optional CenterAffinityEncoder
        self.width = None

    # ------------------------------------------------------------------
    def _make_encoders(self, attribute):
        if self.mode == "minmax":
            return [MinMaxEncoder()]
        if self.mode == "gmm":
            return [GMMEncoder(self.n_components, seed=self.seed)]
        if self.mode == "jkc":
            return [JKCEncoder(self.n_components, seed=self.seed)]
        if self.mode == "both":
            return [GMMEncoder(self.n_components, seed=self.seed),
                    JKCEncoder(self.n_components, seed=self.seed)]
        # auto: hint driven
        if attribute.hint == "interval":
            return [JKCEncoder(self.n_components, seed=self.seed)]
        return [GMMEncoder(self.n_components, seed=self.seed)]

    def fit(self, data):
        """Fit per-attribute models on a bounded sample of ``data``."""
        data = np.atleast_2d(np.asarray(data, dtype=np.float64))
        if data.shape[1] != len(self.attributes):
            raise ValueError("data has {} columns, expected {}".format(
                data.shape[1], len(self.attributes)))
        sample = ratio_sample(data, self.sample_ratio, seed=self.seed) \
            if len(data) > 100 else data
        self._encoders = []
        for j, attribute in enumerate(self.attributes):
            encoders = self._make_encoders(attribute)
            for encoder in encoders:
                encoder.fit(sample[:, j])
            self._encoders.append(encoders)
        self._recompute_width()
        return self

    def attach_centers(self, centers):
        """Enable the center-affinity channel over the C_u cluster centers.

        Called by the framework after the clustering step; widens the
        representation by the number of centers.
        """
        self._affinity = CenterAffinityEncoder(centers)
        if self._encoders is not None:
            self._recompute_width()
        return self

    def _recompute_width(self):
        self.width = sum(e.width for encs in self._encoders for e in encs)
        if self._affinity is not None:
            self.width += self._affinity.width

    def transform(self, data):
        """(n x d) raw tuples -> (n x width) representation vectors."""
        if self._encoders is None:
            raise RuntimeError("TabularPreprocessor used before fit")
        data = np.atleast_2d(np.asarray(data, dtype=np.float64))
        if data.shape[1] != len(self.attributes):
            raise ValueError("data has {} columns, expected {}".format(
                data.shape[1], len(self.attributes)))
        parts = []
        for j, encoders in enumerate(self._encoders):
            for encoder in encoders:
                parts.append(encoder.transform(data[:, j]))
        if self._affinity is not None:
            parts.append(self._affinity.transform(data))
        return np.column_stack(parts)

    def fit_transform(self, data):
        return self.fit(data).transform(data)
