"""Meta-learning training (paper Section VI-C, Algorithm 2).

The trainer owns the meta-learned initialization phi = {phi_R, phi_tau,
phi_clf} (held in a template :class:`UISClassifier`) and the two
:class:`~repro.core.memory.MetaMemories`.  Each training iteration:

* **local phase** (support set, Eq. 12): a working copy of the classifier
  is initialized task-wise — theta_R = phi_R - sigma * omega_R (Eq. 6),
  theta_tau / theta_clf copied from phi (Eq. 11), M_cp retrieved by
  attention (Eq. 10) — then trained with a few SGD steps; M_cp also
  descends by backpropagation;
* **global phase** (query set, Eq. 13): the query loss of the adapted copy
  is backpropagated and its parameter gradients are applied to phi in one
  aggregated step (a first-order / one-step global update, "like [54]"),
  while the memories take their attentive EMA updates (Eqs. 14-16).

The same local phase doubles as the *online adaptation* (the underlined
steps of Algorithm 2): :meth:`MetaTrainer.adapt` is called with real user
labels instead of a simulated support set.

**Batched execution.**  Meta-tasks inside one Eq. 13 batch are mutually
independent, so :meth:`MetaTrainer.train` runs the whole batch's local
phase as ONE stacked autograd program over ``(K, ...)`` parameter stacks
and computes all K query losses in one fused forward/backward
(:mod:`repro.train.engine`, built on :mod:`repro.nn.batching` — the same
substrate the online serving path uses).  **Eq. 13 semantics are
unchanged**: the fused global phase accumulates exactly the per-task
query gradients the sequential executor accumulates, in the same task
order, and applies the same averaged step to phi.  The memory EMA
updates (Eqs. 14-16) are applied *after* the batch's global phase, in
the original task order — i.e. every retrieval inside a batch reads the
memories as they stood at the start of that batch.  The sequential
executor (``engine="sequential"``) implements the identical batch
semantics one task at a time, and the two engines are bit-identical
(property-fuzzed in ``tests/train``).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass

import numpy as np

from ..nn import Adam, SGD, no_grad
from ..nn.functional import (balanced_pos_weight,
                             binary_cross_entropy_with_logits)
from ..nn.tensor import Parameter
from .memory import MetaMemories
from .meta_learner import UISClassifier

__all__ = ["MetaHyperParams", "AdaptedClassifier", "MetaTrainer"]


@dataclass
class MetaHyperParams:
    """Hyper-parameters of Algorithm 2 (paper Section VIII-A defaults)."""

    eta: float = 0.01        # M_vR EMA rate (Eq. 14)
    beta: float = 0.01       # M_R EMA rate (Eq. 15)
    gamma: float = 0.01      # M_CP EMA rate (Eq. 16)
    sigma: float = 0.01      # task-wise init shift scale (Eq. 6)
    rho: float = 0.01        # local learning rate (Eq. 12)
    lam: float = 5e-3        # global learning rate (Eq. 13)
    m: int = 4               # number of implicit memory modes
    epochs: int = 2
    local_steps: int = 10
    batch_size: int = 10
    local_optimizer: str = "adam"   # "adam" (practical default) or "sgd"
    #: Eq. 12 prescribes plain gradient descent; with a handful of local
    #: steps on this numpy substrate Adam converges far faster at the same
    #: step count, so it is the default.  ``"sgd"`` restores the literal rule.
    pretrain_epochs: int = 4
    pretrain_lr: float = 0.01
    balance_classes: bool = True
    #: weight positive examples by n_neg/n_pos (capped) in every loss —
    #: interest regions often cover a small fraction of the labelled
    #: tuples, and an unweighted loss collapses to "all negative" at
    #: exploration budgets.
    #: Joint multi-task pretraining of phi (minimize the query loss of the
    #: *unadapted* meta-learner across all meta-tasks) before the MAML
    #: loop.  At the reproduction's task counts this supplies the bulk of
    #: the zero-shot quality that the paper obtains from |TM|=5000 tasks
    #: of pure meta-gradients; set pretrain_epochs=0 for the literal
    #: Algorithm 2 (DESIGN.md section 6).

    def __post_init__(self):
        for name in ("eta", "beta", "gamma", "sigma"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError("{} must be in [0,1]".format(name))
        if self.rho <= 0 or self.lam <= 0:
            raise ValueError("learning rates must be positive")
        if self.local_optimizer not in ("adam", "sgd"):
            raise ValueError("local_optimizer must be 'adam' or 'sgd'")


class AdaptedClassifier:
    """A task-adapted classifier: model copy + its conversion matrix + v_R."""

    def __init__(self, model, feature_vector, conversion=None):
        self.model = model
        self.feature_vector = np.asarray(feature_vector, dtype=np.float64)
        self.conversion = conversion

    def predict_proba(self, tuple_vectors):
        conv = self.conversion.data if self.conversion is not None else None
        return self.model.predict_proba(self.feature_vector, tuple_vectors,
                                        conversion=conv)

    def predict(self, tuple_vectors, threshold=0.5):
        return (self.predict_proba(tuple_vectors) >= threshold).astype(np.int64)

    # ------------------------------------------------------------------
    def state_dict(self):
        """Checkpointable state: model config + weights, v_R, M_cp."""
        return {
            "config": dict(self.model.config),
            "model": self.model.state_dict(),
            "feature_vector": self.feature_vector.copy(),
            "conversion": None if self.conversion is None
            else self.conversion.data.copy(),
        }

    @classmethod
    def from_state_dict(cls, state):
        """Rebuild an adapted classifier from :meth:`state_dict` output."""
        model = UISClassifier.from_config(state["config"])
        model.load_state_dict(state["model"])
        conversion = None if state["conversion"] is None \
            else Parameter(state["conversion"])
        return cls(model, state["feature_vector"], conversion)


class MetaTrainer:
    """Trains and serves the meta-learner of one meta-subspace.

    Parameters
    ----------
    ku:
        UIS feature-vector length (|C_u|).
    input_width:
        Preprocessed tuple representation width.
    params:
        :class:`MetaHyperParams`; defaults follow the paper.
    use_memories:
        Ablation switch; ``False`` degrades to plain first-order MAML with
        a fixed identity-style conversion (still trainable via phi).
    """

    def __init__(self, ku, input_width, embed_size=100, hidden_size=64,
                 params=None, use_memories=True, seed=None):
        self.params = params or MetaHyperParams()
        self.use_memories = bool(use_memories)
        self.seed = seed
        self.model = UISClassifier(
            ku=ku, input_width=input_width, embed_size=embed_size,
            hidden_size=hidden_size, use_conversion=self.use_memories,
            seed=seed)
        self.memories = MetaMemories(
            m=self.params.m, ku=ku, theta_r_size=self.model.theta_r_size,
            embed_size=embed_size, seed=seed) if self.use_memories else None
        self.history = []  # per-epoch mean query loss

    # ------------------------------------------------------------------
    # Local phase (shared by offline training and online adaptation)
    # ------------------------------------------------------------------
    def task_retrieval(self, feature_vector):
        """Task-wise initialization of a working copy (Eqs. 6, 10, 11).

        Returns ``(local_model, conversion_matrix | None,
        attention | None)``: a clone of phi with the memory-retrieved
        theta_R shift applied and the retrieved conversion matrix, read
        from the *current* memory state.  Shared verbatim by the
        sequential :meth:`adapt` and the fused batched engine so both
        start every task from identical bits.
        """
        feature_vector = np.asarray(feature_vector, dtype=np.float64)
        local = self.model.clone(seed=self.seed)
        conversion = None
        attention = None
        if self.use_memories:
            attention = self.memories.attention(feature_vector)
            omega = self.memories.omega_r(attention)
            local.set_theta_r_flat(
                local.get_theta_r_flat() - self.params.sigma * omega)
            conversion = self.memories.conversion(attention)
        return local, conversion, attention

    def adapt(self, feature_vector, support_x, support_y, local_steps=None,
              local_lr=None):
        """Fast-adapt a copy of the meta-learner to one task.

        Parameters
        ----------
        feature_vector:
            v_R for the task (length ku).
        support_x:
            (n x input_width) *preprocessed* labelled tuples.
        support_y:
            0/1 labels.

        Returns
        -------
        (AdaptedClassifier, info_dict) where info carries the attention,
        the last theta_R gradient and final support loss — the global
        phase and the memories consume these.
        """
        params = self.params
        steps = params.local_steps if local_steps is None else int(local_steps)
        lr = params.rho if local_lr is None else float(local_lr)
        feature_vector = np.asarray(feature_vector, dtype=np.float64)
        support_x = np.atleast_2d(np.asarray(support_x, dtype=np.float64))
        support_y = np.asarray(support_y, dtype=np.float64).ravel()

        local, conversion, attention = self.task_retrieval(feature_vector)
        if conversion is not None:
            conversion = Parameter(conversion)

        trainable = list(local.parameters())
        if conversion is not None:
            trainable.append(conversion)
        if params.local_optimizer == "adam":
            optimizer = Adam(trainable, lr=lr)
        else:
            optimizer = SGD(trainable, lr=lr)

        theta_r_params = list(local.uis_block.parameters())
        last_theta_r_grad = np.zeros(local.theta_r_size)
        loss_value = float("nan")
        pos_weight = balanced_pos_weight(support_y) \
            if params.balance_classes else None
        for _ in range(max(1, steps)):
            optimizer.zero_grad()
            logits = local.forward(feature_vector, support_x,
                                   conversion=conversion)
            loss = binary_cross_entropy_with_logits(logits, support_y,
                                                    pos_weight=pos_weight)
            loss.backward()
            last_theta_r_grad = np.concatenate(
                [np.zeros(p.size) if p.grad is None else p.grad.ravel()
                 for p in theta_r_params])
            optimizer.step()
            loss_value = loss.item()

        adapted = AdaptedClassifier(local, feature_vector, conversion)
        info = {
            "attention": attention,
            "theta_r_grad": last_theta_r_grad,
            "support_loss": loss_value,
        }
        return adapted, info

    # ------------------------------------------------------------------
    # Offline meta-training
    # ------------------------------------------------------------------
    def train(self, tasks, encode, epochs=None, progress=None, engine=None):
        """Run Algorithm 2 over a meta-task set.

        Parameters
        ----------
        tasks:
            Sequence of :class:`~repro.core.meta_task.MetaTask`.
        encode:
            Callable mapping raw tuples (n x d) to representation vectors
            (n x input_width) — the fitted preprocessor's ``transform``.
        epochs:
            Override for ``params.epochs``.
        progress:
            Optional callback ``(epoch, mean_query_loss)``.
        engine:
            ``"batched"`` (default) fuses every meta-batch's local and
            global phase into one stacked autograd program;
            ``"sequential"`` is the task-at-a-time reference executor;
            ``"parallel"`` fans the fused compute out across worker
            processes (:mod:`repro.train.parallel`).  All three are
            bit-identical (see the module docstring).
        """
        from ..train.engine import encode_task_sets
        from ..train.offline import OfflineRun, TrainerSchedule

        # Pre-encode once: representation vectors are training-invariant.
        encoded = encode_task_sets(tasks, encode)
        schedule = TrainerSchedule(self, encoded, epochs=epochs)

        def on_epoch(_schedule, kind, epoch, mean_loss):
            if kind == "meta" and progress is not None:
                progress(epoch, mean_loss)

        run = OfflineRun([schedule], engine=engine, on_epoch=on_epoch)
        try:
            run.run()
        finally:
            run.close()
        return self

    def pretrain_conversion(self):
        """Fixed averaging conversion used throughout joint pretraining.

        The memory variant pretrains phi against ``[I | I | I] / 3`` so
        the pretrained weights are consistent with the conversion
        memory's near-averaging initialization; the memory-less variant
        uses none.
        """
        if not self.use_memories:
            return None
        ne = self.model.embed_size
        return np.hstack([np.eye(ne)] * 3) / 3.0

    def pretrain_step(self, optimizer, conversion, feature_vector, x, y):
        """One task of joint multi-task pretraining: a single Adam step
        of the *unadapted* meta-learner's loss on the task's labelled
        tuples (support + query pooled).

        Joint pretraining minimizes the query loss of phi itself across
        all meta-tasks before the MAML loop; at the reproduction's task
        counts this supplies the bulk of the zero-shot quality that the
        paper obtains from |TM|=5000 tasks of pure meta-gradients (set
        ``pretrain_epochs=0`` for the literal Algorithm 2).  Unlike the
        meta-batches, consecutive steps share phi, so the *task* loop is
        inherently sequential — the pooled offline engine instead fuses
        this step across meta-subspaces (:mod:`repro.train.engine`).
        """
        pos_weight = balanced_pos_weight(y) \
            if self.params.balance_classes else None
        optimizer.zero_grad()
        logits = self.model.forward(feature_vector, x, conversion=conversion)
        loss = binary_cross_entropy_with_logits(
            logits, y, pos_weight=pos_weight)
        loss.backward()
        optimizer.step()

    def train_batch_sequential(self, encoded, batch):
        """One Eq. 12/13 meta-batch on the sequential reference executor.

        Adapts every task of the batch from the batch-start memory
        state, backpropagates each query loss, applies the deferred
        memory EMA updates (Eqs. 14-16) in task order and takes the one
        aggregated Eq. 13 step on phi.  Returns the per-task query
        losses in task order.
        """
        params = self.params
        phi_params = dict(self.model.named_parameters())
        accum = {name: np.zeros_like(p.data)
                 for name, p in phi_params.items()}
        memory_updates = []
        losses = []
        for task_idx in batch:
            v_r, sx, sy, qx, qy = encoded[task_idx]
            adapted, info = self.adapt(v_r, sx, sy)
            local = adapted.model
            # Global phase: query loss through adapted parameters
            # (first-order meta-gradient).
            local.zero_grad()
            if adapted.conversion is not None:
                adapted.conversion.zero_grad()
            logits = local.forward(v_r, qx, conversion=adapted.conversion)
            query_pos_weight = balanced_pos_weight(qy) \
                if params.balance_classes else None
            query_loss = binary_cross_entropy_with_logits(
                logits, qy, pos_weight=query_pos_weight)
            query_loss.backward()
            losses.append(query_loss.item())
            for name, local_param in local.named_parameters():
                if local_param.grad is not None:
                    accum[name] += local_param.grad
            if self.use_memories:
                memory_updates.append((v_r, info, adapted))
        for v_r, info, adapted in memory_updates:
            self._update_memories(v_r, info, adapted)
        # Eq. 13: one aggregated step on phi.  The accumulated gradient
        # is averaged over the batch so the step size is invariant to
        # batch_size.
        scale = params.lam / max(1, len(batch))
        for name, phi in phi_params.items():
            phi.data = phi.data - scale * accum[name]
        return losses

    def _update_memories(self, feature_vector, info, adapted):
        params = self.params
        attention = info["attention"]
        self.memories.update_feature_patterns(attention, feature_vector,
                                              params.eta)
        self.memories.update_parameter_memory(attention,
                                              info["theta_r_grad"],
                                              params.beta)
        self.memories.update_conversion_memory(attention,
                                               adapted.conversion.data,
                                               params.gamma)

    # ------------------------------------------------------------------
    # Checkpointing (the "meta-learner artifact": phi + the memories)
    # ------------------------------------------------------------------
    def state_dict(self):
        """Checkpointable state of the trained meta-learner.

        Captures the hyper-parameters, the meta-learned initialization
        phi (model config + weights), the two memories and the training
        history — everything needed to serve online adaptation from a
        fresh process, but none of the offline task data.
        """
        return {
            "params": asdict(self.params),
            "use_memories": self.use_memories,
            "seed": self.seed,
            "config": dict(self.model.config),
            "model": self.model.state_dict(),
            "memories": None if self.memories is None
            else self.memories.state_dict(),
            "history": [float(x) for x in self.history],
        }

    def load_state_dict(self, state):
        """Restore :meth:`state_dict` output into this trainer in place."""
        if bool(state["use_memories"]) != self.use_memories:
            raise ValueError(
                "state has use_memories={} but trainer was built with {}"
                .format(state["use_memories"], self.use_memories))
        self.params = MetaHyperParams(**state["params"])
        self.seed = state["seed"]
        self.model.load_state_dict(state["model"])
        if self.memories is not None:
            self.memories.load_state_dict(state["memories"])
        self.history = [float(x) for x in state["history"]]

    @classmethod
    def from_state_dict(cls, state):
        """Rebuild a trained meta-learner from :meth:`state_dict` output."""
        config = state["config"]
        trainer = cls(ku=config["ku"], input_width=config["input_width"],
                      embed_size=config["embed_size"],
                      hidden_size=config["hidden_size"],
                      params=MetaHyperParams(**state["params"]),
                      use_memories=bool(state["use_memories"]),
                      seed=state["seed"])
        trainer.load_state_dict(state)
        return trainer

    def save(self, path, meta=None):
        """Write this meta-learner as a checkpoint directory at ``path``."""
        from ..persist.checkpoint import save_checkpoint
        save_checkpoint(path, "meta-trainer", self.state_dict(), meta=meta)

    @classmethod
    def load(cls, path):
        """Load a meta-learner checkpoint written by :meth:`save`."""
        from ..persist.checkpoint import load_checkpoint
        state, _ = load_checkpoint(path, expected_kind="meta-trainer")
        return cls.from_state_dict(state)

    # ------------------------------------------------------------------
    def evaluate(self, tasks, encode, local_steps=None, engine=None):
        """Mean query-set accuracy after adaptation (diagnostic).

        ``engine="batched"`` (default) adapts and scores every task in
        one stacked program per shape bucket; ``"sequential"`` re-runs
        :meth:`adapt` per task.  Both produce identical predictions.
        """
        from ..train.offline import check_engine

        if check_engine(engine) == "batched":
            from ..train.engine import evaluate_batched
            return evaluate_batched(self, tasks, encode,
                                    local_steps=local_steps)
        scores = []
        for task in tasks:
            adapted, _ = self.adapt(task.feature_vector,
                                    encode(task.support_x), task.support_y,
                                    local_steps=local_steps)
            with no_grad():
                pred = adapted.predict(encode(task.query_x))
            scores.append(float(np.mean(pred == task.query_y)))
        return float(np.mean(scores)) if scores else 0.0
