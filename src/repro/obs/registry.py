"""Process-wide metrics: counters, gauges, deterministic histograms.

This module is the **metric naming registry** for the whole serving
stack.  Every metric name follows one scheme::

    <subsystem>.<object>.<metric>[.<unit>]

lower-case, dot-separated, no spaces.  Canonical names in use:

================================================ =========== ==========
name                                             kind        unit
================================================ =========== ==========
``serve.manager.sessions.opened``                counter     sessions
``serve.manager.sessions.closed``                counter     sessions
``serve.manager.sessions.live``                  gauge       sessions
``serve.manager.queue.depth``                    gauge       batches
``serve.manager.queue.wait.seconds``             histogram   seconds
``serve.manager.adapt.batches``                  counter     flushes
``serve.manager.adapt.total``                    counter     tasks
``serve.manager.adapt.build.seconds``            histogram   seconds
``serve.manager.adapt.train.seconds``            histogram   seconds
``serve.manager.adapt.install.seconds``          histogram   seconds
``serve.manager.flush.seconds``                  histogram   seconds
``serve.manager.errors.recorded``                counter     errors
``serve.manager.encode_cache.hits``              counter     lookups
``serve.manager.encode_cache.misses``            counter     lookups
``serve.manager.predict.encode.seconds``         histogram   seconds
``serve.manager.predict.forward.seconds``        histogram   seconds
``serve.manager.predict.refine.seconds``         histogram   seconds
``serve.manager.predict.seconds``                histogram   seconds
``serve.manager.store_scan.chunk_evals``         counter     chunks
``serve.manager.store_scan.watermark_skipped``   counter     chunks
``serve.manager.store_scan.pruned_skipped``      counter     chunks
``serve.cache.prediction.hits``                  counter     lookups
``serve.cache.prediction.misses``                counter     lookups
``serve.cache.prediction.entries``               gauge       entries
``shard.gateway.rpc.seconds``                    histogram   seconds
``shard.gateway.rpc.calls``                      counter     calls
``shard.gateway.workers.alive``                  gauge       workers
``shard.gateway.workers.crashed``                counter     workers
``shard.gateway.pending.depth``                  gauge       batches
``shard.gateway.flush.seconds``                  histogram   seconds
``shard.gateway.predict.seconds``                histogram   seconds
``store.scan.plans``                             counter     scans
``store.scan.chunks.scanned``                    counter     chunks
``store.scan.chunks.pruned``                     counter     chunks
``store.scan.chunks.watermark_skipped``          counter     chunks
``store.ingest.append.seconds``                  histogram   seconds
``store.ingest.append.rows``                     counter     rows
``store.ingest.commits``                         counter     commits
``store.freshness.observe.seconds``              histogram   seconds
``store.freshness.drift_score``                  histogram   score
``geometry.pack_cache.hits``                     counter     lookups
``geometry.pack_cache.misses``                   counter     lookups
``nn.compile.plan_cache.hits``                   counter     lookups
``nn.compile.plan_cache.misses``                 counter     lookups
``nn.compile.plan_cache.evictions``              counter     plans
``nn.compile.plan_cache.unsupported``            counter     keys
``nn.compile.plan_cache.arena_bytes``            gauge       bytes
``nn.compile.moment_pool.hits``                  counter     leases
``nn.compile.moment_pool.misses``                counter     leases
``nn.compile.moment_pool.evictions``             counter     entries
``nn.compile.backend.replays``                   counter     replays
``nn.compile.backend.fallbacks``                 counter     calls
``train.offline.pretrain_epoch.seconds``         histogram   seconds
``train.offline.meta_epoch.seconds``             histogram   seconds
``train.offline.epochs.pretrain``                counter     epochs
``train.offline.epochs.meta``                    counter     epochs
``train.parallel.rpc.seconds``                   histogram   seconds
``train.parallel.rpc.calls``                     counter     calls
``train.parallel.workers.alive``                 gauge       workers
``train.parallel.workers.crashed``               counter     workers
``train.worker.busy``                            gauge       spans
``train.worker.compute.seconds``                 histogram   seconds
``train.worker.batches``                         counter     spans
``train.reduce.latency``                         gauge       seconds
``train.reduce.seconds``                         histogram   seconds
================================================ =========== ==========

Design constraints (the no-interference guarantee):

* **numerics-neutral** — metrics never touch model data, never draw
  random numbers, never change the float op sequence of any
  instrumented path; enabling observability cannot change a prediction
  by a single bit (asserted by the parity suites under ``REPRO_OBS=on``
  in CI);
* **deterministic merges** — every histogram shares one fixed
  log-scale bucket-bound table (:data:`BUCKET_BOUNDS`), so merging two
  histograms is an element-wise integer add: associative, commutative,
  independent of merge order and of which process observed what;
* **near-zero when off** — with ``REPRO_OBS=off`` every registry hands
  out shared null metrics whose methods are no-ops, and the span tracer
  returns one shared no-op context manager (no per-call allocation).

Ownership model: components that expose per-instance ``stats()`` dicts
(the session manager, the prediction/plan/pack caches, the moment pool)
each own a private :class:`MetricsRegistry`; the old dict methods are
compatibility shims reading those registries.  Registries auto-enlist
in a process-wide weak set, so :func:`aggregate` merges every live
registry — plus the :func:`default_registry` used by module-level sites
(store scans, appends, training epochs) — into one process snapshot.
That snapshot is what a shard worker ships to the gateway.
"""

from __future__ import annotations

import contextlib
import os
import threading
import weakref

__all__ = [
    "BUCKET_BOUNDS", "Counter", "Gauge", "Histogram", "MetricsRegistry",
    "enabled", "configure", "enabled_scope", "default_registry",
    "aggregate", "merge_snapshots", "reset_default_registry",
    "reset_all_metrics",
]

#: Fixed log-scale histogram bucket upper bounds, shared by **every**
#: histogram in the process (and across processes): quarter-decade steps
#: from ~316 ns to 1000 (seconds for latency metrics, dimensionless for
#: scores).  One shared table is what makes cross-worker merges a plain
#: element-wise add — no bound negotiation, no order sensitivity.
BUCKET_BOUNDS = tuple(10.0 ** (k / 4.0) for k in range(-26, 13))

_ENABLED = [None]   # tri-state: None = resolve REPRO_OBS on first use
_LOCK = threading.Lock()


def enabled():
    """Whether observability is on (``REPRO_OBS``, default ``on``).

    Resolved lazily on first use; ``off`` / ``0`` / ``false`` / ``no``
    disable.  :func:`configure` / :func:`enabled_scope` override at
    runtime — new registries and spans see the change, metrics already
    handed out keep the mode they were created under.
    """
    value = _ENABLED[0]
    if value is None:
        raw = os.environ.get("REPRO_OBS", "on").strip().lower()
        value = raw not in ("off", "0", "false", "no", "disabled")
        _ENABLED[0] = value
    return value


def configure(on):
    """Force observability on or off for the process (``None`` =
    re-resolve ``REPRO_OBS`` on next use)."""
    _ENABLED[0] = None if on is None else bool(on)


@contextlib.contextmanager
def enabled_scope(on):
    """Temporarily force the enablement state (tests and benchmarks)."""
    previous = _ENABLED[0]
    configure(on)
    try:
        yield
    finally:
        _ENABLED[0] = previous


# ----------------------------------------------------------------------
# Metric primitives
# ----------------------------------------------------------------------
class Counter:
    """A monotonically increasing integer count."""

    __slots__ = ("value",)
    kind = "counter"

    def __init__(self):
        self.value = 0

    def inc(self, n=1):
        self.value += n

    def set(self, value):
        """Overwrite the count (checkpoint restore only)."""
        self.value = int(value)

    def snapshot(self):
        return {"kind": "counter", "value": int(self.value)}

    def merge(self, snap):
        self.value += int(snap["value"])


class Gauge:
    """A point-in-time numeric value (queue depth, live sessions)."""

    __slots__ = ("value",)
    kind = "gauge"

    def __init__(self):
        self.value = 0

    def set(self, value):
        self.value = value

    def inc(self, n=1):
        self.value += n

    def dec(self, n=1):
        self.value -= n

    def snapshot(self):
        return {"kind": "gauge", "value": self.value}

    def merge(self, snap):
        # Gauges merge additively: the fleet's queue depth is the sum of
        # the workers' depths.  (Last-write merges would depend on merge
        # order, which the determinism contract forbids.)
        self.value += snap["value"]


class Histogram:
    """Fixed-bucket distribution with order-independent merges.

    Bucket *i* counts observations ``<= BUCKET_BOUNDS[i]``; the final
    overflow bucket counts the rest.  Because every histogram in every
    process shares :data:`BUCKET_BOUNDS`, merging is an element-wise
    integer add — deterministic regardless of merge order or process
    boundaries.  ``sum`` is kept for mean estimation only (telemetry,
    never model data).
    """

    __slots__ = ("counts", "count", "total", "vmin", "vmax")
    kind = "histogram"

    def __init__(self):
        self.counts = [0] * (len(BUCKET_BOUNDS) + 1)
        self.count = 0
        self.total = 0.0
        self.vmin = None
        self.vmax = None

    def observe(self, value):
        value = float(value)
        lo, hi = 0, len(BUCKET_BOUNDS)
        # Binary search for the first bound >= value.
        while lo < hi:
            mid = (lo + hi) // 2
            if BUCKET_BOUNDS[mid] >= value:
                hi = mid
            else:
                lo = mid + 1
        self.counts[lo] += 1
        self.count += 1
        self.total += value
        if self.vmin is None or value < self.vmin:
            self.vmin = value
        if self.vmax is None or value > self.vmax:
            self.vmax = value

    def percentile(self, q):
        """Deterministic bucket-bound estimate of the q-quantile.

        Returns the upper bound of the bucket where the cumulative count
        first reaches ``q * count`` (``vmax`` for the overflow bucket),
        or ``None`` for an empty histogram.  Exact to within one bucket
        width — and identical no matter how the histogram was merged.
        """
        if self.count == 0:
            return None
        rank = q * self.count
        seen = 0
        for i, n in enumerate(self.counts):
            seen += n
            if seen >= rank and n:
                if i < len(BUCKET_BOUNDS):
                    return BUCKET_BOUNDS[i]
                return self.vmax
        return self.vmax

    @property
    def mean(self):
        return self.total / self.count if self.count else None

    def snapshot(self):
        return {"kind": "histogram", "counts": list(self.counts),
                "count": int(self.count), "sum": float(self.total),
                "min": self.vmin, "max": self.vmax}

    def merge(self, snap):
        counts = snap["counts"]
        if len(counts) != len(self.counts):
            raise ValueError(
                "histogram snapshot has {} buckets, expected {} — it was "
                "recorded under different bucket bounds".format(
                    len(counts), len(self.counts)))
        for i, n in enumerate(counts):
            self.counts[i] += int(n)
        self.count += int(snap["count"])
        self.total += float(snap["sum"])
        if snap["min"] is not None and \
                (self.vmin is None or snap["min"] < self.vmin):
            self.vmin = snap["min"]
        if snap["max"] is not None and \
                (self.vmax is None or snap["max"] > self.vmax):
            self.vmax = snap["max"]


class _NullMetric:
    """Shared no-op stand-in handed out by disabled registries."""

    __slots__ = ()
    kind = "null"
    value = 0
    count = 0
    total = 0.0
    mean = None
    vmin = None
    vmax = None

    def inc(self, n=1):
        pass

    def dec(self, n=1):
        pass

    def set(self, value):
        pass

    def observe(self, value):
        pass

    def percentile(self, q):
        return None

    def snapshot(self):
        return None

    def merge(self, snap):
        pass


_NULL = _NullMetric()
_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}

# Live enabled registries, for process-wide aggregation.  Weak: a
# registry lives exactly as long as its owning component.
_REGISTRIES = weakref.WeakSet()


def _check_name(name):
    if not name or any(c.isspace() for c in name) or name != name.lower() \
            or ".." in name or name[0] == "." or name[-1] == ".":
        raise ValueError(
            "metric name {!r} violates the <subsystem>.<object>.<metric> "
            "scheme (lower-case, dot-separated, no spaces)".format(name))
    return name


class MetricsRegistry:
    """A named collection of metrics owned by one component.

    ``enabled=None`` (the default) resolves :func:`enabled` at
    construction; a disabled registry hands out shared null metrics and
    snapshots to ``{}``, so instrumented code pays only a no-op method
    call.  Enabled registries enlist in the process-wide weak set that
    :func:`aggregate` merges.
    """

    def __init__(self, enabled=None):
        self.enabled = _module_enabled() if enabled is None else bool(enabled)
        self._metrics = {}
        if self.enabled:
            _REGISTRIES.add(self)

    def _get(self, name, kind):
        if not self.enabled:
            return _NULL
        metric = self._metrics.get(name)
        if metric is None:
            metric = self._metrics[name] = _KINDS[kind]()
            return metric
        if metric.kind != kind:
            raise ValueError(
                "metric {!r} already registered as a {}, requested as a "
                "{}".format(name, metric.kind, kind))
        return metric

    def counter(self, name):
        return self._get(_check_name(name), "counter")

    def gauge(self, name):
        return self._get(_check_name(name), "gauge")

    def histogram(self, name):
        return self._get(_check_name(name), "histogram")

    def value(self, name, default=0):
        """The scalar value of a counter/gauge (0/default when absent) —
        what the legacy ``stats()`` compatibility shims read."""
        metric = self._metrics.get(name)
        return default if metric is None else metric.value

    def names(self):
        return sorted(self._metrics)

    def snapshot(self):
        """JSON-able ``{name: metric snapshot}`` of every metric."""
        return {name: metric.snapshot()
                for name, metric in sorted(self._metrics.items())}

    def merge(self, snap):
        """Merge a :meth:`snapshot` (possibly from another process) in.

        Deterministic: counters and histogram buckets add element-wise,
        gauges add, min/max combine — no merge-order dependence.
        """
        if not self.enabled or not snap:
            return self
        for name, entry in sorted(snap.items()):
            if entry is None:
                continue
            self._get(_check_name(name), entry["kind"]).merge(entry)
        return self

    def load(self, snap):
        """Restore a snapshot *exactly* (checkpoint restore): existing
        state is discarded, not merged into.  Metric objects are reset
        in place so references components cached at construction stay
        live."""
        if not self.enabled:
            return self
        for metric in self._metrics.values():
            metric.__init__()
        return self.merge(snap)


# enabled() is shadowed by the attribute name inside MetricsRegistry;
# keep a module-level alias for its constructor.
_module_enabled = enabled


# ----------------------------------------------------------------------
# Process-wide aggregation
# ----------------------------------------------------------------------
_DEFAULT = [None]


def default_registry():
    """The registry module-level call sites record into (store scans,
    append commits, training epochs) — components with per-instance
    ``stats()`` semantics own their own registries instead."""
    registry = _DEFAULT[0]
    if registry is None or (registry.enabled is not enabled()):
        registry = _DEFAULT[0] = MetricsRegistry()
    return registry


def reset_default_registry():
    """Drop the default registry's state (tests)."""
    _DEFAULT[0] = None


def reset_all_metrics():
    """Zero every metric of every live registry in this process.

    The ``fork`` start method copies the parent's registries — counts
    included — into the child, so a forked worker's :func:`aggregate`
    would otherwise re-report activity that happened before the fork.
    Workers call this once at startup; the parent's state is untouched
    (the copies diverged at fork).
    """
    for registry in list(_REGISTRIES):
        for metric in registry._metrics.values():
            metric.__init__()


def merge_snapshots(snapshots):
    """Merge snapshot dicts into one plain snapshot, deterministically.

    ``snapshots`` is iterated in the given order, but because every
    merge op is commutative and associative the result is independent
    of that order (property-tested in ``tests/obs``).
    """
    merged = MetricsRegistry(enabled=True)
    for snap in snapshots:
        merged.merge(snap)
    return merged.snapshot()


def aggregate():
    """One merged snapshot of every live registry in this process.

    This is the process-wide view a shard worker ships to the gateway:
    the default registry plus every component-owned registry (session
    manager, caches, pools) still alive.  Registries are merged in a
    deterministic order-insensitive way, so two aggregations over the
    same state are identical.
    """
    default_registry()   # materialize so module-level sites are covered
    return merge_snapshots([r.snapshot() for r in list(_REGISTRIES)])
