"""Exporters: Prometheus text exposition, JSONL snapshots, summaries.

Three consumers of the same data:

* :func:`to_prometheus` renders a registry snapshot in the Prometheus
  text exposition format (metric dots become underscores, histograms
  expand to ``_bucket{le=...}`` / ``_sum`` / ``_count`` series);
* :func:`write_jsonl` / :func:`read_jsonl` persist snapshots or span
  events as JSON lines;
* :func:`summarize_events` + :func:`format_summary` turn a span capture
  and/or snapshot into human-readable latency-percentile and hit-ratio
  tables — the engine behind ``python -m repro.obs summarize``.
"""

from __future__ import annotations

import json

from .registry import BUCKET_BOUNDS, Histogram

__all__ = ["to_prometheus", "write_jsonl", "read_jsonl",
           "summarize_events", "format_summary"]


def _prom_name(name):
    out = []
    for ch in name:
        out.append(ch if ch.isalnum() or ch == "_" else "_")
    if out and out[0].isdigit():
        out.insert(0, "_")
    return "".join(out)


def _prom_float(value):
    if value != value:   # NaN
        return "NaN"
    if value == float("inf"):
        return "+Inf"
    return repr(float(value))


def to_prometheus(snapshot, prefix="repro"):
    """Render a ``MetricsRegistry.snapshot()`` as Prometheus text.

    Counters map to ``counter``, gauges to ``gauge``, histograms to the
    cumulative ``_bucket{le="..."}`` convention plus ``_sum`` and
    ``_count``.  Output lines are sorted by metric name, so the same
    snapshot always renders to the same text.
    """
    lines = []
    for name in sorted(snapshot or {}):
        entry = snapshot[name]
        if entry is None:
            continue
        pname = _prom_name(prefix + "_" + name if prefix else name)
        kind = entry["kind"]
        if kind == "counter":
            lines.append("# TYPE {} counter".format(pname))
            lines.append("{} {}".format(pname, int(entry["value"])))
        elif kind == "gauge":
            lines.append("# TYPE {} gauge".format(pname))
            lines.append("{} {}".format(pname, _prom_float(entry["value"])))
        elif kind == "histogram":
            lines.append("# TYPE {} histogram".format(pname))
            cumulative = 0
            for bound, count in zip(BUCKET_BOUNDS, entry["counts"]):
                cumulative += count
                lines.append('{}_bucket{{le="{}"}} {}'.format(
                    pname, _prom_float(bound), cumulative))
            cumulative += entry["counts"][len(BUCKET_BOUNDS)]
            lines.append('{}_bucket{{le="+Inf"}} {}'.format(
                pname, cumulative))
            lines.append("{}_sum {}".format(pname, _prom_float(entry["sum"])))
            lines.append("{}_count {}".format(pname, int(entry["count"])))
        else:
            raise ValueError("unknown metric kind {!r} for {!r}".format(
                kind, name))
    return "\n".join(lines) + ("\n" if lines else "")


def write_jsonl(path, records):
    """Append dict records (span events or snapshot rows) as JSONL."""
    with open(str(path), "a", encoding="utf-8") as fh:
        for record in records:
            fh.write(json.dumps(record, sort_keys=True) + "\n")


def read_jsonl(path):
    """Load JSONL records, skipping blank lines."""
    records = []
    with open(str(path), "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records


def _histogram_from_events(seconds_list):
    hist = Histogram()
    for value in seconds_list:
        hist.observe(value)
    return hist


def summarize_events(events, snapshot=None):
    """Reduce a span capture (+ optional snapshot) into summary rows.

    Returns ``{"spans": [...], "ratios": [...], "counters": [...]}``:

    * ``spans`` — per span name: count, total seconds, mean, and
      deterministic p50/p90/p99 bucket-bound estimates;
    * ``ratios`` — every ``<base>.hits`` / ``<base>.misses`` counter
      pair in the snapshot, with the hit ratio;
    * ``counters`` — remaining counters and gauges from the snapshot.

    Histogram metrics in the snapshot are folded into ``spans`` rows so
    one table covers both capture- and registry-sourced latencies.
    """
    by_name = {}
    for event in events or []:
        if event.get("type") != "span" or "seconds" not in event:
            continue
        by_name.setdefault(event["name"], []).append(float(event["seconds"]))

    span_rows = []
    for name in sorted(by_name):
        hist = _histogram_from_events(by_name[name])
        span_rows.append(_latency_row(name, hist))

    ratio_rows = []
    counter_rows = []
    snapshot = snapshot or {}
    hit_bases = {}
    for name, entry in snapshot.items():
        if entry is None:
            continue
        if entry["kind"] == "histogram":
            hist = Histogram()
            hist.merge(entry)
            span_rows.append(_latency_row(name, hist))
        elif name.endswith(".hits"):
            hit_bases.setdefault(name[:-5], [None, None])[0] = entry["value"]
        elif name.endswith(".misses"):
            hit_bases.setdefault(name[:-7], [None, None])[1] = entry["value"]
        else:
            counter_rows.append({"name": name, "kind": entry["kind"],
                                 "value": entry["value"]})
    for base in sorted(hit_bases):
        hits, misses = hit_bases[base]
        if hits is None or misses is None:
            # An unpaired hits/misses counter is still worth listing.
            suffix = ".hits" if misses is None else ".misses"
            counter_rows.append({"name": base + suffix, "kind": "counter",
                                 "value": hits if misses is None else misses})
            continue
        total = hits + misses
        ratio_rows.append({"name": base, "hits": hits, "misses": misses,
                           "ratio": (hits / total) if total else None})

    span_rows.sort(key=lambda row: row["name"])
    counter_rows.sort(key=lambda row: row["name"])
    return {"spans": span_rows, "ratios": ratio_rows,
            "counters": counter_rows}


def _latency_row(name, hist):
    return {"name": name, "count": hist.count,
            "total": hist.total, "mean": hist.mean,
            "p50": hist.percentile(0.50), "p90": hist.percentile(0.90),
            "p99": hist.percentile(0.99), "max": hist.vmax}


def _fmt_seconds(value):
    if value is None:
        return "-"
    if value >= 1.0:
        return "{:.3f}s".format(value)
    if value >= 1e-3:
        return "{:.3f}ms".format(value * 1e3)
    return "{:.1f}us".format(value * 1e6)


def format_summary(summary):
    """Render :func:`summarize_events` output as aligned text tables."""
    lines = []
    spans = summary.get("spans") or []
    if spans:
        lines.append("latency (percentiles are bucket upper bounds)")
        header = ("name", "count", "total", "mean", "p50", "p90", "p99",
                  "max")
        rows = [header]
        for row in spans:
            rows.append((row["name"], str(row["count"]),
                         _fmt_seconds(row["total"]),
                         _fmt_seconds(row["mean"]), _fmt_seconds(row["p50"]),
                         _fmt_seconds(row["p90"]), _fmt_seconds(row["p99"]),
                         _fmt_seconds(row["max"])))
        lines.extend(_align(rows))
        lines.append("")
    ratios = summary.get("ratios") or []
    if ratios:
        lines.append("hit ratios")
        rows = [("name", "hits", "misses", "ratio")]
        for row in ratios:
            ratio = row["ratio"]
            rows.append((row["name"], str(row["hits"]), str(row["misses"]),
                         "-" if ratio is None else "{:.1%}".format(ratio)))
        lines.extend(_align(rows))
        lines.append("")
    counters = summary.get("counters") or []
    if counters:
        lines.append("counters and gauges")
        rows = [("name", "kind", "value")]
        for row in counters:
            rows.append((row["name"], row["kind"], str(row["value"])))
        lines.extend(_align(rows))
        lines.append("")
    if not lines:
        return "(no observability data)\n"
    return "\n".join(lines)


def _align(rows):
    widths = [max(len(row[i]) for row in rows) for i in range(len(rows[0]))]
    out = []
    for row in rows:
        out.append("  ".join(
            cell.ljust(width) for cell, width in zip(row, widths)).rstrip())
    return out
