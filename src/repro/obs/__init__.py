"""Unified observability for the serving stack: metrics + tracing.

``repro.obs`` gives every subsystem one way to count, time, and trace:

* :class:`MetricsRegistry` — Counter / Gauge / Histogram with fixed
  log-scale bucket bounds, so merging snapshots across threads,
  components, or worker processes is deterministic and
  order-independent (see :mod:`repro.obs.registry` for the metric
  naming scheme);
* :func:`span` — monotonic-clock scopes with per-thread parent
  nesting, emitted as JSONL events to a pluggable sink;
* exporters — Prometheus text exposition, JSONL files, and the
  ``python -m repro.obs summarize`` CLI for percentile / hit-ratio
  tables.

Everything is numerics-neutral (no RNG, no float ops on model data —
enabling observability never changes a prediction) and collapses to
shared no-op singletons when ``REPRO_OBS=off``.
"""

from .registry import (BUCKET_BOUNDS, Counter, Gauge, Histogram,
                       MetricsRegistry, aggregate, configure,
                       default_registry, enabled, enabled_scope,
                       merge_snapshots, reset_all_metrics,
                       reset_default_registry)
from .trace import JsonlSink, capture, get_sink, set_sink, span
from .export import (format_summary, read_jsonl, summarize_events,
                     to_prometheus, write_jsonl)

__all__ = [
    "BUCKET_BOUNDS", "Counter", "Gauge", "Histogram", "MetricsRegistry",
    "aggregate", "configure", "default_registry", "enabled",
    "enabled_scope", "merge_snapshots", "reset_all_metrics",
    "reset_default_registry",
    "JsonlSink", "capture", "get_sink", "set_sink", "span",
    "format_summary", "read_jsonl", "summarize_events", "to_prometheus",
    "write_jsonl",
]
