"""CLI: render observability captures.

Usage::

    python -m repro.obs summarize capture.jsonl [snapshot.jsonl]
    python -m repro.obs prom snapshot.jsonl

``summarize`` reads a JSONL file of span events (and optionally a JSONL
metrics snapshot, one ``{"name": ..., ...snapshot}`` row per metric or
a single ``{"type": "snapshot", "metrics": {...}}`` row) and prints
latency percentiles plus hit-ratio tables.  ``prom`` converts a
snapshot file to Prometheus text exposition.
"""

from __future__ import annotations

import argparse
import sys

from .export import (format_summary, read_jsonl, summarize_events,
                     to_prometheus)


def _load_snapshot(records):
    """Accept either snapshot-row JSONL or an embedded snapshot event."""
    snapshot = {}
    for record in records:
        if record.get("type") == "snapshot" and "metrics" in record:
            snapshot.update(record["metrics"] or {})
        elif "name" in record and "kind" in record:
            entry = dict(record)
            name = entry.pop("name")
            snapshot[name] = entry
    return snapshot


def main(argv=None):
    """Entry point for ``python -m repro.obs``."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Render repro.obs captures and snapshots.")
    sub = parser.add_subparsers(dest="command", required=True)

    p_sum = sub.add_parser(
        "summarize", help="latency percentiles + hit-ratio tables")
    p_sum.add_argument("events", help="JSONL span-event capture")
    p_sum.add_argument("snapshot", nargs="?", default=None,
                       help="optional JSONL metrics snapshot")

    p_prom = sub.add_parser(
        "prom", help="convert a snapshot to Prometheus text format")
    p_prom.add_argument("snapshot", help="JSONL metrics snapshot")
    p_prom.add_argument("--prefix", default="repro",
                        help="metric name prefix (default: repro)")

    args = parser.parse_args(argv)
    if args.command == "summarize":
        records = read_jsonl(args.events)
        events = [r for r in records if r.get("type") == "span"]
        snapshot = _load_snapshot(records)
        if args.snapshot:
            snapshot.update(_load_snapshot(read_jsonl(args.snapshot)))
        sys.stdout.write(format_summary(summarize_events(events, snapshot)))
    elif args.command == "prom":
        snapshot = _load_snapshot(read_jsonl(args.snapshot))
        sys.stdout.write(to_prometheus(snapshot, prefix=args.prefix))
    return 0


if __name__ == "__main__":
    sys.exit(main())
