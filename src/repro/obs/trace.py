"""Lightweight span tracer: monotonic-clock scopes with parent nesting.

A span measures one scope of work on the monotonic clock
(``time.perf_counter``) and emits a JSON-able event dict when it
closes::

    {"type": "span", "name": "serve.manager.flush", "span": 3,
     "parent": 2, "depth": 1, "seconds": 0.0123, ...attrs}

Nesting is tracked per thread: a span opened while another span of the
same thread is active records that span as its parent, so a capture
reconstructs the call tree without any global state.

Events go to the installed *sink* (a callable taking the event dict) —
:class:`JsonlSink` appends JSONL lines, :func:`capture` collects into a
list for tests and the examples.  With no sink installed, or with
``REPRO_OBS=off``, :func:`span` returns one shared no-op context
manager: no span object is allocated, no clock is read.

Like the metrics registry, spans are numerics-neutral: they read the
clock and build dicts, and never touch RNG state or model data.
"""

from __future__ import annotations

import contextlib
import itertools
import json
import threading
import time

from .registry import enabled

__all__ = ["span", "set_sink", "get_sink", "capture", "JsonlSink"]

_SINK = [None]
_IDS = itertools.count(1)
_STACK = threading.local()


def set_sink(sink):
    """Install the event sink (``None`` removes it) and return the
    previous one.  The sink is any callable taking one event dict."""
    previous = _SINK[0]
    _SINK[0] = sink
    return previous


def get_sink():
    """The currently installed event sink, or ``None``."""
    return _SINK[0]


class _NoopSpan:
    """Shared do-nothing span handed out when tracing is off."""

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False

    def annotate(self, **attrs):
        return self


_NOOP = _NoopSpan()


class Span:
    """One timed scope.  Use via :func:`span`, not directly."""

    __slots__ = ("name", "attrs", "span_id", "parent_id", "depth", "_t0")

    def __init__(self, name, attrs):
        self.name = name
        self.attrs = attrs
        self.span_id = next(_IDS)
        self.parent_id = None
        self.depth = 0
        self._t0 = None

    def annotate(self, **attrs):
        """Attach extra attributes to the span's event."""
        self.attrs.update(attrs)
        return self

    def __enter__(self):
        stack = getattr(_STACK, "spans", None)
        if stack is None:
            stack = _STACK.spans = []
        if stack:
            self.parent_id = stack[-1].span_id
            self.depth = len(stack)
        stack.append(self)
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb):
        seconds = time.perf_counter() - self._t0
        stack = _STACK.spans
        if stack and stack[-1] is self:
            stack.pop()
        sink = _SINK[0]
        if sink is not None:
            event = {"type": "span", "name": self.name,
                     "span": self.span_id, "parent": self.parent_id,
                     "depth": self.depth, "seconds": seconds}
            if exc_type is not None:
                event["error"] = exc_type.__name__
            event.update(self.attrs)
            sink(event)
        return False


def span(name, **attrs):
    """Open a timed scope: ``with span("serve.manager.flush"): ...``.

    Returns the shared no-op span when observability is disabled or no
    sink is installed — zero allocation on the fast path.
    """
    if _SINK[0] is None or not enabled():
        return _NOOP
    return Span(name, attrs)


@contextlib.contextmanager
def capture():
    """Collect span events into a list for the duration of the scope::

        with obs.capture() as events:
            run()
        summarize(events)

    Restores the previous sink on exit.
    """
    events = []
    previous = set_sink(events.append)
    try:
        yield events
    finally:
        set_sink(previous)


class JsonlSink:
    """Append span events as JSON lines to a file (one event per line).

    Thread-safe; flushes per event so a crash loses at most the event
    being written.  Use as a context manager or call :meth:`close`.
    """

    def __init__(self, path):
        self.path = str(path)
        self._fh = open(self.path, "a", encoding="utf-8")
        self._lock = threading.Lock()

    def __call__(self, event):
        line = json.dumps(event, sort_keys=True)
        with self._lock:
            if self._fh is not None:
                self._fh.write(line + "\n")
                self._fh.flush()

    def close(self):
        with self._lock:
            if self._fh is not None:
                self._fh.close()
                self._fh = None

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
        return False
