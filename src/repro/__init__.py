"""repro — Learn to Explore (LTE): a full reproduction of
"Learn to Explore: on Bootstrapping Interactive Data Exploration with
Meta-learning" (Cao, Xie, Huang — ICDE 2023).

Packages
--------
``repro.core``
    The paper's contribution: meta-task generation, the memory-augmented
    meta-learner, tabular preprocessing, the few-shot optimizer and the
    public :class:`~repro.core.LTE` framework.
``repro.nn`` / ``repro.ml`` / ``repro.geometry`` / ``repro.data``
    Substrates built from scratch: autograd NN engine, classical ML
    (k-means, GMM, Jenks, SVM), hull/region geometry, synthetic datasets.
``repro.baselines``
    AL-SVM and DSM explore-by-example baselines.
``repro.explore``
    Oracles, metrics and end-to-end exploration runners.
``repro.bench``
    The harness regenerating every table and figure of the paper.
``repro.serve``
    Batched multi-session serving: many concurrent exploration sessions
    adapted in fused tensor batches over one shared LTE, with a
    versioned prediction cache.
``repro.persist``
    Versioned checkpoint/restore (npz + JSON manifest with schema
    version and content digest) for pretrained artifacts, resumable
    sessions and warm-started serving snapshots.
``repro.shard``
    Multi-process sharded serving: a gateway routing sessions across a
    pool of worker processes (one warm-started LTE replica each) with
    admission control, crash isolation and rolling model broadcasts.
``repro.store``
    Chunked columnar dataset store: fixed-size row chunks (in memory or
    memory-mapped from disk) with per-chunk zone maps, and a scan
    planner that prunes whole chunks a region predicate provably cannot
    touch — out-of-core pretraining and serving at chunk-bounded memory.
``repro.obs``
    Observability: process-wide metrics registries (counters, gauges,
    deterministically mergeable fixed-bucket histograms), a lightweight
    span tracer, and exporters (Prometheus text, JSONL, a summarize
    CLI).  Numerics-neutral and near-zero cost when ``REPRO_OBS=off``;
    shard workers ship snapshots to the gateway for one merged fleet
    view.
"""

from .core import LTE, LTEConfig

__version__ = "1.0.0"

__all__ = ["LTE", "LTEConfig", "__version__"]
