"""Pool-based active learning (the baselines' interaction loop).

Both AIDE-style AL-SVM and DSM iterate: fit a model on the labelled set,
pick the pool tuple the model is least certain about, ask the user for its
label, repeat until the budget is spent.  The initial seed labels come from
query-agnostic random sampling (the paper notes this initial-sampling cost
is *not counted* in the baselines' budgets, Section VIII-B).
"""

from __future__ import annotations

import numpy as np

__all__ = ["ActiveLearningLoop", "seed_labels"]


def seed_labels(pool, label_fn, rng, max_probes=1000):
    """Random probing until both classes appear (or probes run out).

    Returns ``(indices, labels)`` of the probed pool rows.  The probes are
    "free" (query-agnostic sampling, paper ref. [63]).
    """
    n = len(pool)
    order = rng.permutation(n)[:min(max_probes, n)]
    labels = label_fn(pool[order])
    found_pos = np.flatnonzero(labels == 1)
    found_neg = np.flatnonzero(labels == 0)
    if len(found_pos) == 0 or len(found_neg) == 0:
        # Single-class sample: hand back whatever was probed (capped).
        take = order[:min(4, len(order))]
        return take, labels[:len(take)]
    take = np.concatenate([found_pos[:2], found_neg[:2]])
    return order[take], labels[take]


class ActiveLearningLoop:
    """Generic uncertainty-driven labelling loop.

    Parameters
    ----------
    model:
        Object with ``fit(X, y)`` and ``uncertainty(X) -> (n,)`` where
        *smaller* means more uncertain (e.g. |SVM margin|).
    pool:
        (n x d) candidate tuples the learner may ask about.
    label_fn:
        Callable (k x d) -> 0/1 labels; each call spends budget.
    budget:
        Total number of labels the loop may request.
    """

    def __init__(self, model, pool, label_fn, budget, seed=0):
        if budget < 1:
            raise ValueError("budget must be >= 1")
        self.model = model
        self.pool = np.atleast_2d(np.asarray(pool, dtype=np.float64))
        self.label_fn = label_fn
        self.budget = int(budget)
        self.rng = np.random.default_rng(seed)
        self.labelled_x = None
        self.labelled_y = None

    def run(self):
        """Execute the loop; returns the fitted model."""
        seed_idx, seed_y = seed_labels(self.pool, self.label_fn, self.rng)
        available = np.ones(len(self.pool), dtype=bool)
        available[seed_idx] = False
        xs = list(self.pool[seed_idx])
        ys = list(seed_y)

        spent = 0
        while spent < self.budget and available.any():
            self.model.fit(np.asarray(xs), np.asarray(ys))
            candidates = np.flatnonzero(available)
            scores = self.model.uncertainty(self.pool[candidates])
            pick = candidates[int(np.argmin(scores))]
            label = self.label_fn(self.pool[pick][None, :])[0]
            xs.append(self.pool[pick])
            ys.append(label)
            available[pick] = False
            spent += 1

        self.labelled_x = np.asarray(xs)
        self.labelled_y = np.asarray(ys)
        self.model.fit(self.labelled_x, self.labelled_y)
        return self.model
