"""Factorized DSM: per-subspace dual-space models, conjunctively combined.

DSM's published system (Huang et al., VLDB'19) *factorizes* the user
interest: under subspatial convexity + conjunctivity it maintains one
polytope model per low-dimensional subspace and intersects their
decisions.  Factorization keeps the provable regions fat — a 2-D hull of
k positives covers far more of its subspace than a 8-D hull covers of the
full space — which is DSM's answer to the curse of dimensionality.

This variant consumes *per-subspace* labels (the same protocol LTE's
initial exploration uses), making it the equal-budget head-to-head
competitor; the non-factorized :class:`~repro.baselines.dsm.DSMExplorer`
matches the paper's full-space-labelling comparison instead.
"""

from __future__ import annotations

import numpy as np

from ..geometry.polytope import PolytopeModel
from ..ml.svm import SVC

__all__ = ["FactorizedDSMExplorer"]


class _SubspaceDSM:
    """One subspace's dual-space model: polytope + SVM fallback."""

    def __init__(self, state, C, gamma, seed, max_negative_anchors):
        self.state = state
        self.polytope = PolytopeModel(
            state.subspace.dim, max_negative_anchors=max_negative_anchors)
        self.svm = SVC(C=C, kernel="rbf", gamma=gamma, seed=seed)
        self._x = None
        self._y = None

    def fit(self, raw_tuples, labels):
        scaled = self.state.to_scaled(raw_tuples)
        labels = np.asarray(labels).ravel().astype(np.int64)
        self.polytope.update(scaled, labels)
        self._x, self._y = scaled, labels
        self.svm.fit(scaled, labels)
        return self

    def predict(self, raw_points):
        scaled = self.state.to_scaled(np.atleast_2d(raw_points))
        codes = self.polytope.three_set_partition(scaled)
        result = np.empty(len(scaled), dtype=np.int64)
        result[codes == 1] = 1
        result[codes == 0] = 0
        uncertain = codes == -1
        if uncertain.any():
            result[uncertain] = self.svm.predict(scaled[uncertain])
        return result

    def three_set_metric(self, raw_points):
        scaled = self.state.to_scaled(np.atleast_2d(raw_points))
        return self.polytope.three_set_metric(scaled)


class FactorizedDSMExplorer:
    """DSM with per-subspace factorization (equal-budget competitor).

    Parameters
    ----------
    states:
        ``{Subspace: SubspaceState}`` — LTE's offline artifacts, reused so
        every competitor sees the same initial tuples and normalization.
    """

    def __init__(self, states, C=10.0, gamma=None, seed=0,
                 max_negative_anchors=20):
        if not states:
            raise ValueError("need at least one subspace state")
        self.states = dict(states)
        self.C = C
        self.gamma = gamma
        self.seed = seed
        self.max_negative_anchors = max_negative_anchors
        self._models = {}

    # ------------------------------------------------------------------
    def fit_subspace(self, subspace, raw_tuples, labels):
        """Feed one subspace's labelled tuples (raw coordinates)."""
        model = _SubspaceDSM(self.states[subspace], C=self.C,
                             gamma=self.gamma, seed=self.seed,
                             max_negative_anchors=self.max_negative_anchors)
        model.fit(raw_tuples, labels)
        self._models[subspace] = model
        return model

    def predict_subspace(self, subspace, raw_points):
        if subspace not in self._models:
            raise RuntimeError("subspace {} not fitted".format(subspace))
        return self._models[subspace].predict(raw_points)

    def predict(self, rows):
        """Conjunctive 0/1 UIR membership over all fitted subspaces."""
        if not self._models:
            raise RuntimeError("no subspace fitted yet")
        rows = np.atleast_2d(np.asarray(rows, dtype=np.float64))
        result = np.ones(len(rows), dtype=np.int64)
        for subspace, model in self._models.items():
            result &= model.predict(subspace.project(rows))
        return result

    def three_set_metric(self, rows):
        """Mean per-subspace certified fraction (convergence signal)."""
        rows = np.atleast_2d(np.asarray(rows, dtype=np.float64))
        metrics = [model.three_set_metric(subspace.project(rows))
                   for subspace, model in self._models.items()]
        return float(np.mean(metrics)) if metrics else 0.0
