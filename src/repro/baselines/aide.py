"""AIDE baseline: decision-tree explore-by-example (Dimitriadou et al.).

AIDE (Table I of the paper) models the user-interest region with a
decision-tree classifier under active learning; its linear (axis-aligned)
region representation is the weakest of the lineage, which is why the
paper's comparisons focus on its SVM successor — we include it for
completeness of the evolution table.

Selection rule: AIDE samples around the boundaries of the tree's relevant
regions; with the shared :class:`ActiveLearningLoop` this is realized by
treating leaf-probability closeness to 0.5 (impure leaves) as uncertainty,
with a small distance bonus toward the relevant-region boundary.
"""

from __future__ import annotations

import numpy as np

from ..ml.decision_tree import DecisionTree
from ..ml.scaler import MinMaxScaler
from .active_learning import ActiveLearningLoop

__all__ = ["AIDEExplorer"]


class _UncertainTree(DecisionTree):
    """Decision tree exposing the uncertainty used by active learning."""

    def uncertainty(self, features):
        return np.abs(self.predict_proba(features) - 0.5)


class AIDEExplorer:
    """Full-space AIDE baseline.

    Parameters
    ----------
    budget:
        Number of user labels (full-space tuples).
    max_depth:
        Decision-tree depth cap (controls region granularity).
    """

    def __init__(self, budget=30, max_depth=6, pool_size=2000, seed=0):
        self.budget = int(budget)
        self.max_depth = int(max_depth)
        self.pool_size = int(pool_size)
        self.seed = seed
        self.scaler = None
        self.model = None
        self.labels_used_ = 0

    def explore(self, rows, label_fn):
        """Run the exploration on raw full-space ``rows``."""
        rows = np.atleast_2d(np.asarray(rows, dtype=np.float64))
        self.scaler = MinMaxScaler().fit(rows)
        scaled = self.scaler.transform(rows)
        rng = np.random.default_rng(self.seed)
        pool_idx = rng.choice(len(scaled),
                              size=min(self.pool_size, len(scaled)),
                              replace=False)

        def scaled_label_fn(points):
            return label_fn(self.scaler.inverse_transform(points))

        model = _UncertainTree(max_depth=self.max_depth)
        loop = ActiveLearningLoop(model, scaled[pool_idx], scaled_label_fn,
                                  budget=self.budget, seed=self.seed)
        self.model = loop.run()
        self.labels_used_ = self.budget
        return self

    def predict(self, rows):
        """0/1 UIR membership for raw full-space rows."""
        if self.model is None:
            raise RuntimeError("explore must run before predict")
        return self.model.predict(self.scaler.transform(np.atleast_2d(rows)))

    def relevant_boxes(self):
        """The tree's positive regions as raw-coordinate boxes."""
        if self.model is None:
            raise RuntimeError("explore must run before relevant_boxes")
        boxes = self.model.positive_boxes(
            np.zeros(self.scaler.min_.size), np.ones(self.scaler.min_.size))
        return [(self.scaler.inverse_transform(lo[None, :])[0],
                 self.scaler.inverse_transform(hi[None, :])[0])
                for lo, hi in boxes]
