"""Explore-by-example baselines: AL-SVM, DSM, and per-subspace SVM variants."""

from .active_learning import ActiveLearningLoop, seed_labels
from .aide import AIDEExplorer
from .al_svm import ALSVMExplorer
from .dsm import DSMExplorer
from .dsm_factorized import FactorizedDSMExplorer
from .svm_variants import SubspaceSVMExplorer

__all__ = [
    "ActiveLearningLoop", "seed_labels",
    "AIDEExplorer", "ALSVMExplorer", "DSMExplorer",
    "FactorizedDSMExplorer", "SubspaceSVMExplorer",
]
