"""Per-subspace SVM variants for the generalized-UIR comparison.

Section VIII-C feeds every competitor the *same* initial tuple set LTE
labels (the C_s centers + delta random tuples per subspace) and compares:

* **SVM**  — per-subspace RBF SVM on min-max scaled raw coordinates;
* **SVMr** — the same SVM on LTE's tabular-preprocessed representation
  vectors (isolating the benefit of the preprocessing);

predictions combine conjunctively across subspaces, like LTE's.  DSM is not
run here because with non-convex UISs it degenerates into SVM (paper
Section VIII-C).
"""

from __future__ import annotations

import numpy as np

from ..ml.scaler import MinMaxScaler
from ..ml.svm import SVC

__all__ = ["SubspaceSVMExplorer"]


class SubspaceSVMExplorer:
    """Conjunctive per-subspace SVM trained on a fixed labelled set.

    Parameters
    ----------
    states:
        ``{Subspace: SubspaceState}`` — the LTE offline artifacts (reused
        for the preprocessors and the initial-tuple construction, so all
        competitors see identical training data).
    encoded:
        True for SVMr (tabular-preprocessed features), False for plain SVM.
    """

    def __init__(self, states, encoded=False, C=10.0, gamma=None, seed=0):
        if not states:
            raise ValueError("need at least one subspace state")
        self.states = dict(states)
        self.encoded = bool(encoded)
        self.C = C
        self.gamma = gamma
        self.seed = seed
        self._models = {}
        self._scalers = {}

    # ------------------------------------------------------------------
    def fit_subspace(self, subspace, tuples, labels):
        """Train one subspace's SVM on raw tuples + 0/1 labels."""
        features = self._featurize(subspace, tuples)
        model = SVC(C=self.C, kernel="rbf", gamma=self.gamma, seed=self.seed)
        model.fit(features, labels)
        self._models[subspace] = model
        return model

    def _featurize(self, subspace, points):
        state = self.states[subspace]
        points = np.atleast_2d(np.asarray(points, dtype=np.float64))
        if self.encoded:
            return state.encode(points)
        # Plain SVM variant: min-max scaled raw coordinates (the state's
        # subspace scaler).
        return state.to_scaled(points)

    # ------------------------------------------------------------------
    def predict_subspace(self, subspace, points):
        if subspace not in self._models:
            raise RuntimeError("subspace {} not fitted".format(subspace))
        return self._models[subspace].predict(
            self._featurize(subspace, points))

    def predict(self, rows):
        """Conjunctive 0/1 UIR membership over all fitted subspaces."""
        rows = np.atleast_2d(np.asarray(rows, dtype=np.float64))
        result = np.ones(len(rows), dtype=np.int64)
        for subspace, model in self._models.items():
            projected = subspace.project(rows)
            result &= model.predict(self._featurize(subspace, projected))
        return result
