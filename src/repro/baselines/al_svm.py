"""AL-SVM: AIDE-style active learning over an RBF-kernel SVM.

The user-interest classifier is a soft-margin SVM on min-max scaled
full-space features; active learning queries the pool tuple closest to the
decision boundary (smallest |decision value|) each round — the "most
difficult to discriminate" tuples of the explore-by-example literature.
"""

from __future__ import annotations

import numpy as np

from ..ml.scaler import MinMaxScaler
from ..ml.svm import SVC
from .active_learning import ActiveLearningLoop

__all__ = ["ALSVMExplorer"]


class _UncertainSVC(SVC):
    """SVC exposing the margin-based uncertainty used by active learning."""

    def uncertainty(self, features):
        return np.abs(self.decision_function(features))


class ALSVMExplorer:
    """Full-space AL-SVM baseline.

    Parameters
    ----------
    budget:
        Number of user labels (full-space tuples).
    pool_size:
        Candidate-pool subsample size for the selection step.
    """

    def __init__(self, budget=30, C=10.0, gamma=None, pool_size=2000, seed=0):
        self.budget = int(budget)
        self.C = C
        self.gamma = gamma
        self.pool_size = int(pool_size)
        self.seed = seed
        self.scaler = None
        self.model = None
        self.labels_used_ = 0

    def explore(self, rows, label_fn):
        """Run the exploration on raw full-space ``rows``.

        ``label_fn(rows) -> 0/1`` is the user/oracle.  Returns self.
        """
        rows = np.atleast_2d(np.asarray(rows, dtype=np.float64))
        self.scaler = MinMaxScaler().fit(rows)
        scaled = self.scaler.transform(rows)
        rng = np.random.default_rng(self.seed)
        pool_idx = rng.choice(len(scaled),
                              size=min(self.pool_size, len(scaled)),
                              replace=False)

        def scaled_label_fn(points):
            return label_fn(self.scaler.inverse_transform(points))

        model = _UncertainSVC(C=self.C, kernel="rbf", gamma=self.gamma,
                              seed=self.seed)
        loop = ActiveLearningLoop(model, scaled[pool_idx], scaled_label_fn,
                                  budget=self.budget, seed=self.seed)
        self.model = loop.run()
        self.labels_used_ = self.budget
        return self

    def predict(self, rows):
        """0/1 UIR membership for raw full-space rows."""
        if self.model is None:
            raise RuntimeError("explore must run before predict")
        return self.model.predict(self.scaler.transform(np.atleast_2d(rows)))
