"""DSM baseline: dual-space model with polytope optimization (VLDB'19).

DSM assumes the user-interest region is convex (and conjunctive across
subspaces, which makes the full-space UIR convex when subspaces are
disjoint).  It maintains the provable positive/negative regions of
:class:`~repro.geometry.polytope.PolytopeModel`; an SVM handles only the
uncertain remainder, and active learning samples only from it.  Prediction:

* inside the positive hull            -> interesting (certified);
* inside a provable negative cone     -> not interesting (certified);
* otherwise                           -> SVM vote.

The three-set metric (fraction of certified space) doubles as DSM's
convergence indicator.  When the true region is *not* convex the polytope
certificates become unsound and DSM degenerates to its SVM — exactly the
degradation the paper exploits in Section VIII-C.
"""

from __future__ import annotations

import numpy as np

from ..geometry.polytope import PolytopeModel
from ..ml.scaler import MinMaxScaler
from ..ml.svm import SVC
from .active_learning import seed_labels

__all__ = ["DSMExplorer"]


class DSMExplorer:
    """Full-space DSM exploration baseline.

    Parameters
    ----------
    budget:
        Number of user labels (full-space tuples).
    pool_size:
        Candidate-pool subsample for uncertainty selection.
    """

    def __init__(self, budget=30, C=10.0, gamma=None, pool_size=2000, seed=0,
                 candidate_shortlist=100, max_negative_anchors=20,
                 metric_every=5):
        self.budget = int(budget)
        self.C = C
        self.gamma = gamma
        self.pool_size = int(pool_size)
        self.seed = seed
        #: only the `candidate_shortlist` smallest-margin candidates are
        #: polytope-partitioned each round (the certified ones carry no
        #: information anyway); bounds the per-round geometry cost.
        self.candidate_shortlist = int(candidate_shortlist)
        #: negative-cone construction uses at most this many negative
        #: examples (most recent first) — in high dimension the facet count
        #: of the positive hull makes each cone test expensive.
        self.max_negative_anchors = int(max_negative_anchors)
        #: the three-set convergence metric is sampled every k rounds.
        self.metric_every = max(1, int(metric_every))
        self.scaler = None
        self.polytope = None
        self.svm = None
        self.labels_used_ = 0
        self.three_set_history_ = []

    # ------------------------------------------------------------------
    def explore(self, rows, label_fn):
        """Run DSM exploration on raw full-space ``rows``."""
        rows = np.atleast_2d(np.asarray(rows, dtype=np.float64))
        self.scaler = MinMaxScaler().fit(rows)
        scaled = self.scaler.transform(rows)
        dim = scaled.shape[1]
        rng = np.random.default_rng(self.seed)
        pool_idx = rng.choice(len(scaled),
                              size=min(self.pool_size, len(scaled)),
                              replace=False)
        pool = scaled[pool_idx]

        def scaled_label_fn(points):
            return label_fn(self.scaler.inverse_transform(points))

        self.polytope = PolytopeModel(
            dim, max_negative_anchors=self.max_negative_anchors)
        seed_idx, seed_y = seed_labels(pool, scaled_label_fn, rng)
        xs = list(pool[seed_idx])
        ys = list(seed_y)
        self.polytope.update(np.asarray(xs), np.asarray(ys))
        available = np.ones(len(pool), dtype=bool)
        available[seed_idx] = False

        metric_sample = pool[np.random.default_rng(self.seed).choice(
            len(pool), size=min(200, len(pool)), replace=False)]
        spent = 0
        while spent < self.budget and available.any():
            self.svm = SVC(C=self.C, kernel="rbf", gamma=self.gamma,
                           seed=self.seed).fit(np.asarray(xs), np.asarray(ys))
            candidates = np.flatnonzero(available)
            cand_points = pool[candidates]
            # Shortlist by SVM margin, then drop candidates the polytope
            # already certifies: DSM samples from the *uncertain* region.
            margins = np.abs(self.svm.decision_function(cand_points))
            order = np.argsort(margins)[:self.candidate_shortlist]
            shortlist = candidates[order]
            codes = self.polytope.three_set_partition(pool[shortlist])
            uncertain = shortlist[codes == -1]
            pick = int(uncertain[0]) if len(uncertain) else int(shortlist[0])
            label = scaled_label_fn(pool[pick][None, :])[0]
            xs.append(pool[pick])
            ys.append(label)
            self.polytope.update(pool[pick][None, :], [label])
            available[pick] = False
            spent += 1
            if spent % self.metric_every == 0 or spent == self.budget:
                self.three_set_history_.append(
                    self.polytope.three_set_metric(metric_sample))

        self.svm = SVC(C=self.C, kernel="rbf", gamma=self.gamma,
                       seed=self.seed).fit(np.asarray(xs), np.asarray(ys))
        self.labels_used_ = spent
        return self

    # ------------------------------------------------------------------
    def predict(self, rows):
        """0/1 UIR membership: polytope certificates, SVM elsewhere."""
        if self.svm is None:
            raise RuntimeError("explore must run before predict")
        scaled = self.scaler.transform(np.atleast_2d(rows))
        codes = self.polytope.three_set_partition(scaled)
        result = np.empty(len(scaled), dtype=np.int64)
        certified_pos = codes == 1
        certified_neg = codes == 0
        uncertain = codes == -1
        result[certified_pos] = 1
        result[certified_neg] = 0
        if uncertain.any():
            result[uncertain] = self.svm.predict(scaled[uncertain])
        return result

    def three_set_metric(self, rows):
        """Certified fraction of ``rows`` (DSM's convergence signal)."""
        scaled = self.scaler.transform(np.atleast_2d(rows))
        return self.polytope.three_set_metric(scaled)
