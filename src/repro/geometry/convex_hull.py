"""Convex hulls with fast point-containment tests.

Convex hulls are the basic building block of simulated user-interest
subregions (Section V-C): a UIS is a union of alpha hulls, each
circumscribing the psi nearest cluster centers of a random seed center.
The paper only ever needs the membership predicate "is tuple tau inside
hull H", so this module exposes exactly that, robust to the degenerate
inputs random sampling produces (collinear points, 1-D subspaces).
"""

from __future__ import annotations

import numpy as np

try:
    from scipy.spatial import ConvexHull as _SciPyHull
    from scipy.spatial import QhullError
except ImportError:  # pragma: no cover - scipy is a hard dependency
    _SciPyHull = None
    QhullError = Exception

__all__ = ["Hull", "convex_hull_vertices_2d"]

_EPS = 1e-9


def convex_hull_vertices_2d(points):
    """Andrew's monotone chain: CCW hull vertices of 2-D points.

    A dependency-free 2-D hull used for cross-checking the scipy-based
    implementation in tests and as a fallback; returns the vertices in
    counter-clockwise order without repetition.
    """
    pts = np.unique(np.asarray(points, dtype=np.float64), axis=0)
    if len(pts) <= 2:
        return pts
    # Sort lexicographically.
    order = np.lexsort((pts[:, 1], pts[:, 0]))
    pts = pts[order]

    def cross(o, a, b):
        return (a[0] - o[0]) * (b[1] - o[1]) - (a[1] - o[1]) * (b[0] - o[0])

    lower = []
    for p in pts:
        while len(lower) >= 2 and cross(lower[-2], lower[-1], p) <= 0:
            lower.pop()
        lower.append(p)
    upper = []
    for p in pts[::-1]:
        while len(upper) >= 2 and cross(upper[-2], upper[-1], p) <= 0:
            upper.pop()
        upper.append(p)
    return np.asarray(lower[:-1] + upper[:-1])


class Hull:
    """Convex hull of a point set supporting vectorized containment.

    Handles three regimes:

    * 1-D point sets -> an interval [min, max];
    * full-dimensional sets -> Qhull half-space representation
      ``A x + b <= 0``;
    * degenerate sets (points lying in an affine subspace, e.g. collinear
      2-D samples) -> hull of the points projected onto their affine span,
      plus an "on-the-span" check.
    """

    def __init__(self, points):
        points = np.atleast_2d(np.asarray(points, dtype=np.float64))
        if points.size == 0:
            raise ValueError("cannot build hull of no points")
        self.points = points
        self.dim = points.shape[1]
        self._interval = None
        self._equations = None
        self._span = None  # (origin, basis, sub_hull) for degenerate sets
        self._build()

    # ------------------------------------------------------------------
    def _build(self):
        pts = self.points
        if self.dim == 1:
            self._interval = (float(pts.min()), float(pts.max()))
            return
        # Determine the affine rank.
        origin = pts.mean(axis=0)
        centered = pts - origin
        u, s, vt = np.linalg.svd(centered, full_matrices=False)
        scale = max(1.0, float(np.abs(s).max()) if s.size else 1.0)
        rank = int(np.sum(s > 1e-9 * scale))
        if rank >= self.dim and len(pts) > self.dim:
            try:
                hull = _SciPyHull(pts)
                self._equations = hull.equations
                self.vertices = pts[hull.vertices]
                return
            except QhullError:
                try:  # joggle inputs to break precision degeneracies
                    hull = _SciPyHull(pts, qhull_options="QJ")
                    self._equations = hull.equations
                    self.vertices = pts[hull.vertices]
                    return
                except QhullError:
                    pass  # fall through to the degenerate path
        if rank == 0:
            # All points coincide.
            self._span = (origin, np.zeros((0, self.dim)), None)
            self.vertices = pts[:1]
            return
        if rank >= self.dim:
            # Full-rank input on which Qhull failed twice: conservative
            # bounding-box fallback (guards against unbounded recursion).
            self._span = None
            lo, hi = pts.min(axis=0), pts.max(axis=0)
            eye = np.eye(self.dim)
            self._equations = np.vstack([
                np.hstack([eye, -hi[:, None]]),
                np.hstack([-eye, lo[:, None]]),
            ])
            self.vertices = pts
            return
        basis = vt[:rank]
        projected = centered @ basis.T
        sub_hull = Hull(projected) if rank >= 1 else None
        self._span = (origin, basis, sub_hull)
        self.vertices = pts

    # ------------------------------------------------------------------
    def contains(self, queries, eps=1e-9):
        """Boolean mask: which query points lie inside (or on) the hull."""
        queries = np.atleast_2d(np.asarray(queries, dtype=np.float64))
        if queries.shape[1] != self.dim:
            raise ValueError("query dimension {} != hull dimension {}"
                             .format(queries.shape[1], self.dim))
        if self._interval is not None:
            lo, hi = self._interval
            col = queries[:, 0]
            return (col >= lo - eps) & (col <= hi + eps)
        if self._equations is not None:
            # A x + b <= eps for every facet.
            values = queries @ self._equations[:, :-1].T \
                + self._equations[:, -1]
            return (values <= eps * max(1.0, np.abs(queries).max())).all(axis=1)
        # Degenerate: check residual distance to the span, then recurse.
        origin, basis, sub_hull = self._span
        centered = queries - origin
        if basis.shape[0] == 0:
            scale = max(1.0, float(np.abs(self.points).max()))
            return np.linalg.norm(centered, axis=1) <= 1e-6 * scale
        coords = centered @ basis.T
        residual = centered - coords @ basis
        scale = max(1.0, float(np.abs(self.points).max()))
        on_span = np.linalg.norm(residual, axis=1) <= 1e-6 * scale
        inside = sub_hull.contains(coords) if sub_hull is not None \
            else np.ones(len(queries), dtype=bool)
        return on_span & inside

    def contains_point(self, point, eps=1e-9):
        """Containment test for a single point."""
        return bool(self.contains(np.asarray(point)[None, :], eps=eps)[0])

    # ------------------------------------------------------------------
    @property
    def bounding_box(self):
        """(lo, hi) arrays of the axis-aligned bounding box."""
        return self.points.min(axis=0), self.points.max(axis=0)

    def __repr__(self):
        return "Hull(dim={}, n_points={})".format(self.dim, len(self.points))
