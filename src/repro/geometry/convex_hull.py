"""Convex hulls with fast point-containment tests.

Convex hulls are the basic building block of simulated user-interest
subregions (Section V-C): a UIS is a union of alpha hulls, each
circumscribing the psi nearest cluster centers of a random seed center.
The paper only ever needs the membership predicate "is tuple tau inside
hull H", so this module exposes exactly that, robust to the degenerate
inputs random sampling produces (collinear points, 1-D subspaces).

Every hull — full-dimensional, 1-D interval, or degenerate affine-span —
is lowered at construction time to one **canonical halfspace system**

    A x + b <= eps * tol_scale + tol_fixed     (row-wise)

so containment is a single matmul-plus-compare, and so hulls can be
stacked facet-for-facet into the packed engine
(:mod:`repro.geometry.engine`) which tests all points against all hulls
in one BLAS call.  The lowering rules:

* **1-D interval** ``[lo, hi]`` -> rows ``(+1, -hi)`` and ``(-1, +lo)``;
* **full-dimensional** -> Qhull's facet equations verbatim;
* **degenerate affine span** (rank r < d) -> two opposing rows per
  orthonormal complement direction (an on-the-span band of fixed width
  ``1e-6 * scale``) plus the recursively lowered sub-hull of the points
  projected onto the span, mapped back through the affine embedding
  (facets compose linearly: ``a . (B (x - o)) + b`` is again one row).
  Note the band is per-direction (L-inf over the complement) — an L2
  residual ball is not polyhedral — so compared to a residual-norm
  test, membership differs only at the band's corners, within
  ``sqrt(codim) * 1e-6 * scale`` of the span.

Facet tolerances are *relative to the equation offsets*
(``tol_scale = max(1, |b|)``), so boundary points of large-magnitude
data are classified as robustly as unit-cube data; span rows carry a
fixed tolerance and ignore ``eps``, matching the historical residual
test.
"""

from __future__ import annotations

from collections import namedtuple

import numpy as np

try:
    from scipy.spatial import ConvexHull as _SciPyHull
    from scipy.spatial import QhullError
except ImportError:  # pragma: no cover - scipy is a hard dependency
    _SciPyHull = None
    QhullError = Exception

__all__ = ["Hull", "HalfspaceSystem", "as_query_array",
           "convex_hull_vertices_2d"]

_EPS = 1e-9
_SPAN_EPS = 1e-6


class HalfspaceSystem(namedtuple("HalfspaceSystem",
                                 ["A", "b", "tol_scale", "tol_fixed"])):
    """A hull lowered to uniform facet form ``A x + b <= tol(eps)``.

    ``A`` is ``(n_facets, dim)``, the other fields ``(n_facets,)``.  The
    effective per-row tolerance is ``eps * tol_scale + tol_fixed``:
    regular facets scale with the caller's ``eps`` (``tol_fixed = 0``),
    affine-span band rows are fixed-width (``tol_scale = 0``).
    """

    __slots__ = ()

    @property
    def n_facets(self):
        return len(self.b)

    @property
    def dim(self):
        return self.A.shape[1]

    def tol(self, eps=_EPS):
        """Resolved per-row tolerance vector for a given ``eps``."""
        return eps * self.tol_scale + self.tol_fixed


def as_query_array(points, dim):
    """Normalize query input to a float64 ``(n, dim)`` array.

    Empty inputs — ``[]``, ``(0,)``, ``(0, dim)`` — become ``(0, dim)``
    so every containment predicate returns an empty mask instead of
    crashing or misreading a single zero-width point; a width mismatch
    (including ``(n, 0)`` with ``n > 0``) raises ``ValueError``.
    """
    points = np.asarray(points, dtype=np.float64)
    if points.size == 0 and (points.ndim < 2 or points.shape[0] == 0):
        return np.zeros((0, dim), dtype=np.float64)
    points = np.atleast_2d(points)
    if points.shape[1] != dim:
        raise ValueError("query dimension {} != expected dimension {}"
                         .format(points.shape[1], dim))
    return points


def convex_hull_vertices_2d(points):
    """Andrew's monotone chain: CCW hull vertices of 2-D points.

    A dependency-free 2-D hull used for cross-checking the scipy-based
    implementation in tests and as a fallback; returns the vertices in
    counter-clockwise order without repetition.
    """
    pts = np.unique(np.asarray(points, dtype=np.float64), axis=0)
    if len(pts) <= 2:
        return pts
    # Sort lexicographically.
    order = np.lexsort((pts[:, 1], pts[:, 0]))
    pts = pts[order]

    def cross(o, a, b):
        return (a[0] - o[0]) * (b[1] - o[1]) - (a[1] - o[1]) * (b[0] - o[0])

    lower = []
    for p in pts:
        while len(lower) >= 2 and cross(lower[-2], lower[-1], p) <= 0:
            lower.pop()
        lower.append(p)
    upper = []
    for p in pts[::-1]:
        while len(upper) >= 2 and cross(upper[-2], upper[-1], p) <= 0:
            upper.pop()
        upper.append(p)
    return np.asarray(lower[:-1] + upper[:-1])


class Hull:
    """Convex hull of a point set supporting vectorized containment.

    Handles three regimes:

    * 1-D point sets -> an interval [min, max];
    * full-dimensional sets -> Qhull half-space representation
      ``A x + b <= 0``;
    * degenerate sets (points lying in an affine subspace, e.g. collinear
      2-D samples) -> hull of the points projected onto their affine span,
      plus a per-direction "on-the-span" band check (see the module
      docstring for the band's exact semantics).

    All three are lowered once, at construction, to a canonical
    :class:`HalfspaceSystem` (see the module docstring), which both
    :meth:`contains` and the packed engine evaluate.
    """

    def __init__(self, points):
        points = np.atleast_2d(np.asarray(points, dtype=np.float64))
        if points.size == 0:
            raise ValueError("cannot build hull of no points")
        self.points = points
        self.dim = points.shape[1]
        self._interval = None
        self._equations = None
        self._span = None  # (origin, basis, sub_hull) for degenerate sets
        self._complement = None  # orthonormal complement of the span
        self._bbox_fallback = False  # Qhull failed twice; equations = bbox
        self._build()
        self._lower()

    # ------------------------------------------------------------------
    def _build(self):
        pts = self.points
        if self.dim == 1:
            self._interval = (float(pts.min()), float(pts.max()))
            self.vertices = np.array([[self._interval[0]],
                                      [self._interval[1]]])
            return
        # Determine the affine rank.  The economy SVD already yields a
        # complete row space when n >= d; only the few-points-high-dim
        # case needs full matrices for the complement rows (and there U
        # is small, so the extra cost is nil).
        origin = pts.mean(axis=0)
        centered = pts - origin
        u, s, vt = np.linalg.svd(centered,
                                 full_matrices=len(pts) < self.dim)
        scale = max(1.0, float(np.abs(s).max()) if s.size else 1.0)
        rank = int(np.sum(s > 1e-9 * scale))
        if rank >= self.dim and len(pts) > self.dim:
            try:
                hull = _SciPyHull(pts)
                self._equations = hull.equations
                self.vertices = pts[hull.vertices]
                return
            except QhullError:
                try:  # joggle inputs to break precision degeneracies
                    hull = _SciPyHull(pts, qhull_options="QJ")
                    self._equations = hull.equations
                    self.vertices = pts[hull.vertices]
                    return
                except QhullError:
                    pass  # fall through to the degenerate path
        if rank == 0:
            # All points coincide: a zero-width band in every direction.
            self._span = (origin, np.zeros((0, self.dim)), None)
            self._complement = np.eye(self.dim)
            self.vertices = pts[:1]
            return
        if rank >= self.dim:
            # Full-rank input on which Qhull failed twice: conservative
            # bounding-box fallback (guards against unbounded recursion).
            self._span = None
            lo, hi = pts.min(axis=0), pts.max(axis=0)
            eye = np.eye(self.dim)
            self._equations = np.vstack([
                np.hstack([eye, -hi[:, None]]),
                np.hstack([-eye, lo[:, None]]),
            ])
            self._bbox_fallback = True
            self.vertices = pts
            return
        basis = vt[:rank]
        projected = centered @ basis.T
        sub_hull = Hull(projected) if rank >= 1 else None
        self._span = (origin, basis, sub_hull)
        self._complement = vt[rank:]
        self.vertices = pts

    # ------------------------------------------------------------------
    def _lower(self):
        """Compute the canonical halfspace system for this hull.

        Every lowering *starts with the ``2 d`` bounding-box rows*
        (rows ``0..d-1``: ``x <= hi``; rows ``d..2d-1``: ``-x <= -lo``
        — an invariant the packed engine's candidate gate reads back).
        The bbox rows make the gate exact: a point rejected by the
        (padded) gate provably fails the system.  For 1-D hulls the
        bbox rows *are* the interval test, so there are no core rows.
        On the degenerate-span path the bbox rows additionally carry
        the span band's fixed tolerance, so a zero-width dimension
        keeps the historical ``1e-6 * scale`` on-the-span slack instead
        of being pinched to the facet tolerance.
        """
        lo, hi = self.points.min(axis=0), self.points.max(axis=0)
        eye = np.eye(self.dim)
        rows_A = [eye, -eye]
        rows_b = [-hi, lo]
        box_b = np.concatenate(rows_b)
        box_band = 0.0 if self._span is None \
            else _SPAN_EPS * max(1.0, float(np.abs(self.points).max()))
        tol_scale = [np.maximum(1.0, np.abs(box_b))]
        tol_fixed = [np.full(2 * self.dim, box_band)]
        if self._equations is not None and not self._bbox_fallback:
            # (On the Qhull-double-failure fallback the equations *are*
            # the bbox rows already emitted above — don't stack twice.)
            A = np.ascontiguousarray(self._equations[:, :-1])
            b = np.ascontiguousarray(self._equations[:, -1])
            rows_A.append(A)
            rows_b.append(b)
            tol_scale.append(np.maximum(1.0, np.abs(b)))
            tol_fixed.append(np.zeros(len(b)))
        elif self._span is not None:
            # Degenerate affine span: a fixed-width band around the span
            # (two opposing rows per orthonormal complement direction)
            # intersected with the sub-hull mapped back to full space.
            origin, basis, sub_hull = self._span
            complement = self._complement
            span_tol = _SPAN_EPS * max(1.0, float(np.abs(self.points).max()))
            rows_A.extend([complement, -complement])
            rows_b.extend([-complement @ origin, complement @ origin])
            tol_scale.append(np.zeros(2 * len(complement)))
            tol_fixed.append(np.full(2 * len(complement), span_tol))
            if sub_hull is not None:
                sub = sub_hull.halfspaces()
                mapped_A = sub.A @ basis
                rows_A.append(mapped_A)
                rows_b.append(sub.b - mapped_A @ origin)
                tol_scale.append(sub.tol_scale)
                tol_fixed.append(sub.tol_fixed)
        self._install_system(HalfspaceSystem(
            np.vstack(rows_A), np.concatenate(rows_b),
            np.concatenate(tol_scale), np.concatenate(tol_fixed)))

    def _install_system(self, system):
        self._system = system
        self._tol_default = system.tol(_EPS)

    def halfspaces(self):
        """The hull's canonical :class:`HalfspaceSystem` lowering.

        Layout invariant: the first ``2 dim`` rows are the bounding-box
        rows (``+e_j`` with offset ``-hi_j`` for ``j < dim``, then
        ``-e_j`` with offset ``lo_j``); core rows follow.
        """
        return self._system

    @classmethod
    def from_halfspaces(cls, points, system):
        """Rebuild a hull from its point set and serialized lowering.

        Skips the SVD / Qhull construction entirely — the restored hull
        answers :meth:`contains` through the exact facet rows it was
        saved with, bit-identically and without recompilation.  Used by
        :class:`~repro.core.optimizer.HullRegistry` restores.
        """
        hull = cls.__new__(cls)
        hull.points = np.atleast_2d(np.asarray(points, dtype=np.float64))
        hull.dim = hull.points.shape[1]
        hull._interval = None
        hull._equations = None
        hull._span = None
        hull._complement = None
        hull._bbox_fallback = False
        hull.vertices = hull.points
        A = np.atleast_2d(np.asarray(system.A, dtype=np.float64))
        if A.shape[1] != hull.dim:
            raise ValueError("halfspace width {} != point dimension {}"
                             .format(A.shape[1], hull.dim))
        hull._install_system(HalfspaceSystem(
            A, np.asarray(system.b, dtype=np.float64).ravel(),
            np.asarray(system.tol_scale, dtype=np.float64).ravel(),
            np.asarray(system.tol_fixed, dtype=np.float64).ravel()))
        return hull

    # ------------------------------------------------------------------
    def contains(self, queries, eps=_EPS):
        """Boolean mask: which query points lie inside (or on) the hull."""
        queries = as_query_array(queries, self.dim)
        if len(queries) == 0:
            return np.zeros(0, dtype=bool)
        system = self._system
        values = queries @ system.A.T + system.b
        tol = self._tol_default if eps == _EPS else system.tol(eps)
        return (values <= tol).all(axis=1)

    def contains_point(self, point, eps=_EPS):
        """Containment test for a single point."""
        return bool(self.contains(np.asarray(point)[None, :], eps=eps)[0])

    # ------------------------------------------------------------------
    @property
    def bounding_box(self):
        """(lo, hi) arrays of the axis-aligned bounding box."""
        return self.points.min(axis=0), self.points.max(axis=0)

    def __repr__(self):
        return "Hull(dim={}, n_points={})".format(self.dim, len(self.points))
