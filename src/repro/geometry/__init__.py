"""Computational-geometry substrate: hulls, regions, DSM polytopes, and
the packed halfspace engine that evaluates them in bulk."""

from .convex_hull import (HalfspaceSystem, Hull, as_query_array,
                          convex_hull_vertices_2d)
from .engine import HullPackCache, PackedHulls, PackedRegion, union_masks
from .polytope import (PolytopeModel, THREE_SET_NEGATIVE, THREE_SET_POSITIVE,
                       THREE_SET_UNCERTAIN)
from .regions import BoxRegion, ConjunctiveRegion, Region, UnionRegion

__all__ = [
    "Hull", "HalfspaceSystem", "as_query_array", "convex_hull_vertices_2d",
    "PackedHulls", "PackedRegion", "HullPackCache", "union_masks",
    "Region", "UnionRegion", "BoxRegion", "ConjunctiveRegion",
    "PolytopeModel",
    "THREE_SET_POSITIVE", "THREE_SET_NEGATIVE", "THREE_SET_UNCERTAIN",
]
