"""Computational-geometry substrate: hulls, regions, DSM polytopes."""

from .convex_hull import Hull, convex_hull_vertices_2d
from .polytope import (PolytopeModel, THREE_SET_NEGATIVE, THREE_SET_POSITIVE,
                       THREE_SET_UNCERTAIN)
from .regions import BoxRegion, ConjunctiveRegion, Region, UnionRegion

__all__ = [
    "Hull", "convex_hull_vertices_2d",
    "Region", "UnionRegion", "BoxRegion", "ConjunctiveRegion",
    "PolytopeModel",
    "THREE_SET_POSITIVE", "THREE_SET_NEGATIVE", "THREE_SET_UNCERTAIN",
]
