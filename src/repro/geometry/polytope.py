"""Dual-space polytope model used by the DSM baseline.

DSM (Huang et al., VLDB 2019) assumes the user-interest region is convex in
each subspace.  Under that assumption, labelled examples induce three
provable sets:

* the **positive region**: the convex hull of positively labelled tuples
  (every point inside is interesting, by convexity);
* the **negative region**: a point ``q`` is provably uninteresting when some
  negative example lies in ``conv(positives U {q})`` — equivalently, when
  the ray from ``q`` through a negative example hits the positive hull;
* the **uncertain region**: everything else; only here must the classifier
  (an SVM) be consulted, and only from here does active learning sample.

The three-set partition also yields DSM's *three-set metric*, a certified
lower bound on model accuracy used as a convergence signal.
"""

from __future__ import annotations

import numpy as np

from .convex_hull import Hull

__all__ = ["PolytopeModel", "THREE_SET_POSITIVE", "THREE_SET_NEGATIVE",
           "THREE_SET_UNCERTAIN"]

THREE_SET_POSITIVE = 1
THREE_SET_NEGATIVE = 0
THREE_SET_UNCERTAIN = -1


class PolytopeModel:
    """Incremental dual-space region model for one subspace.

    Parameters
    ----------
    dim:
        Subspace dimensionality.
    """

    def __init__(self, dim, max_negative_anchors=None):
        self.dim = dim
        #: cap on how many (most recent) negative examples build cones;
        #: None = all.  High-dimensional positive hulls have many facets,
        #: making each cone test expensive.
        self.max_negative_anchors = max_negative_anchors
        self._positives = []
        self._negatives = []
        self._hull = None
        self._stale = False

    # ------------------------------------------------------------------
    def update(self, points, labels):
        """Feed newly labelled tuples (points: n x dim, labels: 0/1)."""
        points = np.atleast_2d(np.asarray(points, dtype=np.float64))
        labels = np.asarray(labels).ravel()
        if points.shape[1] != self.dim:
            raise ValueError("point dim {} != model dim {}".format(
                points.shape[1], self.dim))
        if len(points) != len(labels):
            raise ValueError("points/labels length mismatch")
        for point, label in zip(points, labels):
            if label == 1:
                self._positives.append(point)
            else:
                self._negatives.append(point)
        self._stale = True

    @property
    def positives(self):
        return np.asarray(self._positives).reshape(-1, self.dim)

    @property
    def negatives(self):
        return np.asarray(self._negatives).reshape(-1, self.dim)

    def _positive_hull(self):
        if self._stale or self._hull is None:
            self._hull = Hull(self.positives) if self._positives else None
            self._stale = False
        return self._hull

    # ------------------------------------------------------------------
    def positive_mask(self, queries):
        """Points provably inside the interest region."""
        queries = np.atleast_2d(np.asarray(queries, dtype=np.float64))
        hull = self._positive_hull()
        if hull is None:
            return np.zeros(len(queries), dtype=bool)
        return hull.contains(queries)

    def negative_mask(self, queries):
        """Points provably outside the interest region.

        ``q`` is provably negative iff for some negative example ``x``, the
        ray from ``q`` through ``x`` (beyond ``x``) intersects the positive
        hull — then ``x in conv(positives U {q})`` and a convex UIS
        containing ``q`` would wrongly contain ``x``.
        """
        queries = np.atleast_2d(np.asarray(queries, dtype=np.float64))
        result = np.zeros(len(queries), dtype=bool)
        if not self._negatives:
            return result
        anchors = self._negatives
        if self.max_negative_anchors is not None:
            anchors = anchors[-self.max_negative_anchors:]
        hull = self._positive_hull()
        if hull is None or hull._equations is None:
            # Without a full-dimensional positive hull the provable negative
            # region collapses to the negative examples themselves.
            for x in anchors:
                result |= np.all(np.isclose(queries, x[None, :]), axis=1)
            return result
        equations = hull._equations  # A x + b <= 0 inside
        normals = equations[:, :-1]
        offsets = equations[:, -1]
        for x in anchors:
            pending = ~result
            if not pending.any():
                break
            q = queries[pending]
            # Ray r(u) = x + u * (x - q), u >= 0.  Intersect with each
            # halfspace: n.(x + u d) + b <= 0.
            d = x[None, :] - q
            n_dot_x = normals @ x + offsets          # (facets,)
            n_dot_d = d @ normals.T                  # (m, facets)
            lo = np.zeros(len(q))
            hi = np.full(len(q), np.inf)
            feasible = np.ones(len(q), dtype=bool)
            for f in range(len(normals)):
                a = n_dot_d[:, f]
                c = n_dot_x[f]
                # a * u + c <= 0
                pos = a > 1e-12
                neg = a < -1e-12
                flat = ~(pos | neg)
                hi[pos] = np.minimum(hi[pos], -c / a[pos])
                lo[neg] = np.maximum(lo[neg], -c / a[neg])
                if c > 1e-9:
                    feasible[flat] = False
            feasible &= lo <= hi + 1e-12
            hit = np.zeros(len(queries), dtype=bool)
            hit[pending] = feasible
            result |= hit
        return result

    def three_set_partition(self, queries):
        """Per-point code: positive (1), negative (0) or uncertain (-1)."""
        queries = np.atleast_2d(np.asarray(queries, dtype=np.float64))
        codes = np.full(len(queries), THREE_SET_UNCERTAIN, dtype=np.int64)
        codes[self.positive_mask(queries)] = THREE_SET_POSITIVE
        neg = self.negative_mask(queries)
        codes[neg & (codes == THREE_SET_UNCERTAIN)] = THREE_SET_NEGATIVE
        return codes

    def three_set_metric(self, queries):
        """Certified accuracy lower bound: fraction of resolved points."""
        codes = self.three_set_partition(queries)
        if len(codes) == 0:
            return 0.0
        return float(np.mean(codes != THREE_SET_UNCERTAIN))
