"""Packed halfspace engine: all points x all hulls in one fused kernel.

The online hot path of the Meta* variant is geometric: every prediction
is demoted/promoted by testing membership in unions of convex hulls
(paper Sections V-C and VII-B).  Looping ``Hull.contains`` one hull at a
time evaluates every facet of every hull against every point — almost
all of it wasted, because a typical UIS hull occupies a small fraction
of the subspace.  This module stacks every hull's canonical lowering
(:meth:`~repro.geometry.convex_hull.Hull.halfspaces`, a uniform
``A x + b <= tol`` facet form whose first ``2 d`` rows are always the
hull's bounding box) and evaluates membership in two fused stages:

1. **Gate** — one vectorized pass over (points x hulls x dims) against
   conservatively padded float32 copies of every hull's bbox rows.  The
   padding (outward ``nextafter`` of the float64 bound + tolerance)
   guarantees the gate is a *superset* of the exact bbox-row test, so a
   gated-out pair is provably outside — no exact arithmetic needed.
2. **Sparse exact evaluation** — only the surviving (point, hull)
   candidate pairs (typically ~1%) are run through the hull's full
   float64 facet rows, hull by hull, in BLAS.  Each evaluation uses the
   hull's own ``(A, b, tol)`` exactly as ``Hull.contains`` does, and
   matmul rows are independent, so the packed masks are **bit-identical
   to the per-hull path by construction** (see
   ``tests/geometry/test_engine.py``).

Layers stack on top:

* :class:`PackedHulls` — the membership-matrix kernel above;
* :func:`union_masks` — many unions over one shared point set, hulls
  deduplicated by identity, one engine call total (what
  ``FewShotOptimizer.refine_batch`` rides);
* :class:`PackedRegion` — a compiled conjunction-of-disjunctions
  program (``ConjunctiveRegion`` over ``UnionRegion`` parts), each part
  a packed group over a column subset of the query row;
* :class:`HullPackCache` — identity-keyed LRU of compiled packs so a
  serving engine reuses one pack across model versions and repeated
  predict calls.
"""

from __future__ import annotations

from collections import OrderedDict

import numpy as np

from .convex_hull import _EPS, as_query_array

__all__ = ["PackedHulls", "PackedRegion", "HullPackCache", "union_masks"]

#: Cap on the (points x hulls) gate slab evaluated at once; larger
#: queries are chunked over points so the gate stays cache-resident.
_GATE_BUDGET = 1 << 24


class PackedHulls:
    """A stack of hulls compiled into one gated halfspace program.

    Parameters
    ----------
    hulls:
        Sequence of :class:`~repro.geometry.convex_hull.Hull`, all of
        one dimensionality.  Strong references are kept, so identity
        keys derived from the hulls stay valid for the pack's lifetime.
    eps:
        Facet tolerance parameter resolved at compile time (same
        default as ``Hull.contains``).
    """

    def __init__(self, hulls, eps=_EPS):
        hulls = tuple(hulls)
        dims = {h.dim for h in hulls}
        if len(dims) > 1:
            raise ValueError("hulls of mixed dimensionality: {}".format(dims))
        self.hulls = hulls
        self.dim = dims.pop() if dims else 0
        self.eps = float(eps)
        if not hulls:
            self.A = np.zeros((0, self.dim))
            self.b = np.zeros(0)
            self.tol = np.zeros(0)
            self.starts = np.zeros(1, dtype=np.intp)
            self._rows = []
            self._gate_lo = np.zeros((0, self.dim), dtype=np.float32)
            self._gate_hi = np.zeros((0, self.dim), dtype=np.float32)
            return
        systems = [h.halfspaces() for h in hulls]
        counts = np.array([s.n_facets for s in systems], dtype=np.intp)
        if (counts == 0).any():
            raise ValueError("cannot pack a hull with no facets")
        # Stacked form (facet_values, introspection, benchmarks).
        self.A = np.ascontiguousarray(np.vstack([s.A for s in systems]))
        self.b = np.concatenate([s.b for s in systems])
        self.tol = np.concatenate([s.tol(self.eps) for s in systems])
        self.starts = np.concatenate([[0], np.cumsum(counts)])
        # Per-hull exact rows for the sparse stage.
        self._rows = [(s.A, s.b, s.tol(self.eps)) for s in systems]
        # Conservative float32 gate, read straight off each system's
        # leading bounding-box rows (the lowering's layout invariant —
        # verified here) so gate and exact test share one source of
        # truth, including for deserialized hulls.  Padding each bound
        # outward past its resolved tolerance with a nextafter absorbs
        # every float64 rounding slack of the exact comparison, making
        # gate_pass a strict superset of the exact bbox-row test.
        d, eye = self.dim, np.eye(self.dim)
        pad_hi = np.empty((len(hulls), d))
        pad_lo = np.empty((len(hulls), d))
        for i, (A, b, tol) in enumerate(self._rows):
            if len(b) < 2 * d or not np.array_equal(A[:d], eye) \
                    or not np.array_equal(A[d:2 * d], -eye):
                raise ValueError(
                    "hull system lacks the canonical leading bbox rows")
            pad_hi[i] = -b[:d] + tol[:d]
            pad_lo[i] = b[d:2 * d] - tol[d:2 * d]
        self._gate_lo = np.nextafter(pad_lo.astype(np.float32),
                                     -np.inf).astype(np.float32)
        self._gate_hi = np.nextafter(pad_hi.astype(np.float32),
                                     np.inf).astype(np.float32)

    @classmethod
    def from_hulls(cls, hulls, eps=_EPS):
        return cls(hulls, eps=eps)

    @property
    def n_hulls(self):
        return len(self.hulls)

    @property
    def n_facets(self):
        return len(self.b)

    @property
    def gate_bounds(self):
        """Conservative per-hull bounding boxes: ``(lo, hi)`` float64
        ``(n_hulls, dim)`` arrays.  Every point a hull's exact facet test
        accepts lies inside its row's box (the padded gate the membership
        kernel screens with — the zone-map scan planner prunes chunks
        against the same source of truth)."""
        return (self._gate_lo.astype(np.float64),
                self._gate_hi.astype(np.float64))

    # ------------------------------------------------------------------
    def facet_values(self, points):
        """Raw ``(n, total_facets)`` facet evaluations: one dense matmul
        against the whole stacked system (benchmark / analysis path; the
        membership kernel uses the gated sparse route instead)."""
        points = as_query_array(points, self.dim)
        values = points @ self.A.T
        values += self.b
        return values

    def candidates(self, points):
        """Boolean ``(n, n_hulls)`` conservative gate matrix.

        True wherever the point may lie in the hull (padded-bbox hit);
        guaranteed True for every actual member.
        """
        points = as_query_array(points, self.dim)
        gate = np.ones((len(points), self.n_hulls), dtype=bool)
        if self.n_hulls == 0 or len(points) == 0:
            return gate
        pts32 = points.astype(np.float32)
        for j in range(self.dim):
            column = pts32[:, j, None]
            gate &= column >= self._gate_lo[:, j]
            gate &= column <= self._gate_hi[:, j]
        return gate

    def membership(self, points):
        """Boolean ``(n, n_hulls)`` matrix: point i inside hull j.

        Chunked over points so the gate slab stays cache-resident; the
        exact stage evaluates each hull's own float64 facet rows on its
        candidate points only.
        """
        points = as_query_array(points, self.dim)
        n = len(points)
        out = np.zeros((n, self.n_hulls), dtype=bool)
        if n == 0 or self.n_hulls == 0:
            return out
        chunk = max(1024, _GATE_BUDGET // max(self.n_hulls, 1))
        for start in range(0, n, chunk):
            block = points[start:start + chunk]
            gate = self.candidates(block)
            for h in np.flatnonzero(gate.any(axis=0)):
                idx = np.flatnonzero(gate[:, h])
                sub = block if len(idx) == len(block) else block[idx]
                A, b, tol = self._rows[h]
                values = sub @ A.T
                values += b
                out[start + idx, h] = (values <= tol).all(axis=1)
        return out

    def contains_any(self, points):
        """Boolean ``(n,)`` union-membership mask (inside *some* hull)."""
        points = as_query_array(points, self.dim)
        if self.n_hulls == 0:
            return np.zeros(len(points), dtype=bool)
        return self.membership(points).any(axis=1)

    def __repr__(self):
        return "PackedHulls(dim={}, hulls={}, facets={})".format(
            self.dim, self.n_hulls, self.n_facets)


def union_masks(hull_lists, points, pack_cache=None):
    """Evaluate many unions of hulls over one shared point set.

    Deduplicates hulls by identity across all unions (concurrent
    sessions built via ``FewShotOptimizer.fit_batch`` share hull
    objects), runs **one** packed membership call for the distinct
    hulls, and ORs each union's columns.

    Parameters
    ----------
    hull_lists:
        Iterable whose entries are sequences of hulls (one entry per
        union); an entry may be empty, yielding an all-False mask.
    points:
        The shared ``(n, d)`` query array.
    pack_cache:
        Optional :class:`HullPackCache`; the compiled pack for this
        exact hull set is then reused across calls (e.g. across model
        versions of the same serving sessions).

    Returns
    -------
    List of ``(n,)`` boolean masks, one per entry of ``hull_lists``.
    """
    hull_lists = [list(hulls) for hulls in hull_lists]
    index, distinct = {}, []
    columns = []
    for hulls in hull_lists:
        cols = []
        for hull in hulls:
            col = index.get(id(hull))
            if col is None:
                col = index[id(hull)] = len(distinct)
                distinct.append(hull)
            cols.append(col)
        columns.append(np.asarray(cols, dtype=np.intp))
    if not distinct:
        dim = np.atleast_2d(np.asarray(points, dtype=np.float64)).shape[-1]
        n = len(as_query_array(points, dim))
        return [np.zeros(n, dtype=bool) for _ in hull_lists]
    if pack_cache is not None:
        pack = pack_cache.get(distinct)
    else:
        pack = PackedHulls(distinct)
    member = pack.membership(points)
    return [member[:, cols].any(axis=1) if len(cols)
            else np.zeros(len(member), dtype=bool)
            for cols in columns]


class PackedRegion:
    """A compiled conjunction-of-disjunctions membership program.

    ``groups`` is a list of ``(hulls, columns)`` pairs: a point belongs
    to the region iff for *every* group its projection onto ``columns``
    (``None`` = the whole row) lies inside *some* hull of the group.  A
    single group with ``columns=None`` is exactly a union region; many
    groups over per-subspace column sets are a conjunctive UIR.  Each
    group compiles to its own :class:`PackedHulls`, so evaluation is
    one gated engine call per group on the projected rows — the same
    kernel (and bit-identical masks) as querying each part directly.
    """

    def __init__(self, groups, dim=None):
        self.dim = None if dim is None else int(dim)
        self.groups = []
        for hulls, columns in groups:
            hulls = list(hulls)
            if not hulls:
                raise ValueError("a conjunction group needs >= 1 hull")
            if columns is not None:
                columns = np.asarray(list(columns), dtype=np.intp)
                if len(columns) != hulls[0].dim:
                    raise ValueError(
                        "hull dimension {} != column group size {}"
                        .format(hulls[0].dim, len(columns)))
            elif self.dim is not None and hulls[0].dim != self.dim:
                raise ValueError("hull dimension {} != region dimension {}"
                                 .format(hulls[0].dim, self.dim))
            self.groups.append((PackedHulls(hulls), columns))
        if not self.groups:
            raise ValueError("PackedRegion needs >= 1 group")

    @property
    def n_groups(self):
        return len(self.groups)

    @property
    def n_hulls(self):
        return sum(pack.n_hulls for pack, _ in self.groups)

    # ------------------------------------------------------------------
    def contains(self, points):
        """Boolean ``(n,)`` mask: AND over groups of OR over hulls."""
        points = np.asarray(points, dtype=np.float64)
        if points.size == 0:
            return np.zeros(0, dtype=bool)
        points = np.atleast_2d(points)
        mask = np.ones(len(points), dtype=bool)
        for pack, columns in self.groups:
            if not mask.any():
                break
            projected = points if columns is None else points[:, columns]
            mask &= pack.contains_any(projected)
        return mask

    def __repr__(self):
        return "PackedRegion(dim={}, groups={}, hulls={})".format(
            self.dim, self.n_groups, self.n_hulls)


class HullPackCache:
    """Identity-keyed LRU of compiled :class:`PackedHulls`.

    The key is the tuple of hull object identities; the cached pack
    holds strong references to its hulls, so a key can never be
    recycled to a different hull set while its entry is alive.  The
    serving layer keeps one of these so the per-group pack built for a
    set of sessions survives model-version bumps (re-adaptation changes
    classifiers, never the few-shot hull geometry) and repeated predict
    calls.
    """

    def __init__(self, capacity=128, metrics=None):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = int(capacity)
        self._entries = OrderedDict()
        # Hit/miss counts live in a repro.obs registry (the owner may
        # share its own, e.g. the serving manager) under
        # ``geometry.pack_cache.*``; the ``hits`` / ``misses``
        # attributes and ``stats`` read through to it.
        if metrics is None:
            from ..obs import MetricsRegistry
            metrics = MetricsRegistry()
        self.metrics = metrics
        self._hits = metrics.counter("geometry.pack_cache.hits")
        self._misses = metrics.counter("geometry.pack_cache.misses")

    @property
    def hits(self):
        return self._hits.value

    @hits.setter
    def hits(self, value):
        self._hits.set(value)

    @property
    def misses(self):
        return self._misses.value

    @misses.setter
    def misses(self, value):
        self._misses.set(value)

    def __len__(self):
        return len(self._entries)

    def get(self, hulls):
        """The compiled pack for exactly this hull sequence."""
        hulls = tuple(hulls)
        key = tuple(map(id, hulls))
        entry = self._entries.get(key)
        if entry is not None:
            self._hits.inc()
            self._entries.move_to_end(key)
            return entry
        self._misses.inc()
        pack = PackedHulls(hulls)
        self._entries[key] = pack
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
        return pack

    def evict_containing(self, hulls):
        """Drop every cached pack referencing any of these hulls.

        Called when the hulls' owner goes away (e.g. a serving session
        closes) so retired geometry is not pinned until LRU churn.
        Entries for packs *sharing* some of the hulls with live owners
        are dropped too — they recompile cheaply on next use.
        """
        ids = set(map(id, hulls))
        if not ids:
            return 0
        stale = [key for key in self._entries if ids.intersection(key)]
        for key in stale:
            del self._entries[key]
        return len(stale)

    @property
    def stats(self):
        return {"entries": len(self._entries), "hits": self.hits,
                "misses": self.misses, "capacity": self.capacity}
