"""Regions as unions of convex parts, and conjunctive cross-subspace regions.

``UnionRegion`` realizes the paper's general UIS form (Section V-C):
"the composition of any set of convex parts on a meta-subspace", which by
convex decomposition covers concave and even disconnected interest regions.
``ConjunctiveRegion`` combines per-subspace regions into a full-space UIR
(Section III-A: R_u is the conjunctive combination of its subregions).

Both compile themselves lazily to packed halfspace programs
(:mod:`repro.geometry.engine`): the first ``contains`` call stacks every
hull's facet rows into one matrix, and every later call is a single
matmul plus segment reductions instead of a Python loop over hulls.
Packs are cached on the region and never invalidated — hulls are
immutable once built, and a region's hull list is fixed at construction.
"""

from __future__ import annotations

import numpy as np

from .convex_hull import Hull, as_query_array
from .engine import PackedHulls, PackedRegion

__all__ = ["Region", "UnionRegion", "ConjunctiveRegion", "BoxRegion",
           "ScaledRegion"]


class Region:
    """Interface: a membership predicate over a (sub)space."""

    dim = None

    def contains(self, points):
        """Boolean mask of membership for an (n x dim) array."""
        raise NotImplementedError

    def label(self, points):
        """0/1 int labels; convenience over :meth:`contains`."""
        return self.contains(points).astype(np.int64)


class UnionRegion(Region):
    """Union of convex hulls: the general UIS representation.

    Parameters
    ----------
    hulls:
        Iterable of :class:`~repro.geometry.convex_hull.Hull` (or point
        arrays, which are wrapped).
    """

    def __init__(self, hulls):
        hulls = [h if isinstance(h, Hull) else Hull(h) for h in hulls]
        if not hulls:
            raise ValueError("UnionRegion needs at least one hull")
        dims = {h.dim for h in hulls}
        if len(dims) != 1:
            raise ValueError("hulls of mixed dimensionality: {}".format(dims))
        self.hulls = hulls
        self.dim = dims.pop()
        self._packed = None

    def compiled(self):
        """The region's cached :class:`~repro.geometry.engine.PackedHulls`."""
        if self._packed is None:
            self._packed = PackedHulls(self.hulls)
        return self._packed

    def contains(self, points):
        return self.compiled().contains_any(points)

    @property
    def n_parts(self):
        return len(self.hulls)

    def __repr__(self):
        return "UnionRegion(dim={}, parts={})".format(self.dim, self.n_parts)


class BoxRegion(Region):
    """Axis-aligned box; used in tests and as a simple workload shape."""

    def __init__(self, lo, hi):
        self.lo = np.asarray(lo, dtype=np.float64)
        self.hi = np.asarray(hi, dtype=np.float64)
        if self.lo.shape != self.hi.shape:
            raise ValueError("lo/hi shape mismatch")
        if np.any(self.lo > self.hi):
            raise ValueError("lo must be <= hi")
        self.dim = self.lo.size

    def contains(self, points):
        points = as_query_array(points, self.dim)
        return ((points >= self.lo) & (points <= self.hi)).all(axis=1)


class ScaledRegion(Region):
    """A region defined in a scaler's normalized space, queried in raw
    coordinates.

    LTE normalizes every subspace internally (clustering and hull geometry
    are meaningless across attributes of wildly different scales); regions
    built over normalized cluster centers are wrapped so the rest of the
    system keeps talking raw attribute values.
    """

    def __init__(self, region, scaler):
        self.region = region
        self.scaler = scaler
        self.dim = region.dim

    def contains(self, points):
        points = as_query_array(points, self.dim)
        return self.region.contains(self.scaler.transform(points))

    @property
    def n_parts(self):
        return getattr(self.region, "n_parts", 1)


class ConjunctiveRegion(Region):
    """Conjunction of per-subspace regions over column groups.

    Parameters
    ----------
    subspace_regions:
        List of ``(column_indices, Region)``: a full-space point belongs to
        the UIR iff, for every entry, its projection onto ``column_indices``
        belongs to the corresponding region.

    Hull-backed entries (``UnionRegion``, bare ``Hull``) are compiled
    into **one** packed program spanning all their column groups — a
    single matmul answers the whole conjunction-of-disjunctions; other
    region types (scaled wrappers, boxes, custom predicates) are ANDed
    in through their own ``contains``.
    """

    def __init__(self, subspace_regions):
        if not subspace_regions:
            raise ValueError("need at least one subspace region")
        self.subspace_regions = []
        for columns, region in subspace_regions:
            columns = tuple(int(c) for c in columns)
            if len(columns) != region.dim:
                raise ValueError(
                    "column group {} does not match region dim {}".format(
                        columns, region.dim))
            self.subspace_regions.append((columns, region))
        self.dim = sum(len(cols) for cols, _ in self.subspace_regions)
        self._generic = [(cols, r) for cols, r in self.subspace_regions
                         if not isinstance(r, (UnionRegion, Hull))]
        self._hull_groups = [(cols, r) for cols, r in self.subspace_regions
                             if isinstance(r, (UnionRegion, Hull))]
        self._packed = None

    def compiled(self):
        """Cached :class:`~repro.geometry.engine.PackedRegion` over the
        hull-backed parts (None when no part is hull-backed)."""
        if self._packed is None and self._hull_groups:
            self._packed = PackedRegion(
                [(region.hulls if isinstance(region, UnionRegion)
                  else [region], columns)
                 for columns, region in self._hull_groups])
        return self._packed

    def contains(self, points):
        points = np.asarray(points, dtype=np.float64)
        if points.size == 0:
            return np.zeros(0, dtype=bool)
        points = np.atleast_2d(points)
        packed = self.compiled()
        mask = packed.contains(points) if packed is not None \
            else np.ones(len(points), dtype=bool)
        for columns, region in self._generic:
            if not mask.any():
                break
            mask &= region.contains(points[:, list(columns)])
        return mask

    def __repr__(self):
        groups = [cols for cols, _ in self.subspace_regions]
        return "ConjunctiveRegion(groups={})".format(groups)
