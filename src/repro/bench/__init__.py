"""Benchmark harness: scale presets, workload builders, experiment runners."""

from .config import BenchScale, get_scale
from .harness import (baseline_oracle_pairs, budget_to_reach, mean_f1_baseline,
                      mean_f1_lte, mean_f1_subspace_svm, online_times,
                      print_matrix, print_series)
from .workloads import (build_lte, clear_caches, convex_oracles,
                        eval_rows_for, get_table, make_config, mode_oracles,
                        subspace_region)

__all__ = [
    "BenchScale", "get_scale",
    "build_lte", "get_table", "make_config", "convex_oracles", "mode_oracles",
    "subspace_region", "eval_rows_for", "clear_caches",
    "mean_f1_lte", "mean_f1_baseline", "mean_f1_subspace_svm",
    "baseline_oracle_pairs", "budget_to_reach", "online_times",
    "print_series", "print_matrix",
]
