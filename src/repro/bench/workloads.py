"""Workload builders shared by all benchmarks.

Centralizes (and caches) the expensive artifacts — synthetic datasets and
offline-trained LTE systems — and generates the ground-truth test UIRs of
Section VIII: convex+conjunctive regions for the baseline comparison
(alpha=1, psi in {20,15,10,5}) and generalized regions for the UIS-mode
study (Table III modes M1-M7).  Test regions are drawn by the same
machinery as meta-tasks but from an *independent* RNG stream, so the
meta-learner is never evaluated on regions it trained on.
"""

from __future__ import annotations

import os

import numpy as np

from ..core.framework import LTE, LTEConfig
from ..core.meta_training import MetaHyperParams
from ..core.uis import UISGenerator, UISMode
from ..data.datasets import load_dataset
from ..explore.oracle import ConjunctiveOracle
from ..geometry.regions import ScaledRegion
from .config import get_scale

__all__ = ["get_table", "build_lte", "convex_oracles", "mode_oracles",
           "subspace_region", "eval_rows_for", "clear_caches"]

_TABLE_CACHE = {}
_LTE_CACHE = {}


def clear_caches():
    """Drop cached tables and trained systems (tests use this)."""
    _TABLE_CACHE.clear()
    _LTE_CACHE.clear()


def get_table(dataset="sdss", scale=None, backend=None):
    """Cached synthetic dataset at the given bench scale.

    ``backend`` (or the ``REPRO_DATA_BACKEND`` env var) selects the data
    substrate: ``"memory"`` (default) for the dense in-memory
    :class:`~repro.data.Table`, ``"store"`` for the same rows chunked
    into a :class:`~repro.store.ChunkStore` — every bench and example
    built on this helper can opt into the chunked substrate without code
    changes.
    """
    scale = scale or get_scale()
    backend = backend or os.environ.get("REPRO_DATA_BACKEND", "memory")
    key = (dataset, scale.dataset_rows, backend)
    if key not in _TABLE_CACHE:
        _TABLE_CACHE[key] = load_dataset(dataset, n_rows=scale.dataset_rows,
                                         backend=backend)
    return _TABLE_CACHE[key]


def make_config(budget=30, mode=None, scale=None, preprocessing_mode="auto",
                use_memories=True, center_affinity=True, seed=7):
    """LTEConfig tuned to a bench scale (paper defaults otherwise)."""
    scale = scale or get_scale()
    meta = MetaHyperParams(epochs=scale.epochs,
                           local_steps=scale.local_steps)
    return LTEConfig(
        budget=budget,
        task_mode=mode or UISMode(4, 20),
        n_tasks=scale.n_tasks,
        preprocessing_mode=preprocessing_mode,
        use_memories=use_memories,
        center_affinity=center_affinity,
        basic_steps=scale.basic_steps,
        meta=meta,
        seed=seed,
    )


def build_lte(dataset="sdss", budget=30, mode=None, scale=None,
              preprocessing_mode="auto", use_memories=True,
              center_affinity=True, seed=7, train=True):
    """Offline-train (and cache) an LTE system for a bench configuration."""
    scale = scale or get_scale()
    mode = mode or UISMode(4, 20)
    key = (dataset, budget, mode, scale.name, preprocessing_mode,
           use_memories, center_affinity, seed, train)
    if key not in _LTE_CACHE:
        table = get_table(dataset, scale)
        lte = LTE(make_config(budget=budget, mode=mode, scale=scale,
                              preprocessing_mode=preprocessing_mode,
                              use_memories=use_memories,
                              center_affinity=center_affinity, seed=seed))
        lte.fit_offline(table, train=train)
        _LTE_CACHE[key] = lte
    return _LTE_CACHE[key]


def eval_rows_for(lte, scale=None, seed=101):
    """Evaluation row sample from the system's table."""
    scale = scale or get_scale()
    return lte.table.sample_rows(scale.eval_rows, seed=seed)


# ----------------------------------------------------------------------
# Ground-truth test UIR generation
# ----------------------------------------------------------------------
def subspace_region(state, mode, seed):
    """Ground-truth UIS for one subspace, queryable in raw coordinates.

    The region geometry is built over the normalized cluster summary; the
    ScaledRegion wrapper converts raw attribute values on the way in.
    """
    generator = UISGenerator(state.summary.centers_u,
                             state.summary.proximity_u, mode, seed=seed)
    region, _ = generator.generate()
    return ScaledRegion(region, state.scaler)


_subspace_uis = subspace_region


def convex_oracles(lte, subspaces, n_uirs, psi_choices=(50, 40, 30, 20),
                   seed=12345):
    """Test UIRs for the baseline comparison (Section VIII-B).

    Each subspace gets a convex UIS (alpha=1) whose psi is drawn from
    ``psi_choices``; the full-space UIR is their conjunction (and therefore
    convex, satisfying DSM's assumption).

    The default psi range follows the *training* setting of Section VIII-B
    (alpha=1, psi=50) rather than the generalized-mode test psis of
    Table III: with 2-4 conjoined subspaces, smaller psis drive the joint
    positive rate below what any competitor (or an F1 evaluation on a
    uniform sample) can resolve — see EXPERIMENTS.md.
    """
    rng = np.random.default_rng(seed)
    oracles = []
    for _ in range(n_uirs):
        regions = {}
        for subspace in subspaces:
            psi = int(rng.choice(psi_choices))
            regions[subspace] = _subspace_uis(
                lte.states[subspace], UISMode(alpha=1, psi=psi),
                seed=int(rng.integers(2 ** 31)))
        oracles.append(ConjunctiveOracle(regions))
    return oracles


def mode_oracles(lte, subspaces, mode, n_uirs, seed=54321):
    """Generalized test UIRs for one (alpha, psi) mode (Section VIII-C)."""
    rng = np.random.default_rng(seed)
    oracles = []
    for _ in range(n_uirs):
        regions = {
            subspace: _subspace_uis(lte.states[subspace], mode,
                                    seed=int(rng.integers(2 ** 31)))
            for subspace in subspaces
        }
        oracles.append(ConjunctiveOracle(regions))
    return oracles
