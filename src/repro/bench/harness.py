"""Experiment runner + table printer for the benchmark suite.

Each benchmark regenerates one of the paper's tables/figures by printing
the same rows/series; these helpers run the competitors over a batch of
ground-truth UIRs and aggregate F1 / time / budget statistics.
"""

from __future__ import annotations

import time

import numpy as np

from ..baselines.aide import AIDEExplorer
from ..baselines.al_svm import ALSVMExplorer
from ..baselines.dsm import DSMExplorer
from ..baselines.svm_variants import SubspaceSVMExplorer
from ..explore.metrics import f1_score
from ..explore.session import run_lte_exploration

__all__ = ["print_series", "print_matrix", "mean_f1_lte", "mean_f1_baseline",
           "mean_f1_subspace_svm", "budget_to_reach", "online_times"]


# ----------------------------------------------------------------------
# Reporting
# ----------------------------------------------------------------------
def print_series(title, x_label, xs, series):
    """Print an x vs many-series table (one paper figure panel)."""
    print("\n== {} ==".format(title))
    header = [x_label] + list(series)
    widths = [max(10, len(h) + 2) for h in header]
    print("".join(h.ljust(w) for h, w in zip(header, widths)))
    for i, x in enumerate(xs):
        row = [str(x)]
        for name in series:
            value = series[name][i]
            row.append("{:.3f}".format(value) if value is not None else "-")
        print("".join(c.ljust(w) for c, w in zip(row, widths)))


def print_matrix(title, row_names, col_names, values):
    """Print a row x column matrix (e.g. Table II)."""
    print("\n== {} ==".format(title))
    widths = [12] + [max(8, len(c) + 2) for c in col_names]
    print("".join(h.ljust(w) for h, w in zip([""] + list(col_names), widths)))
    for name, row in zip(row_names, values):
        cells = [name] + ["{:.3f}".format(v) for v in row]
        print("".join(c.ljust(w) for c, w in zip(cells, widths)))


# ----------------------------------------------------------------------
# Competitor runners (mean F1 over a batch of test UIRs)
# ----------------------------------------------------------------------
def mean_f1_lte(lte, oracles, eval_rows, variant, subspaces=None, seed=None):
    """Mean F1 of an LTE variant over ground-truth oracles."""
    scores = []
    for i, oracle in enumerate(oracles):
        result = run_lte_exploration(
            lte, oracle, eval_rows, variant=variant,
            subspaces=subspaces or list(oracle.subspace_regions),
            seed=None if seed is None else seed + i)
        scores.append(result.f1)
    return float(np.mean(scores))


def mean_f1_baseline(kind, rows, oracles, eval_rows, budget, pool_size=1500,
                     seed=0):
    """Mean F1 of a full-space baseline ('dsm' or 'al_svm').

    ``rows`` must be restricted to the user-interest space columns (the
    baselines operate directly on the full user space).
    """
    factory = {"dsm": DSMExplorer, "al_svm": ALSVMExplorer,
               "aide": AIDEExplorer}[kind]
    scores = []
    for i, (oracle, project) in enumerate(oracles):
        explorer = factory(budget=budget, pool_size=pool_size, seed=seed + i)
        explorer.explore(rows, lambda pts: oracle.ground_truth(project(pts)))
        predictions = explorer.predict(eval_rows)
        truth = oracle.ground_truth(project(eval_rows))
        scores.append(f1_score(truth, predictions))
    return float(np.mean(scores))


def baseline_oracle_pairs(oracles, subspaces):
    """Adapt conjunctive oracles to a baseline's user-space row layout.

    Baselines see rows laid out as the concatenation of the chosen
    subspaces' columns (the user-interest space); this returns
    ``(oracle, project)`` pairs where ``project`` maps user-space rows back
    to full-table layout for the oracle.
    """
    pairs = []
    # Build the reverse map: user-space column j -> full-table column.
    columns = [c for s in subspaces for c in s.columns]
    n_full = max(columns) + 1

    def make_project(cols):
        def project(points):
            points = np.atleast_2d(np.asarray(points, dtype=np.float64))
            rows = np.zeros((len(points), n_full))
            rows[:, cols] = points
            return rows
        return project

    project = make_project(columns)
    for oracle in oracles:
        pairs.append((oracle, project))
    return pairs


def mean_f1_subspace_svm(lte, oracles, eval_rows, subspaces, encoded,
                         seed=0):
    """Mean F1 of the SVM / SVMr competitors on LTE's initial tuples."""
    scores = []
    for i, oracle in enumerate(oracles):
        session = lte.start_session(variant="basic", subspaces=subspaces,
                                    seed=(seed or 0) + i)
        explorer = SubspaceSVMExplorer(
            {s: lte.states[s] for s in subspaces}, encoded=encoded,
            seed=seed + i)
        for subspace, tuples in session.initial_tuples().items():
            labels = oracle.label_subspace(subspace, tuples)
            explorer.fit_subspace(subspace, tuples, labels)
        predictions = explorer.predict(eval_rows)
        truth = oracle.ground_truth(eval_rows)
        scores.append(f1_score(truth, predictions))
    return float(np.mean(scores))


# ----------------------------------------------------------------------
# Efficiency helpers
# ----------------------------------------------------------------------
def budget_to_reach(f1_at_budget, target):
    """Smallest budget whose mean F1 reaches ``target`` (None if never).

    ``f1_at_budget`` is a {budget: f1} mapping.
    """
    for budget in sorted(f1_at_budget):
        if f1_at_budget[budget] >= target:
            return budget
    return None


def online_times(run_once, repeats=3):
    """Mean wall-clock seconds of ``run_once()`` over ``repeats`` runs."""
    samples = []
    for _ in range(repeats):
        start = time.perf_counter()
        run_once()
        samples.append(time.perf_counter() - start)
    return float(np.mean(samples))
