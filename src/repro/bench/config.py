"""Benchmark scale presets.

The paper's full parameter scale (|TM| = 5000 meta-tasks per subspace,
2500 test UIRs, 100K-tuple evaluation) takes hours; benches default to a
*quick* preset that preserves every qualitative shape while finishing on a
laptop.  Set ``REPRO_SCALE=paper`` to run the full configuration.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

__all__ = ["BenchScale", "get_scale"]


@dataclass(frozen=True)
class BenchScale:
    """Knobs that trade fidelity for runtime in the benchmark harness."""

    name: str
    dataset_rows: int        # synthetic table size
    n_tasks: int             # meta-tasks per meta-subspace
    epochs: int              # meta-training epochs
    local_steps: int         # local adaptation steps (offline)
    n_test_uirs: int         # ground-truth regions per configuration
    eval_rows: int           # rows scored per F1 measurement
    pool_size: int           # baseline active-learning pool
    basic_steps: int         # online steps for the Basic variant


_SCALES = {
    "quick": BenchScale(
        name="quick", dataset_rows=20_000, n_tasks=80, epochs=1,
        local_steps=8, n_test_uirs=4, eval_rows=5000, pool_size=800,
        basic_steps=80),
    "medium": BenchScale(
        name="medium", dataset_rows=50_000, n_tasks=300, epochs=2,
        local_steps=10, n_test_uirs=10, eval_rows=3000, pool_size=1500,
        basic_steps=100),
    "paper": BenchScale(
        name="paper", dataset_rows=100_000, n_tasks=5000, epochs=3,
        local_steps=20, n_test_uirs=100, eval_rows=10_000, pool_size=2000,
        basic_steps=200),
}


def get_scale(name=None):
    """Resolve the bench scale from argument or the REPRO_SCALE env var."""
    name = name or os.environ.get("REPRO_SCALE", "quick")
    try:
        return _SCALES[name.lower()]
    except KeyError:
        raise ValueError("unknown scale {!r}; options: {}".format(
            name, sorted(_SCALES))) from None
