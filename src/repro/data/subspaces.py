"""Decomposition of attribute spaces into low-dimensional subspaces.

Existing IDEs (and LTE) decompose the user-interest space D_u into disjoint
low-dimensional subspaces D_1 x ... x D_n (Section III-A); offline, LTE
splits the full domain space into *meta-subspaces* the same way
(Section V-E: "the domain space is randomly split into meta-subspaces,
because we assume zero knowledge about data semantics and user priors").
"""

from __future__ import annotations

import numpy as np

__all__ = ["Subspace", "random_decomposition", "match_subspaces"]


class Subspace:
    """A named group of attribute columns within a table."""

    __slots__ = ("names", "columns")

    def __init__(self, names, columns):
        if len(names) != len(columns):
            raise ValueError("names/columns length mismatch")
        self.names = tuple(names)
        self.columns = tuple(int(c) for c in columns)

    @property
    def dim(self):
        return len(self.columns)

    @property
    def key(self):
        """Canonical identity: the sorted attribute-name tuple."""
        return tuple(sorted(self.names))

    def project(self, data):
        """Project (n x full_dim) rows onto this subspace's columns."""
        return np.asarray(data)[:, list(self.columns)]

    def __repr__(self):
        return "Subspace({})".format(",".join(self.names))

    def __eq__(self, other):
        return isinstance(other, Subspace) and other.key == self.key

    def __hash__(self):
        return hash(self.key)


def random_decomposition(table, dim=2, seed=None):
    """Randomly split a table's attributes into disjoint ``dim``-D subspaces.

    A trailing group smaller than ``dim`` is kept as its own subspace, so
    every attribute is covered exactly once.
    """
    if dim < 1:
        raise ValueError("dim must be >= 1")
    rng = np.random.default_rng(seed)
    order = rng.permutation(table.n_attributes)
    subspaces = []
    for start in range(0, len(order), dim):
        cols = order[start:start + dim]
        names = [table.attributes[c].name for c in cols]
        subspaces.append(Subspace(names, cols))
    return subspaces


def match_subspaces(user_subspaces, meta_subspaces):
    """Map online user subspaces to offline meta-subspaces by attribute set.

    Returns ``{user_subspace: meta_subspace_or_None}``; ``None`` marks a
    user subspace with no pre-trained meta-learner (the framework falls
    back to the Basic classifier there, Section V-E).
    """
    by_key = {ms.key: ms for ms in meta_subspaces}
    return {us: by_key.get(us.key) for us in user_subspaces}
