"""Synthetic stand-ins for the paper's evaluation datasets.

The paper evaluates on two public datasets we cannot download in this
offline environment:

* **SDSS** — 100K tuples, 8 photometric attributes of sky objects
  (``rowc, colc, ra, dec, sky_u, sky_g, sky_r, sky_i``), following the
  setting of DSM (Huang et al., VLDB'19).
* **CAR** — 50K tuples of second-hand-car listings from eBay, 5 commonly
  used numeric attributes.

Every algorithm in the paper (clustering, GMM/JKC encoding, hull-based UIS
construction, NN/SVM classification) consumes only the *numeric geometry*
of the attribute space — no semantics.  We therefore generate synthetic
tables whose marginals reproduce the qualitative shapes of the originals
(documented per attribute below): CCD pixel coordinates are near-uniform
with edge vignetting, sky coordinates follow survey-stripe mixtures, sky
background fluxes are correlated and unimodal-with-tails, car prices and
mileages are heavy-tail skewed, registration years are multimodal, etc.
This preserves the behaviours the experiments measure: multimodality (GMM
vs JKC encodings), attribute correlation, cluster structure, and density
variation across the space.  See DESIGN.md §2.
"""

from __future__ import annotations

import numpy as np

from .schema import Attribute, Table

__all__ = ["make_sdss", "make_car", "load_dataset", "DATASET_BUILDERS",
           "build_dataset_store", "DATASET_BACKENDS"]


def _stamp_provenance(table, builder, n_rows, seed):
    table.provenance = {
        "builder": str(builder),
        "n_rows": int(n_rows),
        "seed": int(seed) if isinstance(seed, (int, np.integer)) else None,
    }
    return table


def _mixture(rng, n, specs):
    """Sample n values from a list of (weight, mean, std) Gaussians."""
    weights = np.array([s[0] for s in specs], dtype=np.float64)
    weights /= weights.sum()
    comps = rng.choice(len(specs), size=n, p=weights)
    means = np.array([s[1] for s in specs])
    stds = np.array([s[2] for s in specs])
    return rng.normal(means[comps], stds[comps])


def make_sdss(n_rows=100_000, seed=17):
    """Synthetic SDSS photometric table (100K x 8 by default).

    Attribute shapes modelled on the SkyServer PhotoObjAll documentation:

    * ``rowc, colc``: CCD pixel centroids, near-uniform over the frame with
      slight central concentration (objects avoid frame edges).
    * ``ra``: right ascension; the survey footprint concentrates in a few
      contiguous stripes -> trimodal mixture over [0, 360).
    * ``dec``: declination; most coverage near the celestial equator with a
      northern cap -> bimodal.
    * ``sky_u/g/r/i``: sky background flux in four bands; unimodal with a
      bright-sky tail, strongly correlated across bands (shared sky
      brightness factor).
    """
    rng = np.random.default_rng(seed)
    frame_rows, frame_cols = 1489.0, 2048.0
    rowc = np.clip(rng.beta(1.3, 1.3, n_rows) * frame_rows, 0, frame_rows)
    colc = np.clip(rng.beta(1.3, 1.3, n_rows) * frame_cols, 0, frame_cols)
    ra = _mixture(rng, n_rows, [(0.45, 180.0, 35.0),
                                (0.35, 330.0, 20.0),
                                (0.20, 30.0, 15.0)]) % 360.0
    dec = _mixture(rng, n_rows, [(0.7, 0.0, 12.0), (0.3, 45.0, 10.0)])
    dec = np.clip(dec, -25.0, 70.0)
    # Shared sky-brightness factor drives the four band backgrounds.
    sky_common = rng.gamma(shape=8.0, scale=1.0, size=n_rows)
    def band(offset, scale, noise):
        return offset + scale * sky_common + rng.normal(0, noise, n_rows)
    sky_u = band(2.0, 0.25, 0.35)
    sky_g = band(1.5, 0.45, 0.40)
    sky_r = band(1.2, 0.65, 0.45)
    sky_i = band(1.0, 0.85, 0.55)

    attributes = [
        Attribute("rowc", hint="interval"),
        Attribute("colc", hint="interval"),
        Attribute("ra", hint="modal"),
        Attribute("dec", hint="modal"),
        Attribute("sky_u", hint="modal"),
        Attribute("sky_g", hint="modal"),
        Attribute("sky_r", hint="modal"),
        Attribute("sky_i", hint="modal"),
    ]
    data = np.column_stack([rowc, colc, ra, dec, sky_u, sky_g, sky_r, sky_i])
    return _stamp_provenance(Table("SDSS", attributes, data),
                             "sdss", n_rows, seed)


def make_car(n_rows=50_000, seed=29):
    """Synthetic eBay used-car table (50K x 5 by default).

    * ``price``: log-normal (heavy right tail), depressed by mileage/age.
    * ``mileage_km``: gamma-like, bounded, with odometer clustering.
    * ``year``: registration year, multimodal (popular model years).
    * ``power_ps``: engine power, trimodal (city / mid / performance).
    * ``engine_cc``: displacement, clustered at manufacturer steps.
    """
    rng = np.random.default_rng(seed)
    year = np.round(_mixture(rng, n_rows, [(0.3, 2003.0, 2.0),
                                           (0.45, 2009.0, 2.5),
                                           (0.25, 2014.0, 1.5)]))
    year = np.clip(year, 1990, 2016)
    age = 2016.0 - year
    mileage = rng.gamma(shape=2.2, scale=28_000.0, size=n_rows) \
        + age * rng.normal(9_000.0, 1_500.0, n_rows)
    mileage = np.clip(mileage, 0, 400_000.0)
    power = _mixture(rng, n_rows, [(0.4, 75.0, 12.0),
                                   (0.45, 125.0, 20.0),
                                   (0.15, 220.0, 40.0)])
    power = np.clip(power, 30.0, 500.0)
    engine = np.round(_mixture(rng, n_rows, [(0.35, 1400.0, 120.0),
                                             (0.40, 1900.0, 150.0),
                                             (0.25, 2800.0, 350.0)]) / 100.0
                      ) * 100.0
    engine = np.clip(engine, 600.0, 6000.0)
    base_price = np.exp(rng.normal(9.3, 0.55, n_rows))
    price = base_price * np.exp(-0.09 * age) \
        * np.exp(-mileage / 450_000.0) * (power / 120.0) ** 0.5
    price = np.clip(price, 150.0, 150_000.0)

    attributes = [
        Attribute("price", hint="modal"),
        Attribute("mileage_km", hint="interval"),
        Attribute("year", hint="modal"),
        Attribute("power_ps", hint="modal"),
        Attribute("engine_cc", hint="modal"),
    ]
    data = np.column_stack([price, mileage, year, power, engine])
    return _stamp_provenance(Table("CAR", attributes, data),
                             "car", n_rows, seed)


DATASET_BUILDERS = {"sdss": make_sdss, "car": make_car}

DATASET_BACKENDS = ("memory", "store")


def load_dataset(name, n_rows=None, seed=None, backend="memory",
                 chunk_rows=None, directory=None):
    """Build a dataset by name ('sdss' or 'car'), with optional overrides.

    Parameters
    ----------
    n_rows, seed:
        Builder overrides (``n_rows`` scales the synthetic table to any
        size; defaults are the paper's 100K / 50K).
    backend:
        ``"memory"`` returns the usual in-memory
        :class:`~repro.data.schema.Table`; ``"store"`` returns the same
        rows — bit for bit, same builder RNG stream — chunked into a
        :class:`~repro.store.ChunkStore` (on disk when ``directory`` is
        given), so benchmarks and examples opt into the chunked substrate
        without code changes.  For tables too large to materialize even
        once, use :func:`build_dataset_store`, which generates
        chunk-by-chunk at constant memory.
    """
    if backend not in DATASET_BACKENDS:
        raise ValueError("unknown backend {!r}; options: {}".format(
            backend, DATASET_BACKENDS))
    try:
        builder = DATASET_BUILDERS[name.lower()]
    except KeyError:
        raise ValueError("unknown dataset {!r}; options: {}".format(
            name, sorted(DATASET_BUILDERS))) from None
    kwargs = {}
    if n_rows is not None:
        kwargs["n_rows"] = n_rows
    if seed is not None:
        kwargs["seed"] = seed
    table = builder(**kwargs)
    if backend == "memory":
        return table
    return table.to_store(chunk_rows=chunk_rows, directory=directory)


def build_dataset_store(name, n_rows, seed=None, chunk_rows=None,
                        directory=None, block_rows=None):
    """Generate a synthetic dataset chunk-by-chunk at constant memory.

    The scalable counterpart of ``load_dataset(..., backend="store")``:
    instead of materializing the full table once, the named builder runs
    per block over seeds spawned from ``np.random.SeedSequence(seed)``,
    and each completed chunk is written (or frozen) before the next block
    is generated — peak memory is O(block + chunk) regardless of
    ``n_rows``.  The result is deterministic in ``(name, n_rows, seed,
    block_rows)`` but is its *own* dataset: per-block RNG streams differ
    from the single-stream ``make_*`` tables of the same size.
    """
    from ..store import DEFAULT_CHUNK_ROWS, ChunkStore

    try:
        builder = DATASET_BUILDERS[name.lower()]
    except KeyError:
        raise ValueError("unknown dataset {!r}; options: {}".format(
            name, sorted(DATASET_BUILDERS))) from None
    n_rows = int(n_rows)
    if n_rows < 0:
        raise ValueError("n_rows must be >= 0")
    chunk_rows = int(chunk_rows or DEFAULT_CHUNK_ROWS)
    block_rows = int(block_rows or chunk_rows)
    n_blocks = max(1, -(-n_rows // block_rows)) if n_rows else 0
    children = np.random.SeedSequence(seed).spawn(n_blocks)
    template = builder(n_rows=1, seed=0)

    def blocks():
        remaining = n_rows
        for child in children:
            rows = min(block_rows, remaining)
            remaining -= rows
            yield builder(n_rows=rows, seed=child).data

    store = ChunkStore.from_blocks(
        template.name, template.attributes, blocks(),
        chunk_rows=chunk_rows, directory=directory)
    store.provenance = {"builder": name.lower(), "n_rows": n_rows,
                        "seed": None if seed is None else int(seed),
                        "block_rows": block_rows, "chunked": True}
    if directory is not None:
        store._write_manifest()   # re-stamp with the final provenance
    return store
