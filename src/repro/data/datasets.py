"""Synthetic stand-ins for the paper's evaluation datasets.

The paper evaluates on two public datasets we cannot download in this
offline environment:

* **SDSS** — 100K tuples, 8 photometric attributes of sky objects
  (``rowc, colc, ra, dec, sky_u, sky_g, sky_r, sky_i``), following the
  setting of DSM (Huang et al., VLDB'19).
* **CAR** — 50K tuples of second-hand-car listings from eBay, 5 commonly
  used numeric attributes.

Every algorithm in the paper (clustering, GMM/JKC encoding, hull-based UIS
construction, NN/SVM classification) consumes only the *numeric geometry*
of the attribute space — no semantics.  We therefore generate synthetic
tables whose marginals reproduce the qualitative shapes of the originals
(documented per attribute below): CCD pixel coordinates are near-uniform
with edge vignetting, sky coordinates follow survey-stripe mixtures, sky
background fluxes are correlated and unimodal-with-tails, car prices and
mileages are heavy-tail skewed, registration years are multimodal, etc.
This preserves the behaviours the experiments measure: multimodality (GMM
vs JKC encodings), attribute correlation, cluster structure, and density
variation across the space.  See DESIGN.md §2.
"""

from __future__ import annotations

import numpy as np

from .schema import Attribute, Table

__all__ = ["make_sdss", "make_car", "load_dataset", "DATASET_BUILDERS"]


def _mixture(rng, n, specs):
    """Sample n values from a list of (weight, mean, std) Gaussians."""
    weights = np.array([s[0] for s in specs], dtype=np.float64)
    weights /= weights.sum()
    comps = rng.choice(len(specs), size=n, p=weights)
    means = np.array([s[1] for s in specs])
    stds = np.array([s[2] for s in specs])
    return rng.normal(means[comps], stds[comps])


def make_sdss(n_rows=100_000, seed=17):
    """Synthetic SDSS photometric table (100K x 8 by default).

    Attribute shapes modelled on the SkyServer PhotoObjAll documentation:

    * ``rowc, colc``: CCD pixel centroids, near-uniform over the frame with
      slight central concentration (objects avoid frame edges).
    * ``ra``: right ascension; the survey footprint concentrates in a few
      contiguous stripes -> trimodal mixture over [0, 360).
    * ``dec``: declination; most coverage near the celestial equator with a
      northern cap -> bimodal.
    * ``sky_u/g/r/i``: sky background flux in four bands; unimodal with a
      bright-sky tail, strongly correlated across bands (shared sky
      brightness factor).
    """
    rng = np.random.default_rng(seed)
    frame_rows, frame_cols = 1489.0, 2048.0
    rowc = np.clip(rng.beta(1.3, 1.3, n_rows) * frame_rows, 0, frame_rows)
    colc = np.clip(rng.beta(1.3, 1.3, n_rows) * frame_cols, 0, frame_cols)
    ra = _mixture(rng, n_rows, [(0.45, 180.0, 35.0),
                                (0.35, 330.0, 20.0),
                                (0.20, 30.0, 15.0)]) % 360.0
    dec = _mixture(rng, n_rows, [(0.7, 0.0, 12.0), (0.3, 45.0, 10.0)])
    dec = np.clip(dec, -25.0, 70.0)
    # Shared sky-brightness factor drives the four band backgrounds.
    sky_common = rng.gamma(shape=8.0, scale=1.0, size=n_rows)
    def band(offset, scale, noise):
        return offset + scale * sky_common + rng.normal(0, noise, n_rows)
    sky_u = band(2.0, 0.25, 0.35)
    sky_g = band(1.5, 0.45, 0.40)
    sky_r = band(1.2, 0.65, 0.45)
    sky_i = band(1.0, 0.85, 0.55)

    attributes = [
        Attribute("rowc", hint="interval"),
        Attribute("colc", hint="interval"),
        Attribute("ra", hint="modal"),
        Attribute("dec", hint="modal"),
        Attribute("sky_u", hint="modal"),
        Attribute("sky_g", hint="modal"),
        Attribute("sky_r", hint="modal"),
        Attribute("sky_i", hint="modal"),
    ]
    data = np.column_stack([rowc, colc, ra, dec, sky_u, sky_g, sky_r, sky_i])
    return Table("SDSS", attributes, data)


def make_car(n_rows=50_000, seed=29):
    """Synthetic eBay used-car table (50K x 5 by default).

    * ``price``: log-normal (heavy right tail), depressed by mileage/age.
    * ``mileage_km``: gamma-like, bounded, with odometer clustering.
    * ``year``: registration year, multimodal (popular model years).
    * ``power_ps``: engine power, trimodal (city / mid / performance).
    * ``engine_cc``: displacement, clustered at manufacturer steps.
    """
    rng = np.random.default_rng(seed)
    year = np.round(_mixture(rng, n_rows, [(0.3, 2003.0, 2.0),
                                           (0.45, 2009.0, 2.5),
                                           (0.25, 2014.0, 1.5)]))
    year = np.clip(year, 1990, 2016)
    age = 2016.0 - year
    mileage = rng.gamma(shape=2.2, scale=28_000.0, size=n_rows) \
        + age * rng.normal(9_000.0, 1_500.0, n_rows)
    mileage = np.clip(mileage, 0, 400_000.0)
    power = _mixture(rng, n_rows, [(0.4, 75.0, 12.0),
                                   (0.45, 125.0, 20.0),
                                   (0.15, 220.0, 40.0)])
    power = np.clip(power, 30.0, 500.0)
    engine = np.round(_mixture(rng, n_rows, [(0.35, 1400.0, 120.0),
                                             (0.40, 1900.0, 150.0),
                                             (0.25, 2800.0, 350.0)]) / 100.0
                      ) * 100.0
    engine = np.clip(engine, 600.0, 6000.0)
    base_price = np.exp(rng.normal(9.3, 0.55, n_rows))
    price = base_price * np.exp(-0.09 * age) \
        * np.exp(-mileage / 450_000.0) * (power / 120.0) ** 0.5
    price = np.clip(price, 150.0, 150_000.0)

    attributes = [
        Attribute("price", hint="modal"),
        Attribute("mileage_km", hint="interval"),
        Attribute("year", hint="modal"),
        Attribute("power_ps", hint="modal"),
        Attribute("engine_cc", hint="modal"),
    ]
    data = np.column_stack([price, mileage, year, power, engine])
    return Table("CAR", attributes, data)


DATASET_BUILDERS = {"sdss": make_sdss, "car": make_car}


def load_dataset(name, n_rows=None, seed=None):
    """Build a dataset by name ('sdss' or 'car'), with optional overrides."""
    try:
        builder = DATASET_BUILDERS[name.lower()]
    except KeyError:
        raise ValueError("unknown dataset {!r}; options: {}".format(
            name, sorted(DATASET_BUILDERS))) from None
    kwargs = {}
    if n_rows is not None:
        kwargs["n_rows"] = n_rows
    if seed is not None:
        kwargs["seed"] = seed
    return builder(**kwargs)
