"""Sampling utilities for offline scalability.

Both meta-task clustering (Section V, footnote: "clustering is run on a
randomly sampled (1%) subset") and tabular preprocessing (Section VII-A:
"limit the sampling ratio under 1%") operate on samples rather than the
full exploratory database.
"""

from __future__ import annotations

import numpy as np

__all__ = ["random_sample", "ratio_sample", "stratified_indices"]


def random_sample(data, n, seed=None):
    """Uniform sample of ``n`` rows without replacement (capped)."""
    data = np.asarray(data)
    n = min(int(n), len(data))
    rng = np.random.default_rng(seed)
    idx = rng.choice(len(data), size=n, replace=False)
    return data[idx]


def ratio_sample(data, ratio, seed=None, min_rows=100):
    """Sample a fraction of rows (default floor keeps tiny tables usable)."""
    if not 0.0 < ratio <= 1.0:
        raise ValueError("ratio must be in (0, 1], got {}".format(ratio))
    data = np.asarray(data)
    n = max(min(len(data), min_rows), int(round(len(data) * ratio)))
    return random_sample(data, n, seed=seed)


def stratified_indices(labels, per_class, seed=None):
    """Pick up to ``per_class`` indices of each distinct label value."""
    labels = np.asarray(labels)
    rng = np.random.default_rng(seed)
    chosen = []
    for value in np.unique(labels):
        pool = np.flatnonzero(labels == value)
        take = min(per_class, len(pool))
        chosen.append(rng.choice(pool, size=take, replace=False))
    return np.sort(np.concatenate(chosen)) if chosen \
        else np.zeros(0, dtype=np.int64)
