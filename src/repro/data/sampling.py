"""Sampling utilities for offline scalability.

Both meta-task clustering (Section V, footnote: "clustering is run on a
randomly sampled (1%) subset") and tabular preprocessing (Section VII-A:
"limit the sampling ratio under 1%") operate on samples rather than the
full exploratory database.

Every helper takes ``seed`` as anything ``np.random.default_rng``
accepts — ``None``, an int, a ``SeedSequence``, or an existing
``Generator`` (passed through unchanged, so repeated calls continue one
stream) — so callers can thread one RNG through a pipeline instead of
minting ad-hoc integer seeds at each hop.  ``stratified_chunk_sample``
is the out-of-core variant used by :mod:`repro.store`: it allocates the
sample across chunks proportionally to their row counts and draws
within each chunk, so memory stays bounded by the chunk size.
"""

from __future__ import annotations

import numpy as np

__all__ = ["random_indices", "random_sample", "ratio_sample",
           "stratified_indices", "stratified_chunk_sample"]


def random_indices(n_total, n, seed=None):
    """``n`` distinct row indices out of ``n_total`` (capped, unsorted).

    The single source of uniform row sampling: ``random_sample``,
    ``Table.sample_rows``, ``ChunkStore.sample_rows`` and the framework's
    internal statistic samples all draw through this helper, so any two
    of them given the same ``(n_total, n, seed)`` pick identical rows.
    """
    n = min(int(n), int(n_total))
    rng = np.random.default_rng(seed)
    return rng.choice(int(n_total), size=n, replace=False)


def random_sample(data, n, seed=None):
    """Uniform sample of ``n`` rows without replacement (capped)."""
    data = np.asarray(data)
    return data[random_indices(len(data), n, seed=seed)]


def ratio_sample(data, ratio, seed=None, min_rows=100):
    """Sample a fraction of rows (default floor keeps tiny tables usable)."""
    if not 0.0 < ratio <= 1.0:
        raise ValueError("ratio must be in (0, 1], got {}".format(ratio))
    data = np.asarray(data)
    n = max(min(len(data), min_rows), int(round(len(data) * ratio)))
    return random_sample(data, n, seed=seed)


def stratified_indices(labels, per_class, seed=None):
    """Pick up to ``per_class`` indices of each distinct label value."""
    labels = np.asarray(labels)
    rng = np.random.default_rng(seed)
    chosen = []
    for value in np.unique(labels):
        pool = np.flatnonzero(labels == value)
        take = min(per_class, len(pool))
        chosen.append(rng.choice(pool, size=take, replace=False))
    return np.sort(np.concatenate(chosen)) if chosen \
        else np.zeros(0, dtype=np.int64)


def stratified_chunk_sample(store, n, columns=None, seed=None):
    """Sample ``n`` rows from a chunk store, stratified by chunk.

    The sample is allocated across chunks proportionally to their row
    counts (largest-remainder rounding, so exactly ``min(n, n_rows)``
    rows come back) and drawn uniformly without replacement inside each
    chunk.  Only the sampled chunks' bytes are touched and at most one
    chunk is resident at a time, so peak memory is O(chunk + sample) —
    the out-of-core counterpart of :func:`random_sample` that the store-
    backed offline phase (clustering, preprocessing fits) rides.

    Parameters
    ----------
    store:
        A :class:`~repro.store.ChunkStore` (anything with ``zone_maps``,
        ``chunk`` and ``offsets``).
    n:
        Target sample size (capped at the store's row count).
    columns:
        Optional column projection applied while gathering.
    seed:
        Int seed or ``numpy.random.Generator``.

    Returns the ``(n, d)`` sampled rows (float64).
    """
    counts = store.zone_maps.counts
    total = int(counts.sum())
    n = min(int(n), total)
    width = store.n_attributes if columns is None else len(list(columns))
    if n <= 0 or total == 0:
        return np.zeros((0, width), dtype=np.float64)
    rng = np.random.default_rng(seed)
    # Largest-remainder proportional allocation, capped per chunk.
    exact = n * counts / total
    alloc = np.minimum(np.floor(exact).astype(np.int64), counts)
    remainder = exact - alloc
    short = n - int(alloc.sum())
    if short > 0:
        order = np.argsort(-remainder, kind="stable")
        for ci in order:
            if short == 0:
                break
            if alloc[ci] < counts[ci]:
                alloc[ci] += 1
                short -= 1
        if short > 0:   # remainders exhausted; fill wherever room is left
            for ci in np.flatnonzero(alloc < counts):
                take = min(short, int(counts[ci] - alloc[ci]))
                alloc[ci] += take
                short -= take
                if short == 0:
                    break
    cols = None if columns is None else list(columns)
    parts = []
    for ci in np.flatnonzero(alloc):
        block = store.chunk(ci)
        rows = block[np.sort(rng.choice(int(counts[ci]),
                                        size=int(alloc[ci]),
                                        replace=False))]
        parts.append(np.asarray(rows if cols is None else rows[:, cols],
                                dtype=np.float64))
    return np.vstack(parts) if parts \
        else np.zeros((0, width), dtype=np.float64)
