"""Minimal columnar table abstraction for exploratory databases.

The LTE framework only needs numeric attributes, projection onto attribute
subsets (user-interest spaces and subspaces), and row sampling; ``Table``
provides exactly that over a dense numpy matrix with named columns.
"""

from __future__ import annotations

import numpy as np

__all__ = ["Attribute", "Table"]


class Attribute:
    """A named numeric column with an advisory distribution hint.

    ``hint`` guides preprocessing model choice (Section VII-A): ``"modal"``
    attributes (one or more density peaks) suit GMM encoding; ``"interval"``
    attributes (smooth trends) suit JKC encoding; ``"auto"`` lets the
    preprocessor decide.
    """

    __slots__ = ("name", "hint")

    VALID_HINTS = ("modal", "interval", "auto")

    def __init__(self, name, hint="auto"):
        if hint not in self.VALID_HINTS:
            raise ValueError("unknown hint {!r}; expected one of {}".format(
                hint, self.VALID_HINTS))
        self.name = str(name)
        self.hint = hint

    def __repr__(self):
        return "Attribute({!r}, hint={!r})".format(self.name, self.hint)

    def __eq__(self, other):
        return (isinstance(other, Attribute)
                and other.name == self.name and other.hint == self.hint)

    def __hash__(self):
        return hash((self.name, self.hint))


class Table:
    """Dense in-memory table: (n_rows x n_attributes) float matrix.

    Parameters
    ----------
    name:
        Dataset name (used in reports).
    attributes:
        Sequence of :class:`Attribute` (or plain names).
    data:
        2-D array, one column per attribute.
    """

    def __init__(self, name, attributes, data):
        self.name = str(name)
        self.attributes = [a if isinstance(a, Attribute) else Attribute(a)
                           for a in attributes]
        data = np.asarray(data, dtype=np.float64)
        if data.ndim != 2:
            raise ValueError("data must be 2-D")
        if data.shape[1] != len(self.attributes):
            raise ValueError("data has {} columns but {} attributes".format(
                data.shape[1], len(self.attributes)))
        self.data = data
        self._index = {a.name: i for i, a in enumerate(self.attributes)}
        if len(self._index) != len(self.attributes):
            raise ValueError("duplicate attribute names")
        #: Optional dataset provenance ({"builder", "n_rows", "seed"}),
        #: attached by the dataset registry and carried into stores and
        #: checkpoint manifests so artifacts can say what data built them.
        self.provenance = None

    # ------------------------------------------------------------------
    @property
    def n_rows(self):
        return self.data.shape[0]

    @property
    def n_attributes(self):
        return self.data.shape[1]

    @property
    def attribute_names(self):
        return [a.name for a in self.attributes]

    def __len__(self):
        return self.n_rows

    def __repr__(self):
        return "Table({!r}, rows={}, attrs={})".format(
            self.name, self.n_rows, self.attribute_names)

    # ------------------------------------------------------------------
    def column_index(self, name):
        try:
            return self._index[name]
        except KeyError:
            raise KeyError("no attribute {!r} in table {!r}".format(
                name, self.name)) from None

    def column(self, name):
        """1-D view of one attribute's values."""
        return self.data[:, self.column_index(name)]

    def attribute(self, name):
        return self.attributes[self.column_index(name)]

    def project(self, names):
        """New :class:`Table` restricted to the named attributes."""
        indices = [self.column_index(n) for n in names]
        return Table("{}[{}]".format(self.name, ",".join(names)),
                     [self.attributes[i] for i in indices],
                     self.data[:, indices])

    def sample_rows(self, n, seed=None):
        """Uniform row sample without replacement (n capped at n_rows)."""
        from .sampling import random_indices
        return self.data[random_indices(self.n_rows, n, seed=seed)]

    def to_store(self, chunk_rows=None, directory=None):
        """Chunk this table into a :class:`~repro.store.ChunkStore`.

        Row order is preserved exactly, so store-backed evaluation is
        bit-identical to scanning ``self.data``.  With ``directory`` the
        chunks are written to disk and come back memory-mapped.
        """
        from ..store import DEFAULT_CHUNK_ROWS, ChunkStore
        return ChunkStore.from_table(
            self, chunk_rows=chunk_rows or DEFAULT_CHUNK_ROWS,
            directory=directory)
