"""Dataset substrate: schema, synthetic SDSS/CAR tables, sampling, subspaces."""

from .datasets import (DATASET_BACKENDS, DATASET_BUILDERS,
                       build_dataset_store, load_dataset, make_car, make_sdss)
from .sampling import (random_indices, random_sample, ratio_sample,
                       stratified_chunk_sample, stratified_indices)
from .schema import Attribute, Table
from .subspaces import Subspace, match_subspaces, random_decomposition

__all__ = [
    "Attribute", "Table",
    "make_sdss", "make_car", "load_dataset", "build_dataset_store",
    "DATASET_BUILDERS", "DATASET_BACKENDS",
    "random_indices", "random_sample", "ratio_sample",
    "stratified_indices", "stratified_chunk_sample",
    "Subspace", "random_decomposition", "match_subspaces",
]
