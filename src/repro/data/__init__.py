"""Dataset substrate: schema, synthetic SDSS/CAR tables, sampling, subspaces."""

from .datasets import DATASET_BUILDERS, load_dataset, make_car, make_sdss
from .sampling import random_sample, ratio_sample, stratified_indices
from .schema import Attribute, Table
from .subspaces import Subspace, match_subspaces, random_decomposition

__all__ = [
    "Attribute", "Table",
    "make_sdss", "make_car", "load_dataset", "DATASET_BUILDERS",
    "random_sample", "ratio_sample", "stratified_indices",
    "Subspace", "random_decomposition", "match_subspaces",
]
