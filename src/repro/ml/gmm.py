"""Gaussian mixture model fitted by expectation-maximization.

Used by the tabular-data preprocessing (Algorithm 3) to capture unimodal
and multimodal numeric attribute distributions: each attribute value is
encoded as (one-hot of the maximum-likelihood component, value normalized
within that component).
"""

from __future__ import annotations

import numpy as np

__all__ = ["GaussianMixture1D"]

_LOG_2PI = np.log(2.0 * np.pi)


class GaussianMixture1D:
    """Univariate GMM via EM, with k-means-style seeding.

    Attributes (after :meth:`fit`)
    ------------------------------
    weights_ : (k,) mixture weights, summing to 1.
    means_ : (k,) component means.
    stds_ : (k,) component standard deviations (floored at ``min_std``).
    """

    def __init__(self, n_components, max_iter=100, tol=1e-6, seed=None,
                 min_std=1e-6):
        if n_components < 1:
            raise ValueError("n_components must be >= 1")
        self.n_components = n_components
        self.max_iter = max_iter
        self.tol = tol
        self.seed = seed
        self.min_std = min_std
        self.weights_ = None
        self.means_ = None
        self.stds_ = None
        self.n_iter_ = 0
        self.converged_ = False

    # ------------------------------------------------------------------
    def _log_prob_matrix(self, values):
        """(n, k) matrix of log N(x_i | mu_j, sigma_j) + log w_j."""
        diff = (values[:, None] - self.means_[None, :]) / self.stds_[None, :]
        log_pdf = -0.5 * (diff ** 2 + _LOG_2PI) - np.log(self.stds_)[None, :]
        return log_pdf + np.log(self.weights_)[None, :]

    def fit(self, values):
        """Fit the mixture to a 1-D array of attribute values."""
        values = np.asarray(values, dtype=np.float64).ravel()
        if values.size < self.n_components:
            raise ValueError("need at least n_components samples")
        rng = np.random.default_rng(self.seed)

        # Seed means from quantiles (robust for skewed attributes), jittered.
        quantiles = np.linspace(0.0, 1.0, self.n_components + 2)[1:-1]
        self.means_ = np.quantile(values, quantiles)
        spread = max(values.std(), self.min_std)
        self.means_ = self.means_ + rng.normal(0, 1e-3 * spread,
                                               self.n_components)
        self.stds_ = np.full(self.n_components, spread)
        self.weights_ = np.full(self.n_components, 1.0 / self.n_components)

        prev_ll = -np.inf
        for iteration in range(self.max_iter):
            # E-step (log-sum-exp for stability).
            log_joint = self._log_prob_matrix(values)
            log_norm = np.logaddexp.reduce(log_joint, axis=1)
            resp = np.exp(log_joint - log_norm[:, None])

            # M-step.
            counts = resp.sum(axis=0) + 1e-12
            self.weights_ = counts / counts.sum()
            self.means_ = (resp * values[:, None]).sum(axis=0) / counts
            var = (resp * (values[:, None] - self.means_[None, :]) ** 2
                   ).sum(axis=0) / counts
            self.stds_ = np.sqrt(np.maximum(var, self.min_std ** 2))

            log_likelihood = float(log_norm.sum())
            self.n_iter_ = iteration + 1
            if np.isfinite(prev_ll) and (
                    abs(log_likelihood - prev_ll)
                    <= self.tol * max(1.0, abs(prev_ll))):
                self.converged_ = True
                break
            prev_ll = log_likelihood
        return self

    # ------------------------------------------------------------------
    def responsibilities(self, values):
        """(n, k) posterior component probabilities for each value."""
        self._check_fitted()
        values = np.asarray(values, dtype=np.float64).ravel()
        log_joint = self._log_prob_matrix(values)
        log_norm = np.logaddexp.reduce(log_joint, axis=1)
        return np.exp(log_joint - log_norm[:, None])

    def predict(self, values):
        """Index of the maximum-likelihood component for each value."""
        self._check_fitted()
        values = np.asarray(values, dtype=np.float64).ravel()
        return self._log_prob_matrix(values).argmax(axis=1)

    def sample(self, n, seed=None):
        """Draw ``n`` samples from the fitted mixture."""
        self._check_fitted()
        rng = np.random.default_rng(seed)
        comps = rng.choice(self.n_components, size=n, p=self.weights_)
        return rng.normal(self.means_[comps], self.stds_[comps])

    def _check_fitted(self):
        if self.means_ is None:
            raise RuntimeError("GaussianMixture1D used before fit")
