"""Jenks natural-breaks classification (Fisher-Jenks dynamic program).

Partitions a 1-D numeric distribution into ``k`` intervals minimizing the
within-interval variance — the second tabular encoding of Algorithm 3,
suited to attributes whose distribution consists of smooth intervals
(trends, time-series-like columns).
"""

from __future__ import annotations

import numpy as np

__all__ = ["JenksBreaks", "jenks_breaks"]


def jenks_breaks(values, n_classes):
    """Compute Jenks natural-break boundaries.

    Returns an ascending array of ``n_classes + 1`` boundaries
    ``[min, b1, ..., b_{k-1}, max]``; interval ``i`` is
    ``[boundaries[i], boundaries[i+1]]`` (right-closed on the last).

    The exact O(k * n^2) Fisher-Jenks dynamic program is run on sorted,
    de-duplicated values; preprocessing subsamples its input, keeping the
    cost bounded.
    """
    values = np.asarray(values, dtype=np.float64).ravel()
    if values.size == 0:
        raise ValueError("cannot compute breaks of empty data")
    sorted_vals = np.sort(values)
    unique_vals = np.unique(sorted_vals)
    if n_classes < 1:
        raise ValueError("n_classes must be >= 1")
    if unique_vals.size <= n_classes:
        # Degenerate: every distinct value gets its own interval.
        bounds = np.concatenate([unique_vals, [unique_vals[-1]]])
        return bounds

    data = sorted_vals
    n = data.size

    # Prefix sums for O(1) within-class sum of squared deviations.
    prefix = np.concatenate([[0.0], np.cumsum(data)])
    prefix_sq = np.concatenate([[0.0], np.cumsum(data ** 2)])

    def ssd(i, j):
        """Sum of squared deviations of data[i:j] (j exclusive)."""
        count = j - i
        total = prefix[j] - prefix[i]
        total_sq = prefix_sq[j] - prefix_sq[i]
        return total_sq - total * total / count

    # cost[c][j]: minimal SSD partitioning data[:j] into c classes.
    inf = np.inf
    cost = np.full((n_classes + 1, n + 1), inf)
    split = np.zeros((n_classes + 1, n + 1), dtype=np.int64)
    cost[0][0] = 0.0
    for c in range(1, n_classes + 1):
        for j in range(c, n + 1):
            best, best_i = inf, c - 1
            for i in range(c - 1, j):
                prev = cost[c - 1][i]
                if prev == inf:
                    continue
                candidate = prev + ssd(i, j)
                if candidate < best:
                    best, best_i = candidate, i
            cost[c][j] = best
            split[c][j] = best_i

    # Backtrack boundaries.
    bounds = np.empty(n_classes + 1)
    bounds[-1] = data[-1]
    bounds[0] = data[0]
    j = n
    for c in range(n_classes, 1, -1):
        i = split[c][j]
        bounds[c - 1] = data[i]
        j = i
    return bounds


class JenksBreaks:
    """Fitted natural-breaks classifier with interval lookup.

    Parameters
    ----------
    n_classes:
        Number of JKC intervals ``|b|``.
    max_samples:
        The DP is quadratic in sample count; larger inputs are uniformly
        subsampled to this size before fitting (order statistics of a
        uniform subsample converge to the population's).
    """

    def __init__(self, n_classes, max_samples=1000, seed=None):
        self.n_classes = n_classes
        self.max_samples = max_samples
        self.seed = seed
        self.bounds_ = None

    def fit(self, values):
        values = np.asarray(values, dtype=np.float64).ravel()
        if values.size > self.max_samples:
            rng = np.random.default_rng(self.seed)
            values = rng.choice(values, size=self.max_samples, replace=False)
        self.bounds_ = jenks_breaks(values, self.n_classes)
        return self

    @property
    def n_intervals(self):
        """Actual number of intervals (may be < n_classes on degenerate data)."""
        self._check_fitted()
        return len(self.bounds_) - 1

    def predict(self, values):
        """Map each value to its JKC interval index (clipped at the ends)."""
        self._check_fitted()
        values = np.asarray(values, dtype=np.float64).ravel()
        # searchsorted against the inner boundaries.
        idx = np.searchsorted(self.bounds_[1:-1], values, side="right")
        return np.clip(idx, 0, self.n_intervals - 1)

    def interval(self, index):
        """Return ``(lo, hi)`` of interval ``index``."""
        self._check_fitted()
        if not 0 <= index < self.n_intervals:
            raise IndexError("interval index out of range")
        return float(self.bounds_[index]), float(self.bounds_[index + 1])

    def _check_fitted(self):
        if self.bounds_ is None:
            raise RuntimeError("JenksBreaks used before fit")
