"""Soft-margin kernel SVM trained by a simplified SMO solver.

This is the classifier substrate of both baselines: AL-SVM (AIDE-style
active learning over an RBF SVM) and DSM, whose dual-space model falls back
to an SVM outside its known polytope regions.  A few hundred labelled
tuples per exploration round keeps the O(n^2) kernel matrix cheap.
"""

from __future__ import annotations

import numpy as np

__all__ = ["SVC", "rbf_kernel", "linear_kernel"]


def rbf_kernel(a, b, gamma):
    """Gaussian kernel matrix exp(-gamma * ||a_i - b_j||^2)."""
    a = np.atleast_2d(np.asarray(a, dtype=np.float64))
    b = np.atleast_2d(np.asarray(b, dtype=np.float64))
    sq = (np.sum(a ** 2, axis=1)[:, None]
          + np.sum(b ** 2, axis=1)[None, :]
          - 2.0 * a @ b.T)
    np.maximum(sq, 0.0, out=sq)
    return np.exp(-gamma * sq)


def linear_kernel(a, b, gamma=None):
    """Gram matrix a @ b.T (gamma accepted for interface parity)."""
    a = np.atleast_2d(np.asarray(a, dtype=np.float64))
    b = np.atleast_2d(np.asarray(b, dtype=np.float64))
    return a @ b.T


class SVC:
    """C-SVM binary classifier (labels in {0, 1}) with RBF/linear kernel.

    Trained with a simplified Sequential Minimal Optimization: random
    working-pair selection with KKT-violation screening, which is robust
    and ample for the few-hundred-point training sets that active
    exploration produces.

    Parameters
    ----------
    C:
        Soft-margin penalty.
    kernel:
        ``"rbf"`` or ``"linear"``.
    gamma:
        RBF width; ``None`` uses the 1/(d * var) "scale" heuristic.
    """

    def __init__(self, C=1.0, kernel="rbf", gamma=None, max_passes=5,
                 max_iter=2000, tol=1e-3, seed=0):
        if C <= 0:
            raise ValueError("C must be positive")
        if kernel not in ("rbf", "linear"):
            raise ValueError("unknown kernel: {!r}".format(kernel))
        self.C = C
        self.kernel = kernel
        self.gamma = gamma
        self.max_passes = max_passes
        self.max_iter = max_iter
        self.tol = tol
        self.seed = seed
        self.support_vectors_ = None
        self.dual_coef_ = None
        self.intercept_ = 0.0
        self._gamma_value = None

    # ------------------------------------------------------------------
    def _kernel(self, a, b):
        if self.kernel == "rbf":
            return rbf_kernel(a, b, self._gamma_value)
        return linear_kernel(a, b)

    def fit(self, features, labels):
        """Train on features (n x d) and 0/1 labels (n,)."""
        features = np.atleast_2d(np.asarray(features, dtype=np.float64))
        labels = np.asarray(labels).ravel()
        if set(np.unique(labels)) - {0, 1}:
            raise ValueError("labels must be 0/1")
        n = features.shape[0]
        if n < 2 or len(np.unique(labels)) < 2:
            # Degenerate training set: constant classifier.
            self.support_vectors_ = features[:1]
            self.dual_coef_ = np.zeros(1)
            self.intercept_ = 1.0 if labels.size and labels[0] == 1 else -1.0
            self._gamma_value = self.gamma or 1.0
            return self

        y = np.where(labels == 1, 1.0, -1.0)
        if self.gamma is None:
            var = features.var()
            self._gamma_value = 1.0 / (features.shape[1] * var) if var > 0 else 1.0
        else:
            self._gamma_value = self.gamma

        gram = self._kernel(features, features)
        alpha = np.zeros(n)
        b = 0.0
        rng = np.random.default_rng(self.seed)

        def f(i):
            return (alpha * y) @ gram[:, i] + b

        passes, iters = 0, 0
        while passes < self.max_passes and iters < self.max_iter:
            changed = 0
            for i in range(n):
                err_i = f(i) - y[i]
                if ((y[i] * err_i < -self.tol and alpha[i] < self.C)
                        or (y[i] * err_i > self.tol and alpha[i] > 0)):
                    j = int(rng.integers(n - 1))
                    if j >= i:
                        j += 1
                    err_j = f(j) - y[j]
                    alpha_i_old, alpha_j_old = alpha[i], alpha[j]
                    if y[i] != y[j]:
                        low = max(0.0, alpha[j] - alpha[i])
                        high = min(self.C, self.C + alpha[j] - alpha[i])
                    else:
                        low = max(0.0, alpha[i] + alpha[j] - self.C)
                        high = min(self.C, alpha[i] + alpha[j])
                    if low >= high:
                        continue
                    eta = 2.0 * gram[i, j] - gram[i, i] - gram[j, j]
                    if eta >= 0:
                        continue
                    alpha[j] -= y[j] * (err_i - err_j) / eta
                    alpha[j] = np.clip(alpha[j], low, high)
                    if abs(alpha[j] - alpha_j_old) < 1e-7:
                        continue
                    alpha[i] += y[i] * y[j] * (alpha_j_old - alpha[j])
                    b1 = (b - err_i
                          - y[i] * (alpha[i] - alpha_i_old) * gram[i, i]
                          - y[j] * (alpha[j] - alpha_j_old) * gram[i, j])
                    b2 = (b - err_j
                          - y[i] * (alpha[i] - alpha_i_old) * gram[i, j]
                          - y[j] * (alpha[j] - alpha_j_old) * gram[j, j])
                    if 0 < alpha[i] < self.C:
                        b = b1
                    elif 0 < alpha[j] < self.C:
                        b = b2
                    else:
                        b = 0.5 * (b1 + b2)
                    changed += 1
            iters += 1
            passes = passes + 1 if changed == 0 else 0

        support = alpha > 1e-8
        if not support.any():
            support[:] = True
        self.support_vectors_ = features[support]
        self.dual_coef_ = (alpha * y)[support]
        self.intercept_ = float(b)
        return self

    # ------------------------------------------------------------------
    def decision_function(self, features):
        """Signed distance proxy; positive means class 1."""
        if self.support_vectors_ is None:
            raise RuntimeError("SVC.decision_function called before fit")
        gram = self._kernel(np.atleast_2d(features), self.support_vectors_)
        return gram @ self.dual_coef_ + self.intercept_

    def predict(self, features):
        """0/1 class labels."""
        return (self.decision_function(features) > 0).astype(np.int64)
