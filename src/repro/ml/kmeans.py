"""Lloyd's k-means with k-means++ seeding.

Clustering is the workhorse of LTE's meta-task generation (Section V-B):
three independent rounds with k = ku, ks, kq summarize each meta-subspace
into cluster-center sets C_u, C_s, C_q, and the proximity matrices P_u, P_s
drive UIS construction and feature-vector expansion.
"""

from __future__ import annotations

import numpy as np

__all__ = ["KMeans", "pairwise_distances"]


def pairwise_distances(a, b):
    """Euclidean distance matrix between rows of ``a`` and rows of ``b``."""
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    sq = (np.sum(a ** 2, axis=1)[:, None]
          + np.sum(b ** 2, axis=1)[None, :]
          - 2.0 * a @ b.T)
    np.maximum(sq, 0.0, out=sq)
    return np.sqrt(sq)


class KMeans:
    """Batch k-means (Lloyd's algorithm).

    Parameters
    ----------
    n_clusters:
        Number of cluster centers ``k``.
    max_iter:
        Iteration cap for Lloyd's loop.
    tol:
        Convergence threshold on center movement (Frobenius norm).
    seed:
        Seed for the k-means++ initialization.
    """

    def __init__(self, n_clusters, max_iter=100, tol=1e-6, seed=None):
        if n_clusters < 1:
            raise ValueError("n_clusters must be >= 1")
        self.n_clusters = n_clusters
        self.max_iter = max_iter
        self.tol = tol
        self.seed = seed
        self.centers_ = None
        self.labels_ = None
        self.inertia_ = None
        self.n_iter_ = 0

    # ------------------------------------------------------------------
    def _init_centers(self, data, rng):
        """k-means++ seeding (Arthur & Vassilvitskii, 2007)."""
        n = data.shape[0]
        centers = np.empty((self.n_clusters, data.shape[1]))
        centers[0] = data[rng.integers(n)]
        closest_sq = np.sum((data - centers[0]) ** 2, axis=1)
        for i in range(1, self.n_clusters):
            total = closest_sq.sum()
            if total <= 0:
                # All remaining points coincide with chosen centers.
                centers[i:] = data[rng.integers(n, size=self.n_clusters - i)]
                break
            probs = closest_sq / total
            idx = rng.choice(n, p=probs)
            centers[i] = data[idx]
            dist_sq = np.sum((data - centers[i]) ** 2, axis=1)
            np.minimum(closest_sq, dist_sq, out=closest_sq)
        return centers

    def fit(self, data):
        """Cluster ``data`` (n x d). Returns self."""
        data = np.asarray(data, dtype=np.float64)
        if data.ndim != 2:
            raise ValueError("expected 2-D data, got shape {}".format(data.shape))
        n = data.shape[0]
        if n < self.n_clusters:
            raise ValueError(
                "need at least n_clusters={} points, got {}".format(
                    self.n_clusters, n))
        rng = np.random.default_rng(self.seed)
        centers = self._init_centers(data, rng)

        labels = np.zeros(n, dtype=np.int64)
        for iteration in range(self.max_iter):
            dist = pairwise_distances(data, centers)
            labels = dist.argmin(axis=1)
            new_centers = centers.copy()
            for j in range(self.n_clusters):
                members = data[labels == j]
                if len(members):
                    new_centers[j] = members.mean(axis=0)
                else:
                    # Re-seed empty cluster at the farthest point.
                    farthest = dist.min(axis=1).argmax()
                    new_centers[j] = data[farthest]
            shift = np.linalg.norm(new_centers - centers)
            centers = new_centers
            self.n_iter_ = iteration + 1
            if shift <= self.tol:
                break

        dist = pairwise_distances(data, centers)
        self.labels_ = dist.argmin(axis=1)
        self.centers_ = centers
        self.inertia_ = float(np.sum(dist[np.arange(n), self.labels_] ** 2))
        return self

    def predict(self, data):
        """Assign each row of ``data`` to its nearest learned center."""
        if self.centers_ is None:
            raise RuntimeError("KMeans.predict called before fit")
        data = np.asarray(data, dtype=np.float64)
        return pairwise_distances(data, self.centers_).argmin(axis=1)
