"""Min-max feature scaling.

The "straightforward" tabular preprocessing the paper compares against
(Section VII-A), and the normalization step applied inside each GMM
component / JKC interval.
"""

from __future__ import annotations

import numpy as np

__all__ = ["MinMaxScaler", "normalize_within"]


def normalize_within(values, lo, hi):
    """Scale values into [0, 1] relative to the interval [lo, hi].

    Degenerate intervals (hi == lo) map to 0.5; outputs are clipped so
    out-of-interval values (possible for GMM-component normalization,
    where the interval is mean +/- 2*std) stay in range.
    """
    values = np.asarray(values, dtype=np.float64)
    span = hi - lo
    if span <= 0:
        return np.full_like(values, 0.5)
    return np.clip((values - lo) / span, 0.0, 1.0)


class MinMaxScaler:
    """Columnwise min-max scaler to [0, 1]."""

    def __init__(self):
        self.min_ = None
        self.max_ = None

    def fit(self, data):
        data = np.atleast_2d(np.asarray(data, dtype=np.float64))
        self.min_ = data.min(axis=0)
        self.max_ = data.max(axis=0)
        return self

    @classmethod
    def from_bounds(cls, lo, hi):
        """Scaler over known exact column bounds (no data pass).

        The chunk store's zone maps carry the global per-column min/max,
        so a store-backed fit builds the identical scaler a full
        ``fit(data)`` would — without materializing the data.
        """
        scaler = cls()
        scaler.min_ = np.asarray(lo, dtype=np.float64).ravel().copy()
        scaler.max_ = np.asarray(hi, dtype=np.float64).ravel().copy()
        if scaler.min_.shape != scaler.max_.shape:
            raise ValueError("lo/hi shape mismatch")
        return scaler

    def transform(self, data):
        if self.min_ is None:
            raise RuntimeError("MinMaxScaler used before fit")
        data = np.atleast_2d(np.asarray(data, dtype=np.float64))
        span = np.where(self.max_ > self.min_, self.max_ - self.min_, 1.0)
        return np.clip((data - self.min_) / span, 0.0, 1.0)

    def fit_transform(self, data):
        return self.fit(data).transform(data)

    def inverse_transform(self, data):
        if self.min_ is None:
            raise RuntimeError("MinMaxScaler used before fit")
        data = np.atleast_2d(np.asarray(data, dtype=np.float64))
        return data * (self.max_ - self.min_) + self.min_
