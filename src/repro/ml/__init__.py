"""Classical machine-learning substrate built from scratch on numpy.

Provides the clustering, density modelling, discretization, and SVM
components the LTE framework and its baselines depend on (DESIGN.md §3).
"""

from .decision_tree import DecisionTree, TreeNode
from .gmm import GaussianMixture1D
from .jenks import JenksBreaks, jenks_breaks
from .kmeans import KMeans, pairwise_distances
from .scaler import MinMaxScaler, normalize_within
from .svm import SVC, linear_kernel, rbf_kernel

__all__ = [
    "DecisionTree", "TreeNode",
    "KMeans", "pairwise_distances",
    "GaussianMixture1D",
    "JenksBreaks", "jenks_breaks",
    "SVC", "rbf_kernel", "linear_kernel",
    "MinMaxScaler", "normalize_within",
]
