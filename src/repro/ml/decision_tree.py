"""CART decision tree (binary classification, axis-aligned splits).

Substrate for the AIDE baseline (Table I: AIDE explores with decision-tree
classifiers under active learning) and for the SQL query-region extraction
of the final-retrieval module: a tree's positive leaves form a disjunction
of axis-aligned range predicates — directly expressible as a SQL filter.
"""

from __future__ import annotations

import numpy as np

__all__ = ["DecisionTree", "TreeNode"]


class TreeNode:
    """A tree node; leaves carry the positive-class probability."""

    __slots__ = ("feature", "threshold", "left", "right", "probability",
                 "n_samples")

    def __init__(self, probability, n_samples):
        self.feature = None
        self.threshold = None
        self.left = None
        self.right = None
        self.probability = probability
        self.n_samples = n_samples

    @property
    def is_leaf(self):
        return self.feature is None


def _gini(positive, total):
    if total == 0:
        return 0.0
    p = positive / total
    return 2.0 * p * (1.0 - p)


class DecisionTree:
    """Greedy CART for 0/1 labels.

    Parameters
    ----------
    max_depth:
        Depth cap (root = depth 0).
    min_samples_split:
        Minimum samples needed to consider a split.
    min_gain:
        Minimum Gini improvement to accept a split.
    """

    def __init__(self, max_depth=6, min_samples_split=4, min_gain=1e-7):
        if max_depth < 1:
            raise ValueError("max_depth must be >= 1")
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_gain = min_gain
        self.root_ = None
        self.n_features_ = None

    # ------------------------------------------------------------------
    def fit(self, features, labels):
        features = np.atleast_2d(np.asarray(features, dtype=np.float64))
        labels = np.asarray(labels).ravel().astype(np.int64)
        if len(features) != len(labels):
            raise ValueError("features/labels length mismatch")
        if len(features) == 0:
            raise ValueError("cannot fit an empty dataset")
        self.n_features_ = features.shape[1]
        self.root_ = self._build(features, labels, depth=0)
        return self

    def _build(self, features, labels, depth):
        n = len(labels)
        positives = int(labels.sum())
        node = TreeNode(probability=positives / n, n_samples=n)
        if (depth >= self.max_depth or n < self.min_samples_split
                or positives == 0 or positives == n):
            return node
        best = self._best_split(features, labels)
        if best is None:
            return node
        feature, threshold = best
        mask = features[:, feature] <= threshold
        node.feature = feature
        node.threshold = threshold
        node.left = self._build(features[mask], labels[mask], depth + 1)
        node.right = self._build(features[~mask], labels[~mask], depth + 1)
        return node

    def _best_split(self, features, labels):
        n = len(labels)
        total_pos = labels.sum()
        parent = _gini(total_pos, n)
        best_gain, best = self.min_gain, None
        for feature in range(features.shape[1]):
            order = np.argsort(features[:, feature], kind="stable")
            values = features[order, feature]
            sorted_labels = labels[order]
            pos_cum = np.cumsum(sorted_labels)
            # Candidate split after index i (1..n-1), only where the value
            # actually changes.
            change = np.flatnonzero(np.diff(values) > 0) + 1
            for i in change:
                left_pos = pos_cum[i - 1]
                gini_left = _gini(left_pos, i)
                gini_right = _gini(total_pos - left_pos, n - i)
                weighted = (i * gini_left + (n - i) * gini_right) / n
                gain = parent - weighted
                if gain > best_gain:
                    best_gain = gain
                    best = (feature, 0.5 * (values[i - 1] + values[i]))
        return best

    # ------------------------------------------------------------------
    def _leaf_for(self, row):
        node = self.root_
        while not node.is_leaf:
            node = node.left if row[node.feature] <= node.threshold \
                else node.right
        return node

    def predict_proba(self, features):
        """Positive-class probability per row (leaf frequency)."""
        self._check_fitted()
        features = np.atleast_2d(np.asarray(features, dtype=np.float64))
        return np.array([self._leaf_for(row).probability
                         for row in features])

    def predict(self, features):
        return (self.predict_proba(features) >= 0.5).astype(np.int64)

    # ------------------------------------------------------------------
    def positive_boxes(self, lower, upper, threshold=0.5):
        """Axis-aligned boxes of the positive leaves.

        Walks the tree accumulating the split constraints; returns a list
        of ``(lo, hi)`` bound arrays, one per leaf whose positive
        probability reaches ``threshold``.  ``lower``/``upper`` bound the
        overall domain (unconstrained sides default to them).
        """
        self._check_fitted()
        lower = np.asarray(lower, dtype=np.float64).copy()
        upper = np.asarray(upper, dtype=np.float64).copy()
        boxes = []

        def walk(node, lo, hi):
            if node.is_leaf:
                if node.probability >= threshold:
                    boxes.append((lo.copy(), hi.copy()))
                return
            old = hi[node.feature]
            hi[node.feature] = min(old, node.threshold)
            walk(node.left, lo, hi)
            hi[node.feature] = old
            old = lo[node.feature]
            lo[node.feature] = max(old, node.threshold)
            walk(node.right, lo, hi)
            lo[node.feature] = old

        walk(self.root_, lower, upper)
        return boxes

    def depth(self):
        """Actual depth of the fitted tree."""
        self._check_fitted()

        def measure(node):
            if node.is_leaf:
                return 0
            return 1 + max(measure(node.left), measure(node.right))

        return measure(self.root_)

    def n_leaves(self):
        self._check_fitted()

        def count(node):
            if node.is_leaf:
                return 1
            return count(node.left) + count(node.right)

        return count(self.root_)

    def _check_fitted(self):
        if self.root_ is None:
            raise RuntimeError("DecisionTree used before fit")
