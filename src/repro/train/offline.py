"""Pooled, resumable offline meta-training across meta-subspaces.

:class:`TrainerSchedule` wraps one
:class:`~repro.core.meta_training.MetaTrainer` with everything its
training run owns — the encoded task set, the epoch RNG, the phase
cursors (pretrain epochs / meta epochs completed) and the carried
pretrain-Adam state.  :class:`OfflineRun` advances a set of schedules
**one epoch per tick**, pooling shape-compatible subspaces into shared
fused programs (:mod:`repro.train.engine`): instead of finishing
subspace i before starting i+1, every tick interleaves one epoch of
every unfinished subspace, so a meta-batch stacks
``batch_size x n_subspaces`` tasks and a pretrain step stacks one task
per subspace.  Because the subspaces' trainers are independent (separate
phi, memories and RNG streams), any interleaving — and any fusion — is
bit-identical to training them one after another.

Epoch granularity is also the **resume granularity**:
:func:`run_offline_training` checkpoints every schedule's cursor, RNG
state, trainer weights and pretrain-optimizer moments after every tick
(via :func:`repro.persist.save_pretrain_run`), so a killed pretraining
run resumes from the last completed epoch and converges to the identical
phi, bit for bit (``tests/persist``).
"""

from __future__ import annotations

import time

import numpy as np

from ..obs import default_registry
from .engine import (MetaBatchSlot, run_meta_batch_fused,
                     run_pretrain_epoch_pooled,
                     run_pretrain_epoch_sequential, encode_task_sets)

__all__ = ["DEFAULT_ENGINE", "ENGINES", "check_engine", "TrainerSchedule",
           "OfflineRun", "run_offline_training"]

#: The fused stacked executor is the default everywhere; the sequential
#: reference executor remains available for parity checks and debugging.
DEFAULT_ENGINE = "batched"
ENGINES = ("batched", "sequential")


def check_engine(engine):
    engine = DEFAULT_ENGINE if engine is None else engine
    if engine not in ENGINES:
        raise ValueError("unknown engine {!r}; options: {}".format(
            engine, ENGINES))
    return engine


class TrainerSchedule:
    """Resumable training state of ONE trainer over its encoded tasks.

    ``encoded=None`` marks a schedule restored from a *finished*
    checkpoint: no epochs remain, so the (expensive) meta-tasks are
    never regenerated or encoded — :meth:`load_state_dict` enforces
    that such a schedule really is complete.
    """

    def __init__(self, trainer, encoded, epochs=None):
        self.trainer = trainer
        self.encoded = None if encoded is None else list(encoded)
        self.n_tasks = None if encoded is None else len(self.encoded)
        self.rng = np.random.default_rng(trainer.seed)
        params = trainer.params
        self.pretrain_total = max(0, int(params.pretrain_epochs))
        self.meta_total = max(0, int(params.epochs if epochs is None
                                     else epochs))
        self.pretrain_done = 0
        self.meta_done = 0
        self.pretrain_opt_state = None
        self._pretrain_sets = None

    # -- phase bookkeeping ---------------------------------------------
    @property
    def phase(self):
        if self.pretrain_done < self.pretrain_total:
            return "pretrain"
        if self.meta_done < self.meta_total:
            return "meta"
        return "done"

    @property
    def done(self):
        return self.phase == "done"

    def next_pretrain_order(self):
        return self.rng.permutation(len(self.encoded))

    def next_meta_order(self):
        return self.rng.permutation(len(self.encoded))

    # -- pretrain working set ------------------------------------------
    @property
    def pretrain_sets(self):
        """Per-task ``(v_R, support+query tuples, labels)`` for joint
        pretraining (built lazily, cached)."""
        if self._pretrain_sets is None:
            self._pretrain_sets = [
                (v_r, np.vstack([sx, qx]),
                 np.concatenate([sy, qy]).astype(np.float64))
                for v_r, sx, sy, qx, qy in self.encoded]
        return self._pretrain_sets

    # -- fusion grouping ------------------------------------------------
    def _shape_signature(self):
        """Uniform (support, query) shapes of the task set, or None."""
        shapes = {(sx.shape, qx.shape)
                  for _, sx, _, qx, _ in self.encoded}
        return next(iter(shapes)) if len(shapes) == 1 else None

    def pretrain_group_key(self):
        """Schedules sharing this key can pretrain in lockstep fusion."""
        signature = self._shape_signature()
        if signature is None:
            return ("solo", id(self))
        params = self.trainer.params
        return (tuple(sorted(self.trainer.model.config.items())),
                signature, len(self.encoded),
                float(params.pretrain_lr), bool(params.balance_classes))

    def meta_group_key(self):
        """Schedules sharing this key can fuse their meta-batches."""
        signature = self._shape_signature()
        if signature is None:
            return ("solo", id(self))
        params = self.trainer.params
        return (tuple(sorted(self.trainer.model.config.items())),
                signature, int(params.batch_size),
                int(params.local_steps), float(params.rho),
                str(params.local_optimizer), bool(params.balance_classes))

    # -- checkpointing --------------------------------------------------
    def state_dict(self):
        """Everything needed to resume this schedule bit-identically."""
        return {
            "n_tasks": int(self.n_tasks),
            "pretrain_total": int(self.pretrain_total),
            "meta_total": int(self.meta_total),
            "pretrain_done": int(self.pretrain_done),
            "meta_done": int(self.meta_done),
            "rng_state": _encode_rng_state(self.rng),
            "trainer": self.trainer.state_dict(),
            "pretrain_optimizer": self.pretrain_opt_state,
        }

    def load_state_dict(self, state):
        from ..persist.checkpoint import CheckpointError

        expected = {"pretrain_total": self.pretrain_total,
                    "meta_total": self.meta_total}
        if self.encoded is not None:
            expected["n_tasks"] = len(self.encoded)
        for field, value in expected.items():
            if int(state[field]) != int(value):
                raise CheckpointError(
                    "pretrain-run checkpoint has {}={} but the resuming "
                    "run was configured with {}; resume with the exact "
                    "original configuration".format(
                        field, state[field], value))
        self.pretrain_done = int(state["pretrain_done"])
        self.meta_done = int(state["meta_done"])
        self.n_tasks = int(state["n_tasks"])
        if self.encoded is None and not self.done:
            raise CheckpointError(
                "pretrain-run schedule was restored without its task set "
                "but still has epochs to run ({}/{} pretrain, {}/{} "
                "meta); this is a bug in the resume driver".format(
                    self.pretrain_done, self.pretrain_total,
                    self.meta_done, self.meta_total))
        self.trainer.load_state_dict(state["trainer"])
        self.rng = _decode_rng_state(state["rng_state"])
        self.pretrain_opt_state = state["pretrain_optimizer"]


def _encode_rng_state(rng):
    """JSON-able snapshot of a Generator's bit-generator state."""
    state = rng.bit_generator.state
    return {"bit_generator": state["bit_generator"],
            "state": {key: int(value)
                      for key, value in state["state"].items()},
            "has_uint32": int(state["has_uint32"]),
            "uinteger": int(state["uinteger"])}


def _decode_rng_state(snapshot):
    rng = np.random.default_rng(0)
    if snapshot["bit_generator"] != rng.bit_generator.state["bit_generator"]:
        from ..persist.checkpoint import CheckpointError
        raise CheckpointError(
            "pretrain-run checkpoint was written with bit generator {!r} "
            "but this numpy builds {!r}; resume on a matching numpy"
            .format(snapshot["bit_generator"],
                    rng.bit_generator.state["bit_generator"]))
    rng.bit_generator.state = {
        "bit_generator": snapshot["bit_generator"],
        "state": {key: int(value)
                  for key, value in snapshot["state"].items()},
        "has_uint32": int(snapshot["has_uint32"]),
        "uinteger": int(snapshot["uinteger"]),
    }
    return rng


class OfflineRun:
    """Drive a set of schedules to completion, one pooled epoch per tick.

    Parameters
    ----------
    schedules:
        :class:`TrainerSchedule` instances (typically one per
        meta-subspace; a single one reproduces ``MetaTrainer.train``).
    engine:
        ``"batched"`` (default) or ``"sequential"``; bit-identical.
    on_epoch:
        Optional callback ``(schedule, kind, epoch_index, mean_loss)``
        fired after each completed epoch — ``kind`` is ``"pretrain"``
        (``mean_loss`` is None) or ``"meta"`` (mean query loss).
    """

    def __init__(self, schedules, engine=None, on_epoch=None):
        self.schedules = list(schedules)
        self.engine = check_engine(engine)
        self.on_epoch = on_epoch

    @property
    def done(self):
        return all(schedule.done for schedule in self.schedules)

    def run(self):
        while not self.done:
            self.step_epoch()
        return self

    def step_epoch(self):
        """Advance every unfinished schedule by one epoch of its phase.

        Phase wall-clock lands in the process default ``repro.obs``
        registry (``train.offline.{pretrain,meta}_epoch.seconds``) —
        timing only, never on the training numerics.
        """
        metrics = default_registry()
        pretraining = [s for s in self.schedules if s.phase == "pretrain"]
        meta = [s for s in self.schedules if s.phase == "meta"]
        for group in _grouped(pretraining,
                              TrainerSchedule.pretrain_group_key):
            t0 = time.perf_counter()
            if self.engine == "batched" and len(group) > 1:
                run_pretrain_epoch_pooled(group)
            else:
                for schedule in group:
                    run_pretrain_epoch_sequential(schedule)
            metrics.histogram("train.offline.pretrain_epoch.seconds") \
                .observe(time.perf_counter() - t0)
            metrics.counter("train.offline.epochs.pretrain").inc()
            for schedule in group:
                schedule.pretrain_done += 1
                self._emit(schedule, "pretrain",
                           schedule.pretrain_done - 1, None)
        for group in _grouped(meta, TrainerSchedule.meta_group_key):
            t0 = time.perf_counter()
            losses = _run_meta_epoch(group, self.engine)
            metrics.histogram("train.offline.meta_epoch.seconds") \
                .observe(time.perf_counter() - t0)
            metrics.counter("train.offline.epochs.meta").inc()
            for schedule, epoch_losses in zip(group, losses):
                mean = float(np.mean(epoch_losses)) if epoch_losses else 0.0
                schedule.trainer.history.append(mean)
                schedule.meta_done += 1
                self._emit(schedule, "meta", schedule.meta_done - 1, mean)

    def _emit(self, schedule, kind, epoch, mean_loss):
        if self.on_epoch is not None:
            self.on_epoch(schedule, kind, epoch, mean_loss)


def _grouped(schedules, key_method):
    """Schedules grouped by fusion key, preserving first-seen order."""
    groups = {}
    for schedule in schedules:
        groups.setdefault(key_method(schedule), []).append(schedule)
    return list(groups.values())


def _run_meta_epoch(schedules, engine):
    """One meta epoch for a fusion group, batches interleaved round-robin.

    Returns per-schedule lists of query losses in task order — exactly
    the list the sequential per-trainer epoch would produce, because the
    round-robin only reorders work *across* independent trainers.
    """
    batch_size = max(1, int(schedules[0].trainer.params.batch_size))
    # Task sets of non-uniform support/query shapes cannot np.stack into
    # one program (their group key is already solo); run them on the
    # sequential executor — identical semantics, task at a time.
    fusable = all(schedule._shape_signature() is not None
                  for schedule in schedules)
    orders = [schedule.next_meta_order() for schedule in schedules]
    losses = [[] for _ in schedules]
    n_batches = max((len(order) + batch_size - 1) // batch_size
                    for order in orders)
    for b in range(n_batches):
        slots, owners = [], []
        for s, schedule in enumerate(schedules):
            batch = orders[s][b * batch_size:(b + 1) * batch_size]
            if len(batch):
                slots.append(MetaBatchSlot(schedule.trainer,
                                           schedule.encoded, list(batch)))
                owners.append(s)
        if not slots:
            continue
        total = sum(len(slot.indices) for slot in slots)
        if engine == "batched" and fusable and total > 1:
            slot_losses = run_meta_batch_fused(slots)
        else:
            slot_losses = [
                slot.trainer.train_batch_sequential(slot.encoded,
                                                    slot.indices)
                for slot in slots]
        for s, batch_losses in zip(owners, slot_losses):
            losses[s].extend(batch_losses)
    return losses


# ----------------------------------------------------------------------
# The LTE offline phase: pooled training over every prepared subspace
# ----------------------------------------------------------------------
def run_offline_training(lte, subspaces, engine=None, progress=None,
                         checkpoint=None):
    """Meta-train every prepared subspace of ``lte``, pooled and resumable.

    Builds one :class:`TrainerSchedule` per subspace (regenerating the
    deterministic meta-tasks and encodings), optionally resumes from an
    epoch-granular ``pretrain-run`` checkpoint at ``checkpoint``, trains
    all schedules with epochs interleaved round-robin across subspaces,
    and installs the finished trainers on the subspace states.

    ``progress`` (if given) receives ``(subspace, ("epoch",
    epoch_index, mean_query_loss))`` after every meta epoch and
    ``(subspace, "trained")`` per subspace once training completes.
    """
    cfg = lte.config
    subspaces = list(subspaces)
    saved = _load_saved_schedules(checkpoint, lte, subspaces)
    schedules = []
    for subspace in subspaces:
        state = lte.states[subspace]
        entry = saved.get(tuple(sorted(subspace.names)))
        trainer = lte.build_trainer(state)
        if entry is not None and _entry_done(entry):
            # Finished in the checkpoint: skip the (expensive) task
            # regeneration and encoding — nothing remains to train.
            schedule = TrainerSchedule(trainer, None)
        else:
            tasks = state.task_generator.generate(cfg.n_tasks)
            schedule = TrainerSchedule(
                trainer, encode_task_sets(tasks, state.encode_scaled))
        if entry is not None:
            schedule.load_state_dict(entry)
        schedules.append(schedule)

    by_schedule = dict(zip(schedules, subspaces))

    def on_epoch(schedule, kind, epoch, mean_loss):
        if progress is None:
            return
        if kind == "meta":
            progress(by_schedule[schedule], ("epoch", epoch, mean_loss))
        else:
            progress(by_schedule[schedule], ("pretrain", epoch))

    run = OfflineRun(schedules, engine=engine, on_epoch=on_epoch)
    while not run.done:
        run.step_epoch()
        if checkpoint is not None:
            _save_run(checkpoint, lte, subspaces, schedules, run.engine)

    for subspace, schedule in zip(subspaces, schedules):
        lte.states[subspace].trainer = schedule.trainer
        if progress is not None:
            progress(subspace, "trained")
    return run


def _save_run(checkpoint, lte, subspaces, schedules, engine):
    from ..nn.compile import get_backend
    from ..persist.state import save_pretrain_run

    entries = [{"names": list(subspace.names),
                "schedule": schedule.state_dict()}
               for subspace, schedule in zip(subspaces, schedules)]
    # The nn backend is recorded for provenance only: backends are
    # bit-identical, so a run may resume under either.
    save_pretrain_run(checkpoint, lte, entries,
                      meta={"engine": engine,
                            "nn_backend": get_backend().name})


def _entry_done(entry):
    return int(entry["pretrain_done"]) >= int(entry["pretrain_total"]) \
        and int(entry["meta_done"]) >= int(entry["meta_total"])


def _load_saved_schedules(checkpoint, lte, subspaces):
    """Schedule states of an existing pretrain-run checkpoint, by
    subspace key; empty when no checkpoint was requested or none exists
    yet (a fresh run)."""
    import os

    from ..persist.checkpoint import CheckpointError
    from ..persist.state import load_pretrain_run

    if checkpoint is None or \
            not os.path.isfile(os.path.join(checkpoint, "manifest.json")):
        return {}
    entries, _ = load_pretrain_run(checkpoint, lte)
    by_names = {tuple(sorted(entry["names"])): entry["schedule"]
                for entry in entries}
    expected = {tuple(sorted(s.names)) for s in subspaces}
    if set(by_names) != expected:
        raise CheckpointError(
            "pretrain-run checkpoint at {!r} covers subspaces {} but this "
            "run trains {}; resume with the original decomposition".format(
                checkpoint, sorted(by_names), sorted(expected)))
    return by_names
