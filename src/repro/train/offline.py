"""Pooled, resumable offline meta-training across meta-subspaces.

:class:`TrainerSchedule` wraps one
:class:`~repro.core.meta_training.MetaTrainer` with everything its
training run owns — the encoded task set, the epoch RNG, the phase
cursors (pretrain epochs / meta epochs completed) and the carried
pretrain-Adam state.  :class:`OfflineRun` advances a set of schedules
**one epoch per tick**, pooling shape-compatible subspaces into shared
fused programs (:mod:`repro.train.engine`): instead of finishing
subspace i before starting i+1, every tick interleaves one epoch of
every unfinished subspace, so a meta-batch stacks
``batch_size x n_subspaces`` tasks and a pretrain step stacks one task
per subspace.  Because the subspaces' trainers are independent (separate
phi, memories and RNG streams), any interleaving — and any fusion — is
bit-identical to training them one after another.

Epoch granularity is also the **resume granularity**:
:func:`run_offline_training` checkpoints every schedule's cursor, RNG
state, trainer weights and pretrain-optimizer moments after every tick
(via :func:`repro.persist.save_pretrain_run`), so a killed pretraining
run resumes from the last completed epoch and converges to the identical
phi, bit for bit (``tests/persist``).
"""

from __future__ import annotations

import os
import shutil
import tempfile
import time

import numpy as np

from ..obs import default_registry
from .engine import (MetaBatchSlot, run_meta_batch_fused,
                     run_pretrain_epoch_pooled,
                     run_pretrain_epoch_sequential, encode_task_sets)

__all__ = ["DEFAULT_ENGINE", "ENGINES", "check_engine", "TrainerSchedule",
           "OfflineRun", "run_offline_training"]

#: The fused stacked executor is the default everywhere; the sequential
#: reference executor remains available for parity checks and debugging,
#: and ``"parallel"`` fans the fused compute out across worker processes
#: (:mod:`repro.train.parallel`).  All three are bit-identical.
DEFAULT_ENGINE = "batched"
ENGINES = ("batched", "sequential", "parallel")


def check_engine(engine):
    engine = DEFAULT_ENGINE if engine is None else engine
    if engine not in ENGINES:
        raise ValueError("unknown engine {!r}; options: {}".format(
            engine, ENGINES))
    return engine


class TrainerSchedule:
    """Resumable training state of ONE trainer over its encoded tasks.

    ``encoded=None`` marks a schedule restored from a *finished*
    checkpoint: no epochs remain, so the (expensive) meta-tasks are
    never regenerated or encoded — :meth:`load_state_dict` enforces
    that such a schedule really is complete.
    """

    def __init__(self, trainer, encoded, epochs=None):
        self.trainer = trainer
        if encoded is None or hasattr(encoded, "shape_signature"):
            # None, or a store-streamed EncodedTaskSet — keep the lazy
            # view; list() would materialize every task it exists to
            # keep out of memory.
            self.encoded = encoded
        else:
            self.encoded = list(encoded)
        self.n_tasks = None if encoded is None else len(self.encoded)
        self.rng = np.random.default_rng(trainer.seed)
        params = trainer.params
        self.pretrain_total = max(0, int(params.pretrain_epochs))
        self.meta_total = max(0, int(params.epochs if epochs is None
                                     else epochs))
        self.pretrain_done = 0
        self.meta_done = 0
        self.pretrain_opt_state = None
        self._pretrain_sets = None

    # -- phase bookkeeping ---------------------------------------------
    @property
    def phase(self):
        if self.pretrain_done < self.pretrain_total:
            return "pretrain"
        if self.meta_done < self.meta_total:
            return "meta"
        return "done"

    @property
    def done(self):
        return self.phase == "done"

    def next_pretrain_order(self):
        return self.rng.permutation(len(self.encoded))

    def next_meta_order(self):
        return self.rng.permutation(len(self.encoded))

    # -- pretrain working set ------------------------------------------
    @property
    def pretrain_sets(self):
        """Per-task ``(v_R, support+query tuples, labels)`` for joint
        pretraining (built lazily, cached)."""
        if self._pretrain_sets is None:
            view = getattr(self.encoded, "pretrain_view", None)
            if view is not None:
                # Store-streamed task set: serve the lazy projection so
                # a pretrain epoch touches one task at a time.
                self._pretrain_sets = view()
            else:
                self._pretrain_sets = [
                    (v_r, np.vstack([sx, qx]),
                     np.concatenate([sy, qy]).astype(np.float64))
                    for v_r, sx, sy, qx, qy in self.encoded]
        return self._pretrain_sets

    # -- fusion grouping ------------------------------------------------
    def _shape_signature(self):
        """Uniform (support, query) shapes of the task set, or None."""
        signature = getattr(self.encoded, "shape_signature", None)
        if signature is not None:
            return signature
        shapes = {(sx.shape, qx.shape)
                  for _, sx, _, qx, _ in self.encoded}
        return next(iter(shapes)) if len(shapes) == 1 else None

    def pretrain_group_key(self):
        """Schedules sharing this key can pretrain in lockstep fusion."""
        signature = self._shape_signature()
        if signature is None:
            return ("solo", id(self))
        params = self.trainer.params
        return (tuple(sorted(self.trainer.model.config.items())),
                signature, len(self.encoded),
                float(params.pretrain_lr), bool(params.balance_classes))

    def meta_group_key(self):
        """Schedules sharing this key can fuse their meta-batches."""
        signature = self._shape_signature()
        if signature is None:
            return ("solo", id(self))
        params = self.trainer.params
        return (tuple(sorted(self.trainer.model.config.items())),
                signature, int(params.batch_size),
                int(params.local_steps), float(params.rho),
                str(params.local_optimizer), bool(params.balance_classes))

    # -- checkpointing --------------------------------------------------
    def state_dict(self):
        """Everything needed to resume this schedule bit-identically."""
        return {
            "n_tasks": int(self.n_tasks),
            "pretrain_total": int(self.pretrain_total),
            "meta_total": int(self.meta_total),
            "pretrain_done": int(self.pretrain_done),
            "meta_done": int(self.meta_done),
            "rng_state": _encode_rng_state(self.rng),
            "trainer": self.trainer.state_dict(),
            "pretrain_optimizer": self.pretrain_opt_state,
        }

    def load_state_dict(self, state):
        from ..persist.checkpoint import CheckpointError

        expected = {"pretrain_total": self.pretrain_total,
                    "meta_total": self.meta_total}
        if self.encoded is not None:
            expected["n_tasks"] = len(self.encoded)
        for field, value in expected.items():
            if int(state[field]) != int(value):
                raise CheckpointError(
                    "pretrain-run checkpoint has {}={} but the resuming "
                    "run was configured with {}; resume with the exact "
                    "original configuration".format(
                        field, state[field], value))
        self.pretrain_done = int(state["pretrain_done"])
        self.meta_done = int(state["meta_done"])
        self.n_tasks = int(state["n_tasks"])
        if self.encoded is None and not self.done:
            raise CheckpointError(
                "pretrain-run schedule was restored without its task set "
                "but still has epochs to run ({}/{} pretrain, {}/{} "
                "meta); this is a bug in the resume driver".format(
                    self.pretrain_done, self.pretrain_total,
                    self.meta_done, self.meta_total))
        self.trainer.load_state_dict(state["trainer"])
        self.rng = _decode_rng_state(state["rng_state"])
        self.pretrain_opt_state = state["pretrain_optimizer"]


def _encode_rng_state(rng):
    """JSON-able snapshot of a Generator's bit-generator state."""
    state = rng.bit_generator.state
    return {"bit_generator": state["bit_generator"],
            "state": {key: int(value)
                      for key, value in state["state"].items()},
            "has_uint32": int(state["has_uint32"]),
            "uinteger": int(state["uinteger"])}


def _decode_rng_state(snapshot):
    rng = np.random.default_rng(0)
    if snapshot["bit_generator"] != rng.bit_generator.state["bit_generator"]:
        from ..persist.checkpoint import CheckpointError
        raise CheckpointError(
            "pretrain-run checkpoint was written with bit generator {!r} "
            "but this numpy builds {!r}; resume on a matching numpy"
            .format(snapshot["bit_generator"],
                    rng.bit_generator.state["bit_generator"]))
    rng.bit_generator.state = {
        "bit_generator": snapshot["bit_generator"],
        "state": {key: int(value)
                  for key, value in snapshot["state"].items()},
        "has_uint32": int(snapshot["has_uint32"]),
        "uinteger": int(snapshot["uinteger"]),
    }
    return rng


class OfflineRun:
    """Drive a set of schedules to completion, one pooled epoch per tick.

    Parameters
    ----------
    schedules:
        :class:`TrainerSchedule` instances (typically one per
        meta-subspace; a single one reproduces ``MetaTrainer.train``).
    engine:
        ``"batched"`` (default), ``"sequential"``, or ``"parallel"``
        (multi-process, see :mod:`repro.train.parallel`); all
        bit-identical.
    on_epoch:
        Optional callback ``(schedule, kind, epoch_index, mean_loss)``
        fired after each completed epoch — ``kind`` is ``"pretrain"``
        (``mean_loss`` is None) or ``"meta"`` (mean query loss).
    workers:
        Worker-process count for the ``"parallel"`` engine (defaults to
        ``REPRO_TRAIN_WORKERS``, else the core count); ignored by the
        in-process engines.  The engine instance is created lazily on
        the first epoch and owned by this run — :meth:`close` it (or
        use :func:`run_offline_training`, which does).
    """

    def __init__(self, schedules, engine=None, on_epoch=None,
                 workers=None):
        self.schedules = list(schedules)
        self.engine = check_engine(engine)
        self.on_epoch = on_epoch
        self.workers = workers
        self._parallel = None

    @property
    def parallel(self):
        """The lazily created :class:`ParallelTrainEngine`, or None for
        the in-process engines."""
        if self.engine == "parallel" and self._parallel is None:
            from .parallel import ParallelTrainEngine
            self._parallel = ParallelTrainEngine(self.schedules,
                                                 workers=self.workers)
        return self._parallel

    def close(self):
        """Release the worker pool (idempotent; no-op for in-process
        engines).  Schedules and trainers stay valid — all state lives
        on the master."""
        if self._parallel is not None:
            self._parallel.close()
            self._parallel = None

    @property
    def done(self):
        return all(schedule.done for schedule in self.schedules)

    def run(self):
        while not self.done:
            self.step_epoch()
        return self

    def step_epoch(self):
        """Advance every unfinished schedule by one epoch of its phase.

        Phase wall-clock lands in the process default ``repro.obs``
        registry (``train.offline.{pretrain,meta}_epoch.seconds``) —
        timing only, never on the training numerics.
        """
        metrics = default_registry()
        pretraining = [s for s in self.schedules if s.phase == "pretrain"]
        meta = [s for s in self.schedules if s.phase == "meta"]
        for group in _grouped(pretraining,
                              TrainerSchedule.pretrain_group_key):
            t0 = time.perf_counter()
            if self.engine == "parallel":
                self.parallel.pretrain_epoch(group)
            elif self.engine == "batched" and len(group) > 1:
                run_pretrain_epoch_pooled(group)
            else:
                for schedule in group:
                    run_pretrain_epoch_sequential(schedule)
            metrics.histogram("train.offline.pretrain_epoch.seconds") \
                .observe(time.perf_counter() - t0)
            metrics.counter("train.offline.epochs.pretrain").inc()
            for schedule in group:
                schedule.pretrain_done += 1
                self._emit(schedule, "pretrain",
                           schedule.pretrain_done - 1, None)
        for group in _grouped(meta, TrainerSchedule.meta_group_key):
            t0 = time.perf_counter()
            losses = _run_meta_epoch(
                group, self.engine,
                parallel=self.parallel if self.engine == "parallel"
                else None)
            metrics.histogram("train.offline.meta_epoch.seconds") \
                .observe(time.perf_counter() - t0)
            metrics.counter("train.offline.epochs.meta").inc()
            for schedule, epoch_losses in zip(group, losses):
                mean = float(np.mean(epoch_losses)) if epoch_losses else 0.0
                schedule.trainer.history.append(mean)
                schedule.meta_done += 1
                self._emit(schedule, "meta", schedule.meta_done - 1, mean)

    def _emit(self, schedule, kind, epoch, mean_loss):
        if self.on_epoch is not None:
            self.on_epoch(schedule, kind, epoch, mean_loss)


def _grouped(schedules, key_method):
    """Schedules grouped by fusion key, preserving first-seen order."""
    groups = {}
    for schedule in schedules:
        groups.setdefault(key_method(schedule), []).append(schedule)
    return list(groups.values())


def _run_meta_epoch(schedules, engine, parallel=None):
    """One meta epoch for a fusion group, batches interleaved round-robin.

    Returns per-schedule lists of query losses in task order — exactly
    the list the sequential per-trainer epoch would produce, because the
    round-robin only reorders work *across* independent trainers.  With
    ``parallel`` (a :class:`~repro.train.parallel.ParallelTrainEngine`)
    each fusable batch's compute fans out across worker processes;
    non-fusable or singleton batches run on the master, as ever.
    """
    batch_size = max(1, int(schedules[0].trainer.params.batch_size))
    # Task sets of non-uniform support/query shapes cannot np.stack into
    # one program (their group key is already solo); run them on the
    # sequential executor — identical semantics, task at a time.
    fusable = all(schedule._shape_signature() is not None
                  for schedule in schedules)
    orders = [schedule.next_meta_order() for schedule in schedules]
    losses = [[] for _ in schedules]
    n_batches = max((len(order) + batch_size - 1) // batch_size
                    for order in orders)
    for b in range(n_batches):
        slots, owners = [], []
        for s, schedule in enumerate(schedules):
            batch = orders[s][b * batch_size:(b + 1) * batch_size]
            if len(batch):
                slots.append(MetaBatchSlot(schedule.trainer,
                                           schedule.encoded, list(batch)))
                owners.append(s)
        if not slots:
            continue
        total = sum(len(slot.indices) for slot in slots)
        if parallel is not None and fusable and total > 1:
            slot_losses = parallel.meta_batch(
                slots, [schedules[s] for s in owners])
        elif engine == "batched" and fusable and total > 1:
            slot_losses = run_meta_batch_fused(slots)
        else:
            slot_losses = [
                slot.trainer.train_batch_sequential(slot.encoded,
                                                    slot.indices)
                for slot in slots]
        for s, batch_losses in zip(owners, slot_losses):
            losses[s].extend(batch_losses)
    return losses


# ----------------------------------------------------------------------
# The LTE offline phase: pooled training over every prepared subspace
# ----------------------------------------------------------------------
def run_offline_training(lte, subspaces, engine=None, progress=None,
                         checkpoint=None, workers=None, stream=None):
    """Meta-train every prepared subspace of ``lte``, pooled and resumable.

    Builds one :class:`TrainerSchedule` per subspace (regenerating the
    deterministic meta-tasks and encodings), optionally resumes from an
    epoch-granular ``pretrain-run`` checkpoint at ``checkpoint``, trains
    all schedules with epochs interleaved round-robin across subspaces,
    and installs the finished trainers on the subspace states.

    ``progress`` (if given) receives ``(subspace, ("epoch",
    epoch_index, mean_query_loss))`` after every meta epoch and
    ``(subspace, "trained")`` per subspace once training completes.
    Event order is deterministic — epoch by epoch, subspaces in run
    order — under every engine, including ``"parallel"`` (the master
    emits after its ordered reduction, so worker reply timing cannot
    reorder events).

    ``workers`` selects the pool size of the ``"parallel"`` engine.
    Setting ``REPRO_TRAIN_WORKERS`` supplies a default pool size *and*
    switches an unspecified ``engine`` to ``"parallel"``.

    ``stream`` bounds encode/training memory: ``True`` spills every
    subspace's encoded task set into a private on-disk
    :class:`~repro.store.ChunkStore` (removed when the run finishes), a
    path does the same under that directory (kept), and ``None``/False
    materializes in memory as ever.  Training over spilled sets is
    bit-identical to the materialized path.
    """
    cfg = lte.config
    if workers is None and engine is None \
            and os.environ.get("REPRO_TRAIN_WORKERS"):
        engine = "parallel"
    subspaces = list(subspaces)
    saved = _load_saved_schedules(checkpoint, lte, subspaces)
    spill_root, owns_spill = None, False
    if stream:
        if stream is True:
            spill_root = tempfile.mkdtemp(prefix="repro-train-stream-")
            owns_spill = True
        else:
            spill_root = str(stream)
            os.makedirs(spill_root, exist_ok=True)
    try:
        schedules = []
        for index, subspace in enumerate(subspaces):
            state = lte.states[subspace]
            entry = saved.get(tuple(sorted(subspace.names)))
            trainer = lte.build_trainer(state)
            if entry is not None and _entry_done(entry):
                # Finished in the checkpoint: skip the (expensive) task
                # regeneration and encoding — nothing remains to train.
                schedule = TrainerSchedule(trainer, None)
            else:
                tasks = state.task_generator.generate(cfg.n_tasks)
                spill = None if spill_root is None else os.path.join(
                    spill_root, "subspace-{}".format(index))
                schedule = TrainerSchedule(
                    trainer, encode_task_sets(tasks, state.encode_scaled,
                                              spill=spill))
            if entry is not None:
                schedule.load_state_dict(entry)
            schedules.append(schedule)

        by_schedule = dict(zip(schedules, subspaces))

        def on_epoch(schedule, kind, epoch, mean_loss):
            if progress is None:
                return
            if kind == "meta":
                progress(by_schedule[schedule],
                         ("epoch", epoch, mean_loss))
            else:
                progress(by_schedule[schedule], ("pretrain", epoch))

        run = OfflineRun(schedules, engine=engine, on_epoch=on_epoch,
                         workers=workers)
        try:
            while not run.done:
                run.step_epoch()
                # Checkpoint strictly after the epoch's reduction
                # barrier: every engine (any worker count) passes
                # through identical master state here, so the file
                # resumes interchangeably across engines.
                if checkpoint is not None:
                    _save_run(checkpoint, lte, subspaces, schedules, run)
        finally:
            run.close()

        for subspace, schedule in zip(subspaces, schedules):
            lte.states[subspace].trainer = schedule.trainer
            if progress is not None:
                progress(subspace, "trained")
        return run
    finally:
        if owns_spill:
            shutil.rmtree(spill_root, ignore_errors=True)


def _save_run(checkpoint, lte, subspaces, schedules, run):
    from ..nn.compile import get_backend
    from ..persist.state import save_pretrain_run

    entries = [{"names": list(subspace.names),
                "schedule": schedule.state_dict()}
               for subspace, schedule in zip(subspaces, schedules)]
    # The engine, worker count and nn backend are recorded for
    # provenance only: all engines and backends are bit-identical, so a
    # run may resume under any of them, at any worker count.
    save_pretrain_run(checkpoint, lte, entries,
                      meta={"engine": run.engine,
                            "workers": run.workers,
                            "nn_backend": get_backend().name})


def _entry_done(entry):
    return int(entry["pretrain_done"]) >= int(entry["pretrain_total"]) \
        and int(entry["meta_done"]) >= int(entry["meta_total"])


def _load_saved_schedules(checkpoint, lte, subspaces):
    """Schedule states of an existing pretrain-run checkpoint, by
    subspace key; empty when no checkpoint was requested or none exists
    yet (a fresh run)."""
    import os

    from ..persist.checkpoint import CheckpointError
    from ..persist.state import load_pretrain_run

    if checkpoint is None or \
            not os.path.isfile(os.path.join(checkpoint, "manifest.json")):
        return {}
    entries, _ = load_pretrain_run(checkpoint, lte)
    by_names = {tuple(sorted(entry["names"])): entry["schedule"]
                for entry in entries}
    expected = {tuple(sorted(s.names)) for s in subspaces}
    if set(by_names) != expected:
        raise CheckpointError(
            "pretrain-run checkpoint at {!r} covers subspaces {} but this "
            "run trains {}; resume with the original decomposition".format(
                checkpoint, sorted(by_names), sorted(expected)))
    return by_names
