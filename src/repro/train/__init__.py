"""repro.train — the batched offline meta-training engine.

The paper's offline phase (Algorithm 2) is the expensive part of LTE —
Fig. 8b measures exactly that — yet every meta-task is tiny and
mutually independent within an Eq. 13 batch, and so are the per-subspace
trainers.  This package runs the offline phase the way
:mod:`repro.serve` already runs the online one: as fused stacked
autograd programs over the shared substrate in :mod:`repro.nn.batching`.

* :mod:`engine <repro.train.engine>` — fused executors: one whole
  meta-batch (local steps + global query backward) as one ``(K, ...)``
  program, joint pretraining fused across subspaces, batched
  evaluation.  Bit-identical to the sequential reference executors
  (property-fuzzed in ``tests/train``).
* :mod:`offline <repro.train.offline>` — the pooled scheduler:
  :class:`TrainerSchedule` / :class:`OfflineRun` interleave epochs
  round-robin across all meta-subspaces (shape-bucketed fusion) and
  checkpoint cursor + RNG + weights + optimizer moments after every
  epoch, so a killed pretraining run resumes to the identical phi.

``MetaTrainer.train`` / ``LTE.fit_offline`` ride this package by
default (``engine="batched"``); pass ``engine="sequential"`` for the
reference executor.
"""

from .engine import (MetaBatchSlot, encode_task_sets, evaluate_batched,
                     run_meta_batch_fused, run_pretrain_epoch_pooled,
                     run_pretrain_epoch_sequential)
from .offline import (DEFAULT_ENGINE, ENGINES, OfflineRun, TrainerSchedule,
                      run_offline_training)

__all__ = [
    "DEFAULT_ENGINE", "ENGINES",
    "TrainerSchedule", "OfflineRun", "run_offline_training",
    "MetaBatchSlot", "run_meta_batch_fused", "encode_task_sets",
    "run_pretrain_epoch_sequential", "run_pretrain_epoch_pooled",
    "evaluate_batched",
]
