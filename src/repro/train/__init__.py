"""repro.train — the batched offline meta-training engine.

The paper's offline phase (Algorithm 2) is the expensive part of LTE —
Fig. 8b measures exactly that — yet every meta-task is tiny and
mutually independent within an Eq. 13 batch, and so are the per-subspace
trainers.  This package runs the offline phase the way
:mod:`repro.serve` already runs the online one: as fused stacked
autograd programs over the shared substrate in :mod:`repro.nn.batching`.

* :mod:`engine <repro.train.engine>` — fused executors: one whole
  meta-batch (local steps + global query backward) as one ``(K, ...)``
  program, joint pretraining fused across subspaces, batched
  evaluation.  Bit-identical to the sequential reference executors
  (property-fuzzed in ``tests/train``), and factored into retrieval /
  partition-invariant compute / ordered reduction phases the parallel
  engine fans out.
* :mod:`offline <repro.train.offline>` — the pooled scheduler:
  :class:`TrainerSchedule` / :class:`OfflineRun` interleave epochs
  round-robin across all meta-subspaces (shape-bucketed fusion) and
  checkpoint cursor + RNG + weights + optimizer moments after every
  epoch, so a killed pretraining run resumes to the identical phi.
* :mod:`parallel <repro.train.parallel>` — the data-parallel tier:
  :class:`ParallelTrainEngine` forks N workers over the shared
  :mod:`repro.shard.rpc` machinery and splits each fused batch into
  deterministic task spans; reduction, memory-EMA updates and RNG
  draws stay on the master, so phi is bit-identical at any worker
  count.
* :mod:`stream <repro.train.stream>` — store-streamed encoded task
  sets: :class:`EncodedTaskSet` spills encoded support/query rows into
  an on-disk :class:`~repro.store.ChunkStore` and serves them lazily,
  bounding peak training memory by the chunk size instead of the task
  count (bit-identical to the materialized path).

``MetaTrainer.train`` / ``LTE.fit_offline`` ride this package by
default (``engine="batched"``); pass ``engine="sequential"`` for the
reference executor or ``engine="parallel", workers=N`` (or set
``REPRO_TRAIN_WORKERS``) for multi-process pretraining.
"""

from .engine import (MetaBatchSlot, apply_meta_batch,
                     build_meta_batch_inputs, compute_meta_batch,
                     concat_meta_batch_results, encode_task_sets,
                     evaluate_batched, run_meta_batch_fused,
                     run_pretrain_epoch_pooled,
                     run_pretrain_epoch_sequential)
from .offline import (DEFAULT_ENGINE, ENGINES, OfflineRun, TrainerSchedule,
                      run_offline_training)
from .parallel import (ParallelTrainEngine, TrainParallelError,
                       TrainWorkerCrashed, resolve_workers)
from .stream import EncodedTaskSet

__all__ = [
    "DEFAULT_ENGINE", "ENGINES",
    "TrainerSchedule", "OfflineRun", "run_offline_training",
    "MetaBatchSlot", "run_meta_batch_fused", "encode_task_sets",
    "build_meta_batch_inputs", "compute_meta_batch",
    "concat_meta_batch_results", "apply_meta_batch",
    "run_pretrain_epoch_sequential", "run_pretrain_epoch_pooled",
    "evaluate_batched",
    "ParallelTrainEngine", "TrainParallelError", "TrainWorkerCrashed",
    "resolve_workers", "EncodedTaskSet",
]
