"""Data-parallel offline meta-training: N workers, one deterministic phi.

:class:`ParallelTrainEngine` is the multi-process scaling tier over the
fused offline engine (:mod:`repro.train.engine`): it forks N worker
processes (``fork`` start method — every worker inherits the schedules'
encoded task sets copy-on-write, or their on-disk
:class:`~repro.train.stream.EncodedTaskSet` views), partitions each
fused meta-batch / pretrain fusion group into contiguous spans in a
fixed deterministic order, runs the pure compute of each span on a
worker under the active :mod:`repro.nn.compile` backend, and performs
every state update on the master.  The pipe-RPC mechanics (pipelined
fan-out, prompt typed crash detection, worker-side exception rebuild)
are shared with :mod:`repro.shard` via :mod:`repro.shard.rpc`.

Determinism contract — phi, memories, pretrain-Adam moments and loss
histories are **bit-identical to the single-process fused engine at any
worker count** (1, 2, 4, ... all equal; ``tests/train`` fuzzes this).
The contract rests on four invariants:

1. **Partition-invariant compute.**  The stacked meta-batch program is
   block-diagonal, so each task's query loss, parameter gradients,
   theta_R gradients and adapted conversion are bit-identical at any
   stack size (:func:`~repro.train.engine.compute_meta_batch`); a span
   of the batch computes exactly the whole batch's slice.  Likewise a
   pooled pretrain epoch over any subset of a fusion group equals the
   per-trainer sequential epochs.
2. **Master-ordered reduction.**  Workers ship per-task results; the
   master stitches spans back in task order and reduces with the exact
   fixed left-fold of the sequential reference
   (:func:`~repro.train.engine.apply_meta_batch`) — float addition is
   non-associative, so the fold order, not just the operand set, is
   part of the contract.  Memory-EMA updates (Eqs. 14-16) stay deferred
   and run post-batch in task order on the master.
3. **Master-authoritative state.**  phi, memories, Adam moments and the
   epoch RNG streams live on the master only.  Every RPC ships the
   state a worker needs (phi flats, memory-retrieved shifts and
   conversions, shuffled task orders) and returns the state the master
   applies; worker copies are scratch that is overwritten per call, so
   forked staleness cannot leak into the numerics.
4. **Barrier-aligned checkpoints.**  ``pretrain-run`` checkpoints are
   written by the driver only after :meth:`OfflineRun.step_epoch`
   returns — i.e. after every span has reduced — so a checkpoint never
   captures a half-reduced epoch and resumes interchangeably with
   single-process runs at any worker count.

Worker failures raise a prompt, typed :class:`TrainWorkerCrashed`
(never a hang, never a silently wrong phi): the caller resumes from the
last epoch checkpoint.
"""

from __future__ import annotations

import multiprocessing
import os
import time

import numpy as np

from ..nn.batching import copy_grad_stacks
from ..obs import MetricsRegistry, aggregate, default_registry, \
    merge_snapshots, reset_all_metrics
from ..shard.rpc import PipeRpc, RpcLink, serve_rpc
from .engine import (MetaBatchResult, MetaBatchSlot, apply_meta_batch,
                     build_meta_batch_inputs, compute_meta_batch,
                     concat_meta_batch_results,
                     run_pretrain_epoch_pooled,
                     run_pretrain_epoch_sequential)

__all__ = ["TrainParallelError", "TrainWorkerCrashed",
           "ParallelTrainEngine", "resolve_workers"]


class TrainParallelError(RuntimeError):
    """Protocol-level failure of the data-parallel training tier."""


class TrainWorkerCrashed(TrainParallelError):
    """A training worker process died; resume from the last epoch
    checkpoint (state updates are master-only and barrier-aligned, so
    no partial epoch can have leaked into a checkpoint)."""


def resolve_workers(workers=None):
    """The effective worker count: explicit arg, else
    ``REPRO_TRAIN_WORKERS``, else the machine's core count."""
    if workers is None:
        env = os.environ.get("REPRO_TRAIN_WORKERS")
        workers = int(env) if env else (os.cpu_count() or 1)
    workers = int(workers)
    if workers < 1:
        raise ValueError("workers must be >= 1")
    return workers


def _worker_main(conn, schedules, worker_index):
    """The training worker: span compute behind a pipe-RPC loop.

    Stateless between calls with respect to the training numerics —
    every request ships the phi flats / optimizer state / orders it
    needs and the reply carries everything the master applies.  The
    inherited ``schedules`` contribute only their immutable encoded
    task sets and trainer structure.
    """
    # Forked registries carry the parent's counts; zero them so this
    # worker's aggregate() reports only its own activity.
    reset_all_metrics()
    metrics = default_registry()
    t_compute = metrics.histogram("train.worker.compute.seconds")
    n_batches = metrics.counter("train.worker.batches")
    debug = {"delay_seconds": 0.0, "crash_on_compute": False}

    def handle(method, kwargs):
        if method == "ping":
            return {"worker": int(worker_index),
                    "schedules": len(schedules)}
        if method == "meta_compute":
            if debug["crash_on_compute"]:
                # Test hook: die exactly where a real worker would —
                # mid-epoch, with the master waiting on the span.
                os._exit(23)
            if debug["delay_seconds"]:
                # Test hook: shuffle reply timing to prove event order
                # is master-side deterministic.
                time.sleep(debug["delay_seconds"])
            t0 = time.perf_counter()
            slots = []
            for sid, indices in kwargs["spans"]:
                schedule = schedules[sid]
                schedule.trainer.model.load_flat_parameters(
                    np.asarray(kwargs["flats"][sid]))
                slots.append(MetaBatchSlot(schedule.trainer,
                                           schedule.encoded,
                                           list(indices)))
            models, inputs = build_meta_batch_inputs(
                slots, retrieval=(kwargs["shifts"],
                                  kwargs["conversions"]))
            result = compute_meta_batch(models,
                                        slots[0].trainer.params, inputs)
            t_compute.observe(time.perf_counter() - t0)
            n_batches.inc()
            # grad stacks may alias the compiled plan's workspace;
            # detach before they cross the pipe.
            return (result.losses, np.asarray(result.theta_grads),
                    copy_grad_stacks(result.grad_stacks),
                    result.conversion_data)
        if method == "pretrain_epoch":
            if debug["delay_seconds"]:
                time.sleep(debug["delay_seconds"])
            t0 = time.perf_counter()
            span = []
            for sid, flat, opt_state, order in kwargs["entries"]:
                schedule = schedules[sid]
                schedule.trainer.model.load_flat_parameters(
                    np.asarray(flat))
                schedule.pretrain_opt_state = opt_state
                span.append((schedule, np.asarray(order)))
            if len(span) > 1:
                run_pretrain_epoch_pooled(
                    [schedule for schedule, _ in span],
                    orders=[order for _, order in span])
            else:
                run_pretrain_epoch_sequential(span[0][0],
                                              order=span[0][1])
            t_compute.observe(time.perf_counter() - t0)
            n_batches.inc()
            return [(schedule.trainer.model.flat_parameters(),
                     schedule.pretrain_opt_state)
                    for schedule, _ in span]
        if method == "metrics":
            # The worker's whole-process metric state (compute timings,
            # compile-plan stats); the master merges these in index
            # order — see ParallelTrainEngine.metrics.
            return aggregate()
        if method == "_debug":
            # Test hooks only: fault/delay injection the parity and
            # crash tests use to exercise these paths for real.
            debug.update(kwargs)
            return True
        raise ValueError("unknown RPC method {!r}".format(method))

    serve_rpc(conn, handle)


class ParallelTrainEngine:
    """Fan fused-epoch compute out across N forked training workers.

    Parameters
    ----------
    schedules:
        The :class:`~repro.train.offline.TrainerSchedule` list of the
        run (the master's authoritative copies).  Workers fork off the
        current process and inherit the encoded task sets; create the
        engine after the schedules are built.
    workers:
        Pool size (defaults to :func:`resolve_workers`).
    rpc_timeout:
        Seconds to wait for a single span reply before raising
        :class:`TrainParallelError` (a *dead* worker is detected
        promptly regardless); ``None`` disables the timeout.
    """

    def __init__(self, schedules, workers=None, rpc_timeout=600.0):
        self.schedules = list(schedules)
        self._sid = {id(schedule): index
                     for index, schedule in enumerate(self.schedules)}
        self.n_workers = resolve_workers(workers)
        # Master-side telemetry (train.parallel.* / train.reduce.* /
        # train.worker.busy — see repro.obs.registry); worker-side
        # registries are fetched and merged by :meth:`metrics`.
        self.master_metrics = MetricsRegistry()
        self._t_rpc = self.master_metrics.histogram(
            "train.parallel.rpc.seconds")
        self._rpc_calls = self.master_metrics.counter(
            "train.parallel.rpc.calls")
        self._workers_alive = self.master_metrics.gauge(
            "train.parallel.workers.alive")
        self._workers_crashed = self.master_metrics.counter(
            "train.parallel.workers.crashed")
        self._busy = self.master_metrics.gauge("train.worker.busy")
        self._reduce_latency = self.master_metrics.gauge(
            "train.reduce.latency")
        self._t_reduce = self.master_metrics.histogram(
            "train.reduce.seconds")
        self._rpc = PipeRpc(
            timeout=rpc_timeout, crashed_type=TrainWorkerCrashed,
            error_type=TrainParallelError,
            dead_hint="; resume from the last epoch checkpoint",
            crash_hint="; resume from the last epoch checkpoint",
            on_dead=self._on_worker_dead, on_reply=self._on_rpc_reply)
        self._closed = False
        context = multiprocessing.get_context("fork")
        self._workers = []
        for index in range(self.n_workers):
            parent_conn, child_conn = context.Pipe(duplex=True)
            process = context.Process(
                target=_worker_main,
                args=(child_conn, self.schedules, index),
                daemon=True,
                name="repro-train-worker-{}".format(index))
            process.start()
            child_conn.close()
            self._workers.append(RpcLink(index, process, parent_conn))
        for link in self._workers:
            self._rpc.call(link, "ping", {})
        self._workers_alive.set(len(self._workers))

    # ------------------------------------------------------------------
    # RPC bookkeeping
    # ------------------------------------------------------------------
    def _on_rpc_reply(self, link, method, seconds):
        self._t_rpc.observe(seconds)
        self._rpc_calls.inc()

    def _on_worker_dead(self, link):
        if not self._closed:   # graceful shutdown is not a crash
            self._workers_crashed.inc()
        self._workers_alive.set(
            sum(1 for w in self._workers if w.alive))

    def _alive_required(self):
        links = [link for link in self._workers if link.alive]
        if not links:
            raise TrainWorkerCrashed(
                "all training workers are dead; resume from the last "
                "epoch checkpoint")
        return links

    def _require_open(self):
        if self._closed:
            raise TrainParallelError("the training engine is closed")

    # ------------------------------------------------------------------
    # Epoch-phase entry points (called by OfflineRun)
    # ------------------------------------------------------------------
    def meta_batch(self, slots, owners):
        """One fused meta-batch, spans computed in parallel.

        ``owners`` lists each slot's owning schedule (one of the
        engine's), in slot order.  Retrieval and reduction run on the
        master; only the partition-invariant middle phase fans out.
        Returns the per-slot loss lists, exactly as
        :func:`~repro.train.engine.run_meta_batch_fused` would.
        """
        self._require_open()
        # Memory retrievals against the authoritative master memories.
        models, inputs = build_meta_batch_inputs(slots)
        total = len(models)
        sids = [self._sid[id(owner)] for owner in owners]
        flats = {sid: self.schedules[sid].trainer.model.flat_parameters()
                 for sid in set(sids)}
        links = self._alive_required()
        n_spans = min(len(links), total)
        bounds = [(part * total) // n_spans
                  for part in range(n_spans + 1)]
        posted = []
        for part in range(n_spans):
            start, stop = bounds[part], bounds[part + 1]
            spans = _slot_spans(slots, sids, start, stop)
            payload = {
                "spans": spans,
                "flats": {sid: flats[sid] for sid, _ in spans},
                "shifts": None if inputs.shifts is None
                else np.ascontiguousarray(inputs.shifts[start:stop]),
                "conversions": list(inputs.conversions[start:stop]),
            }
            link = links[part]
            posted.append(
                (link, self._rpc.post(link, "meta_compute", payload)))
            self._busy.set(len(posted))
        # Collect in span order: reply timing cannot reorder anything
        # downstream — reduction, events, and checkpoints all follow
        # this fixed order.
        parts = []
        for link, request_id in posted:
            losses, theta_grads, stacks, conversion_data = \
                self._rpc.wait(link, request_id, "meta_compute")
            parts.append(MetaBatchResult(losses, theta_grads, stacks,
                                         conversion_data))
            self._busy.set(len(posted) - len(parts))
        t0 = time.perf_counter()
        result = concat_meta_batch_results(parts)
        out = apply_meta_batch(slots, inputs, result)
        elapsed = time.perf_counter() - t0
        self._reduce_latency.set(elapsed)
        self._t_reduce.observe(elapsed)
        return out

    def pretrain_epoch(self, group):
        """One pretrain epoch of a fusion group, schedules spanned
        across workers (each consecutive-step task loop stays whole on
        one worker — it shares phi and is inherently sequential)."""
        self._require_open()
        sids = [self._sid[id(schedule)] for schedule in group]
        # Orders come off the master's authoritative RNG streams, in
        # schedule order — the same draws, in the same sequence, as the
        # single-process engine makes.
        orders = [schedule.next_pretrain_order() for schedule in group]
        links = self._alive_required()
        n_spans = min(len(links), len(group))
        bounds = [(part * len(group)) // n_spans
                  for part in range(n_spans + 1)]
        posted = []
        for part in range(n_spans):
            start, stop = bounds[part], bounds[part + 1]
            entries = [
                (sids[position],
                 group[position].trainer.model.flat_parameters(),
                 group[position].pretrain_opt_state,
                 np.asarray(orders[position]))
                for position in range(start, stop)]
            link = links[part]
            posted.append(
                (link, self._rpc.post(link, "pretrain_epoch",
                                      {"entries": entries}),
                 list(range(start, stop))))
            self._busy.set(len(posted))
        collected = 0
        for link, request_id, positions in posted:
            replies = self._rpc.wait(link, request_id, "pretrain_epoch")
            t0 = time.perf_counter()
            for position, (flat, opt_state) in zip(positions, replies):
                schedule = group[position]
                schedule.trainer.model.load_flat_parameters(
                    np.asarray(flat))
                schedule.pretrain_opt_state = opt_state
            elapsed = time.perf_counter() - t0
            self._reduce_latency.set(elapsed)
            self._t_reduce.observe(elapsed)
            collected += 1
            self._busy.set(len(posted) - collected)

    # ------------------------------------------------------------------
    # Telemetry / lifecycle
    # ------------------------------------------------------------------
    def metrics(self):
        """One merged view of the training fleet's telemetry.

        Fans a pipelined ``metrics`` RPC out to every live worker; each
        returns its process-wide :func:`repro.obs.aggregate` snapshot.
        Returns::

            {"workers": {worker_index: snapshot | tombstone},
             "master": <master-side snapshot>,
             "merged": <element-wise merge of all of the above>}

        Because every histogram shares the same fixed bucket bounds,
        the merge is a deterministic element-wise add — workers merge
        in index order, independent of reply order.  Dead workers
        appear as ``{"dead": True}`` tombstones and contribute nothing
        to ``merged``.
        """
        self._require_open()
        posted = []
        for link in self._workers:
            if not link.alive:
                continue
            try:
                posted.append(
                    (link, self._rpc.post(link, "metrics", {})))
            except TrainWorkerCrashed:
                # Died since the last training RPC: telemetry reports
                # the death (tombstone below), it never raises for it.
                continue
        replies = {}
        for link, request_id in posted:
            try:
                replies[link.index] = self._rpc.wait(link, request_id,
                                                     "metrics")
            except TrainWorkerCrashed:
                continue
        workers = {}
        for link in self._workers:
            workers[link.index] = replies.get(link.index,
                                              {"dead": True})
        master_snap = self.master_metrics.snapshot()
        merged = merge_snapshots(
            [replies[index] for index in sorted(replies)]
            + [master_snap])
        return {"workers": workers, "master": master_snap,
                "merged": merged}

    def debug(self, **kwargs):
        """Broadcast test-only fault/delay injection to every worker."""
        for link in self._workers:
            if link.alive:
                self._rpc.call(link, "_debug", dict(kwargs))

    def close(self):
        """Shut the pool down (idempotent); workers have no state worth
        draining — every update already lives on the master."""
        if self._closed:
            return
        self._closed = True
        for link in self._workers:
            if not link.alive:
                continue
            try:
                request_id = link.next_request
                link.next_request += 1
                link.conn.send((request_id, "shutdown", {}))
                deadline = time.monotonic() + 30.0
                while time.monotonic() < deadline:
                    if link.conn.poll(0.05):
                        link.conn.recv()
                        break
                    if not link.process.is_alive():
                        break
            except (BrokenPipeError, EOFError, OSError):
                pass
            link.process.join(timeout=10.0)
            if link.process.is_alive():
                link.process.terminate()
                link.process.join(timeout=5.0)
            self._rpc.mark_dead(link)

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc_value, traceback):
        self.close()
        return False

    def __del__(self):
        try:
            self.close()
        except Exception:
            pass


def _slot_spans(slots, sids, start, stop):
    """The ``(schedule_index, indices)`` pieces of the global task span
    ``[start, stop)``, walking slots in order."""
    spans = []
    offset = 0
    for slot, sid in zip(slots, sids):
        k = len(slot.indices)
        lo = max(start, offset)
        hi = min(stop, offset + k)
        if lo < hi:
            spans.append((sid, list(slot.indices[lo - offset:
                                                 hi - offset])))
        offset += k
    return spans
