"""Store-streamed encoded meta-task sets (bounded-memory pretraining).

:func:`repro.train.engine.encode_task_sets` normally materializes every
encoded support/query block in memory — ``|TM| x (k_u + k_q)`` encoded
rows per subspace, which is what bounds how large an offline run a
machine can hold.  This module spills those rows into an on-disk
:class:`~repro.store.ChunkStore` *as they are encoded* and serves them
back through :class:`EncodedTaskSet`, a lazy sequence view:

* **writing** streams — each encode block's rows are flattened into
  fixed-width per-task rows ``[v_R | enc_sx | s_y | enc_qx | q_y]`` and
  handed to :meth:`ChunkStore.from_blocks`, which writes each completed
  chunk to disk and drops it from memory, so peak RSS is bounded by the
  encode block / store chunk size regardless of ``|TM|``;
* **reading** is lazy — ``encoded[i]`` gathers one row through the
  store's digest-verified mmap path and reshapes the five task arrays;
  nothing is cached beyond the store's chunk mmaps.

Bit-identity contract: the spilled path feeds ``encode`` the exact same
block matrices as the materialized path (BLAS results depend on operand
shapes), and float64 rows round-trip through ``.npy`` chunks exactly —
so training over an :class:`EncodedTaskSet` produces phi, memories and
optimizer moments bit-identical to training over the materialized list
(``tests/train`` pins this, tracemalloc pins the memory bound).

Task sets of non-uniform support/query shapes cannot be packed into
fixed-width rows; :func:`spill_encoded_tasks` falls back to the
materialized list for them (such sets already train solo/sequentially).
"""

from __future__ import annotations

import numpy as np

from ..store import ChunkStore

__all__ = ["EncodedTaskSet", "spill_encoded_tasks"]


class EncodedTaskSet:
    """Lazy ``encoded[i] -> (v_R, enc_sx, s_y, enc_qx, q_y)`` view.

    Indexable and iterable like the materialized list the training
    engines normally consume; rows live in an on-disk chunk store and
    are gathered (and verified) on access.  Safe to inherit through a
    ``fork`` — child processes lazily re-open their own chunk mmaps.
    """

    def __init__(self, store, n_tasks, feature_size, support_shape,
                 query_shape):
        self.store = store
        self._n = int(n_tasks)
        self.feature_size = int(feature_size)
        self.support_shape = tuple(int(v) for v in support_shape)
        self.query_shape = tuple(int(v) for v in query_shape)
        sizes = [self.feature_size,
                 self.support_shape[0] * self.support_shape[1],
                 self.support_shape[0],
                 self.query_shape[0] * self.query_shape[1],
                 self.query_shape[0]]
        self._offsets = np.cumsum([0] + sizes)
        if store.n_rows != self._n:
            raise ValueError(
                "encoded-task store holds {} rows but {} tasks were "
                "spilled".format(store.n_rows, self._n))
        if store.n_attributes != int(self._offsets[-1]):
            raise ValueError(
                "encoded-task store rows are {} wide but the task "
                "layout needs {}".format(store.n_attributes,
                                         self._offsets[-1]))

    @property
    def shape_signature(self):
        """The uniform ``(support, query)`` encoded shapes of every task
        (what :meth:`TrainerSchedule._shape_signature` groups on)."""
        return (self.support_shape, self.query_shape)

    def __len__(self):
        return self._n

    def __getitem__(self, index):
        index = int(index)
        if index < 0:
            index += self._n
        if not 0 <= index < self._n:
            raise IndexError("task index {} out of range for {} "
                             "tasks".format(index, self._n))
        row = self.store.take(np.array([index], dtype=np.int64))[0]
        o = self._offsets
        return (np.ascontiguousarray(row[o[0]:o[1]]),
                np.ascontiguousarray(
                    row[o[1]:o[2]]).reshape(self.support_shape),
                np.ascontiguousarray(row[o[2]:o[3]]),
                np.ascontiguousarray(
                    row[o[3]:o[4]]).reshape(self.query_shape),
                np.ascontiguousarray(row[o[4]:o[5]]))

    def __iter__(self):
        for index in range(self._n):
            yield self[index]

    def pretrain_view(self):
        """Lazy per-task ``(v_R, support+query tuples, labels)`` view.

        The streamed replacement for the materialized
        ``TrainerSchedule.pretrain_sets`` cache: each access rebuilds
        the joint-pretraining arrays from one stored row, so an epoch
        touches one task at a time instead of holding all of them.
        """
        return _PretrainView(self)


class _PretrainView:
    """Lazy joint-pretraining projection of an :class:`EncodedTaskSet`."""

    def __init__(self, tasks):
        self._tasks = tasks

    def __len__(self):
        return len(self._tasks)

    def __getitem__(self, index):
        v_r, sx, sy, qx, qy = self._tasks[index]
        return (v_r, np.vstack([sx, qx]),
                np.concatenate([sy, qy]).astype(np.float64))

    def __iter__(self):
        for index in range(len(self)):
            yield self[index]


def spill_encoded_tasks(tasks, encode, rows_per_block, directory):
    """Encode ``tasks`` block-wise, spilling rows into a store at
    ``directory``; returns an :class:`EncodedTaskSet` (or, for
    non-uniform task shapes, the materialized list — see module note).
    """
    from .engine import _iter_encoded_arrays, encode_task_sets

    tasks = list(tasks)
    if not tasks:
        return []
    shapes = {(np.atleast_2d(np.asarray(task.support_x)).shape,
               np.atleast_2d(np.asarray(task.query_x)).shape)
              for task in tasks}
    features = {np.asarray(task.feature_vector).size for task in tasks}
    if len(shapes) != 1 or len(features) != 1:
        return encode_task_sets(tasks, encode,
                                rows_per_block=rows_per_block)

    state = {}

    def rows():
        # Lockstep consumption: the encode iterator buffers at most one
        # block of raw+encoded rows, and each finished task row is
        # yielded (and flushed to disk by from_blocks) immediately.
        arrays = _iter_encoded_arrays(tasks, encode, rows_per_block)
        for task in tasks:
            enc_sx = next(arrays)
            enc_qx = next(arrays)
            if not state:
                state["feature_size"] = np.asarray(
                    task.feature_vector).size
                state["support_shape"] = enc_sx.shape
                state["query_shape"] = enc_qx.shape
            yield np.concatenate([
                np.asarray(task.feature_vector,
                           dtype=np.float64).ravel(),
                enc_sx.ravel(),
                np.asarray(task.support_y, dtype=np.float64).ravel(),
                enc_qx.ravel(),
                np.asarray(task.query_y, dtype=np.float64).ravel(),
            ])[None, :]

    row_iter = rows()
    first = next(row_iter)
    width = first.shape[1]
    # ~4 MiB float64 chunks: the unit of both disk IO and peak memory.
    chunk_rows = max(1, (4 * 1024 * 1024) // (8 * width))
    store = ChunkStore.from_blocks(
        "encoded-tasks",
        ["c{}".format(i) for i in range(width)],
        _chain_first(first, row_iter),
        chunk_rows=chunk_rows, directory=directory,
        provenance={"kind": "encoded-task-spill",
                    "n_tasks": len(tasks)})
    return EncodedTaskSet(store, len(tasks), state["feature_size"],
                          state["support_shape"], state["query_shape"])


def _chain_first(first, rest):
    yield first
    yield from rest
