"""Fused batched execution of offline meta-training (Algorithm 2).

The paper's offline phase dominates end-to-end cost (Fig. 8b): |TM|
meta-tasks per meta-subspace, each adapted for ``local_steps`` and
meta-stepped through its query loss.  One task is tiny — all Python /
autograd overhead — but the tasks inside one Eq. 13 batch are mutually
independent, and so are entire *meta-subspaces*.  This module therefore
runs:

* the **local + global phase of a whole meta-batch** as ONE stacked
  autograd program over ``(K, ...)`` parameter stacks
  (:func:`run_meta_batch_fused`), where K pools the batches of every
  shape-compatible subspace trained this round;
* one **joint-pretraining step of S subspaces** as one stacked program
  (:func:`run_pretrain_epoch_pooled`) — the pretrain *task* loop shares
  phi and is inherently sequential, but the S per-subspace models are
  independent slices.

Everything rides :mod:`repro.nn.batching` (the substrate shared with the
online serving path) and is **bit-identical** to the sequential
reference executors in
:meth:`~repro.core.meta_training.MetaTrainer.train_batch_sequential` /
:meth:`~repro.core.meta_training.MetaTrainer.pretrain_step`: the stacked
computation is block-diagonal, so every task sees exactly its sequential
gradients and optimizer updates.  ``tests/train`` property-fuzzes this.
"""

from __future__ import annotations

from collections import namedtuple

import numpy as np

from ..nn.batching import (BatchedUISClassifier, fused_local_adapt,
                           grad_stacks, load_flat_stack, stacked_predict,
                           theta_r_grad_stack)
from ..nn.compile import get_backend
from ..nn.functional import batched_pos_weight
from ..nn.optim import Adam

__all__ = ["encode_task_sets", "MetaBatchSlot", "MetaBatchInputs",
           "MetaBatchResult", "build_meta_batch_inputs",
           "slice_meta_batch_inputs", "compute_meta_batch",
           "concat_meta_batch_results", "apply_meta_batch",
           "run_meta_batch_fused", "run_pretrain_epoch_sequential",
           "run_pretrain_epoch_pooled", "evaluate_batched"]


def encode_task_sets(tasks, encode, rows_per_block=8192, spill=None):
    """Pre-encode meta-task support/query sets, block-wise.

    Returns ``[(feature_vector, enc_support_x, support_y, enc_query_x,
    query_y), ...]`` — the working representation both engines train on.
    Tuples from consecutive tasks are concatenated into blocks of up to
    ``rows_per_block`` rows so the preprocessor transforms run over a
    few large matrices instead of 2x|TM| tiny ones; the store-backed
    offline path rides this too, keeping peak encode memory bounded by
    the block size rather than the task count.

    With ``spill`` (a directory path) the encoded rows stream into an
    on-disk :class:`~repro.store.ChunkStore` as they are produced and an
    :class:`~repro.train.stream.EncodedTaskSet` view is returned instead
    of a list: peak resident memory stays bounded by the encode block /
    store chunk size rather than ``|TM| x (k_u + k_q)``.  The spilled
    path reuses the exact same encode-block boundaries (BLAS results
    depend on operand shapes), so the bits read back are identical to
    the materialized list.
    """
    tasks = list(tasks)
    if spill is not None:
        from .stream import spill_encoded_tasks
        return spill_encoded_tasks(tasks, encode, rows_per_block, spill)
    encoded_arrays = list(_iter_encoded_arrays(tasks, encode,
                                               rows_per_block))
    out = []
    for i, task in enumerate(tasks):
        out.append((np.asarray(task.feature_vector, dtype=np.float64),
                    encoded_arrays[2 * i], task.support_y,
                    encoded_arrays[2 * i + 1], task.query_y))
    return out


def _iter_encoded_arrays(tasks, encode, rows_per_block):
    """Yield each task's encoded support then query array, in order.

    The blocking policy — accumulate interleaved ``[sx0, qx0, sx1, ...]``
    arrays and flush once ``rows_per_block`` rows have gathered — is the
    bit-identity contract between the materialized and spilled paths:
    both must hand ``encode`` the same matrices.
    """
    block, block_rows = [], 0
    for task in tasks:
        for array in (np.atleast_2d(np.asarray(task.support_x,
                                               dtype=np.float64)),
                      np.atleast_2d(np.asarray(task.query_x,
                                               dtype=np.float64))):
            block.append(array)
            block_rows += len(array)
            if block_rows >= rows_per_block:
                yield from _encode_block(block, encode)
                block, block_rows = [], 0
    if block:
        yield from _encode_block(block, encode)


def _encode_block(block, encode):
    """Encode a list of row blocks in one transform call; split back."""
    stacked = encode(np.vstack(block))
    lengths = [len(array) for array in block]
    offsets = np.cumsum([0] + lengths)
    return [np.ascontiguousarray(stacked[offsets[i]:offsets[i + 1]])
            for i in range(len(block))]


#: One trainer's share of a fused meta-batch: its encoded task set and
#: the task indices (in order) it contributes this round.
MetaBatchSlot = namedtuple("MetaBatchSlot", ["trainer", "encoded", "indices"])

#: The stacked per-task arrays of one fused meta-batch, K tasks deep.
#: ``shifts`` is the ``(K, theta_r_size)`` memory-retrieved theta_R
#: start stack (or None without memories); ``conversions`` /
#: ``attentions`` are per-task lists (``attentions`` entries are None
#: when the retrieval was computed elsewhere — the parallel worker path).
MetaBatchInputs = namedtuple("MetaBatchInputs", [
    "features", "sx", "sy", "qx", "qy",
    "shifts", "conversions", "attentions"])

#: The pure-compute products of one fused meta-batch (or a contiguous
#: task span of one): per-task query losses, last-step theta_R gradient
#: stack, per-parameter query gradient stacks, adapted conversion data.
MetaBatchResult = namedtuple("MetaBatchResult", [
    "losses", "theta_grads", "grad_stacks", "conversion_data"])


def build_meta_batch_inputs(slots, retrieval=None):
    """Stack one meta-batch's per-task arrays; returns (models, inputs).

    Task-wise initialization (Eqs. 6/10/11), stacked straight off each
    trainer's meta-learned template: the K slices start as copies of phi
    (no per-task model construction), then the memory-retrieved theta_R
    shifts land row-wise in the stacked UIS block — the same bits
    ``task_retrieval`` produces per task.

    ``retrieval`` (optional) is a ``(shifts, conversions)`` pair
    computed by another process: the data-parallel master performs the
    memory retrievals against its authoritative memories and ships them
    to workers, whose forked memory copies are stale.  When given, the
    local memories are never touched and ``attentions`` is all-None
    (the EMA updates that need attentions happen on the master).
    """
    models = []
    attentions, conversions, shifts = [], [], []
    v_rs, sxs, sys_, qxs, qys = [], [], [], [], []
    external = retrieval is not None
    for slot in slots:
        trainer = slot.trainer
        models.extend([trainer.model] * len(slot.indices))
        flat = trainer.model.get_theta_r_flat() \
            if (trainer.use_memories and not external) else None
        for idx in slot.indices:
            v_r, sx, sy, qx, qy = slot.encoded[idx]
            if not external:
                if trainer.use_memories:
                    attention = trainer.memories.attention(v_r)
                    omega = trainer.memories.omega_r(attention)
                    attentions.append(attention)
                    shifts.append(flat - trainer.params.sigma * omega)
                    conversions.append(
                        trainer.memories.conversion(attention))
                else:
                    attentions.append(None)
                    conversions.append(None)
            v_rs.append(v_r)
            sxs.append(sx)
            sys_.append(np.asarray(sy, dtype=np.float64).ravel())
            qxs.append(qx)
            qys.append(np.asarray(qy, dtype=np.float64).ravel())
    if external:
        shift_stack, conversions = retrieval
        conversions = list(conversions) if conversions is not None \
            else [None] * len(v_rs)
        attentions = [None] * len(v_rs)
    else:
        shift_stack = np.stack(shifts) if shifts else None
    return models, MetaBatchInputs(
        np.stack(v_rs), np.stack(sxs), np.stack(sys_), np.stack(qxs),
        np.stack(qys), shift_stack, conversions, attentions)


def slice_meta_batch_inputs(inputs, start, stop):
    """The contiguous task span ``[start, stop)`` of a batch's inputs."""
    return MetaBatchInputs(
        inputs.features[start:stop], inputs.sx[start:stop],
        inputs.sy[start:stop], inputs.qx[start:stop],
        inputs.qy[start:stop],
        None if inputs.shifts is None else inputs.shifts[start:stop],
        inputs.conversions[start:stop],
        None if inputs.attentions is None
        else inputs.attentions[start:stop])


def compute_meta_batch(models, params, inputs):
    """The pure compute of one fused meta-batch: adapt + query backward.

    ``models`` and ``inputs`` may cover a whole batch or any contiguous
    task span of one: the stacked program is block-diagonal, so every
    task's losses and gradients are bit-identical at any stack size —
    which is what lets the data-parallel engine split a batch across
    worker processes without perturbing a single bit.

    Both the local and the global phase execute on the active
    :mod:`repro.nn.compile` backend.  Parity guarantee: every backend
    evaluates the identical float64 op sequence in the identical order,
    so the returned losses, gradient stacks, and adapted conversions
    are bit-identical whether the program runs eagerly (``reference``)
    or as a compiled replay (``fused``).

    Mutates nothing: phi, memories, and optimizer state are untouched
    (apply the result with :func:`apply_meta_batch`).  The gradient
    stacks may alias the backend's reusable plan workspace — copy them
    (:func:`repro.nn.batching.copy_grad_stacks`) before running another
    program, or ship them across a process boundary (pickling copies).
    """
    batched = BatchedUISClassifier(models)
    if inputs.shifts is not None:
        load_flat_stack(batched.uis_block, np.asarray(inputs.shifts))
    features = np.asarray(inputs.features)
    batched, conversion = fused_local_adapt(
        models, features, np.asarray(inputs.sx), np.asarray(inputs.sy),
        conversions=list(inputs.conversions), batched=batched,
        steps=max(1, params.local_steps), lr=params.rho,
        optimizer_kind=params.local_optimizer,
        balance_classes=params.balance_classes)
    # Last-step theta_R gradients feed the parameter memory (Eq. 15);
    # capture them before the global backward overwrites the stacks.
    theta_grads = theta_r_grad_stack(batched)

    # Global phase (Eq. 13): all K query losses in one forward/backward
    # on the active repro.nn.compile backend.
    qy_stack = np.asarray(inputs.qy)
    pos_weight = batched_pos_weight(qy_stack) \
        if params.balance_classes else None
    task_losses = get_backend().loss_backward(
        batched, conversion, features, np.asarray(inputs.qx), qy_stack,
        pos_weight)
    stacks = grad_stacks(batched)
    loss_values = [float(value) for value in np.asarray(task_losses)]
    return MetaBatchResult(
        loss_values, theta_grads, stacks,
        None if conversion is None else conversion.data)


def concat_meta_batch_results(parts):
    """Stitch span results back into one batch-wide result, in order.

    The spans must be the contiguous partition of the batch's task list,
    given in task order — concatenation then reproduces exactly the
    arrays a single whole-batch :func:`compute_meta_batch` returns.
    """
    if len(parts) == 1:
        return parts[0]
    losses = [value for part in parts for value in part.losses]
    theta_grads = np.concatenate(
        [np.asarray(part.theta_grads) for part in parts])
    stacks = {}
    for name in parts[0].grad_stacks:
        grads = [part.grad_stacks[name] for part in parts]
        stacks[name] = None if grads[0] is None else np.concatenate(
            [np.asarray(grad) for grad in grads])
    conversion_data = None if parts[0].conversion_data is None \
        else np.concatenate([np.asarray(part.conversion_data)
                             for part in parts])
    return MetaBatchResult(losses, theta_grads, stacks, conversion_data)


def apply_meta_batch(slots, inputs, result):
    """The ordered reduction tail of one fused meta-batch.

    Semantics per slot are exactly the back half of
    :meth:`MetaTrainer.train_batch_sequential`: per-trainer gradient
    accumulation as a **fixed left-fold in task order** (float addition
    is non-associative — a pairwise tree would diverge from the
    sequential reference in the last bits), deferred memory EMA updates
    (Eqs. 14-16) in task order, then one Eq. 13 step on each trainer's
    phi.  Because :func:`compute_meta_batch` is partition-invariant and
    this fold is fixed, the data-parallel engine applies the identical
    update no matter how many workers computed the spans.

    Returns the per-slot lists of query losses, in slot order.
    """
    stacks = result.grad_stacks
    out = []
    offset = 0
    for slot in slots:
        trainer = slot.trainer
        params = trainer.params
        k = len(slot.indices)
        phi_params = dict(trainer.model.named_parameters())
        accum = {name: np.zeros_like(p.data)
                 for name, p in phi_params.items()}
        for j in range(offset, offset + k):
            for name, phi in phi_params.items():
                grad = stacks.get(name)
                if grad is not None:
                    accum[name] += np.asarray(grad[j]).reshape(
                        phi.data.shape)
        if trainer.use_memories:
            for pos in range(k):
                j = offset + pos
                v_r = slot.encoded[slot.indices[pos]][0]
                trainer.memories.update_feature_patterns(
                    inputs.attentions[j], v_r, params.eta)
                trainer.memories.update_parameter_memory(
                    inputs.attentions[j], result.theta_grads[j],
                    params.beta)
                trainer.memories.update_conversion_memory(
                    inputs.attentions[j], result.conversion_data[j],
                    params.gamma)
        scale = params.lam / max(1, k)
        for name, phi in phi_params.items():
            phi.data = phi.data - scale * accum[name]
        out.append(result.losses[offset:offset + k])
        offset += k
    return out


def run_meta_batch_fused(slots):
    """Execute one pooled Eq. 12/13 meta-batch as a fused program.

    ``slots`` carries one entry per participating trainer; every task
    across all slots must be shape-compatible (same model configuration,
    support/query sizes, local hyper-parameters — the pooled scheduler
    groups accordingly).  Semantics per slot are exactly
    :meth:`MetaTrainer.train_batch_sequential`: task-wise retrieval from
    the batch-start memories, ``local_steps`` of fused adaptation, one
    fused query backward, per-trainer gradient accumulation in task
    order, deferred memory EMA updates in task order, one Eq. 13 step on
    each trainer's phi.  The three phases are
    :func:`build_meta_batch_inputs` -> :func:`compute_meta_batch` ->
    :func:`apply_meta_batch`; the data-parallel engine runs the same
    phases with the middle one fanned out across worker processes.

    Returns the per-slot lists of query losses, in slot order.
    """
    models, inputs = build_meta_batch_inputs(slots)
    result = compute_meta_batch(models, slots[0].trainer.params, inputs)
    return apply_meta_batch(slots, inputs, result)


# ----------------------------------------------------------------------
# Joint pretraining epochs (phi-level, Adam state carried via schedules)
# ----------------------------------------------------------------------
def run_pretrain_epoch_sequential(schedule, order=None):
    """One joint-pretraining epoch of a single trainer, task at a time.

    ``order`` (optional) supplies the epoch's task permutation instead
    of drawing it from the schedule's RNG — the data-parallel master
    draws every order from its authoritative RNG streams and ships them,
    so worker-side RNG state never exists, let alone drifts.
    """
    trainer = schedule.trainer
    optimizer = Adam(trainer.model.parameters(),
                     lr=trainer.params.pretrain_lr)
    if schedule.pretrain_opt_state is not None:
        optimizer.load_state_dict(schedule.pretrain_opt_state)
    conversion = trainer.pretrain_conversion()
    if order is None:
        order = schedule.next_pretrain_order()
    for idx in order:
        v_r, x, y = schedule.pretrain_sets[idx]
        trainer.pretrain_step(optimizer, conversion, v_r, x, y)
    schedule.pretrain_opt_state = optimizer.state_dict()


def run_pretrain_epoch_pooled(schedules, orders=None):
    """One joint-pretraining epoch of S trainers, fused across them.

    Each trainer's task loop is sequential (consecutive steps share its
    phi), but the S per-subspace models are independent: step t trains
    every trainer's t-th task (per its own shuffle) in one stacked
    forward/backward and one stacked Adam step.  Slice s is bit-identical
    to :func:`run_pretrain_epoch_sequential` on trainer s — at ANY
    subset of trainers, which is why the data-parallel engine can pool
    each worker's span of a fusion group independently.  ``orders``
    (optional) supplies the per-schedule task permutations externally
    (see :func:`run_pretrain_epoch_sequential`).
    """
    trainers = [schedule.trainer for schedule in schedules]
    models = [trainer.model for trainer in trainers]
    batched = BatchedUISClassifier(models)
    params = trainers[0].params
    optimizer = Adam(batched.parameters(), lr=params.pretrain_lr)
    _load_stacked_adam(optimizer, schedules, batched)

    conversions = [trainer.pretrain_conversion() for trainer in trainers]
    conversion = None if conversions[0] is None else np.stack(conversions)
    if orders is None:
        orders = [schedule.next_pretrain_order() for schedule in schedules]
    n_tasks = len(schedules[0].pretrain_sets)
    for t in range(n_tasks):
        picks = [schedule.pretrain_sets[orders[s][t]]
                 for s, schedule in enumerate(schedules)]
        features = np.stack([pick[0] for pick in picks])
        xs = np.stack([pick[1] for pick in picks])
        ys = np.stack([pick[2] for pick in picks])
        pos_weight = batched_pos_weight(ys) \
            if params.balance_classes else None
        # One stacked forward/backward on the active backend (it zeroes
        # and repopulates the parameter gradients), then the persistent
        # stacked Adam consumes them — bit-identical either way.
        get_backend().loss_backward(batched, conversion, features, xs, ys,
                                    pos_weight)
        optimizer.step()

    batched.unstack_into(models)
    _store_stacked_adam(optimizer, schedules, models)


def _load_stacked_adam(optimizer, schedules, batched):
    """Stack the per-schedule Adam moment slices into the fused optimizer."""
    states = [schedule.pretrain_opt_state for schedule in schedules]
    if all(state is None for state in states):
        return
    if any(state is None for state in states):
        raise ValueError("cannot pool trainers with and without pretrain "
                         "optimizer state")
    steps = {int(state["step"]) for state in states}
    if len(steps) > 1:
        raise ValueError("cannot pool pretrain optimizers at different "
                         "step counts: {}".format(sorted(steps)))
    batched_params = list(batched.parameters())
    stacked = dict(states[0])
    for key in ("m", "v"):
        stacked[key] = [
            np.stack([np.asarray(state[key][i]).reshape(p.data.shape[1:])
                      for state in states])
            for i, p in enumerate(batched_params)]
    optimizer.load_state_dict(stacked)


def _store_stacked_adam(optimizer, schedules, models):
    """Slice the fused Adam state back into per-schedule states."""
    stacked = optimizer.state_dict()
    for s, (schedule, model) in enumerate(zip(schedules, models)):
        state = dict(stacked)
        for key in ("m", "v"):
            state[key] = [
                np.ascontiguousarray(
                    np.asarray(stacked[key][i])[s].reshape(p.data.shape))
                for i, p in enumerate(model.parameters())]
        schedule.pretrain_opt_state = state


# ----------------------------------------------------------------------
# Batched evaluation
# ----------------------------------------------------------------------
def evaluate_batched(trainer, tasks, encode, local_steps=None):
    """Fused :meth:`MetaTrainer.evaluate`: adapt + score per shape bucket.

    Bit-identical predictions to the sequential per-task loop; tasks of
    odd shapes simply land in their own (possibly singleton) bucket.
    """
    encoded = encode_task_sets(tasks, encode)
    if not encoded:
        return 0.0
    params = trainer.params
    steps = params.local_steps if local_steps is None else int(local_steps)
    buckets = {}
    for i, (v_r, sx, sy, qx, qy) in enumerate(encoded):
        buckets.setdefault((sx.shape, qx.shape), []).append(i)
    scores = [0.0] * len(encoded)
    for indices in buckets.values():
        models, conversions = [], []
        for i in indices:
            local, conversion, _ = trainer.task_retrieval(encoded[i][0])
            models.append(local)
            conversions.append(conversion)
        features = np.stack([encoded[i][0] for i in indices])
        sx = np.stack([encoded[i][1] for i in indices])
        sy = np.stack([np.asarray(encoded[i][2], dtype=np.float64).ravel()
                       for i in indices])
        batched, conversion = fused_local_adapt(
            models, features, sx, sy, conversions=conversions,
            steps=max(1, steps), lr=params.rho,
            optimizer_kind=params.local_optimizer,
            balance_classes=params.balance_classes)
        qx = np.stack([encoded[i][3] for i in indices])
        preds = stacked_predict(batched, features, qx,
                                conversion=conversion)
        for row, i in enumerate(indices):
            scores[i] = float(np.mean(preds[row] == encoded[i][4]))
    return float(np.mean(scores))
