"""Multi-session serving engine over one shared pretrained LTE.

The :class:`SessionManager` multiplexes many concurrent
:class:`~repro.core.framework.ExplorationSession`s and decouples the
online loop into three independently scheduled stages:

1. **submit** — ``submit_labels`` / ``add_labels`` validate and enqueue
   label batches without training anything;
2. **adapt** — ``flush`` (called explicitly or implicitly by ``poll`` /
   ``predict``) drains the queue, buckets the pending adaptations across
   *all* sessions by shape, and trains each bucket as one fused tensor
   program (:func:`~repro.serve.batched.run_adapt_requests`);
3. **predict** — per-subspace prediction vectors are memoized in a
   versioned :class:`~repro.serve.cache.PredictionCache`, so repeated
   retrievals over unchanged models are dictionary lookups.

Sessions adapted through the manager are bit-compatible with sessions
driven sequentially (see ``tests/serve/test_batched_parity.py``).
"""

from __future__ import annotations

import threading
import time
from collections import deque

import numpy as np

from ..core.framework import ExplorationSession, LTE
from ..core.memory import LRUStore
from ..core.optimizer import FewShotOptimizer, HullRegistry
from ..geometry.engine import HullPackCache
from ..obs import MetricsRegistry, span
from .batched import predict_adapted_batch, run_adapt_requests
from .cache import PredictionCache, rows_digest

__all__ = ["SessionManager"]


class _Pending:
    """One queued label batch: initial submission or an extra round."""

    __slots__ = ("session_id", "subspace", "labels", "tuples", "enqueued")

    def __init__(self, session_id, subspace, labels, tuples=None,
                 enqueued=None):
        self.session_id = session_id
        self.subspace = subspace
        self.labels = labels
        self.tuples = tuples   # None -> initial labels; else add_labels round
        self.enqueued = enqueued   # perf_counter at submit (None if obs off)


class SessionManager:
    """Serves many concurrent exploration sessions with batched adaptation.

    Parameters
    ----------
    lte:
        A fitted :class:`~repro.core.framework.LTE` shared by every
        session (its per-subspace meta-learners are read-only at serve
        time, so sessions cannot interfere through it).
    cache_entries:
        Capacity of the versioned prediction cache.

    Example
    -------
    ::

        manager = SessionManager(lte)
        sid = manager.open_session(variant="meta_star")
        for subspace, tuples in manager.initial_tuples(sid).items():
            manager.submit_labels(sid, subspace, user_labels(tuples))
        manager.flush()              # one fused adaptation for everything
        mask = manager.predict(sid, table.data)
    """

    def __init__(self, lte, cache_entries=1024):
        if not isinstance(lte, LTE):
            raise TypeError("SessionManager needs a fitted LTE system")
        self.lte = lte
        # One registry for the whole serving engine: the prediction and
        # hull-pack caches record into it too, so a single
        # ``manager.metrics.snapshot()`` covers the full request path.
        # See repro.obs.registry for the metric name catalogue.
        self.metrics = MetricsRegistry()
        self.cache = PredictionCache(cache_entries, metrics=self.metrics)
        # Preprocessed representations of prediction inputs are
        # session-independent — every session scoring the same rows in a
        # subspace shares one encode pass.
        self._encoded_rows = LRUStore(32)
        # Compiled halfspace packs for few-shot refinement, keyed by the
        # identity tuple of each refine group's deduped hull set.
        # Re-adaptation bumps model versions but never touches hull
        # geometry, so the steady-state pattern — the same session group
        # flushing and predicting again — hits across versions.  A
        # partial-miss group (some sessions served from the prediction
        # cache) keys a subset and compiles its own pack; that compile
        # is a cheap vstack of per-hull precompiled lowerings, and the
        # LRU bounds the subset entries.  Restored managers rebuild
        # packs from the checkpoint's serialized facet form without
        # ever re-running Qhull.
        self._region_packs = HullPackCache(capacity=128,
                                           metrics=self.metrics)
        self._sessions = {}
        # Freshness watermarks per (session_id, store uid): the store
        # version each session last answered at plus that answer, so
        # predict_many_store re-scans only chunks newer than the
        # watermark (see predict_many_store).  Included in snapshots, so
        # a restored manager resumes incremental scanning instead of
        # paying one full rescan per session.
        self._store_marks = {}
        self.last_store_scan = None
        self._queue = deque()
        # Flush errors attributed to the session that caused them:
        # {session_id: [{"subspace": [names], "error": "Type: msg"}]}.
        # Surfaced (and cleared) by that session's next poll — never
        # raised into an unrelated session's poll or predict.
        self._session_errors = {}
        self._next_id = 0
        self._lock = threading.RLock()
        metrics = self.metrics
        self._obs_on = metrics.enabled
        self._adapt_batches = metrics.counter("serve.manager.adapt.batches")
        self._adapted_total = metrics.counter("serve.manager.adapt.total")
        self._encode_hits = metrics.counter("serve.manager.encode_cache.hits")
        self._encode_misses = \
            metrics.counter("serve.manager.encode_cache.misses")
        self._sessions_live = metrics.gauge("serve.manager.sessions.live")
        self._queue_depth = metrics.gauge("serve.manager.queue.depth")
        self._queue_wait = \
            metrics.histogram("serve.manager.queue.wait.seconds")
        self._t_flush = metrics.histogram("serve.manager.flush.seconds")
        self._t_build = metrics.histogram("serve.manager.adapt.build.seconds")
        self._t_train = metrics.histogram("serve.manager.adapt.train.seconds")
        self._t_install = \
            metrics.histogram("serve.manager.adapt.install.seconds")
        self._t_encode = \
            metrics.histogram("serve.manager.predict.encode.seconds")
        self._t_forward = \
            metrics.histogram("serve.manager.predict.forward.seconds")
        self._t_refine = \
            metrics.histogram("serve.manager.predict.refine.seconds")
        self._t_predict = metrics.histogram("serve.manager.predict.seconds")

    @property
    def adapt_batches(self):
        """Flush calls that trained something (registry-backed)."""
        return self._adapt_batches.value

    @adapt_batches.setter
    def adapt_batches(self, value):
        self._adapt_batches.set(value)

    @property
    def adapted_total(self):
        """(session, subspace) adaptations served (registry-backed)."""
        return self._adapted_total.value

    @adapted_total.setter
    def adapted_total(self, value):
        self._adapted_total.set(value)

    # ------------------------------------------------------------------
    # Session lifecycle
    # ------------------------------------------------------------------
    def open_session(self, variant="meta_star", subspaces=None, seed=None):
        """Open a managed exploration session; returns its id."""
        with self._lock:
            session = self.lte.start_session(variant=variant,
                                             subspaces=subspaces, seed=seed)
            session_id = self._next_id
            self._next_id += 1
            self._sessions[session_id] = session
            self.metrics.counter("serve.manager.sessions.opened").inc()
            self._sessions_live.set(len(self._sessions))
            return session_id

    def close_session(self, session_id):
        """Forget a session and drop its queued work and cache entries."""
        with self._lock:
            self._require(session_id)
            session = self._sessions.pop(session_id)
            self._queue = deque(p for p in self._queue
                                if p.session_id != session_id)
            self._session_errors.pop(session_id, None)
            self._store_marks = {key: mark
                                 for key, mark in self._store_marks.items()
                                 if key[0] != session_id}
            self.cache.invalidate_session(session_id)
            self.metrics.counter("serve.manager.sessions.closed").inc()
            self._sessions_live.set(len(self._sessions))
            self._queue_depth.set(len(self._queue))
            # Un-pin the session's compiled geometry (hulls shared with
            # live sessions just recompile on the next refine).
            hulls = [hull
                     for ss in session._subsessions.values()
                     if ss.optimizer is not None
                     for region in (ss.optimizer.outer_region,
                                    ss.optimizer.inner_region)
                     if region is not None
                     for hull in region.hulls]
            self._region_packs.evict_containing(hulls)

    def session(self, session_id):
        """The underlying :class:`ExplorationSession` (escape hatch)."""
        self._require(session_id)
        return self._sessions[session_id]

    @property
    def n_sessions(self):
        return len(self._sessions)

    def _require(self, session_id):
        if session_id not in self._sessions:
            raise KeyError("unknown session id {!r}".format(session_id))
        return True

    @staticmethod
    def _require_subspaces(session_id, session):
        """Refuse to predict for a session with no subspaces at all: the
        conjunctive combination over *nothing* would report every row
        positive, which is never what a caller means."""
        if not session._subsessions:
            raise RuntimeError(
                "session {!r} has no subspaces (none adapted, nothing to "
                "predict with); predictions would be trivially "
                "all-positive".format(session_id))

    # ------------------------------------------------------------------
    # Stage 1: label submission (enqueue only)
    # ------------------------------------------------------------------
    def initial_tuples(self, session_id):
        """{subspace: raw tuples} the session's user must label."""
        return self.session(session_id).initial_tuples()

    def submit_labels(self, session_id, subspace, labels):
        """Queue a session's initial labels for one subspace.

        Validation is immediate; the adaptation itself runs at the next
        :meth:`flush`, batched with whatever else is pending.
        """
        with self._lock:
            session = self.session(session_id)
            labels = session._subsessions[subspace] \
                .validate_initial_labels(labels)
            self._queue.append(_Pending(
                session_id, subspace, labels,
                enqueued=time.perf_counter() if self._obs_on else None))
            self._queue_depth.set(len(self._queue))

    def submit_all_labels(self, session_id, labels_by_subspace):
        for subspace, labels in labels_by_subspace.items():
            self.submit_labels(session_id, subspace, labels)

    def add_labels(self, session_id, subspace, tuples, labels):
        """Queue an iterative-exploration label round for re-adaptation."""
        with self._lock:
            session = self.session(session_id)
            if session._subsessions[subspace].labels is None and not any(
                    p.session_id == session_id and p.subspace == subspace
                    and p.tuples is None for p in self._queue):
                raise RuntimeError("submit the initial labels first")
            tuples, labels = session._subsessions[subspace] \
                .validate_extra_labels(tuples, labels)
            self._queue.append(_Pending(
                session_id, subspace, labels, tuples,
                enqueued=time.perf_counter() if self._obs_on else None))
            self._queue_depth.set(len(self._queue))

    def pending(self, session_id=None):
        """Queued (session, subspace) pairs, optionally for one session."""
        with self._lock:
            return [(p.session_id, p.subspace) for p in self._queue
                    if session_id is None or p.session_id == session_id]

    # ------------------------------------------------------------------
    # Stage 2: batched adaptation
    # ------------------------------------------------------------------
    def flush(self, raise_errors=True):
        """Drain the queue through one fused batched adaptation.

        Returns the number of (session, subspace) adaptations performed.
        Queue order is preserved per (session, subspace): an initial
        submission queued before an extra round is installed first.

        A queued item whose request cannot be built (e.g. labels for a
        meta variant whose subspace was never meta-trained) is discarded
        and does not take the rest of the queue down with it: every
        other item still adapts.  Each such error is *attributed to the
        owning session* — recorded in its per-session error state and
        surfaced by that session's next :meth:`poll` — at the moment it
        is caught, so a later training failure can no longer discard it.
        With ``raise_errors=True`` (direct calls) the first error then
        also re-raises; the :meth:`poll`/:meth:`predict` paths pass
        ``False`` so one session's bad batch never raises into an
        unrelated session's call.  If the fused training itself fails,
        nothing from the affected wave was installed; the un-adapted
        items stay queued for retry and the failure re-raises
        regardless (it is systemic, not one session's fault).
        """
        with self._lock:
            work = list(self._queue)
            self._queue.clear()
            self._queue_depth.set(0)
            if not work:
                return 0
            flush_start = time.perf_counter() if self._obs_on else None
            done = 0
            errors = []
            # Items targeting the *same* (session, subspace) must run in
            # submission order (an extra round trains on the installed
            # result of the initial one), so the queue drains in waves:
            # each wave fuses at most one item per (session, subspace).
            while work:
                wave, rest, seen = [], [], set()
                for item in work:
                    key = (item.session_id, item.subspace)
                    (rest if key in seen else wave).append(item)
                    seen.add(key)
                try:
                    done += self._run_wave(wave, errors)
                except Exception:
                    # Training itself blew up.  Nothing from this wave
                    # was installed or recorded, so the whole wave plus
                    # the never-attempted later waves go back on the
                    # queue for a retry.
                    self._queue.extend(wave)
                    self._queue.extend(rest)
                    self._queue_depth.set(len(self._queue))
                    raise
                work = rest
            if flush_start is not None:
                self._t_flush.observe(time.perf_counter() - flush_start)
            if errors and raise_errors:
                raise errors[0]
            return done

    def _record_error(self, session_id, subspace, error):
        """Attribute one flush error to its owning session."""
        self.metrics.counter("serve.manager.errors.recorded").inc()
        self._session_errors.setdefault(session_id, []).append({
            "subspace": list(subspace.names),
            "error": "{}: {}".format(type(error).__name__, error),
        })

    def _run_wave(self, wave, errors):
        start = time.perf_counter()
        if self._obs_on:
            for item in wave:
                if item.enqueued is not None:
                    self._queue_wait.observe(start - item.enqueued)
        requests, installs = [], []
        for item in wave:
            subsession = \
                self._sessions[item.session_id]._subsessions[item.subspace]
            try:
                if item.tuples is None:
                    request = subsession.build_initial_request(item.labels)
                    installs.append((subsession, None))
                else:
                    request, extras = subsession.build_readapt_request_for(
                        item.tuples, item.labels)
                    installs.append((subsession, extras))
            except Exception as error:   # isolate the offending item
                self._record_error(item.session_id, item.subspace, error)
                errors.append(error)
                continue
            requests.append(request)
        if not requests:
            return 0
        built = time.perf_counter()
        self._t_build.observe(built - start)
        with span("serve.manager.adapt", requests=len(requests)):
            results = run_adapt_requests(requests)
        trained = time.perf_counter()
        self._t_train.observe(trained - built)
        share = (trained - start) / len(results)
        for (subsession, extras), request, (adapted, optimizer) in zip(
                installs, requests, results):
            if extras is None:
                subsession.install_adaptation(request, adapted, optimizer,
                                              share)
            else:
                subsession.install_readaptation(adapted, extras)
        self._t_install.observe(time.perf_counter() - trained)
        self._adapt_batches.inc()
        self._adapted_total.inc(len(results))
        return len(results)

    def poll(self, session_id, advance=True):
        """Report the session's serving state, advancing work by default.

        With ``advance=True`` every queued adaptation (for all sessions)
        is flushed first, so ``pending`` comes back empty and ``ready``
        reflects the post-flush state; with ``advance=False`` the queue
        is only inspected — ``pending`` then lists the session's
        subspaces still awaiting adaptation.  ``versions`` carries the
        per-subspace model versions that key the prediction cache.

        ``errors`` lists flush failures attributed to *this* session
        (``[{"subspace": [names], "error": "Type: msg"}]``), cleared
        once reported.  Another session's bad label batch never raises
        here: it lands in that session's own error state instead.
        """
        with self._lock:
            session = self.session(session_id)
            if advance:
                self.flush(raise_errors=False)
            ready = [s for s, ss in session._subsessions.items()
                     if ss.adapted is not None]
            pending = [s for _, s in self.pending(session_id)]
            return {
                "ready": ready,
                "pending": pending,
                "errors": self._session_errors.pop(session_id, []),
                "versions": {s: ss.model_version
                             for s, ss in session._subsessions.items()},
            }

    # ------------------------------------------------------------------
    # Stage 3: cached, batched prediction
    # ------------------------------------------------------------------
    def _subspace_artifacts(self, subspace, state, points, digest=None):
        """(digest, scaled, encoded) for subspace points, encode-cached.

        ``digest`` short-circuits the content hash when the caller
        already has a stable identity for the points (the store path
        passes the chunk digest, so repeated scans never re-hash bytes).

        The cache key includes the state's ``artifact_token`` — the
        model/scaler generation — so a hot-swapped meta-learner or
        refreshed scaler (e.g. a :mod:`repro.shard` version broadcast
        installing a re-pretrained phi via
        :func:`repro.persist.load_pretrained`) can never serve encodes
        computed under the previous generation's artifacts.
        """
        if digest is None:
            digest = rows_digest(points)
        key = (tuple(subspace.names), state.artifact_token, digest)
        artifacts = self._encoded_rows.get(key)
        if artifacts is None:
            self._encode_misses.inc()
            t0 = time.perf_counter() if self._obs_on else None
            scaled = state.to_scaled(points)
            artifacts = (scaled, state.encode_scaled(scaled))
            if t0 is not None:
                self._t_encode.observe(time.perf_counter() - t0)
            self._encoded_rows.put(key, artifacts)
        else:
            self._encode_hits.inc()
        return (digest,) + artifacts

    def _predict_group(self, subspace, points, per_session, digest=None):
        """Predict one subspace's points for many sessions at once.

        ``per_session`` maps session_id -> _SubspaceSession.  Cache hits
        are served directly; misses are scored in one stacked forward
        pass (falling back to the per-session path for singletons or
        structurally different models) and then geometrically refined
        per session.  Returns {session_id: (n,) 0/1 predictions}.

        Sessions are first sub-grouped by their state's artifact
        generation: after a subspace refresh (drift handling replaces
        the :class:`~repro.core.framework.SubspaceState`), sessions
        opened before it keep serving the scaler/encoder they adapted
        under while newer sessions use the fresh one — scoring both
        through a single generation's encode pass would silently feed
        half of them the wrong coordinates.
        """
        if digest is None:
            digest = rows_digest(points)
        t_group = time.perf_counter() if self._obs_on else None
        by_generation = {}
        for session_id, subsession in per_session.items():
            token = subsession.state.artifact_token
            by_generation.setdefault(token, {})[session_id] = subsession
        out = {}
        for generation in by_generation.values():
            state = next(iter(generation.values())).state
            _, scaled, encoded = self._subspace_artifacts(
                subspace, state, points, digest=digest)
            misses = {}
            for session_id, subsession in generation.items():
                key = self.cache.key(session_id, subspace,
                                     subsession.model_version, digest)
                cached = self.cache.get(key)
                if cached is None:
                    group = misses.setdefault(
                        tuple(sorted(
                            subsession.adapted.model.config.items())),
                        [])
                    group.append((session_id, subsession, key))
                else:
                    out[session_id] = cached
            for group in misses.values():
                t0 = time.perf_counter() if self._obs_on else None
                if len(group) == 1:
                    session_id, subsession, key = group[0]
                    stacked = subsession.adapted.predict(encoded)[None, :]
                else:
                    stacked = predict_adapted_batch(
                        [subsession.adapted for _, subsession, _ in group],
                        encoded)
                if t0 is not None:
                    t1 = time.perf_counter()
                    self._t_forward.observe(t1 - t0)
                else:
                    t1 = None
                # Geometric refinement runs all (points x hulls x
                # sessions) tests as one packed-engine call; the
                # manager-level pack cache persists the compiled
                # halfspace stack across model versions and repeated
                # predict calls.
                refined = FewShotOptimizer.refine_batch(
                    [subsession.optimizer for _, subsession, _ in group],
                    scaled, stacked, pack_cache=self._region_packs)
                if t1 is not None:
                    self._t_refine.observe(time.perf_counter() - t1)
                for (session_id, subsession, key), predictions in zip(
                        group, refined):
                    self.cache.put(key, predictions)
                    out[session_id] = predictions
        if t_group is not None:
            self._t_predict.observe(time.perf_counter() - t_group)
        return out

    def predict_subspace(self, session_id, subspace, points):
        """Cached 0/1 UIS membership for subspace-coordinate points."""
        with self._lock:
            self.flush(raise_errors=False)
            session = self.session(session_id)
            points = np.atleast_2d(np.asarray(points, dtype=np.float64))
            subsession = session._subsessions[subspace]
            if subsession.adapted is None:
                raise RuntimeError("labels not yet submitted for subspace {}"
                                   .format(subspace))
            group = self._predict_group(subspace, points,
                                        {session_id: subsession})
            return group[session_id].copy()

    def predict_many(self, session_ids, rows):
        """0/1 UIR membership of ``rows`` for many sessions at once.

        The fused counterpart of calling :meth:`predict` per session:
        rows are projected and encoded once per subspace, and all
        sessions' classifiers score them in stacked forward passes.
        Returns ``{session_id: (n,) predictions}``.  ``rows`` may be a
        :class:`~repro.store.ChunkStore` (chunk-wise, zone-map-pruned,
        per-chunk-cached evaluation via :meth:`predict_many_store`).
        """
        if hasattr(rows, "iter_chunks"):
            return self.predict_many_store(session_ids, rows)
        with self._lock, span("serve.manager.predict_many"):
            self.flush(raise_errors=False)
            rows = np.atleast_2d(np.asarray(rows, dtype=np.float64))
            sessions = {sid: self.session(sid) for sid in session_ids}
            results = {sid: np.ones(len(rows), dtype=np.int64)
                       for sid in sessions}
            groups = {}
            for sid, session in sessions.items():
                self._require_subspaces(sid, session)
                for subspace, subsession in session._subsessions.items():
                    if subsession.adapted is None:
                        raise RuntimeError(
                            "labels not yet submitted for subspace {}"
                            .format(subspace))
                    groups.setdefault(subspace, {})[sid] = subsession
            for subspace, per_session in groups.items():
                projected = subspace.project(rows)
                for sid, predictions in self._predict_group(
                        subspace, projected, per_session).items():
                    results[sid] &= predictions
            return results

    def predict_many_store(self, session_ids, store):
        """0/1 UIR membership over a chunk store for many sessions.

        The out-of-core counterpart of :meth:`predict_many`, evaluated
        chunk-at-a-time so resident memory is bounded by the chunk size:

        * **zone-map pruning** — chunks a session's few-shot subregions
          cannot overlap (conservative raw-space bounding boxes through
          the subspace scaler) are skipped for that session entirely;
          the Meta* refinement would demote every positive there anyway,
          so skipped chunks are all-zero bit-identically;
        * **per-chunk result caching** — the prediction cache is keyed
          by the store's precomputed chunk digests, so a repeated scan
          over an unchanged model serves every chunk from cache without
          re-reading, re-encoding or re-hashing its bytes;
        * shared work — all sessions surviving a chunk score it in the
          same stacked forward passes as :meth:`predict_many`;
        * **freshness watermarks** — each session remembers the
          ``store_version`` it last answered at (per store ``uid``)
          together with that answer; over an appended store, only chunks
          at or past the previously closed prefix are re-evaluated and
          merged with the remembered prefix, bit-identically to a full
          rescan (closed chunks are immutable and the watermark is only
          trusted while the session's model versions are unchanged).

        Returns ``{session_id: (n_rows,) predictions}``.  The
        accounting of the most recent call — chunks evaluated vs skipped
        by watermark vs pruned by zone maps — lands in
        :attr:`last_store_scan`.
        """
        from ..store.scan import session_chunk_keep

        with self._lock, span("serve.manager.store_scan") as scan_span:
            self.flush(raise_errors=False)
            sessions = {sid: self.session(sid) for sid in session_ids}
            groups = {}
            for sid, session in sessions.items():
                self._require_subspaces(sid, session)
                for subspace, subsession in session._subsessions.items():
                    if subsession.adapted is None:
                        raise RuntimeError(
                            "labels not yet submitted for subspace {}"
                            .format(subspace))
                    groups.setdefault(subspace, {})[sid] = subsession
            uid = getattr(store, "uid", None)
            n_chunks = store.n_chunks
            results = {sid: np.zeros(store.n_rows, dtype=np.int64)
                       for sid in sessions}
            model_versions, start_chunk = {}, {}
            served_from_mark = 0
            for sid, session in sessions.items():
                models = tuple(ss.model_version
                               for ss in session._subsessions.values())
                model_versions[sid] = models
                mark = self._store_marks.get((sid, uid)) \
                    if uid is not None else None
                valid = (
                    mark is not None and mark["models"] == models
                    and store.store_version >= mark["version"]
                    and n_chunks >= mark["closed"]
                    and (mark["closed"] == 0
                         or store.zone_maps.digests[mark["closed"] - 1]
                         == mark["tail_digest"]))
                if valid and store.store_version == mark["version"] \
                        and store.n_rows == mark["n_rows"]:
                    results[sid] = mark["result"].astype(np.int64)
                    start_chunk[sid] = n_chunks
                    served_from_mark += 1
                elif valid:
                    start_chunk[sid] = mark["closed"]
                    results[sid][:mark["closed_rows"]] = \
                        mark["result"][:mark["closed_rows"]]
                else:
                    start_chunk[sid] = 0
            session_keep = {
                sid: session_chunk_keep(store, session._subsessions)
                for sid, session in sessions.items()}
            evals = {sid: 0 for sid in sessions}
            for ci in range(n_chunks):
                live = [sid for sid in sessions
                        if ci >= start_chunk[sid] and session_keep[sid][ci]]
                if not live:
                    continue
                block = store.chunk(ci)
                start = int(store.offsets[ci])
                digest = store.chunk_digest(ci)
                out = {sid: np.ones(len(block), dtype=np.int64)
                       for sid in live}
                for subspace, per_session in groups.items():
                    active = {sid: ss for sid, ss in per_session.items()
                              if sid in out}
                    if not active:
                        continue
                    projected = np.ascontiguousarray(
                        block[:, list(subspace.columns)])
                    for sid, predictions in self._predict_group(
                            subspace, projected, active,
                            digest=digest).items():
                        out[sid] &= predictions
                for sid, predictions in out.items():
                    results[sid][start:start + len(block)] = predictions
                    evals[sid] += 1
            self.last_store_scan = {
                "sessions": len(sessions),
                "chunks": int(n_chunks),
                "chunk_evals": int(sum(evals.values())),
                "chunk_evals_possible": int(len(sessions) * n_chunks),
                "watermark_skipped": int(sum(start_chunk.values())),
                "pruned_skipped": int(sum(
                    n_chunks - start_chunk[sid] - evals[sid]
                    for sid in sessions)),
                "sessions_served_from_mark": int(served_from_mark),
            }
            scan = self.last_store_scan
            scan_span.annotate(chunk_evals=scan["chunk_evals"],
                               watermark_skipped=scan["watermark_skipped"],
                               pruned_skipped=scan["pruned_skipped"])
            self.metrics.counter(
                "serve.manager.store_scan.chunk_evals") \
                .inc(scan["chunk_evals"])
            self.metrics.counter(
                "serve.manager.store_scan.watermark_skipped") \
                .inc(scan["watermark_skipped"])
            self.metrics.counter(
                "serve.manager.store_scan.pruned_skipped") \
                .inc(scan["pruned_skipped"])
            if uid is not None:
                closed = store.closed_chunks
                closed_rows = int(store.offsets[closed])
                tail_digest = store.zone_maps.digests[closed - 1] \
                    if closed else None
                for sid in sessions:
                    self._store_marks[(sid, uid)] = {
                        "version": int(store.store_version),
                        "n_rows": int(store.n_rows),
                        "closed": int(closed),
                        "closed_rows": closed_rows,
                        "tail_digest": tail_digest,
                        "models": model_versions[sid],
                        "result": results[sid].astype(np.int8),
                    }
            return results

    def predict_store(self, session_id, store):
        """Chunk-pruned, per-chunk-cached UIR membership over a store."""
        return self.predict_many_store([session_id], store)[session_id]

    def predict(self, session_id, rows):
        """Cached 0/1 UIR membership for full-space rows (conjunctive)."""
        return self.predict_many([session_id], rows)[session_id]

    def retrieve(self, session_id, rows=None, limit=None):
        """Rows predicted interesting for the session (cached)."""
        if rows is None:
            rows = self.lte.table if hasattr(self.lte.table, "iter_chunks") \
                else self.lte.table.data
        if hasattr(rows, "iter_chunks"):
            indices = np.flatnonzero(
                self.predict_store(session_id, rows) == 1)
            if limit is not None:
                indices = indices[:int(limit)]
            return rows.take(indices)
        rows = np.atleast_2d(np.asarray(rows, dtype=np.float64))
        mask = self.predict(session_id, rows) == 1
        result = rows[mask]
        if limit is not None:
            result = result[:int(limit)]
        return result

    # ------------------------------------------------------------------
    # Checkpointing: snapshot / restore
    # ------------------------------------------------------------------
    def snapshot(self):
        """Checkpointable state of the whole serving engine.

        Captures every session's online state (adapted models, few-shot
        regions, model versions), the *pending* submit queue exactly as
        it stands (nothing is flushed — a snapshot is a point-in-time
        copy, not a barrier), the versioned prediction cache with its
        hit/miss counters, and the serving counters.  Hull objects shared
        across sessions are interned once through a
        :class:`~repro.core.optimizer.HullRegistry`, so the sharing that
        makes :meth:`FewShotOptimizer.refine_batch` cheap survives the
        round trip.

        The shared pretrained LTE system is *not* included: it is the
        long-lived artifact the manager serves, persisted separately
        (see :func:`repro.persist.save_pretrained`).  Restore with
        :meth:`restore` against an equivalent LTE; a restored manager
        serves bit-identical predictions without re-adaptation.  Every
        array is deep-copied, so later mutation of the live manager
        cannot leak into the snapshot.
        """
        with self._lock:
            registry = HullRegistry()
            sessions = [
                {"id": sid, "state": session.state_dict(registry)}
                for sid, session in self._sessions.items()
            ]
            queue = [
                {"session_id": p.session_id,
                 "subspace": list(p.subspace.names),
                 "labels": np.asarray(p.labels).copy(),
                 "tuples": None if p.tuples is None
                 else np.asarray(p.tuples).copy()}
                for p in self._queue
            ]
            return {
                "next_id": int(self._next_id),
                "adapt_batches": int(self.adapt_batches),
                "adapted_total": int(self.adapted_total),
                # Full metrics state (counters + histogram buckets), so a
                # restored manager's telemetry continues where it left
                # off.  Snapshot entries are plain string-keyed dicts of
                # ints/floats/None — exactly what the persist codec
                # accepts.
                "metrics": self.metrics.snapshot(),
                "sessions": sessions,
                "queue": queue,
                "session_errors": [
                    {"session_id": int(sid),
                     "errors": [dict(e) for e in entries]}
                    for sid, entries in self._session_errors.items()
                ],
                "cache": self.cache.state_dict(),
                "hulls": registry.state(),
                "store_marks": [
                    {"session_id": int(sid), "uid": str(uid),
                     "version": int(mark["version"]),
                     "n_rows": int(mark["n_rows"]),
                     "closed": int(mark["closed"]),
                     "closed_rows": int(mark["closed_rows"]),
                     "tail_digest": mark["tail_digest"],
                     "models": [int(v) for v in mark["models"]],
                     "result": mark["result"].copy()}
                    for (sid, uid), mark in self._store_marks.items()
                ],
            }

    @classmethod
    def restore(cls, lte, snapshot):
        """Rebuild a serving engine from :meth:`snapshot` output.

        ``lte`` must be the same pretrained system the snapshot was taken
        over (or a bit-identical restore of it — e.g. via
        :func:`repro.persist.load_pretrained`); sessions, the pending
        queue, model versions and the prediction cache come back exactly,
        including session ids and cache hit counters, so serving
        continues as if the process had never died.
        """
        manager = cls(lte, cache_entries=snapshot["cache"]["capacity"])
        # Older snapshots predate the metrics key; they restore with
        # fresh telemetry.  load_state_dict / the explicit counter
        # assignments below re-assert the persisted scalar counters on
        # top, keeping both paths consistent.
        manager.metrics.load(snapshot.get("metrics") or {})
        hulls = HullRegistry.restore(snapshot["hulls"]).hulls
        for entry in snapshot["sessions"]:
            manager._sessions[int(entry["id"])] = \
                ExplorationSession.from_state_dict(lte, entry["state"],
                                                   hulls=hulls)
        manager._sessions_live.set(len(manager._sessions))
        manager._next_id = int(snapshot["next_id"])
        manager.adapt_batches = int(snapshot["adapt_batches"])
        manager.adapted_total = int(snapshot["adapted_total"])
        lookups = {}
        for item in snapshot["queue"]:
            session_id = int(item["session_id"])
            if session_id not in manager._sessions:
                raise KeyError(
                    "queued work references unknown session id {}"
                    .format(session_id))
            by_key = lookups.get(session_id)
            if by_key is None:
                by_key = lookups[session_id] = {
                    s.key: s
                    for s in manager._sessions[session_id]._subsessions}
            key = tuple(sorted(item["subspace"]))
            if key not in by_key:
                raise KeyError(
                    "queued work references subspace {} absent from its "
                    "session".format(tuple(item["subspace"])))
            tuples = None if item["tuples"] is None \
                else np.asarray(item["tuples"], dtype=np.float64)
            labels = np.asarray(item["labels"]).astype(np.int64)
            manager._queue.append(
                _Pending(session_id, by_key[key], labels, tuples))
        manager._queue_depth.set(len(manager._queue))
        for entry in snapshot.get("session_errors", []):
            manager._session_errors[int(entry["session_id"])] = [
                {"subspace": list(e["subspace"]), "error": str(e["error"])}
                for e in entry["errors"]]
        manager.cache.load_state_dict(snapshot["cache"])
        # Store-scan watermarks (absent in pre-watermark snapshots):
        # validity is re-checked against the live store on first use, so
        # restoring against a since-mutated store degrades to a rescan.
        for entry in snapshot.get("store_marks", []):
            session_id = int(entry["session_id"])
            if session_id not in manager._sessions:
                continue
            manager._store_marks[(session_id, str(entry["uid"]))] = {
                "version": int(entry["version"]),
                "n_rows": int(entry["n_rows"]),
                "closed": int(entry["closed"]),
                "closed_rows": int(entry["closed_rows"]),
                "tail_digest": entry["tail_digest"],
                "models": tuple(int(v) for v in entry["models"]),
                "result": np.asarray(entry["result"]).astype(np.int8),
            }
        return manager

    # ------------------------------------------------------------------
    @property
    def stats(self):
        """Serving counters: sessions, queue depth, batches, cache.

        Compatibility shim over the ``repro.obs`` registry — the same
        numbers (plus latency histograms) are in
        ``self.metrics.snapshot()`` under ``serve.manager.*``.
        """
        with self._lock:
            return {
                "sessions": self.n_sessions,
                "queued": len(self._queue),
                "adapt_batches": self.adapt_batches,
                "adapted_total": self.adapted_total,
                "session_errors": sum(len(v) for v in
                                      self._session_errors.values()),
                "cache": self.cache.stats,
            }

    @property
    def region_pack_stats(self):
        """Compiled-geometry pack cache counters (process-local: packs
        are keyed by hull identity, so they are rebuilt — cheaply, from
        the hulls' precompiled facet rows — rather than checkpointed)."""
        with self._lock:
            return self._region_packs.stats
