"""Vectorized multi-task adaptation: the serving hot path.

Online adaptation of one (session, subspace) pair is a few-shot
fine-tuning loop over a tiny :class:`~repro.core.meta_learner.UISClassifier`
— individually far too small to saturate anything, and dominated by
Python/autograd overhead.  This module stacks K such tasks into fused
tensors: a :class:`BatchedUISClassifier` holds (K, ...) parameter stacks
(via :class:`~repro.nn.BatchedLinear`), the loss reduces per task along
the last axis, and one Adam instance updates all K tasks at once.  Because
the tasks are independent, the stacked computation is block-diagonal:
every task receives exactly the gradients and updates the sequential path
would give it, which the parity suite (``tests/serve``) verifies for all
three variants.

Entry point: :func:`run_adapt_requests` — takes
:class:`~repro.core.framework.AdaptRequest` objects (any mix of variants,
sessions and subspaces), buckets them by shape, trains each bucket fused,
and returns per-request ``(AdaptedClassifier, FewShotOptimizer | None)``
exactly like the sequential
:func:`~repro.core.framework.run_adapt_request`.
"""

from __future__ import annotations

import numpy as np

from .. import nn
from ..nn.functional import (batched_binary_cross_entropy_with_logits,
                             batched_pos_weight)
from ..nn.tensor import Parameter, Tensor
from ..core.framework import run_adapt_request
from ..core.meta_learner import UISClassifier
from ..core.meta_training import AdaptedClassifier
from ..core.optimizer import FewShotOptimizer

__all__ = ["BatchedUISClassifier", "run_adapt_requests",
           "predict_adapted_batch"]


class BatchedUISClassifier(nn.Module):
    """K structurally identical UIS classifiers fused into stacked blocks.

    Mirrors :meth:`UISClassifier.forward` over a leading batch axis:
    features (K, ku) and tuples (K, n, width) map to logits (K, n).
    Built from per-task model instances (whose parameters seed the
    stacks) and unstacked back into them after training.
    """

    def __init__(self, models):
        super().__init__()
        first = models[0]
        for model in models:
            if model.config != first.config:
                raise ValueError("cannot batch UISClassifiers of mixed "
                                 "configuration")
        self.k = len(models)
        self.ku = first.ku
        self.embed_size = first.embed_size
        self.use_conversion = first.use_conversion
        self.uis_block = nn.batch_modules([m.uis_block for m in models])
        self.tuple_block = nn.batch_modules([m.tuple_block for m in models])
        self.clf_block = nn.batch_modules([m.clf_block for m in models])

    def unstack_into(self, models):
        """Copy the adapted per-slice parameters back into K models."""
        nn.unstack_modules(self.uis_block, [m.uis_block for m in models])
        nn.unstack_modules(self.tuple_block, [m.tuple_block for m in models])
        nn.unstack_modules(self.clf_block, [m.clf_block for m in models])

    def forward(self, feature_vectors, tuple_vectors, conversion=None):
        """Stacked interestingness logits.

        Parameters
        ----------
        feature_vectors:
            (K, ku) UIS feature vectors, one per task.
        tuple_vectors:
            (K, n, input_width) preprocessed tuple batches.
        conversion:
            Optional (K, Ne, 3Ne) stacked conversion matrices.

        Returns
        -------
        Tensor of shape (K, n) with raw logits.
        """
        if self.use_conversion and conversion is None:
            raise ValueError("use_conversion=True requires conversion")
        if not self.use_conversion and conversion is not None:
            raise ValueError("conversion given but use_conversion=False")
        v_r = Tensor._wrap(feature_vectors)
        x = Tensor._wrap(tuple_vectors)
        n = x.shape[1]

        emb_r = self.uis_block(v_r.reshape(self.k, 1, self.ku))  # (K, 1, Ne)
        emb_x = self.tuple_block(x)                              # (K, n, Ne)
        # Differentiable broadcast of each task's emb_R to its n rows —
        # same tiler trick as the sequential forward, batched by numpy's
        # matmul broadcasting: (n, 1) @ (K, 1, Ne) -> (K, n, Ne).
        tiler = Tensor(np.ones((n, 1)))
        emb_r_rows = tiler @ emb_r
        interaction = emb_r_rows * emb_x
        combined = Tensor.concat([emb_r_rows, emb_x, interaction],
                                 axis=-1)                        # (K, n, 3Ne)
        if conversion is not None:
            conversion = Tensor._wrap(conversion)
            combined = combined @ conversion.swapaxes(-1, -2)    # (K, n, Ne)
        logits = self.clf_block(combined)                        # (K, n, 1)
        return logits.reshape(self.k, n)


def _prepare_local_models(requests):
    """Per-task initial models + conversion matrices for one bucket.

    Replays exactly the task-wise initialization of the sequential paths:
    Basic builds a fresh seed-``config.seed`` classifier; Meta/Meta* clone
    the subspace's meta-learned phi and apply the memory retrievals
    (attention -> theta_R shift, conversion matrix).
    """
    models, conversions = [], []
    for request in requests:
        cfg = request.config
        state = request.state
        if request.variant == "basic":
            model = UISClassifier(
                ku=state.summary.ku, input_width=state.preprocessor.width,
                embed_size=cfg.embed_size, hidden_size=cfg.hidden_size,
                use_conversion=False, seed=cfg.seed)
            conversions.append(None)
        else:
            trainer = state.trainer
            model = trainer.model.clone(seed=trainer.seed)
            if trainer.use_memories:
                attention = trainer.memories.attention(request.feature)
                omega = trainer.memories.omega_r(attention)
                model.set_theta_r_flat(
                    model.get_theta_r_flat() - trainer.params.sigma * omega)
                conversions.append(trainer.memories.conversion(attention))
            else:
                conversions.append(None)
        models.append(model)
    return models, conversions


def _adapt_bucket(requests):
    """Fused adaptation of shape-compatible requests (one per task)."""
    first = requests[0]
    models, conversions = _prepare_local_models(requests)
    batched = BatchedUISClassifier(models)
    conversion = None
    if first.use_conversion:
        conversion = Parameter(np.stack(conversions))

    features = np.stack([r.feature for r in requests])        # (K, ku)
    xs = np.stack([r.encoded for r in requests])              # (K, n, w)
    ys = np.stack([r.targets for r in requests])              # (K, n)
    pos_weight = batched_pos_weight(ys) if first.balance_classes else None

    trainable = list(batched.parameters())
    if conversion is not None:
        trainable.append(conversion)
    if first.optimizer_kind == "adam":
        optimizer = nn.Adam(trainable, lr=first.lr)
    else:
        optimizer = nn.SGD(trainable, lr=first.lr)

    # Step-count parity: the sequential basic trainer runs exactly
    # ``basic_steps`` iterations, while ``MetaTrainer.adapt`` floors its
    # local steps at 1.
    steps = first.steps if first.variant == "basic" else max(1, first.steps)
    for _ in range(steps):
        optimizer.zero_grad()
        logits = batched.forward(features, xs, conversion=conversion)
        # Sum of per-task mean losses: block-diagonal, so each task's
        # parameters see exactly their own sequential gradient.
        loss = batched_binary_cross_entropy_with_logits(
            logits, ys, pos_weight=pos_weight).sum()
        loss.backward()
        optimizer.step()

    batched.unstack_into(models)
    results = []
    for i, request in enumerate(requests):
        conv = Parameter(conversion.data[i].copy()) \
            if conversion is not None else None
        results.append(AdaptedClassifier(models[i], request.feature, conv))
    return results


def predict_adapted_batch(adapted_classifiers, tuple_vectors, threshold=0.5):
    """Batched 0/1 predictions of K adapted classifiers on shared rows.

    Serving sessions repeatedly score the *same* rows (a shared
    evaluation sample, the full table) under *different* per-session
    models; stacking the models turns K small forwards into one.  The
    input batch is broadcast (stride-0) across the task axis, so no row
    data is copied.  Slice k equals ``adapted_classifiers[k].predict``.

    Parameters
    ----------
    adapted_classifiers:
        K :class:`~repro.core.meta_training.AdaptedClassifier` with
        structurally identical models.
    tuple_vectors:
        (n, input_width) preprocessed rows, shared by every task.

    Returns
    -------
    (K, n) int array of 0/1 predictions.
    """
    models = [a.model for a in adapted_classifiers]
    batched = BatchedUISClassifier(models)
    features = np.stack([a.feature_vector for a in adapted_classifiers])
    conversion = None
    if batched.use_conversion:
        conversion = np.stack([a.conversion.data
                               for a in adapted_classifiers])
    tuple_vectors = np.asarray(tuple_vectors, dtype=np.float64)
    xs = np.broadcast_to(tuple_vectors,
                         (batched.k,) + tuple_vectors.shape)
    with nn.no_grad():
        logits = batched.forward(features, xs, conversion=conversion)
    proba = logits.sigmoid().numpy()
    return (proba >= threshold).astype(np.int64)


def run_adapt_requests(requests):
    """Batched drop-in for running many sequential ``run_adapt_request``s.

    Requests are grouped into shape-compatible buckets (same variant,
    label count, representation width, hyper-parameters — sessions and
    subspaces may differ freely inside a bucket) and each bucket trains
    as one fused autograd graph.  Few-shot optimizers for ``meta_star``
    requests are then batch-built with shared proximity sorts.

    Returns ``[(AdaptedClassifier, FewShotOptimizer | None), ...]`` in
    input order, element-for-element equivalent to
    ``[run_adapt_request(r) for r in requests]``.
    """
    requests = list(requests)
    adapted = [None] * len(requests)
    buckets = {}
    for i, request in enumerate(requests):
        buckets.setdefault(request.shape_key(), []).append(i)
    for indices in buckets.values():
        group = [requests[i] for i in indices]
        if len(group) == 1:
            # A lone request gains nothing from stacking; run it on the
            # sequential executor (identical math either way).
            result, optimizer = run_adapt_request(group[0])
            adapted[indices[0]] = (result, optimizer)
            continue
        for i, result in zip(indices, _adapt_bucket(group)):
            adapted[i] = (result, None)

    # Batch-build the geometric optimizers for meta_star requests that
    # went through the fused path.
    pending = [i for i, request in enumerate(requests)
               if request.builds_optimizer and adapted[i][1] is None]
    if pending:
        fitted = FewShotOptimizer.fit_batch(
            [(requests[i].state.summary, requests[i].center_bits,
              requests[i].config.n_sup_ratio, requests[i].config.n_sub_ratio)
             for i in pending])
        for i, optimizer in zip(pending, fitted):
            adapted[i] = (adapted[i][0], optimizer)
    return adapted
