"""Vectorized multi-task adaptation: the serving hot path.

Online adaptation of one (session, subspace) pair is a few-shot
fine-tuning loop over a tiny :class:`~repro.core.meta_learner.UISClassifier`
— individually far too small to saturate anything, and dominated by
Python/autograd overhead.  The stacking substrate lives in
:mod:`repro.nn.batching` (shared with the offline meta-training engine,
:mod:`repro.train`): a :class:`~repro.nn.BatchedUISClassifier` holds
(K, ...) parameter stacks, the loss reduces per task along the last
axis, and one Adam instance updates all K tasks at once.  Because the
tasks are independent, the stacked computation is block-diagonal: every
task receives exactly the gradients and updates the sequential path
would give it, which the parity suite (``tests/serve``) verifies for all
three variants.

This module keeps only the *serving-specific* layer: turning
:class:`~repro.core.framework.AdaptRequest` objects (any mix of
variants, sessions and subspaces) into shape buckets, replaying the
task-wise initialization (memory retrievals), and rebuilding per-request
``(AdaptedClassifier, FewShotOptimizer | None)`` results exactly like
the sequential :func:`~repro.core.framework.run_adapt_request`.
"""

from __future__ import annotations

import numpy as np

from .. import nn
from ..nn.batching import BatchedUISClassifier, fused_local_adapt
from ..nn.tensor import Parameter
from ..core.framework import run_adapt_request
from ..core.meta_learner import UISClassifier
from ..core.meta_training import AdaptedClassifier
from ..core.optimizer import FewShotOptimizer

__all__ = ["BatchedUISClassifier", "run_adapt_requests",
           "predict_adapted_batch"]


def _prepare_local_models(requests):
    """Per-task initial models + conversion matrices for one bucket.

    Replays exactly the task-wise initialization of the sequential paths:
    Basic builds a fresh seed-``config.seed`` classifier; Meta/Meta* clone
    the subspace's meta-learned phi and apply the memory retrievals
    (attention -> theta_R shift, conversion matrix).
    """
    models, conversions = [], []
    for request in requests:
        cfg = request.config
        state = request.state
        if request.variant == "basic":
            model = UISClassifier(
                ku=state.summary.ku, input_width=state.preprocessor.width,
                embed_size=cfg.embed_size, hidden_size=cfg.hidden_size,
                use_conversion=False, seed=cfg.seed)
            conversions.append(None)
        else:
            trainer = state.trainer
            model = trainer.model.clone(seed=trainer.seed)
            if trainer.use_memories:
                attention = trainer.memories.attention(request.feature)
                omega = trainer.memories.omega_r(attention)
                model.set_theta_r_flat(
                    model.get_theta_r_flat() - trainer.params.sigma * omega)
                conversions.append(trainer.memories.conversion(attention))
            else:
                conversions.append(None)
        models.append(model)
    return models, conversions


def _adapt_bucket(requests):
    """Fused adaptation of shape-compatible requests (one per task).

    Rides :func:`fused_local_adapt` and therefore the active
    :mod:`repro.nn.compile` backend — under ``fused``, a recurring
    bucket shape replays one compiled plan with zero graph construction
    (bit-identical results either way).
    """
    first = requests[0]
    models, conversions = _prepare_local_models(requests)

    features = np.stack([r.feature for r in requests])        # (K, ku)
    xs = np.stack([r.encoded for r in requests])              # (K, n, w)
    ys = np.stack([r.targets for r in requests])              # (K, n)

    # Step-count parity: the sequential basic trainer runs exactly
    # ``basic_steps`` iterations, while ``MetaTrainer.adapt`` floors its
    # local steps at 1.
    steps = first.steps if first.variant == "basic" else max(1, first.steps)
    batched, conversion = fused_local_adapt(
        models, features, xs, ys, conversions=conversions, steps=steps,
        lr=first.lr, optimizer_kind=first.optimizer_kind,
        balance_classes=first.balance_classes)

    batched.unstack_into(models)
    results = []
    for i, request in enumerate(requests):
        conv = Parameter(conversion.data[i].copy()) \
            if conversion is not None else None
        results.append(AdaptedClassifier(models[i], request.feature, conv))
    return results


def predict_adapted_batch(adapted_classifiers, tuple_vectors, threshold=0.5):
    """Batched 0/1 predictions of K adapted classifiers on shared rows.

    Serving sessions repeatedly score the *same* rows (a shared
    evaluation sample, the full table) under *different* per-session
    models; stacking the models turns K small forwards into one.  The
    input batch is broadcast (stride-0) across the task axis, so no row
    data is copied.  Slice k equals ``adapted_classifiers[k].predict``.

    Parameters
    ----------
    adapted_classifiers:
        K :class:`~repro.core.meta_training.AdaptedClassifier` with
        structurally identical models.
    tuple_vectors:
        (n, input_width) preprocessed rows, shared by every task.

    Returns
    -------
    (K, n) int array of 0/1 predictions.
    """
    models = [a.model for a in adapted_classifiers]
    batched = BatchedUISClassifier(models)
    features = np.stack([a.feature_vector for a in adapted_classifiers])
    conversion = None
    if batched.use_conversion:
        conversion = np.stack([a.conversion.data
                               for a in adapted_classifiers])
    tuple_vectors = np.asarray(tuple_vectors, dtype=np.float64)
    xs = np.broadcast_to(tuple_vectors,
                         (batched.k,) + tuple_vectors.shape)
    # Deliberately NOT routed through the compiled backend: xs is a
    # stride-0 broadcast of one shared row block, which the eager path
    # feeds to the gemm zero-copy; a compiled plan's input copy-in
    # would materialize it K times over.
    with nn.no_grad():
        logits = batched.forward(features, xs, conversion=conversion)
    proba = logits.sigmoid().numpy()
    return (proba >= threshold).astype(np.int64)


def run_adapt_requests(requests):
    """Batched drop-in for running many sequential ``run_adapt_request``s.

    Requests are grouped into shape-compatible buckets (same variant,
    label count, representation width, hyper-parameters — sessions and
    subspaces may differ freely inside a bucket) and each bucket trains
    as one fused autograd graph.  Few-shot optimizers for ``meta_star``
    requests are then batch-built with shared proximity sorts.

    Returns ``[(AdaptedClassifier, FewShotOptimizer | None), ...]`` in
    input order, element-for-element equivalent to
    ``[run_adapt_request(r) for r in requests]``.
    """
    requests = list(requests)
    adapted = [None] * len(requests)
    buckets = {}
    for i, request in enumerate(requests):
        buckets.setdefault(request.shape_key(), []).append(i)
    for indices in buckets.values():
        group = [requests[i] for i in indices]
        if len(group) == 1:
            # A lone request gains nothing from stacking; run it on the
            # sequential executor (identical math either way).
            result, optimizer = run_adapt_request(group[0])
            adapted[indices[0]] = (result, optimizer)
            continue
        for i, result in zip(indices, _adapt_bucket(group)):
            adapted[i] = (result, None)

    # Batch-build the geometric optimizers for meta_star requests that
    # went through the fused path.
    pending = [i for i, request in enumerate(requests)
               if request.builds_optimizer and adapted[i][1] is None]
    if pending:
        fitted = FewShotOptimizer.fit_batch(
            [(requests[i].state.summary, requests[i].center_bits,
              requests[i].config.n_sup_ratio, requests[i].config.n_sub_ratio)
             for i in pending])
        for i, optimizer in zip(pending, fitted):
            adapted[i] = (adapted[i][0], optimizer)
    return adapted
