"""repro.serve — batched multi-session serving for Learn-to-Explore.

The online phase of LTE is the product: a user labels a handful of tuples
per subspace and the pretrained meta-learner adapts in sub-second time.
This package serves that loop for *many users at once* over one shared
:class:`~repro.core.framework.LTE`: label submissions from all sessions
queue up, one fused tensor program adapts every pending (session,
subspace) task in stacked batches, and predictions are memoized in a
versioned cache.  Batched sessions are bit-compatible with sequentially
driven ones — the parity suite in ``tests/serve`` holds for all three
variants (``basic``, ``meta``, ``meta_star``).

Quickstart (mirrors ``examples/concurrent_sessions.py``)::

    from repro.core import LTE, LTEConfig
    from repro.data import make_sdss
    from repro.serve import SessionManager

    table = make_sdss(n_rows=10_000, seed=7)
    lte = LTE(LTEConfig(n_tasks=40)).fit_offline(table)

    manager = SessionManager(lte)
    sids = [manager.open_session(variant="meta_star") for _ in users]
    for sid, user in zip(sids, users):
        for subspace, tuples in manager.initial_tuples(sid).items():
            manager.submit_labels(sid, subspace, user.label(tuples))

    manager.flush()          # ONE fused adaptation for every session
    for sid in sids:
        interesting = manager.retrieve(sid, limit=100)

Modules
-------
``manager``
    :class:`SessionManager` — session lifecycle, the submit/poll/flush
    queue, and cached prediction.
``batched``
    :func:`run_adapt_requests` — the vectorized adaptation hot path,
    built on the task-stacking substrate in :mod:`repro.nn.batching`
    (shared with the offline meta-training engine :mod:`repro.train`);
    re-exports :class:`~repro.nn.BatchedUISClassifier`.
``cache``
    :class:`PredictionCache` — (session, subspace, model-version)-keyed
    LRU memoization of prediction vectors (frozen copies: a cached
    prediction can never be poisoned through a returned reference).

The engine survives restarts: :meth:`SessionManager.snapshot` /
:meth:`SessionManager.restore` capture sessions, the pending queue and
the prediction cache, and :mod:`repro.persist` writes them to disk — a
restored manager serves bit-identically (``tests/persist``).
"""

from .batched import BatchedUISClassifier, run_adapt_requests
from .cache import PredictionCache, rows_digest
from .manager import SessionManager

__all__ = ["SessionManager", "BatchedUISClassifier", "run_adapt_requests",
           "PredictionCache", "rows_digest"]
