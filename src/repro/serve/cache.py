"""Versioned prediction cache for the serving layer.

Sessions repeatedly predict over the same rows (full-table retrievals,
fixed evaluation samples, dashboard refreshes).  Predictions only change
when a session's model for a subspace changes, so the cache key is
``(session, subspace, model-version, rows-digest)``: a new label
submission bumps the model version and every stale entry simply stops
being reachable, then ages out of the underlying
:class:`~repro.core.memory.LRUStore`.
"""

from __future__ import annotations

import hashlib

import numpy as np

from ..core.memory import LRUStore

__all__ = ["PredictionCache", "rows_digest"]


def rows_digest(rows):
    """Stable 128-bit content digest of a prediction input matrix."""
    rows = np.ascontiguousarray(np.asarray(rows, dtype=np.float64))
    h = hashlib.blake2b(rows.tobytes(), digest_size=16)
    h.update(str(rows.shape).encode())
    return h.hexdigest()


class PredictionCache:
    """LRU cache of per-subspace prediction vectors, versioned per model.

    Thread-compatible value semantics: stored arrays are returned as-is,
    so callers must not mutate them (the manager copies on the way out of
    its public API where mutation is plausible).
    """

    def __init__(self, capacity=1024):
        self._store = LRUStore(capacity)
        self.hits = 0
        self.misses = 0

    @staticmethod
    def key(session_id, subspace, model_version, digest):
        """Cache key from a precomputed :func:`rows_digest`.

        Takes the digest rather than the rows so callers scoring the
        same rows for many sessions hash them once, not per session.
        """
        return (session_id, tuple(subspace.names), int(model_version),
                digest)

    def get(self, key):
        value = self._store.get(key)
        if value is None:
            self.misses += 1
        else:
            self.hits += 1
        return value

    def put(self, key, value):
        self._store.put(key, value)

    def invalidate_session(self, session_id):
        """Drop every entry belonging to one session (e.g. on close)."""
        return self._store.evict(lambda key: key[0] == session_id)

    def __len__(self):
        return len(self._store)

    @property
    def stats(self):
        return {"entries": len(self._store), "hits": self.hits,
                "misses": self.misses}
