"""Versioned prediction cache for the serving layer.

Sessions repeatedly predict over the same rows (full-table retrievals,
fixed evaluation samples, dashboard refreshes).  Predictions only change
when a session's model for a subspace changes, so the cache key is
``(session, subspace, model-version, rows-digest)``: a new label
submission bumps the model version and every stale entry simply stops
being reachable, then ages out of the underlying
:class:`~repro.core.memory.LRUStore`.
"""

from __future__ import annotations

import hashlib

import numpy as np

from ..core.memory import LRUStore
from ..obs import MetricsRegistry

__all__ = ["PredictionCache", "rows_digest"]


def rows_digest(rows):
    """Stable 128-bit content digest of a prediction input matrix."""
    rows = np.ascontiguousarray(np.asarray(rows, dtype=np.float64))
    h = hashlib.blake2b(rows.tobytes(), digest_size=16)
    h.update(str(rows.shape).encode())
    return h.hexdigest()


class PredictionCache:
    """LRU cache of per-subspace prediction vectors, versioned per model.

    Value semantics: :meth:`put` stores a private *read-only* copy of the
    array and :meth:`get` returns that frozen copy directly.  Callers may
    hold and read cached vectors indefinitely but cannot mutate them —
    an in-place write raises instead of silently poisoning every later
    cache hit (the manager still copies on the way out of public APIs
    where callers legitimately expect a writable array).

    Hit/miss counts live in a per-instance ``repro.obs`` registry under
    ``serve.cache.prediction.*``; the ``stats`` property and the
    ``hits`` / ``misses`` attributes read through to it.
    """

    def __init__(self, capacity=1024, metrics=None):
        self._store = LRUStore(capacity)
        self.metrics = MetricsRegistry() if metrics is None else metrics
        self._hits = self.metrics.counter("serve.cache.prediction.hits")
        self._misses = self.metrics.counter("serve.cache.prediction.misses")
        self._entries = self.metrics.gauge("serve.cache.prediction.entries")

    @property
    def capacity(self):
        return self._store.capacity

    @property
    def hits(self):
        return self._hits.value

    @hits.setter
    def hits(self, value):
        self._hits.set(value)

    @property
    def misses(self):
        return self._misses.value

    @misses.setter
    def misses(self, value):
        self._misses.set(value)

    @staticmethod
    def key(session_id, subspace, model_version, digest):
        """Cache key from a precomputed :func:`rows_digest`.

        Takes the digest rather than the rows so callers scoring the
        same rows for many sessions hash them once, not per session.
        """
        return (session_id, tuple(subspace.names), int(model_version),
                digest)

    def get(self, key):
        value = self._store.get(key)
        if value is None:
            self._misses.inc()
        else:
            self._hits.inc()
        return value

    def put(self, key, value):
        frozen = np.array(value, copy=True)
        frozen.flags.writeable = False
        self._store.put(key, frozen)
        self._entries.set(len(self._store))

    def invalidate_session(self, session_id):
        """Drop every entry belonging to one session (e.g. on close)."""
        dropped = self._store.evict(lambda key: key[0] == session_id)
        self._entries.set(len(self._store))
        return dropped

    def __len__(self):
        return len(self._store)

    @property
    def stats(self):
        return {"entries": len(self._store), "hits": self.hits,
                "misses": self.misses}

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    def state_dict(self):
        """Checkpointable state: counters + entries in LRU order.

        Entries are captured least- to most-recently used, so replaying
        them through :meth:`load_state_dict` reproduces the eviction
        order exactly; values are deep-copied on restore, so a restored
        cache never aliases the snapshot.
        """
        return {
            "capacity": int(self.capacity),
            "hits": int(self.hits),
            "misses": int(self.misses),
            "entries": [
                {"session": key[0], "subspace": list(key[1]),
                 "version": int(key[2]), "digest": key[3],
                 "value": np.asarray(value).copy()}
                for key, value in self._store.items()
            ],
        }

    def load_state_dict(self, state):
        """Restore :meth:`state_dict` output into this cache in place."""
        self._store = LRUStore(int(state["capacity"]))
        self.hits = int(state["hits"])
        self.misses = int(state["misses"])
        for entry in state["entries"]:
            key = (entry["session"], tuple(entry["subspace"]),
                   int(entry["version"]), entry["digest"])
            self.put(key, entry["value"])
