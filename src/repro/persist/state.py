"""Save/load wrappers binding checkpoints to the stateful layers.

Five artifact kinds cover the system's stateful layers:

======================  ==============================================
kind                    contents
======================  ==============================================
``lte-pretrained``      per-subspace meta-learners (phi + memories) of
                        a fitted :class:`~repro.core.LTE` — the
                        shippable pretrained artifact
``meta-trainer``        one subspace's meta-learner on its own
``pretrain-run``        an *in-flight* offline meta-training run:
                        per-subspace trainer weights, memories, RNG
                        state, pretrain-optimizer moments and epoch
                        cursors (also surfaced in the manifest meta),
                        written after every epoch so a killed
                        ``fit_offline(checkpoint=...)`` resumes to the
                        identical phi
``exploration-session`` the online state of one (resumable) session
``session-manager``     a full :class:`~repro.serve.SessionManager`
                        snapshot: sessions, pending queue, prediction
                        cache, counters
======================  ==============================================

The offline *derived* artifacts (scalers, preprocessors, cluster
summaries) are deterministic functions of the table and the config seed,
so ``lte-pretrained`` stores only the expensive learned state: restore by
re-running ``fit_offline(..., train=False)`` (cheap) and then
:func:`load_pretrained` (instant), as ``benchmarks/
bench_serving_throughput.py`` does for its warm starts.
"""

from __future__ import annotations

import hashlib

import numpy as np

from ..core.framework import ExplorationSession
from ..core.meta_training import MetaTrainer
from .checkpoint import CheckpointError, load_checkpoint, save_checkpoint

__all__ = ["save_pretrained", "load_pretrained", "save_pretrain_run",
           "load_pretrain_run", "save_session", "load_session",
           "save_manager", "load_manager", "dataset_provenance",
           "model_fingerprint"]


def _config_fingerprint(lte):
    cfg = lte.config
    return {"ku": int(cfg.ku), "embed_size": int(cfg.embed_size),
            "hidden_size": int(cfg.hidden_size),
            "subspace_dim": int(cfg.subspace_dim), "seed": int(cfg.seed)}


def _lte_identity(lte):
    """Fingerprint of the LTE system a checkpoint was captured over.

    Online state only makes sense against the exact offline artifacts it
    was built with, and those are a deterministic function of (table,
    config); restores compare this identity and refuse mismatches
    loudly instead of pairing restored models with foreign scalers,
    encoders or cluster summaries.  Chunk-store tables fingerprint by
    their store digest (precomputed per-chunk content digests), so a
    multi-gigabyte on-disk table is never re-read — or materialized —
    just to identify a checkpoint.
    """
    table = lte.table
    if hasattr(table, "iter_chunks"):
        return {"config": _config_fingerprint(lte),
                "table_shape": [int(table.n_rows),
                                int(table.n_attributes)],
                "table_digest": "store:{}".format(table.digest)}
    data = np.ascontiguousarray(np.asarray(table.data, dtype=np.float64))
    h = hashlib.blake2b(data.tobytes(), digest_size=16)
    h.update(str(data.shape).encode())
    return {"config": _config_fingerprint(lte),
            "table_shape": list(data.shape),
            "table_digest": h.hexdigest()}


def _fingerprint_update(h, node):
    """Feed one nested state_dict node into a running digest."""
    if node is None:
        h.update(b"~")
    elif isinstance(node, np.ndarray):
        array = np.ascontiguousarray(node)
        h.update(str(array.dtype).encode())
        h.update(str(array.shape).encode())
        h.update(array.tobytes())
    elif isinstance(node, dict):
        for key in sorted(node):
            h.update(str(key).encode())
            _fingerprint_update(h, node[key])
    elif isinstance(node, (list, tuple)):
        h.update(str(len(node)).encode())
        for item in node:
            _fingerprint_update(h, item)
    else:
        h.update(repr(node).encode())


def model_fingerprint(lte):
    """Stable 128-bit digest of a fitted system's learned model state.

    Covers every subspace's meta-learner weights and memories (via the
    trainer ``state_dict``), so two LTE systems fingerprint equal iff
    their pretrained models are bit-identical.  This is the *model
    version* of the serving tier: :func:`save_pretrained` stamps it into
    the checkpoint manifest and the sharded gateway
    (:mod:`repro.shard`) uses it to confirm a phi broadcast landed on
    every worker replica.
    """
    h = hashlib.blake2b(digest_size=16)
    for subspace, state in lte.states.items():
        h.update(",".join(subspace.key).encode())
        if state.trainer is None:
            h.update(b"untrained")
        else:
            _fingerprint_update(h, state.trainer.state_dict())
    return h.hexdigest()


def dataset_provenance(table):
    """What a checkpoint's manifest should say about its training data.

    Combines the builder provenance the dataset registry stamps on
    tables/stores (builder name, n_rows, seed) with the store digest —
    and, for appendable stores, the ``store_version`` the artifacts were
    fitted at, so a checkpoint manifest records *which generation* of a
    growing dataset it belongs to; returns ``None`` when nothing is
    known.
    """
    out = dict(getattr(table, "provenance", None) or {})
    if hasattr(table, "iter_chunks"):
        out.setdefault("n_rows", int(table.n_rows))
        out["store_digest"] = str(table.digest)
        out["store_version"] = int(getattr(table, "store_version", 1))
    return out or None


def _meta_with_provenance(meta, lte):
    """Merge dataset provenance into user metadata (user keys win)."""
    meta = dict(meta or {})
    provenance = dataset_provenance(lte.table)
    if provenance is not None:
        meta.setdefault("dataset", provenance)
    return meta


def _require(state, key, path):
    try:
        return state[key]
    except (KeyError, TypeError):
        raise CheckpointError(
            "checkpoint at {!r} lacks the expected field {!r}; it was "
            "written by an incompatible build — re-save the state with "
            "this build".format(path, key))


def _check_identity(path, saved, lte, what):
    current = _lte_identity(lte)
    if saved != current:
        raise CheckpointError(
            "{} at {!r} was captured over an LTE system pretrained under "
            "config {} (table {} digest {}) but the target system has "
            "config {} (table {} digest {}); restoring across different "
            "systems would silently mis-predict — prepare the target "
            "from the same table and config".format(
                what, path, saved["config"], saved["table_shape"],
                saved["table_digest"], current["config"],
                current["table_shape"], current["table_digest"]))


# ----------------------------------------------------------------------
# Pretrained LTE artifacts
# ----------------------------------------------------------------------
def save_pretrained(path, lte, meta=None):
    """Checkpoint the pretrained meta-learners of a fitted LTE system.

    Subspaces that were prepared but never meta-trained are recorded as
    such and restore as untrained.  The manifest ``meta`` is stamped with
    the :func:`model_fingerprint` (the serving tier's model version).
    Returns the manifest dict.
    """
    meta = dict(meta or {})
    meta.setdefault("model_fingerprint", model_fingerprint(lte))
    state = {
        "identity": _lte_identity(lte),
        "subspaces": [
            {"names": list(subspace.names),
             "trainer": None if lte_state.trainer is None
             else lte_state.trainer.state_dict()}
            for subspace, lte_state in lte.states.items()
        ],
    }
    return save_checkpoint(path, "lte-pretrained", state,
                           meta=_meta_with_provenance(meta, lte))


def load_pretrained(path, lte):
    """Install pretrained meta-learners into a prepared LTE system.

    ``lte`` must have run ``fit_offline`` (``train=False`` suffices) over
    the same table, config and subspace decomposition; the checkpoint
    supplies the expensive learned state and this function wires it into
    the prepared offline artifacts.  Mismatched decompositions or
    preprocessor widths raise :class:`CheckpointError` instead of
    installing a meta-learner that would silently mis-predict.
    """
    state, info = load_checkpoint(path, expected_kind="lte-pretrained")
    if not lte.states:
        raise CheckpointError(
            "the target LTE system is not prepared; run "
            "fit_offline(table, train=False) before load_pretrained")
    _check_identity(path, _require(state, "identity", path), lte,
                    "pretrained checkpoint")
    by_key = {s.key: s for s in lte.states}
    saved_keys = {tuple(sorted(entry["names"]))
                  for entry in _require(state, "subspaces", path)}
    if saved_keys != set(by_key):
        raise CheckpointError(
            "checkpoint at {!r} covers subspaces {} but the target LTE "
            "system has {}; re-prepare the system with the same "
            "decomposition (same table, subspace_dim and seed)".format(
                path, sorted(saved_keys), sorted(by_key)))
    for entry in _require(state, "subspaces", path):
        subspace = by_key[tuple(sorted(entry["names"]))]
        lte_state = lte.states[subspace]
        if entry["trainer"] is None:
            lte_state.trainer = None
            lte_state.bump_artifacts()
            continue
        trainer = MetaTrainer.from_state_dict(entry["trainer"])
        width = lte_state.preprocessor.width
        if trainer.model.input_width != width:
            raise CheckpointError(
                "pretrained meta-learner for subspace {} expects "
                "input width {} but the prepared preprocessor produces "
                "{}; the checkpoint was trained over different offline "
                "artifacts".format(tuple(subspace.names),
                                   trainer.model.input_width, width))
        lte_state.trainer = trainer
        # The subspace's model generation changed: bump its artifact
        # token so version-keyed caches (e.g. the serving layer's encode
        # cache) stop serving state derived under the old weights.
        lte_state.bump_artifacts()
    return info


# ----------------------------------------------------------------------
# Resumable (epoch-granular) offline pretraining runs
# ----------------------------------------------------------------------
def save_pretrain_run(path, lte, entries, meta=None):
    """Checkpoint an in-flight offline meta-training run.

    ``entries`` is ``[{"names": [...], "schedule": schedule_state}, ...]``
    — one per subspace, in training order, where ``schedule_state`` is a
    :meth:`repro.train.TrainerSchedule.state_dict`.  The per-subspace
    epoch cursors are mirrored into the manifest ``meta`` (under
    ``"epoch_cursor"``) so ``python -m repro.persist inspect`` shows
    resume progress without decoding the arrays.  The driver's ``meta``
    additionally records the writing run's ``engine`` / ``workers`` /
    ``nn_backend`` — provenance only: checkpoints are written at epoch
    reduction barriers, where every engine (any worker count, any
    backend) holds identical master state, so a run resumes
    interchangeably under any of them (``tests/persist`` pins this).
    Returns the manifest.
    """
    meta = dict(meta or {})
    meta["epoch_cursor"] = {
        ",".join(entry["names"]): {
            "pretrain": "{}/{}".format(entry["schedule"]["pretrain_done"],
                                       entry["schedule"]["pretrain_total"]),
            "meta": "{}/{}".format(entry["schedule"]["meta_done"],
                                   entry["schedule"]["meta_total"]),
        }
        for entry in entries}
    state = {"identity": _lte_identity(lte), "subspaces": list(entries)}
    return save_checkpoint(path, "pretrain-run", state,
                           meta=_meta_with_provenance(meta, lte))


def load_pretrain_run(path, lte):
    """Load a pretrain-run checkpoint against a prepared LTE system.

    Verifies the LTE identity (same table, config) before handing back
    the per-subspace schedule states; mismatches raise
    :class:`CheckpointError` instead of resuming a foreign run.  Returns
    ``(entries, info)`` in the layout :func:`save_pretrain_run` stored.
    """
    state, info = load_checkpoint(path, expected_kind="pretrain-run")
    _check_identity(path, _require(state, "identity", path), lte,
                    "pretrain-run checkpoint")
    return _require(state, "subspaces", path), info


# ----------------------------------------------------------------------
# Resumable exploration sessions
# ----------------------------------------------------------------------
def save_session(path, session, meta=None):
    """Checkpoint one :class:`~repro.core.ExplorationSession`."""
    state = {"identity": _lte_identity(session.lte),
             "session": session.state_dict()}
    return save_checkpoint(path, "exploration-session", state,
                           meta=_meta_with_provenance(meta, session.lte))


def load_session(path, lte):
    """Resume a session checkpoint against a (restored) LTE system.

    ``lte`` must be the system the session was captured over (or a
    bit-identical restore of it); mismatched systems raise
    :class:`CheckpointError` instead of silently mis-predicting.
    """
    state, _ = load_checkpoint(path, expected_kind="exploration-session")
    _check_identity(path, _require(state, "identity", path), lte,
                    "session checkpoint")
    try:
        return ExplorationSession.from_state_dict(
            lte, _require(state, "session", path))
    except KeyError as error:
        raise CheckpointError(
            "session checkpoint at {!r} does not fit the target LTE "
            "system: {}".format(path, error.args[0] if error.args
                                else error))


# ----------------------------------------------------------------------
# Serving-engine snapshots
# ----------------------------------------------------------------------
def save_manager(path, manager, meta=None):
    """Checkpoint a full :class:`~repro.serve.SessionManager` snapshot."""
    state = {"identity": _lte_identity(manager.lte),
             "snapshot": manager.snapshot()}
    return save_checkpoint(path, "session-manager", state,
                           meta=_meta_with_provenance(meta, manager.lte))


def load_manager(path, lte):
    """Restore a serving engine snapshot against a (restored) LTE system.

    The returned manager serves bit-identical predictions — including
    cache hits, model versions and queued-but-unflushed label batches —
    to the manager that was snapshotted.  ``lte`` must be the system the
    snapshot was taken over (or a bit-identical restore of it, e.g. via
    :func:`load_pretrained`); a different table or config raises
    :class:`CheckpointError` instead of silently serving garbage.
    """
    from ..serve.manager import SessionManager

    state, _ = load_checkpoint(path, expected_kind="session-manager")
    _check_identity(path, _require(state, "identity", path), lte,
                    "serving snapshot")
    try:
        return SessionManager.restore(lte, _require(state, "snapshot", path))
    except KeyError as error:
        raise CheckpointError(
            "serving snapshot at {!r} does not fit the target LTE "
            "system: {}".format(path, error.args[0] if error.args
                                else error))
