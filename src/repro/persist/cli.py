"""Command-line interface: ``python -m repro.persist {save,load,inspect}``.

* ``save OUT``     — pretrain a smoke-sized LTE system and write it as an
  ``lte-pretrained`` checkpoint (the zero-to-artifact demo, also used by
  the CI persist lane);
* ``load PATH``    — fully load and verify a checkpoint of any kind,
  printing a kind-specific summary; exits non-zero with the actionable
  :class:`~repro.persist.CheckpointError` message on any corruption;
* ``inspect PATH`` — print the manifest summary (kind, schema version,
  metadata, array count/bytes) plus a digest verification verdict.
"""

from __future__ import annotations

import argparse
import sys

from .checkpoint import CheckpointError, inspect_checkpoint, load_checkpoint

__all__ = ["main"]


def _cmd_save(args):
    from ..core import LTE, LTEConfig
    from ..core.meta_training import MetaHyperParams
    from ..data import make_car
    from .state import save_pretrained

    table = make_car(n_rows=args.rows, seed=args.seed)
    config = LTEConfig(budget=20, ku=25, kq=30, n_tasks=args.n_tasks,
                       meta=MetaHyperParams(epochs=1, local_steps=2,
                                            pretrain_epochs=1),
                       basic_steps=15, online_steps=4, seed=args.seed)
    lte = LTE(config)
    lte.fit_offline(table)
    manifest = save_pretrained(
        args.path, lte,
        meta={"rows": args.rows, "seed": args.seed, "n_tasks": args.n_tasks,
              "source": "repro.persist CLI demo artifact"})
    print("saved lte-pretrained checkpoint to {}".format(args.path))
    print("  subspaces: {}   arrays: {}   digest: {}".format(
        len(lte.states), manifest["n_arrays"], manifest["digest"]))
    return 0


def _describe_dataset(meta):
    """One-line provenance summary from a manifest's dataset metadata."""
    dataset = (meta or {}).get("dataset")
    if not dataset:
        return None
    parts = []
    if dataset.get("builder"):
        parts.append("builder={}".format(dataset["builder"]))
    if dataset.get("n_rows") is not None:
        parts.append("n_rows={}".format(dataset["n_rows"]))
    if dataset.get("seed") is not None:
        parts.append("seed={}".format(dataset["seed"]))
    if dataset.get("store_digest"):
        parts.append("store_digest={}".format(dataset["store_digest"]))
    return " ".join(parts) if parts else None


def _summarize_state(kind, state):
    if kind == "lte-pretrained":
        trained = sum(1 for e in state["subspaces"]
                      if e["trainer"] is not None)
        print("  subspaces: {} ({} meta-trained)".format(
            len(state["subspaces"]), trained))
        for entry in state["subspaces"]:
            trainer = entry["trainer"]
            detail = "untrained" if trainer is None else \
                "ku={} width={} memories={}".format(
                    trainer["config"]["ku"],
                    trainer["config"]["input_width"],
                    trainer["use_memories"])
            print("    {}: {}".format(",".join(entry["names"]), detail))
    elif kind == "session-manager":
        snapshot = state["snapshot"]
        print("  sessions: {}   queued: {}   cache entries: {} "
              "(hits {} / misses {})".format(
                  len(snapshot["sessions"]), len(snapshot["queue"]),
                  len(snapshot["cache"]["entries"]),
                  snapshot["cache"]["hits"], snapshot["cache"]["misses"]))
    elif kind == "exploration-session":
        print("  variant: {}   subspaces: {}".format(
            state["session"]["variant"],
            len(state["session"]["subspaces"])))
    elif kind == "meta-trainer":
        print("  ku={} width={} memories={} epochs trained: {}".format(
            state["config"]["ku"], state["config"]["input_width"],
            state["use_memories"], len(state["history"])))
    elif kind == "pretrain-run":
        print("  resumable offline run over {} subspaces".format(
            len(state["subspaces"])))
        for entry in state["subspaces"]:
            schedule = entry["schedule"]
            print("    {}: pretrain {}/{}  meta {}/{}".format(
                ",".join(entry["names"]),
                schedule["pretrain_done"], schedule["pretrain_total"],
                schedule["meta_done"], schedule["meta_total"]))


def _cmd_load(args):
    state, info = load_checkpoint(args.path)
    print("checkpoint at {} verified OK".format(args.path))
    print("  kind: {}   schema: {}   digest: {}".format(
        info["kind"], info["schema_version"], info["digest"]))
    dataset = _describe_dataset(info.get("meta"))
    if dataset:
        print("  trained on: {}".format(dataset))
    _summarize_state(info["kind"], state)
    return 0


def _cmd_inspect(args):
    summary = inspect_checkpoint(args.path)
    print("checkpoint at {}".format(args.path))
    print("  kind: {}   schema: {}".format(summary["kind"],
                                           summary["schema_version"]))
    print("  arrays: {}   bytes: {}".format(summary["n_arrays"],
                                            summary["total_bytes"]))
    print("  digest: {}   verified: {}".format(
        summary["digest"], "OK" if summary["digest_ok"] else "FAILED"))
    dataset = _describe_dataset(summary.get("meta"))
    if dataset:
        print("  trained on: {}".format(dataset))
    if summary["meta"]:
        print("  meta: {}".format(summary["meta"]))
    if summary["error"]:
        print("  error: {}".format(summary["error"]), file=sys.stderr)
        return 2
    return 0


def main(argv=None):
    """Entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.persist",
        description="Checkpoint tooling for pretrained LTE artifacts and "
                    "serving snapshots.")
    sub = parser.add_subparsers(dest="command", required=True)

    save = sub.add_parser(
        "save", help="pretrain a smoke-sized LTE and checkpoint it")
    save.add_argument("path", help="output checkpoint directory")
    save.add_argument("--rows", type=int, default=2000,
                      help="synthetic table rows (default 2000)")
    save.add_argument("--seed", type=int, default=7)
    save.add_argument("--n-tasks", type=int, default=6,
                      help="meta-tasks per subspace (default 6)")
    save.set_defaults(func=_cmd_save)

    load = sub.add_parser(
        "load", help="load + fully verify a checkpoint, print its contents")
    load.add_argument("path", help="checkpoint directory")
    load.set_defaults(func=_cmd_load)

    inspect = sub.add_parser(
        "inspect", help="print the manifest summary and verify the digest")
    inspect.add_argument("path", help="checkpoint directory")
    inspect.set_defaults(func=_cmd_inspect)

    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except CheckpointError as error:
        print("error: {}".format(error), file=sys.stderr)
        return 2
