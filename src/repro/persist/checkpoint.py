"""Versioned, dependency-free checkpoint files (npz + JSON manifest).

A checkpoint is a *directory* holding exactly two files:

* ``arrays.npz``    — every numpy array of the saved state, flat;
* ``manifest.json`` — schema version, checkpoint kind, optional user
  metadata, a content digest, and the JSON *tree* describing how the
  arrays reassemble into the original nested state.

The state handed to :func:`save_checkpoint` is a nested structure of
dicts / lists / tuples whose leaves are numpy arrays, numbers, booleans,
strings or ``None`` — exactly what the ``state_dict`` methods across
``repro.nn`` / ``repro.core`` / ``repro.serve`` produce.  Pickle is never
used (``allow_pickle=False`` end to end), so checkpoints are safe to load
from untrusted sources and portable across Python versions.

Integrity is defense-in-depth: a truncated ``arrays.npz``, a digest
mismatch and an unknown schema version each raise a typed
:class:`CheckpointError` with an actionable message — a checkpoint never
loads silently wrong.
"""

from __future__ import annotations

import hashlib
import json
import os

import numpy as np

__all__ = ["CheckpointError", "SCHEMA_VERSION", "save_checkpoint",
           "load_checkpoint", "inspect_checkpoint"]

#: Bump when the on-disk layout changes incompatibly.  Readers refuse
#: checkpoints written with any other version instead of guessing.
SCHEMA_VERSION = 1

_MANIFEST = "manifest.json"
_ARRAYS = "arrays.npz"
_RESERVED = ("__array__", "__tuple__")


class CheckpointError(RuntimeError):
    """A checkpoint could not be written, read or verified.

    Raised for every failure mode of the persist subsystem — missing or
    corrupt files, truncated archives, digest mismatches, unknown schema
    versions, unsupported state types — always with a message saying what
    went wrong and what to do about it.  Never catch-and-ignore this:
    a failed load means the state on disk must not be trusted.
    """


# ----------------------------------------------------------------------
# Tree codec: nested python state <-> (JSON-safe tree, flat array dict)
# ----------------------------------------------------------------------
def _encode(node, arrays):
    if node is None or isinstance(node, (bool, str)):
        return node
    if isinstance(node, (np.bool_,)):
        return bool(node)
    if isinstance(node, (int, np.integer)):
        return int(node)
    if isinstance(node, (float, np.floating)):
        return float(node)
    if isinstance(node, np.ndarray):
        if node.dtype == object:
            raise CheckpointError(
                "cannot checkpoint object-dtype arrays; convert the state "
                "to numeric/bool arrays first")
        ref = "a{}".format(len(arrays))
        arrays[ref] = node
        return {"__array__": ref}
    if isinstance(node, tuple):
        return {"__tuple__": [_encode(item, arrays) for item in node]}
    if isinstance(node, list):
        return [_encode(item, arrays) for item in node]
    if isinstance(node, dict):
        out = {}
        for key, value in node.items():
            if not isinstance(key, str):
                raise CheckpointError(
                    "checkpoint dict keys must be strings, got {!r}; "
                    "stringify the key at the state_dict layer".format(key))
            if key in _RESERVED:
                raise CheckpointError(
                    "dict key {!r} is reserved by the checkpoint "
                    "format".format(key))
            out[key] = _encode(value, arrays)
        return out
    raise CheckpointError(
        "unsupported type {} in checkpoint state; supported leaves are "
        "numpy arrays, int, float, bool, str and None".format(type(node)))


def _decode(node, arrays):
    if isinstance(node, dict):
        if "__array__" in node:
            ref = node["__array__"]
            if ref not in arrays:
                raise CheckpointError(
                    "manifest references array {!r} missing from "
                    "arrays.npz — the checkpoint is incomplete".format(ref))
            return arrays[ref]
        if "__tuple__" in node:
            return tuple(_decode(item, arrays) for item in node["__tuple__"])
        return {key: _decode(value, arrays) for key, value in node.items()}
    if isinstance(node, list):
        return [_decode(item, arrays) for item in node]
    return node


def _canonical_json(tree):
    return json.dumps(tree, sort_keys=True, separators=(",", ":"))


def _digest(kind, tree, arrays):
    """128-bit content digest over the kind, tree and every array."""
    h = hashlib.blake2b(digest_size=16)
    h.update(kind.encode())
    h.update(_canonical_json(tree).encode())
    for ref in sorted(arrays):
        array = np.ascontiguousarray(arrays[ref])
        h.update(ref.encode())
        h.update(str(array.dtype).encode())
        h.update(str(array.shape).encode())
        h.update(array.tobytes())
    return h.hexdigest()


# ----------------------------------------------------------------------
# Public API
# ----------------------------------------------------------------------
def save_checkpoint(path, kind, state, meta=None):
    """Write ``state`` as a checkpoint directory at ``path``.

    Parameters
    ----------
    path:
        Target directory (created if missing; existing checkpoint files
        are overwritten).
    kind:
        A short string naming what the checkpoint holds (e.g.
        ``"session-manager"``); :func:`load_checkpoint` can enforce it.
    state:
        Nested dict/list/tuple structure of arrays and scalars.
    meta:
        Optional JSON-able dict of user metadata, stored verbatim in the
        manifest (not covered by the content digest, so it is editable).

    Returns the manifest dict that was written.
    """
    if not isinstance(kind, str) or not kind:
        raise CheckpointError("checkpoint kind must be a non-empty string")
    arrays = {}
    tree = _encode(state, arrays)
    manifest = {
        "schema_version": SCHEMA_VERSION,
        "kind": kind,
        "meta": meta or {},
        "digest": _digest(kind, tree, arrays),
        "n_arrays": len(arrays),
        "tree": tree,
    }
    os.makedirs(path, exist_ok=True)
    # Write-then-rename: a crash during the (long) array write leaves a
    # previous checkpoint untouched; the worst remaining window is the
    # instant between the two renames, which the digest check turns into
    # a loud CheckpointError rather than a silent wrong-weights load.
    # (np.savez appends ".npz" to names lacking it, so keep the suffix.)
    arrays_tmp = os.path.join(path, "arrays.tmp.npz")
    manifest_tmp = os.path.join(path, _MANIFEST + ".tmp")
    np.savez(arrays_tmp, **arrays)
    with open(manifest_tmp, "w") as fh:
        json.dump(manifest, fh, sort_keys=True, indent=1)
    os.replace(arrays_tmp, os.path.join(path, _ARRAYS))
    os.replace(manifest_tmp, os.path.join(path, _MANIFEST))
    return manifest


def _read_manifest(path):
    manifest_path = os.path.join(path, _MANIFEST)
    if not os.path.isfile(manifest_path):
        raise CheckpointError(
            "no checkpoint at {!r}: {} is missing (expected a directory "
            "written by repro.persist.save_checkpoint)".format(
                path, _MANIFEST))
    try:
        with open(manifest_path) as fh:
            manifest = json.load(fh)
    except (OSError, ValueError) as error:
        raise CheckpointError(
            "checkpoint manifest {!r} is unreadable or not valid JSON "
            "({}); the checkpoint is corrupt — re-save it".format(
                manifest_path, error))
    schema = manifest.get("schema_version")
    if schema != SCHEMA_VERSION:
        raise CheckpointError(
            "checkpoint at {!r} uses schema version {!r} but this build "
            "reads version {}; upgrade repro (newer checkpoint) or "
            "re-save the state with this build (older/unknown "
            "checkpoint)".format(path, schema, SCHEMA_VERSION))
    kind = manifest.get("kind")
    if not isinstance(kind, str) or not kind:
        raise CheckpointError(
            "checkpoint manifest at {!r} carries no valid 'kind' field "
            "({!r}); the manifest is corrupt — re-save the "
            "checkpoint".format(path, kind))
    return manifest


def _read_arrays(path):
    arrays_path = os.path.join(path, _ARRAYS)
    try:
        with np.load(arrays_path, allow_pickle=False) as npz:
            return {name: npz[name] for name in npz.files}
    except Exception as error:
        raise CheckpointError(
            "checkpoint archive {!r} cannot be read ({}: {}); the file is "
            "missing, truncated or corrupt — restore it from a backup or "
            "re-save the state".format(
                arrays_path, type(error).__name__, error))


def load_checkpoint(path, expected_kind=None):
    """Load and verify a checkpoint written by :func:`save_checkpoint`.

    Verifies the schema version, the archive integrity and the content
    digest *before* reconstructing the state; any failure raises
    :class:`CheckpointError` — a wrong-weights load is impossible.

    Returns ``(state, info)`` where ``info`` carries ``kind``, ``meta``,
    ``digest`` and ``schema_version``.
    """
    manifest = _read_manifest(path)
    kind = manifest.get("kind")
    if expected_kind is not None and kind != expected_kind:
        raise CheckpointError(
            "checkpoint at {!r} holds kind {!r}, expected {!r}; you are "
            "loading the wrong artifact into this API".format(
                path, kind, expected_kind))
    arrays = _read_arrays(path)
    digest = _digest(kind, manifest.get("tree"), arrays)
    if digest != manifest.get("digest"):
        raise CheckpointError(
            "content digest mismatch for checkpoint at {!r} (manifest "
            "says {}, arrays hash to {}); the checkpoint was modified or "
            "partially written — refusing to load".format(
                path, manifest.get("digest"), digest))
    state = _decode(manifest.get("tree"), arrays)
    info = {"kind": kind, "meta": manifest.get("meta", {}),
            "digest": digest, "schema_version": SCHEMA_VERSION}
    return state, info


def inspect_checkpoint(path):
    """Summarize a checkpoint without reconstructing its state.

    Returns a dict with ``kind``, ``schema_version``, ``meta``,
    ``digest``, ``n_arrays``, ``total_bytes`` and ``digest_ok`` (full
    verification against ``arrays.npz``); raises :class:`CheckpointError`
    only when the manifest itself is missing/corrupt or from an unknown
    schema version.
    """
    manifest = _read_manifest(path)
    summary = {
        "kind": manifest.get("kind"),
        "schema_version": manifest.get("schema_version"),
        "meta": manifest.get("meta", {}),
        "digest": manifest.get("digest"),
        "n_arrays": manifest.get("n_arrays"),
        "total_bytes": None,
        "digest_ok": False,
        "error": None,
    }
    try:
        arrays = _read_arrays(path)
    except CheckpointError as error:
        summary["error"] = str(error)
        return summary
    summary["total_bytes"] = int(sum(a.nbytes for a in arrays.values()))
    digest = _digest(manifest.get("kind"), manifest.get("tree"), arrays)
    summary["digest_ok"] = digest == manifest.get("digest")
    if not summary["digest_ok"]:
        summary["error"] = "content digest mismatch"
    return summary
