"""``python -m repro.persist`` — see :mod:`repro.persist.cli`."""

import sys

from .cli import main

if __name__ == "__main__":
    sys.exit(main())
