"""repro.persist — versioned checkpoint/restore across every layer.

A production serving system (ROADMAP north star) must survive process
restarts, ship pretrained artifacts between machines and shard sessions
across workers.  This package is the one serialization subsystem behind
all of that: dependency-free checkpoints (``arrays.npz`` + a JSON
manifest carrying a schema version and a content digest) spanning

* ``repro.nn``    — ``state_dict``/``load_state_dict`` on modules,
  parameters and optimizers (Adam step counts + moment buffers);
* ``repro.core``  — :meth:`MetaTrainer.save`/``load`` for pretrained
  meta-learners, :class:`FewShotOptimizer` region capture with shared
  hull interning, resumable :class:`ExplorationSession` state;
* ``repro.serve`` — :meth:`SessionManager.snapshot`/``restore`` covering
  pending queues, per-session model versions and the LRU prediction
  cache, so a restored manager serves bit-identical predictions without
  re-adaptation.

Round trips are exact: ``load(save(x))`` reproduces arrays, dtypes and
step counts bit-for-bit (``tests/persist/test_roundtrip.py``), and a
manager restored mid-workload continues indistinguishably from an
uninterrupted run (``tests/persist/test_resume_parity.py``).  Corrupt or
incompatible checkpoints raise a typed :class:`CheckpointError` — never
a silent wrong-weights load.

Quickstart (mirrors ``examples/checkpoint_restore.py``)::

    from repro import persist

    persist.save_pretrained("artifacts/lte", lte)     # ship this
    persist.save_manager("artifacts/serving", manager)

    # ... new process ...
    lte = LTE(config).fit_offline(table, train=False) # cheap prep
    persist.load_pretrained("artifacts/lte", lte)     # instant weights
    manager = persist.load_manager("artifacts/serving", lte)

A small CLI wraps the same paths: ``python -m repro.persist
{save,load,inspect}``.
"""

from .checkpoint import (SCHEMA_VERSION, CheckpointError, inspect_checkpoint,
                         load_checkpoint, save_checkpoint)
from .state import (dataset_provenance, load_manager, load_pretrain_run,
                    load_pretrained, load_session, model_fingerprint,
                    save_manager, save_pretrain_run, save_pretrained,
                    save_session)

__all__ = [
    "CheckpointError", "SCHEMA_VERSION",
    "save_checkpoint", "load_checkpoint", "inspect_checkpoint",
    "save_pretrained", "load_pretrained",
    "save_pretrain_run", "load_pretrain_run",
    "save_session", "load_session",
    "save_manager", "load_manager",
    "dataset_provenance", "model_fingerprint",
]
