"""Labelling oracles standing in for the human user.

The paper evaluates against synthetically generated ground-truth interest
regions, so the "user" is a membership oracle over those regions.  Oracles
count the labels they hand out, which is how benches account for budgets.
"""

from __future__ import annotations

import numpy as np

__all__ = ["RegionOracle", "ConjunctiveOracle"]


class RegionOracle:
    """Oracle for a single region over one (sub)space."""

    def __init__(self, region):
        self.region = region
        self.labels_given = 0

    def label(self, points):
        """0/1 interestingness labels; increments the label counter."""
        points = np.atleast_2d(np.asarray(points, dtype=np.float64))
        self.labels_given += len(points)
        return self.region.label(points)

    def reset_counter(self):
        self.labels_given = 0


class ConjunctiveOracle:
    """Oracle for a conjunctive UIR with known per-subspace ground truth.

    Parameters
    ----------
    subspace_regions:
        Mapping ``{Subspace: Region}``; the full-space UIR is their
        conjunction (Section III-A).
    """

    def __init__(self, subspace_regions):
        if not subspace_regions:
            raise ValueError("need at least one subspace region")
        self.subspace_regions = dict(subspace_regions)
        self.labels_given = 0

    # ------------------------------------------------------------------
    def label_subspace(self, subspace, points):
        """Label points given in ``subspace`` coordinates."""
        region = self.subspace_regions[subspace]
        points = np.atleast_2d(np.asarray(points, dtype=np.float64))
        self.labels_given += len(points)
        return region.label(points)

    def label(self, rows):
        """Label full-space rows against the conjunctive UIR."""
        if hasattr(rows, "iter_chunks"):
            self.labels_given += rows.n_rows
            return self.ground_truth_store(rows)
        rows = np.atleast_2d(np.asarray(rows, dtype=np.float64))
        self.labels_given += len(rows)
        return self.ground_truth(rows)

    def ground_truth(self, rows):
        """Conjunctive membership *without* counting labels (evaluation).

        ``rows`` may be a :class:`~repro.store.ChunkStore`; the
        evaluation then runs chunk-wise with zone-map pruning
        (:meth:`ground_truth_store`) — same bits, bounded memory.
        """
        if hasattr(rows, "iter_chunks"):
            return self.ground_truth_store(rows)
        rows = np.atleast_2d(np.asarray(rows, dtype=np.float64))
        result = np.ones(len(rows), dtype=np.int64)
        for subspace, region in self.subspace_regions.items():
            result &= region.label(subspace.project(rows))
        return result

    def ground_truth_store(self, store):
        """Conjunctive membership over a chunk store, zone-map pruned.

        Each subspace region scans the store through a
        :class:`~repro.store.ChunkScan`: chunks whose zone maps cannot
        intersect the region's conservative bounding boxes are skipped
        outright, the survivors run the exact packed membership test —
        bit-identical to :meth:`ground_truth` over the materialized rows.
        """
        from ..store.scan import scan_region

        result = np.ones(store.n_rows, dtype=np.int64)
        for subspace, region in self.subspace_regions.items():
            if not result.any():
                break
            result &= scan_region(store, region,
                                  columns=subspace.columns).astype(np.int64)
        return result

    def ground_truth_subspace(self, subspace, points):
        """Subspace membership without counting labels."""
        return self.subspace_regions[subspace].label(points)

    def reset_counter(self):
        self.labels_given = 0
