"""Exploration harness: oracles, metrics, end-to-end session runners."""

from .metrics import (accuracy_score, classification_report, confusion_counts,
                      f1_score, precision_score, recall_score)
from .oracle import ConjunctiveOracle, RegionOracle
from .query_synthesis import SynthesizedQuery, synthesize_query
from .session import (ExplorationResult, run_concurrent_explorations,
                      run_lte_exploration, score_session)

__all__ = [
    "f1_score", "precision_score", "recall_score", "accuracy_score",
    "confusion_counts", "classification_report",
    "RegionOracle", "ConjunctiveOracle",
    "run_lte_exploration", "run_concurrent_explorations", "score_session",
    "ExplorationResult",
    "synthesize_query", "SynthesizedQuery",
]
