"""End-to-end exploration runs: LTE session + oracle + evaluation.

Convenience wrappers that execute the full online loop the paper times:
present initial tuples, collect oracle labels, adapt, predict, score.
"""

from __future__ import annotations

import numpy as np

from .metrics import f1_score
from .oracle import ConjunctiveOracle

__all__ = ["run_lte_exploration", "ExplorationResult"]


class ExplorationResult:
    """Outcome of one exploration run."""

    def __init__(self, f1, labels_used, adapt_seconds, predictions,
                 ground_truth):
        self.f1 = f1
        self.labels_used = labels_used
        self.adapt_seconds = adapt_seconds
        self.predictions = predictions
        self.ground_truth = ground_truth

    def __repr__(self):
        return ("ExplorationResult(f1={:.3f}, labels={}, adapt_s={:.4f})"
                .format(self.f1, self.labels_used,
                        self.adapt_seconds or float("nan")))


def run_lte_exploration(lte, oracle, eval_rows, variant="meta_star",
                        subspaces=None, seed=None):
    """Run one full LTE online exploration against an oracle.

    Parameters
    ----------
    lte:
        A fitted :class:`~repro.core.framework.LTE`.
    oracle:
        A :class:`~repro.explore.oracle.ConjunctiveOracle` whose subspace
        keys match the LTE meta-subspaces being explored.
    eval_rows:
        Full-space rows on which the final F1 is measured.
    variant:
        ``"basic"``, ``"meta"`` or ``"meta_star"``.

    Returns
    -------
    :class:`ExplorationResult`
    """
    if not isinstance(oracle, ConjunctiveOracle):
        raise TypeError("run_lte_exploration needs a ConjunctiveOracle")
    session = lte.start_session(variant=variant, subspaces=subspaces,
                                seed=seed)
    before = oracle.labels_given
    for subspace, tuples in session.initial_tuples().items():
        labels = oracle.label_subspace(subspace, tuples)
        session.submit_labels(subspace, labels)
    labels_used = oracle.labels_given - before

    eval_rows = np.atleast_2d(np.asarray(eval_rows, dtype=np.float64))
    predictions = session.predict(eval_rows)
    truth = oracle.ground_truth(eval_rows)
    return ExplorationResult(
        f1=f1_score(truth, predictions),
        labels_used=labels_used,
        adapt_seconds=session.adapt_seconds,
        predictions=predictions,
        ground_truth=truth,
    )
