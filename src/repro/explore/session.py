"""End-to-end exploration runs: LTE session + oracle + evaluation.

Convenience wrappers that execute the full online loop the paper times:
present initial tuples, collect oracle labels, adapt, predict, score.
"""

from __future__ import annotations

import numpy as np

from .metrics import f1_score
from .oracle import ConjunctiveOracle

__all__ = ["run_lte_exploration", "run_concurrent_explorations",
           "score_session", "ExplorationResult"]


class ExplorationResult:
    """Outcome of one exploration run."""

    def __init__(self, f1, labels_used, adapt_seconds, predictions,
                 ground_truth):
        self.f1 = f1
        self.labels_used = labels_used
        self.adapt_seconds = adapt_seconds
        self.predictions = predictions
        self.ground_truth = ground_truth

    def __repr__(self):
        return ("ExplorationResult(f1={:.3f}, labels={}, adapt_s={:.4f})"
                .format(self.f1, self.labels_used,
                        self.adapt_seconds or float("nan")))


def run_lte_exploration(lte, oracle, eval_rows, variant="meta_star",
                        subspaces=None, seed=None, manager=None):
    """Run one full LTE online exploration against an oracle.

    Parameters
    ----------
    lte:
        A fitted :class:`~repro.core.framework.LTE`.
    oracle:
        A :class:`~repro.explore.oracle.ConjunctiveOracle` whose subspace
        keys match the LTE meta-subspaces being explored.
    eval_rows:
        Full-space rows on which the final F1 is measured — an array or
        a :class:`~repro.store.ChunkStore` (evaluated chunk-wise with
        zone-map pruning, bit-identically).
    variant:
        ``"basic"``, ``"meta"`` or ``"meta_star"``.
    manager:
        Optional :class:`~repro.serve.SessionManager` built on ``lte``;
        when given, the session is opened, adapted and predicted through
        the serving layer (batched with any other pending work) instead
        of sequentially.

    Returns
    -------
    :class:`ExplorationResult`
    """
    if not isinstance(oracle, ConjunctiveOracle):
        raise TypeError("run_lte_exploration needs a ConjunctiveOracle")
    if manager is not None:
        result, = run_concurrent_explorations(
            lte, [oracle], eval_rows, variant=variant, subspaces=subspaces,
            seeds=None if seed is None else [seed], manager=manager)
        return result
    if not hasattr(eval_rows, "iter_chunks"):
        eval_rows = np.atleast_2d(np.asarray(eval_rows, dtype=np.float64))
    before = oracle.labels_given
    session = lte.start_session(variant=variant, subspaces=subspaces,
                                seed=seed)
    for subspace, tuples in session.initial_tuples().items():
        session.submit_labels(subspace, oracle.label_subspace(subspace,
                                                              tuples))
    labels_used = oracle.labels_given - before
    predictions = session.predict(eval_rows)
    truth = oracle.ground_truth(eval_rows)
    return ExplorationResult(
        f1=f1_score(truth, predictions),
        labels_used=labels_used,
        adapt_seconds=session.adapt_seconds,
        predictions=predictions,
        ground_truth=truth,
    )


def score_session(session, oracle, eval_rows):
    """Score an existing session like :func:`run_lte_exploration` would.

    The missing half of resumable exploration: a session restored from a
    checkpoint (:func:`repro.persist.load_session`) carries its adapted
    models and labels but no live oracle counter, so ``labels_used`` is
    recomputed from the labels the session has actually accumulated
    (initial + iterative rounds).  Works identically on a live session —
    for an uninterrupted run the result matches
    :func:`run_lte_exploration` exactly.

    Parameters
    ----------
    session:
        An adapted :class:`~repro.core.ExplorationSession` (every
        subspace must have its labels submitted).
    oracle:
        The :class:`~repro.explore.oracle.ConjunctiveOracle` holding the
        session's ground truth.
    eval_rows:
        Full-space rows on which F1 is measured.

    Returns
    -------
    :class:`ExplorationResult`
    """
    if not isinstance(oracle, ConjunctiveOracle):
        raise TypeError("score_session needs a ConjunctiveOracle")
    if not hasattr(eval_rows, "iter_chunks"):
        eval_rows = np.atleast_2d(np.asarray(eval_rows, dtype=np.float64))
    labels_used = 0
    for subsession in session._subsessions.values():
        if subsession.labels is None:
            raise RuntimeError(
                "labels not yet submitted for subspace {}".format(
                    subsession.state.subspace))
        labels_used += int(subsession.labels.size)
        if subsession.extra_y is not None:
            labels_used += int(subsession.extra_y.size)
    predictions = session.predict(eval_rows)
    truth = oracle.ground_truth(eval_rows)
    return ExplorationResult(
        f1=f1_score(truth, predictions),
        labels_used=labels_used,
        adapt_seconds=session.adapt_seconds,
        predictions=predictions,
        ground_truth=truth,
    )


def run_concurrent_explorations(lte, oracles, eval_rows, variant="meta_star",
                                subspaces=None, seeds=None, manager=None):
    """Run many exploration sessions with one batched adaptation pass.

    Opens one managed session per oracle, queues every session's initial
    labels, adapts them all in fused batches via a
    :class:`~repro.serve.SessionManager`, and scores each session exactly
    like :func:`run_lte_exploration` would.

    Parameters
    ----------
    oracles:
        One :class:`~repro.explore.oracle.ConjunctiveOracle` per
        concurrent session.
    seeds:
        Optional per-session seeds (default: the LTE config seed for
        every session, i.e. identical initial tuples).
    manager:
        Reuse an existing manager (and its cache); default: a fresh one.

    Returns
    -------
    List of :class:`ExplorationResult`, one per oracle.
    """
    from ..serve import SessionManager

    if manager is None:
        manager = SessionManager(lte)
    elif manager.lte is not lte:
        raise ValueError("manager serves a different LTE system than the "
                         "one passed; sessions would use the wrong model")
    if not hasattr(eval_rows, "iter_chunks"):
        eval_rows = np.atleast_2d(np.asarray(eval_rows, dtype=np.float64))
    sids, befores = [], []
    try:
        for i, oracle in enumerate(oracles):
            if not isinstance(oracle, ConjunctiveOracle):
                raise TypeError(
                    "run_concurrent_explorations needs ConjunctiveOracles")
            sid = manager.open_session(
                variant=variant, subspaces=subspaces,
                seed=None if seeds is None else seeds[i])
            befores.append(oracle.labels_given)
            for subspace, tuples in manager.initial_tuples(sid).items():
                manager.submit_labels(sid, subspace,
                                      oracle.label_subspace(subspace, tuples))
            sids.append(sid)
        manager.flush()   # one fused adaptation across all sessions
        predictions_by_sid = manager.predict_many(sids, eval_rows)

        results = []
        for sid, oracle, before in zip(sids, oracles, befores):
            predictions = predictions_by_sid[sid]
            truth = oracle.ground_truth(eval_rows)
            results.append(ExplorationResult(
                f1=f1_score(truth, predictions),
                labels_used=oracle.labels_given - before,
                adapt_seconds=manager.session(sid).adapt_seconds,
                predictions=predictions,
                ground_truth=truth,
            ))
        return results
    finally:
        # The session ids are not part of the return value, so leaving
        # the sessions open on a caller-provided manager would leak them.
        for sid in sids:
            manager.close_session(sid)
