"""Final retrieval as SQL: extract query filters from a trained session.

Paper Section III-B, "Final retrieval": *"The results can also be
transformed to query filters (e.g., in SQL), if prerequisite assumptions
about UIR and query templates are made."*  The assumption made here is the
classic one — the filter is a disjunction of axis-aligned range predicates
(the template AIDE produces).  A surrogate decision tree is fitted to the
session's predictions on a sample; its positive leaves become the
predicates.

The synthesized filter is a *lossy* summary of the NN classifier (which is
the point: it is human-readable and executable by any SQL engine); its
fidelity against the session's own predictions is reported alongside.
"""

from __future__ import annotations

import numpy as np

from ..ml.decision_tree import DecisionTree

__all__ = ["SynthesizedQuery", "synthesize_query"]


class SynthesizedQuery:
    """A DNF-of-ranges filter extracted from a session's predictions."""

    def __init__(self, attribute_names, boxes, fidelity):
        self.attribute_names = list(attribute_names)
        self.boxes = boxes              # list of (lo, hi) raw-value arrays
        self.fidelity = fidelity        # agreement with the session, [0,1]
        self._program = None            # lazily compiled packed facet form

    # ------------------------------------------------------------------
    def _compile(self):
        """Lower the DNF of boxes to one packed halfspace program.

        Each box becomes ``2 d`` zero-tolerance facet rows (``x <= hi``,
        ``-x <= -lo``); candidate filtering is then a single matmul plus
        a per-box segment reduction — the same kernel shape as
        :mod:`repro.geometry.engine` — instead of a Python loop over
        disjuncts.
        """
        if self._program is None:
            d = len(self.attribute_names)
            eye = np.eye(d)
            A = np.vstack([np.vstack([eye, -eye]) for _ in self.boxes]) \
                if self.boxes else np.zeros((0, d))
            b = np.concatenate(
                [np.concatenate([-np.asarray(hi, dtype=np.float64),
                                 np.asarray(lo, dtype=np.float64)])
                 for lo, hi in self.boxes]) if self.boxes else np.zeros(0)
            starts = np.arange(0, 2 * d * len(self.boxes), 2 * d,
                               dtype=np.intp)
            self._program = (np.ascontiguousarray(A), b, starts)
        return self._program

    def predicate(self, rows):
        """Evaluate the filter: 0/1 per row (same semantics as the SQL)."""
        rows = np.atleast_2d(np.asarray(rows, dtype=np.float64))
        if not self.boxes or len(rows) == 0:
            return np.zeros(len(rows), dtype=np.int64)
        A, b, starts = self._compile()
        values = rows @ A.T
        values += b
        # NaN attribute values must violate (match the interval test's
        # semantics), hence not-satisfied rather than greater-than.
        violated = ~(values <= 0.0)
        inside = ~np.logical_or.reduceat(violated, starts, axis=1)
        return inside.any(axis=1).astype(np.int64)

    def to_sql(self, table_name="data", precision=6):
        """Render as a SQL SELECT with a WHERE clause in DNF."""
        if not self.boxes:
            return "SELECT * FROM {} WHERE FALSE".format(table_name)
        disjuncts = []
        for lo, hi in self.boxes:
            conjuncts = []
            for name, low, high in zip(self.attribute_names, lo, hi):
                conjuncts.append(
                    "{name} BETWEEN {lo:.{p}g} AND {hi:.{p}g}".format(
                        name=name, lo=low, hi=high, p=precision))
            disjuncts.append("(" + " AND ".join(conjuncts) + ")")
        return "SELECT * FROM {} WHERE {}".format(
            table_name, "\n   OR ".join(disjuncts))

    def __repr__(self):
        return "SynthesizedQuery(boxes={}, fidelity={:.3f})".format(
            len(self.boxes), self.fidelity)


def synthesize_query(session, sample_rows=4000, max_depth=8, seed=0):
    """Extract a SQL-expressible filter approximating a session's UIR.

    Parameters
    ----------
    session:
        A labelled :class:`~repro.core.framework.ExplorationSession`.
    sample_rows:
        Size of the table sample the surrogate tree is fitted on.
    max_depth:
        Surrogate-tree depth (more depth = finer, longer filter).

    Returns
    -------
    :class:`SynthesizedQuery`
    """
    table = session.lte.table
    rows = table.sample_rows(sample_rows, seed=seed)
    predictions = session.predict(rows)
    tree = DecisionTree(max_depth=max_depth).fit(rows, predictions)
    if hasattr(table, "iter_chunks"):
        # Chunk-store table: exact bounds off the zone maps, no
        # materialization.
        lower, upper = table.column_bounds()
    else:
        lower = table.data.min(axis=0)
        upper = table.data.max(axis=0)
    boxes = tree.positive_boxes(lower, upper)
    query = SynthesizedQuery(table.attribute_names, boxes, fidelity=0.0)
    query.fidelity = float(np.mean(query.predicate(rows) == predictions))
    return query
