"""Evaluation metrics for interactive data exploration.

Accuracy in the paper is the F1-score of the inferred user-interest region
against the ground truth; efficiency is the label budget needed to reach a
target F1.  DSM's three-set metric lives with the polytope model in
:mod:`repro.geometry.polytope`.
"""

from __future__ import annotations

import numpy as np

__all__ = ["confusion_counts", "precision_score", "recall_score", "f1_score",
           "accuracy_score", "classification_report"]


def _validate(y_true, y_pred):
    y_true = np.asarray(y_true).ravel().astype(np.int64)
    y_pred = np.asarray(y_pred).ravel().astype(np.int64)
    if y_true.shape != y_pred.shape:
        raise ValueError("shape mismatch: {} vs {}".format(
            y_true.shape, y_pred.shape))
    return y_true, y_pred


def confusion_counts(y_true, y_pred):
    """(tp, fp, fn, tn) for binary 0/1 labels."""
    y_true, y_pred = _validate(y_true, y_pred)
    tp = int(np.sum((y_true == 1) & (y_pred == 1)))
    fp = int(np.sum((y_true == 0) & (y_pred == 1)))
    fn = int(np.sum((y_true == 1) & (y_pred == 0)))
    tn = int(np.sum((y_true == 0) & (y_pred == 0)))
    return tp, fp, fn, tn


def precision_score(y_true, y_pred):
    """tp / (tp + fp); 0.0 when nothing is predicted positive."""
    tp, fp, _, _ = confusion_counts(y_true, y_pred)
    return tp / (tp + fp) if tp + fp else 0.0


def recall_score(y_true, y_pred):
    """tp / (tp + fn); 0.0 when no positives exist."""
    tp, _, fn, _ = confusion_counts(y_true, y_pred)
    return tp / (tp + fn) if tp + fn else 0.0


def f1_score(y_true, y_pred):
    """Harmonic mean of precision and recall (the paper's accuracy metric)."""
    tp, fp, fn, _ = confusion_counts(y_true, y_pred)
    denom = 2 * tp + fp + fn
    return 2 * tp / denom if denom else 0.0


def accuracy_score(y_true, y_pred):
    """Fraction of matching labels; 0.0 on empty input."""
    y_true, y_pred = _validate(y_true, y_pred)
    return float(np.mean(y_true == y_pred)) if y_true.size else 0.0


def classification_report(y_true, y_pred):
    """Dict with all four headline metrics (for harness tables)."""
    return {
        "precision": precision_score(y_true, y_pred),
        "recall": recall_score(y_true, y_pred),
        "f1": f1_score(y_true, y_pred),
        "accuracy": accuracy_score(y_true, y_pred),
    }
