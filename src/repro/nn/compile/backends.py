"""Execution backends for the stacked autograd hot paths.

Both backends implement the same three-method contract behind
``fused_local_adapt`` / ``run_meta_batch_fused`` / ``stacked_predict``:

``local_adapt``
    The fused few-shot optimization loop: ``steps`` iterations of
    per-task-reduced BCE descent over the stacked parameters, leaving
    the last step's gradients on the parameters.
``loss_backward``
    One forward + backward of the summed per-task BCE loss (the
    meta-training global phase and the pooled pretraining step);
    returns the per-task loss vector, leaves gradients on parameters.
``predict_proba``
    Fused no-grad sigmoid probabilities.

:class:`ReferenceBackend` runs the eager autograd engine — it is the
bit-exact oracle.  :class:`FusedBackend` traces the identical program
once per shape-bucket key, compiles it (:mod:`.plan`), and replays the
compiled instruction list; because the replay evaluates the same
float64 ops in the same order over preallocated buffers, its results
are bit-identical, which the ``-m compile`` parity suite asserts.
Programs the compiler cannot prove bit-equal fall back to the
reference path transparently (the key is cached as unsupported).

Gradient-aliasing contract of the fused path: ``param.grad`` arrays
handed back by ``local_adapt`` / ``loss_backward`` are views into the
plan's workspace and stay valid until the next replay of the same
(shape-bucket, hyper-parameter) plan.  Every current consumer reads
them synchronously before the next call, matching the reference
engine's lifetime in practice.
"""

from __future__ import annotations

import numpy as np

from ..functional import batched_binary_cross_entropy_with_logits
from ..optim import SGD, Adam
from ..tensor import Parameter, Tensor, no_grad
from .arena import moment_pool
from .cache import PlanCache
from .plan import compile_plan
from .trace import Tracer, tracing

__all__ = ["Backend", "ReferenceBackend", "FusedBackend"]


def _as_input(array):
    return np.asarray(array, dtype=np.float64)


def _loss_weights(ys, pos_weight):
    """The per-example loss weights the functional's pos_weight branch
    computes internally — replicated here (identical expression) so the
    fused plan can treat them as a per-replay input instead of baking
    trace-time values."""
    if pos_weight is None:
        return None
    pos_weight = np.asarray(pos_weight, dtype=np.float64)
    return np.where(ys == 1.0, np.broadcast_to(pos_weight, ys.shape), 1.0)


class Backend:
    """Abstract executor of the three stacked-program hot paths."""

    name = None

    def local_adapt(self, batched, conversion, features, xs, ys, pos_weight,
                    *, steps, lr, optimizer_kind):
        raise NotImplementedError

    def loss_backward(self, batched, conversion, features, xs, ys,
                      pos_weight):
        raise NotImplementedError

    def predict_proba(self, batched, features, xs, conversion=None):
        raise NotImplementedError

    def __repr__(self):
        return "{}(name={!r})".format(type(self).__name__, self.name)


class ReferenceBackend(Backend):
    """The eager autograd engine — the bit-exact oracle.

    Optimizer moment/velocity buffers are leased from the process-wide
    :func:`moment_pool` instead of reallocated per call, so repeated
    adaptation within one shape bucket is allocation-stable here too.
    """

    name = "reference"

    def local_adapt(self, batched, conversion, features, xs, ys, pos_weight,
                    *, steps, lr, optimizer_kind):
        trainable = list(batched.parameters())
        if conversion is not None:
            trainable.append(conversion)
        shapes = [p.data.shape for p in trainable]
        n_sets = 2 if optimizer_kind == "adam" else 1
        with moment_pool().lease(shapes, n_sets) as sets:
            if optimizer_kind == "adam":
                optimizer = Adam(trainable, lr=lr,
                                 moments=(sets[0], sets[1]))
            else:
                optimizer = SGD(trainable, lr=lr, velocity=sets[0])
            for _ in range(steps):
                optimizer.zero_grad()
                logits = batched.forward(features, xs,
                                         conversion=conversion)
                # Sum of per-task mean losses: block-diagonal, so each
                # task's parameters see exactly their own sequential
                # gradient.
                loss = batched_binary_cross_entropy_with_logits(
                    logits, ys, pos_weight=pos_weight).sum()
                loss.backward()
                optimizer.step()

    def loss_backward(self, batched, conversion, features, xs, ys,
                      pos_weight):
        batched.zero_grad()
        if isinstance(conversion, Parameter):
            conversion.zero_grad()
        logits = batched.forward(features, xs, conversion=conversion)
        task_losses = batched_binary_cross_entropy_with_logits(
            logits, ys, pos_weight=pos_weight)
        task_losses.sum().backward()
        return np.asarray(task_losses.data)

    def predict_proba(self, batched, features, xs, conversion=None):
        if isinstance(conversion, Parameter):
            conversion = conversion.data
        with no_grad():
            logits = batched.forward(features, xs, conversion=conversion)
        return logits.sigmoid().numpy()


class FusedBackend(Backend):
    """Trace-once / replay-many executor over preallocated arenas.

    Plans are cached per (program kind, parameter signature, batch
    shapes, hyper-parameter) key with bounded LRU eviction; learning
    rate and step count are replay-time arguments, so one plan serves
    every ``lr`` / ``steps`` combination of its shape bucket.
    """

    name = "fused"

    def __init__(self, capacity=64):
        from ...obs import MetricsRegistry
        # One registry shared with the plan cache, so a single
        # ``backend.metrics.snapshot()`` covers plans + replay counters.
        self.metrics = MetricsRegistry()
        self.plans = PlanCache(capacity, metrics=self.metrics)
        self.reference = ReferenceBackend()
        self._replays = self.metrics.counter("nn.compile.backend.replays")
        self._fallbacks = self.metrics.counter("nn.compile.backend.fallbacks")

    @property
    def replays(self):
        return self._replays.value

    @replays.setter
    def replays(self, value):
        self._replays.set(value)

    @property
    def fallbacks(self):
        return self._fallbacks.value

    @fallbacks.setter
    def fallbacks(self, value):
        self._fallbacks.set(value)

    # -- the three hot paths -------------------------------------------
    def local_adapt(self, batched, conversion, features, xs, ys, pos_weight,
                    *, steps, lr, optimizer_kind):
        features, xs, ys = (_as_input(features), _as_input(xs),
                            _as_input(ys))
        params = list(batched.named_parameters())
        if conversion is not None:
            params.append(("__conversion__", conversion))
        key = ("adapt", self._param_sig(params), features.shape, xs.shape,
               ys.shape, pos_weight is not None, str(optimizer_kind))
        plan = self.plans.get_or_build(key, lambda: self._build_loss_plan(
            batched, conversion, None, features, xs, ys, pos_weight,
            optimizer="adam" if optimizer_kind == "adam" else "sgd"))
        if plan is PlanCache.UNSUPPORTED:
            self._fallbacks.inc()
            self.reference.local_adapt(
                batched, conversion, features, xs, ys, pos_weight,
                steps=steps, lr=lr, optimizer_kind=optimizer_kind)
            return
        weights = _loss_weights(ys, pos_weight)
        inputs = [features, xs, ys]
        if weights is not None:
            inputs.append(weights)
        with plan.lock:
            plan.bind([param.data for _name, param in params], inputs)
            plan.run_adapt(int(steps), float(lr))
            self._write_back(plan, params, write_params=True)
        self._replays.inc()

    def loss_backward(self, batched, conversion, features, xs, ys,
                      pos_weight):
        features, xs, ys = (_as_input(features), _as_input(xs),
                            _as_input(ys))
        params = list(batched.named_parameters())
        conv_param = conv_input = None
        if isinstance(conversion, Parameter):
            conv_param = conversion
            params.append(("__conversion__", conversion))
        elif conversion is not None:
            conv_input = _as_input(conversion)
        key = ("grad", self._param_sig(params),
               None if conv_input is None else conv_input.shape,
               features.shape, xs.shape, ys.shape, pos_weight is not None)
        plan = self.plans.get_or_build(key, lambda: self._build_loss_plan(
            batched, conv_param, conv_input, features, xs, ys, pos_weight))
        if plan is PlanCache.UNSUPPORTED:
            self._fallbacks.inc()
            return self.reference.loss_backward(
                batched, conversion, features, xs, ys, pos_weight)
        weights = _loss_weights(ys, pos_weight)
        inputs = [features, xs, ys]
        if conv_input is not None:
            inputs.append(conv_input)
        if weights is not None:
            inputs.append(weights)
        with plan.lock:
            plan.bind([param.data for _name, param in params], inputs)
            plan.run_once()
            self._write_back(plan, params, write_params=False)
            losses = plan.outputs["task_losses"].copy()
        self._replays.inc()
        return losses

    def predict_proba(self, batched, features, xs, conversion=None):
        if isinstance(conversion, Parameter):
            conversion = conversion.data
        features, xs = _as_input(features), _as_input(xs)
        conv_input = None if conversion is None else _as_input(conversion)
        params = list(batched.named_parameters())
        key = ("predict", self._param_sig(params),
               None if conv_input is None else conv_input.shape,
               features.shape, xs.shape)
        plan = self.plans.get_or_build(key, lambda: self._build_predict_plan(
            batched, conv_input, features, xs))
        if plan is PlanCache.UNSUPPORTED:
            self._fallbacks.inc()
            return self.reference.predict_proba(batched, features, xs,
                                                conversion=conv_input)
        inputs = [features, xs]
        if conv_input is not None:
            inputs.append(conv_input)
        with plan.lock:
            plan.bind([param.data for _name, param in params], inputs)
            plan.run_once()
            proba = plan.outputs["proba"].copy()
        self._replays.inc()
        return proba

    # -- plan construction ---------------------------------------------
    @staticmethod
    def _param_sig(params):
        return tuple((name, param.data.shape) for name, param in params)

    def _build_loss_plan(self, batched, conv_param, conv_input, features,
                         xs, ys, pos_weight, optimizer=None):
        tracer = Tracer()
        for name, param in batched.named_parameters():
            tracer.register_param(name, param)
        if conv_param is not None:
            tracer.register_param("__conversion__", conv_param)
        tracer.register_input("features", Tensor(features))
        tracer.register_input("xs", Tensor(xs))
        tracer.register_input("ys", Tensor(ys))
        conversion = conv_param
        if conv_input is not None:
            tracer.register_input("conversion", Tensor(conv_input))
            conversion = conv_input
        weights = _loss_weights(ys, pos_weight)
        if weights is not None:
            tracer.register_input("weights", Tensor(weights))
        with tracing(tracer):
            logits = batched.forward(features, xs, conversion=conversion)
            losses = batched_binary_cross_entropy_with_logits(
                logits, ys, pos_weight=None, reduction="none")
            if weights is not None:
                # The same multiply the functional's pos_weight branch
                # performs, with the weights array as a replay input.
                losses = losses * Tensor(weights)
            task_losses = losses.mean(axis=-1)
            loss = task_losses.sum()
        return compile_plan(
            tracer, root=tracer.node_for(loss),
            outputs={"task_losses": tracer.node_for(task_losses)},
            optimizer=optimizer)

    def _build_predict_plan(self, batched, conv_input, features, xs):
        tracer = Tracer()
        for name, param in batched.named_parameters():
            tracer.register_param(name, param)
        tracer.register_input("features", Tensor(features))
        tracer.register_input("xs", Tensor(xs))
        if conv_input is not None:
            tracer.register_input("conversion", Tensor(conv_input))
        with no_grad():
            with tracing(tracer):
                logits = batched.forward(features, xs,
                                         conversion=conv_input)
                proba = logits.sigmoid()
        return compile_plan(tracer,
                            outputs={"proba": tracer.node_for(proba)})

    @staticmethod
    def _write_back(plan, params, write_params):
        # Parameters are rebound to copies (mirroring the reference
        # optimizer's ``param.data = param.data - update`` rebinding);
        # gradients alias plan workspace — see the module docstring for
        # the lifetime contract.  Parameters that received no gradient
        # get ``grad = None`` exactly like the eager engine, which the
        # persistent pretraining Adam relies on to skip their moments.
        if write_params:
            for (_name, param), view in zip(params, plan.param_views):
                param.data = view.copy()
        for (name, param), gview in zip(params, plan.grad_views):
            param.grad = gview if name in plan.received_params else None
