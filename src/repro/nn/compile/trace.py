"""Recording one autograd program as a flat, replayable node graph.

A :class:`Tracer` hooks :meth:`repro.nn.tensor.Tensor._from_op` (via the
module's tracer stack) while the *real* program runs once on real data.
Every op lands as a :class:`Node` carrying exactly what the plan
compiler needs: the op name, the parent nodes in call order, the output
shape, and the two flags the eager engine's backward pass branches on —
``requires_grad`` (may receive gradient) and ``tracked`` (had recorded
parents, i.e. participates in graph traversal).  Replaying the node list
in recording order therefore reproduces the eager forward pass, and
re-running the eager engine's topological sort over the node graph
reproduces its backward accumulation order bit for bit.

Leaves are classified at first sight:

* **inputs** — registered by the backend before tracing (by tensor
  identity *and* by the identity of the wrapped ndarray, because
  functional helpers unwrap ``Tensor.data`` and re-wrap it in a fresh
  Tensor); rebound to fresh values on every replay.
* **params** — registered trainable leaves; bound from ``param.data``
  at the start of each replayed call.
* **consts** — anything else without ``requires_grad`` (e.g. the tiler
  matrix, scalar literals); the traced value is captured by copy and
  baked into the plan.  An unregistered *trainable* leaf aborts the
  trace instead of silently baking a stale parameter.
"""

from __future__ import annotations

import contextlib

import numpy as np

from ..tensor import _pop_tracer, _push_tracer

__all__ = ["TraceError", "Node", "Tracer", "tracing"]


class TraceError(RuntimeError):
    """The traced program used an op the fused executor cannot replay.

    Raising this is not fatal: the fused backend catches it, marks the
    (shape-bucket, hyper-parameter) key as unsupported in its plan
    cache, and transparently falls back to the reference executor.
    """


class Node:
    """One value in the traced program (leaf or op output)."""

    __slots__ = ("idx", "kind", "op", "parents", "attrs", "shape",
                 "requires_grad", "tracked", "const")

    def __init__(self, idx, kind, op, parents, attrs, shape,
                 requires_grad, tracked, const=None):
        self.idx = idx
        self.kind = kind              # "input" | "param" | "const" | "op"
        self.op = op                  # op name, None for leaves
        self.parents = parents        # tuple of Nodes, call order
        self.attrs = attrs or {}
        self.shape = shape
        self.requires_grad = requires_grad
        self.tracked = tracked        # had recorded parents (graph edge)
        self.const = const            # captured value for const leaves

    def __repr__(self):
        return "Node({}, {}, shape={})".format(
            self.idx, self.op or self.kind, self.shape)


class Tracer:
    """Collects the op stream of one program run into a node graph."""

    def __init__(self):
        self.nodes = []
        self.inputs = []              # [(name, Node)] in registration order
        self.params = []              # [(name, Node)] in registration order
        self._by_tensor = {}          # id(Tensor) -> Node
        self._by_array = {}           # id(ndarray) -> Node (input rebinding)
        # Tensors created during the trace are pinned so CPython cannot
        # recycle an id() mid-trace and alias two distinct values.
        self._keepalive = []

    # -- leaf registration (before the traced run) ---------------------
    def register_input(self, name, tensor):
        """Declare a per-replay input (rebound to fresh data each call)."""
        node = self._new_leaf("input", tensor, requires_grad=False)
        self.inputs.append((name, node))
        return node

    def register_param(self, name, tensor):
        """Declare a trainable leaf (bound from ``param.data`` per call)."""
        node = self._new_leaf("param", tensor, requires_grad=True)
        self.params.append((name, node))
        return node

    def _new_leaf(self, kind, tensor, requires_grad, const=None):
        node = Node(len(self.nodes), kind, None, (), None,
                    tensor.data.shape, requires_grad, tracked=False,
                    const=const)
        self.nodes.append(node)
        self._by_tensor[id(tensor)] = node
        self._by_array[id(tensor.data)] = node
        self._keepalive.append(tensor)
        return node

    # -- the Tensor._from_op hook --------------------------------------
    def record(self, out, op, parents, attrs, tracked):
        if op is None:
            raise TraceError("op without a trace name reached the tracer")
        pnodes = tuple(self._node_of(p) for p in parents)
        node = Node(len(self.nodes), "op", op, pnodes, attrs,
                    out.data.shape, out.requires_grad, tracked)
        self.nodes.append(node)
        self._by_tensor[id(out)] = node
        self._keepalive.append(out)

    def _node_of(self, tensor):
        node = self._by_tensor.get(id(tensor))
        if node is not None:
            return node
        # Unwrapped-and-rewrapped input: functional helpers pull out
        # ``Tensor.data`` and wrap it again, preserving array identity.
        node = self._by_array.get(id(tensor.data))
        if node is not None:
            self._by_tensor[id(tensor)] = node
            self._keepalive.append(tensor)
            return node
        if tensor.requires_grad:
            raise TraceError(
                "trace reached an unregistered trainable leaf; register "
                "every parameter before running the program")
        # Plain constant: capture the traced value by copy.
        return self._new_leaf("const", tensor, requires_grad=False,
                              const=tensor.data.copy())

    def node_for(self, tensor):
        """The node a traced output tensor maps to (for plan outputs)."""
        node = self._by_tensor.get(id(tensor))
        if node is None:
            raise TraceError("tensor was not produced under this tracer")
        return node


@contextlib.contextmanager
def tracing(tracer):
    """Install ``tracer`` as the active op hook for the block."""
    _push_tracer(tracer)
    try:
        yield tracer
    finally:
        _pop_tracer(tracer)
