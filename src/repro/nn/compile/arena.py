"""Preallocated workspaces for compiled replay and pooled optimizers.

Two allocators live here:

* :class:`Arena` — the per-plan buffer registry.  Every float64
  workspace a compiled plan replays into (node outputs, gradient
  accumulators, optimizer temporaries) is allocated through one arena at
  compile time, so steady-state replay performs no array allocation at
  all; the arena also reports its footprint for diagnostics.
* :class:`MomentPool` — a bounded LRU pool of optimizer state buffers
  keyed by the parameter-stack shape signature.  ``fused_local_adapt``
  creates a fresh Adam/SGD per invocation; within one serving shape
  bucket those invocations recur thousands of times, so the moment /
  velocity buffers are leased from the pool (and zeroed on adoption by
  the optimizer) instead of reallocated per call.  Leases hold a
  per-entry lock, so two threads adapting the same bucket concurrently
  serialize instead of corrupting each other's optimizer state.
"""

from __future__ import annotations

import contextlib
import threading
from collections import OrderedDict

import numpy as np

__all__ = ["Arena", "MomentPool", "moment_pool"]


class Arena:
    """Registry of plan-owned numpy workspaces (allocate once, replay many)."""

    def __init__(self):
        self._arrays = []

    def empty(self, shape, dtype=np.float64):
        """A new uninitialized workspace owned by this arena."""
        buf = np.empty(shape, dtype=dtype)
        self._arrays.append(buf)
        return buf

    def zeros(self, shape, dtype=np.float64):
        buf = np.zeros(shape, dtype=dtype)
        self._arrays.append(buf)
        return buf

    def ones(self, shape, dtype=np.float64):
        buf = np.ones(shape, dtype=dtype)
        self._arrays.append(buf)
        return buf

    def flat_views(self, shapes, zero=False):
        """One flat float64 buffer carved into contiguous per-shape views.

        Used for parameter / gradient / moment stacks: elementwise
        optimizer updates then run as a handful of ufunc calls over the
        flat buffer instead of a Python loop over parameters, while the
        views serve as the per-parameter operands of the traced program.
        """
        sizes = [int(np.prod(shape, dtype=np.int64)) for shape in shapes]
        flat = self.zeros((int(sum(sizes)),)) if zero \
            else self.empty((int(sum(sizes)),))
        views, offset = [], 0
        for shape, size in zip(shapes, sizes):
            views.append(flat[offset:offset + size].reshape(shape))
            offset += size
        return flat, views

    @property
    def nbytes(self):
        return int(sum(buf.nbytes for buf in self._arrays))

    @property
    def n_buffers(self):
        return len(self._arrays)


class MomentPool:
    """Bounded LRU pool of optimizer state buffers per shape signature.

    Lease counters live in a per-instance ``repro.obs`` registry under
    ``nn.compile.moment_pool.*``; the ``hits`` / ``misses`` /
    ``evictions`` attributes and :meth:`stats` read through to it.
    """

    def __init__(self, capacity=32, metrics=None):
        if capacity < 1:
            raise ValueError("pool capacity must be >= 1")
        self.capacity = int(capacity)
        self._entries = OrderedDict()
        self._lock = threading.Lock()
        if metrics is None:
            from ...obs import MetricsRegistry
            metrics = MetricsRegistry()
        self.metrics = metrics
        self._hits = metrics.counter("nn.compile.moment_pool.hits")
        self._misses = metrics.counter("nn.compile.moment_pool.misses")
        self._evictions = metrics.counter("nn.compile.moment_pool.evictions")

    @property
    def hits(self):
        return self._hits.value

    @hits.setter
    def hits(self, value):
        self._hits.set(value)

    @property
    def misses(self):
        return self._misses.value

    @misses.setter
    def misses(self, value):
        self._misses.set(value)

    @property
    def evictions(self):
        return self._evictions.value

    @evictions.setter
    def evictions(self, value):
        self._evictions.set(value)

    @contextlib.contextmanager
    def lease(self, shapes, n_sets):
        """Lease ``n_sets`` lists of buffers matching ``shapes``.

        The buffers come back with arbitrary contents — the adopting
        optimizer zeroes them — and stay locked for the duration of the
        ``with`` block.  An entry evicted while leased simply lives on
        in its holder and is rebuilt on the next lease of that key.
        """
        key = (tuple(tuple(int(s) for s in shape) for shape in shapes),
               int(n_sets))
        with self._lock:
            entry = self._entries.pop(key, None)
            if entry is None:
                self._misses.inc()
                entry = {
                    "lock": threading.Lock(),
                    "sets": [[np.empty(shape) for shape in shapes]
                             for _ in range(n_sets)],
                }
            else:
                self._hits.inc()
            self._entries[key] = entry
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self._evictions.inc()
        with entry["lock"]:
            yield entry["sets"]

    def stats(self):
        with self._lock:
            return {"entries": len(self._entries),
                    "capacity": self.capacity,
                    "hits": self.hits, "misses": self.misses,
                    "evictions": self.evictions}

    def clear(self):
        with self._lock:
            self._entries.clear()


_MOMENT_POOL = MomentPool()


def moment_pool():
    """The process-wide optimizer buffer pool both backends lease from."""
    return _MOMENT_POOL
