"""Bounded LRU cache of compiled plans, keyed by shape bucket.

Serving buckets and training schedules recur over a small set of
(parameter-stack, batch-shape, hyper-parameter) signatures, so plans are
compiled once per signature and replayed from here.  Keys that fail to
compile (``TraceError``) are cached as :data:`PlanCache.UNSUPPORTED` so
the fused backend falls back to the reference executor without
re-attempting the trace on every call.
"""

from __future__ import annotations

import threading
from collections import OrderedDict

from .trace import TraceError

__all__ = ["PlanCache"]

_MISSING = object()


class PlanCache:
    """Thread-safe LRU mapping of shape-bucket keys to compiled plans.

    Counters live in a per-instance ``repro.obs`` registry under
    ``nn.compile.plan_cache.*`` (the ``hits`` / ``misses`` /
    ``evictions`` / ``unsupported`` attributes and :meth:`stats` read
    through to it); an ``arena_bytes`` gauge tracks the replay-buffer
    footprint of the resident plans.
    """

    #: Sentinel cached for keys whose program cannot be compiled.
    UNSUPPORTED = object()

    def __init__(self, capacity=64, metrics=None):
        if capacity < 1:
            raise ValueError("cache capacity must be >= 1")
        self.capacity = int(capacity)
        self._entries = OrderedDict()
        self._lock = threading.Lock()
        if metrics is None:
            from ...obs import MetricsRegistry
            metrics = MetricsRegistry()
        self.metrics = metrics
        self._hits = metrics.counter("nn.compile.plan_cache.hits")
        self._misses = metrics.counter("nn.compile.plan_cache.misses")
        self._evictions = metrics.counter("nn.compile.plan_cache.evictions")
        self._unsupported = \
            metrics.counter("nn.compile.plan_cache.unsupported")
        self._arena_bytes = metrics.gauge("nn.compile.plan_cache.arena_bytes")

    @property
    def hits(self):
        return self._hits.value

    @hits.setter
    def hits(self, value):
        self._hits.set(value)

    @property
    def misses(self):
        return self._misses.value

    @misses.setter
    def misses(self, value):
        self._misses.set(value)

    @property
    def evictions(self):
        return self._evictions.value

    @evictions.setter
    def evictions(self, value):
        self._evictions.set(value)

    @property
    def unsupported(self):
        return self._unsupported.value

    @unsupported.setter
    def unsupported(self, value):
        self._unsupported.set(value)

    @staticmethod
    def _entry_bytes(entry):
        arena = getattr(entry, "arena", None)
        return getattr(arena, "nbytes", 0) if arena is not None else 0

    def get_or_build(self, key, build):
        """The cached plan for ``key``, compiling via ``build()`` on miss.

        Compilation runs outside the cache lock (it traces a full
        program); if two threads race on one key, the first insert wins
        and the loser adopts it, so a key maps to one plan — and one set
        of replay buffers — at a time.
        """
        with self._lock:
            entry = self._entries.pop(key, _MISSING)
            if entry is not _MISSING:
                self._entries[key] = entry
                self._hits.inc()
                return entry
            self._misses.inc()
        try:
            entry = build()
        except TraceError:
            entry = PlanCache.UNSUPPORTED
        with self._lock:
            if entry is PlanCache.UNSUPPORTED:
                self._unsupported.inc()
            current = self._entries.pop(key, _MISSING)
            if current is not _MISSING:
                entry = current
            else:
                self._arena_bytes.inc(self._entry_bytes(entry))
            self._entries[key] = entry
            while len(self._entries) > self.capacity:
                _, evicted = self._entries.popitem(last=False)
                self._evictions.inc()
                self._arena_bytes.dec(self._entry_bytes(evicted))
        return entry

    def __len__(self):
        with self._lock:
            return len(self._entries)

    def __contains__(self, key):
        with self._lock:
            return key in self._entries

    def stats(self):
        with self._lock:
            return {"entries": len(self._entries),
                    "capacity": self.capacity,
                    "hits": self.hits, "misses": self.misses,
                    "evictions": self.evictions,
                    "unsupported": self.unsupported,
                    "arena_bytes": self._arena_bytes.value}

    def clear(self):
        with self._lock:
            self._entries.clear()
            self._arena_bytes.set(0)
