"""Bounded LRU cache of compiled plans, keyed by shape bucket.

Serving buckets and training schedules recur over a small set of
(parameter-stack, batch-shape, hyper-parameter) signatures, so plans are
compiled once per signature and replayed from here.  Keys that fail to
compile (``TraceError``) are cached as :data:`PlanCache.UNSUPPORTED` so
the fused backend falls back to the reference executor without
re-attempting the trace on every call.
"""

from __future__ import annotations

import threading
from collections import OrderedDict

from .trace import TraceError

__all__ = ["PlanCache"]

_MISSING = object()


class PlanCache:
    """Thread-safe LRU mapping of shape-bucket keys to compiled plans."""

    #: Sentinel cached for keys whose program cannot be compiled.
    UNSUPPORTED = object()

    def __init__(self, capacity=64):
        if capacity < 1:
            raise ValueError("cache capacity must be >= 1")
        self.capacity = int(capacity)
        self._entries = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.unsupported = 0

    def get_or_build(self, key, build):
        """The cached plan for ``key``, compiling via ``build()`` on miss.

        Compilation runs outside the cache lock (it traces a full
        program); if two threads race on one key, the first insert wins
        and the loser adopts it, so a key maps to one plan — and one set
        of replay buffers — at a time.
        """
        with self._lock:
            entry = self._entries.pop(key, _MISSING)
            if entry is not _MISSING:
                self._entries[key] = entry
                self.hits += 1
                return entry
            self.misses += 1
        try:
            entry = build()
        except TraceError:
            entry = PlanCache.UNSUPPORTED
        with self._lock:
            if entry is PlanCache.UNSUPPORTED:
                self.unsupported += 1
            current = self._entries.pop(key, _MISSING)
            if current is not _MISSING:
                entry = current
            self._entries[key] = entry
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1
        return entry

    def __len__(self):
        with self._lock:
            return len(self._entries)

    def __contains__(self, key):
        with self._lock:
            return key in self._entries

    def stats(self):
        with self._lock:
            return {"entries": len(self._entries),
                    "capacity": self.capacity,
                    "hits": self.hits, "misses": self.misses,
                    "evictions": self.evictions,
                    "unsupported": self.unsupported}

    def clear(self):
        with self._lock:
            self._entries.clear()
