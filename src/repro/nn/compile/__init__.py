"""Pluggable compiled execution backends for the stacked hot paths.

``repro.nn.compile`` lets the three stacked-program consumers
(``fused_local_adapt``, the meta/pretraining loss step, and
``stacked_predict``) run on one of two interchangeable executors:

* ``reference`` — the eager autograd engine (the bit-exact oracle);
* ``fused`` — trace-and-replay: each program is traced once per
  (shape-bucket, hyper-parameter) key, compiled to a flat instruction
  list over a preallocated buffer arena, and replayed with in-place
  ufuncs — zero graph construction and near-zero temporary allocation
  in steady state, bit-identical results.

Backend selection: the ``REPRO_NN_BACKEND`` environment variable
(``reference`` | ``fused``, read once at first use), or
:func:`set_backend` / :func:`backend_scope` at runtime.  The default is
``reference``.
"""

from __future__ import annotations

import contextlib
import os
import threading

from .arena import Arena, MomentPool, moment_pool
from .backends import Backend, FusedBackend, ReferenceBackend
from .cache import PlanCache
from .plan import Plan, compile_plan
from .trace import Node, TraceError, Tracer, tracing

__all__ = [
    "get_backend", "set_backend", "backend_scope", "available_backends",
    "Backend", "ReferenceBackend", "FusedBackend",
    "Arena", "MomentPool", "moment_pool", "PlanCache",
    "Plan", "compile_plan", "Node", "TraceError", "Tracer", "tracing",
]

_FACTORIES = {
    "reference": ReferenceBackend,
    "fused": FusedBackend,
}
_LOCK = threading.Lock()
_CURRENT = [None]


def available_backends():
    """Names accepted by :func:`set_backend` / ``REPRO_NN_BACKEND``."""
    return tuple(sorted(_FACTORIES))


def _resolve(backend):
    if isinstance(backend, Backend):
        return backend
    try:
        factory = _FACTORIES[backend]
    except KeyError:
        raise ValueError(
            "unknown nn backend {!r}; expected one of {}".format(
                backend, ", ".join(available_backends()))) from None
    return factory()


def get_backend():
    """The active execution backend (thread-safe, lazily initialized).

    The first call resolves ``REPRO_NN_BACKEND`` (default
    ``reference``); later calls return the same instance until
    :func:`set_backend` replaces it, so plan caches and counters are
    shared by all threads.
    """
    backend = _CURRENT[0]
    if backend is not None:
        return backend
    with _LOCK:
        if _CURRENT[0] is None:
            _CURRENT[0] = _resolve(
                os.environ.get("REPRO_NN_BACKEND", "reference"))
        return _CURRENT[0]


def set_backend(backend):
    """Install a backend by name (``reference`` | ``fused``) or instance.

    Returns the installed instance.
    """
    resolved = _resolve(backend)
    with _LOCK:
        _CURRENT[0] = resolved
    return resolved


@contextlib.contextmanager
def backend_scope(backend):
    """Temporarily install ``backend``, restoring the previous one.

    Swaps the process-global backend — intended for tests and
    benchmarks, not for scoping concurrent workloads to different
    backends.
    """
    previous = get_backend()
    installed = set_backend(backend)
    try:
        yield installed
    finally:
        set_backend(previous)
