"""Compiling a traced program into a flat, allocation-free replay plan.

The compiler walks the :class:`~repro.nn.compile.trace.Tracer` node
graph once and emits a flat list of ``functools.partial`` instructions —
in-place numpy ufunc calls (``out=``) over float64 workspaces owned by a
per-plan :class:`~repro.nn.compile.arena.Arena`.  Replaying the list is
the whole execution: no Tensor objects, no backward closures, no
topological sort, no temporary allocation.

Bit-exactness contract (the reason the fused backend passes the parity
suites): every emitted instruction evaluates *the same floating-point
expression in the same order* as the eager engine —

* forward instructions follow recording order (the eager execution
  order), each ufunc writing into a preallocated buffer (``np.add(a, b,
  out=c)`` produces the same bits as ``a + b``);
* the backward schedule re-runs :meth:`Tensor.backward`'s exact
  iterative topological sort over the traced graph at *compile* time,
  so gradient contributions accumulate in the identical order, with the
  identical ``_unbroadcast`` reduction sequence;
* parameters live as views into one flat stack, so the Adam/SGD update
  runs as a handful of whole-stack ufuncs replicating
  :meth:`repro.nn.optim.Adam.step`'s documented in-place FP order
  (parameters with no gradient keep an all-zero gradient slice, and an
  Adam update under zero moments and zero gradient is exactly ``param
  -= 0.0`` — bit-identical to the reference's skip).

Data-dependent values (relu masks, abs signs, the sigmoid branch) are
recomputed on every replay from the current buffer contents; only
*shapes* and op structure are frozen into the plan.  Ops the compiler
cannot prove bit-equal raise :class:`TraceError`, which the fused
backend turns into a transparent reference fallback.
"""

from __future__ import annotations

import functools
import threading

import numpy as np

from .arena import Arena
from .trace import TraceError

__all__ = ["Plan", "compile_plan"]


def _sigmoid_forward(src, out):
    # Replicates Tensor.sigmoid's two-branch formulation exactly (the
    # branch is data-dependent, so it re-evaluates on every replay).
    pos = src >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-src[pos]))
    exp_x = np.exp(src[~pos])
    out[~pos] = exp_x / (1.0 + exp_x)


def _reshape_copy(out, src, shape):
    np.copyto(out, src.reshape(shape))


class Plan:
    """A compiled program: preallocated buffers plus a flat instruction list.

    Replays are guarded by :attr:`lock` — the buffers are plan-owned, so
    two threads replaying one plan concurrently must serialize.  Arrays
    handed out by a replay (parameter/gradient views, output buffers)
    stay valid only until the next replay of the *same* plan.
    """

    def __init__(self, arena, instrs, param_names, param_flat, param_views,
                 grad_flat, grad_views, received_params, input_bufs,
                 outputs, optimizer=None, betas=(0.9, 0.999), eps=1e-8):
        self.arena = arena
        self.instrs = instrs
        self.param_names = param_names
        self.param_flat = param_flat
        self.param_views = param_views
        self.grad_flat = grad_flat
        self.grad_views = grad_views
        self.received_params = received_params
        self.input_bufs = input_bufs          # [(name, buffer)]
        self.outputs = outputs                # {name: buffer}
        self.lock = threading.Lock()
        self.replays = 0
        self.optimizer = optimizer
        if optimizer is not None:
            self.beta1, self.beta2 = betas
            self.eps = eps
            size = param_flat.shape
            self._upd = arena.empty(size)
            self._den = arena.empty(size)
            if optimizer == "adam":
                self._m = arena.empty(size)
                self._v = arena.empty(size)

    # -- binding -------------------------------------------------------
    def bind(self, param_arrays, input_arrays):
        """Copy current parameter values and fresh inputs into the plan."""
        for view, array in zip(self.param_views, param_arrays):
            np.copyto(view, array)
        for (_name, buf), array in zip(self.input_bufs, input_arrays):
            np.copyto(buf, array)

    # -- replay --------------------------------------------------------
    def run_once(self):
        """One forward (+ compiled backward) sweep over the buffers."""
        for instr in self.instrs:
            instr()
        self.replays += 1

    def run_adapt(self, steps, lr):
        """``steps`` iterations of forward/backward + optimizer update.

        Mirrors a fresh per-call optimizer: moments restart at zero and
        the bias-correction step count restarts at 1.
        """
        if self.optimizer == "adam":
            self._m.fill(0.0)
            self._v.fill(0.0)
            for t in range(1, steps + 1):
                self.run_once()
                self._adam_step(t, lr)
        else:
            for _ in range(steps):
                self.run_once()
                self._sgd_step(lr)

    def _adam_step(self, t, lr):
        # Whole-stack replica of Adam.step's documented in-place FP
        # order; zero-gradient slices update by exactly 0.0.
        b1, b2 = self.beta1, self.beta2
        m, v = self._m, self._v
        g, p = self.grad_flat, self.param_flat
        upd, den = self._upd, self._den
        bias1 = 1.0 - b1 ** t
        bias2 = 1.0 - b2 ** t
        np.multiply(m, b1, out=m)
        np.multiply(g, 1 - b1, out=upd)
        np.add(m, upd, out=m)
        np.multiply(v, b2, out=v)
        np.power(g, 2, out=upd)
        np.multiply(upd, 1 - b2, out=upd)
        np.add(v, upd, out=v)
        np.divide(m, bias1, out=upd)
        np.multiply(upd, lr, out=upd)
        np.divide(v, bias2, out=den)
        np.sqrt(den, out=den)
        np.add(den, self.eps, out=den)
        np.divide(upd, den, out=upd)
        np.subtract(p, upd, out=p)

    def _sgd_step(self, lr):
        # fused_local_adapt always builds momentum-0 SGD.
        np.multiply(self.grad_flat, lr, out=self._upd)
        np.subtract(self.param_flat, self._upd, out=self.param_flat)


class _Builder:
    def __init__(self, tracer):
        self.tracer = tracer
        self.arena = Arena()
        self.instrs = []
        self.buf = {}        # node.idx -> forward value buffer / view
        self.gradbuf = {}    # node.idx -> gradient accumulator
        self.aux = {}        # node.idx -> auxiliary buffers (masks, signs)
        self._received = set()

    def _emit(self, fn, *args, **kwargs):
        self.instrs.append(functools.partial(fn, *args, **kwargs))

    # -- entry ---------------------------------------------------------
    def build(self, root, outputs, optimizer, betas, eps):
        tracer = self.tracer
        param_names = [name for name, _node in tracer.params]
        param_shapes = [node.shape for _name, node in tracer.params]
        param_flat, param_views = self.arena.flat_views(param_shapes)
        grad_flat, grad_views = self.arena.flat_views(param_shapes,
                                                      zero=True)
        for (_name, node), view, gview in zip(tracer.params, param_views,
                                              grad_views):
            self.buf[node.idx] = view
            self.gradbuf[node.idx] = gview
        input_bufs = []
        for name, node in tracer.inputs:
            buf = self.arena.empty(node.shape)
            self.buf[node.idx] = buf
            input_bufs.append((name, buf))
        for node in tracer.nodes:
            if node.kind == "const":
                self.buf[node.idx] = node.const
        for node in tracer.nodes:
            if node.kind == "op":
                self._emit_forward(node)
        if root is not None:
            self._compile_backward(root)
        received_params = frozenset(
            name for name, node in tracer.params
            if node.idx in self._received)
        out_bufs = {name: self.buf[node.idx]
                    for name, node in outputs.items()}
        return Plan(self.arena, self.instrs, param_names, param_flat,
                    param_views, grad_flat, grad_views, received_params,
                    input_bufs, out_bufs, optimizer=optimizer,
                    betas=betas, eps=eps)

    # -- forward -------------------------------------------------------
    def _emit_forward(self, node):
        op = node.op
        bufs = [self.buf[p.idx] for p in node.parents]
        shape = node.shape
        if op in ("reshape", "swapaxes", "transpose"):
            src = bufs[0]
            if op == "swapaxes":
                view = np.swapaxes(src, node.attrs["axis1"],
                                   node.attrs["axis2"])
            elif op == "transpose":
                view = src.T
            else:
                view = src.reshape(shape)
                if not np.shares_memory(view, src):
                    # Non-contiguous source: reshape copies, so it must
                    # re-run per replay instead of aliasing.
                    out = self.arena.empty(shape)
                    self.buf[node.idx] = out
                    self._emit(_reshape_copy, out, src, shape)
                    return
            self.buf[node.idx] = view
            return
        out = self.arena.empty(shape)
        self.buf[node.idx] = out
        if op == "add":
            self._emit(np.add, bufs[0], bufs[1], out=out)
        elif op == "sub":
            self._emit(np.subtract, bufs[0], bufs[1], out=out)
        elif op == "mul":
            self._emit(np.multiply, bufs[0], bufs[1], out=out)
        elif op == "div":
            self._emit(np.divide, bufs[0], bufs[1], out=out)
        elif op == "neg":
            self._emit(np.negative, bufs[0], out=out)
        elif op == "pow":
            self._emit(np.power, bufs[0], node.attrs["exponent"], out=out)
        elif op == "matmul":
            self._emit(np.matmul, bufs[0], bufs[1], out=out)
        elif op == "relu":
            mask = self.arena.empty(node.parents[0].shape, dtype=bool)
            self.aux[node.idx] = mask
            self._emit(np.greater, bufs[0], 0, out=mask)
            self._emit(np.multiply, bufs[0], mask, out=out)
        elif op == "sigmoid":
            self._emit(_sigmoid_forward, bufs[0], out)
        elif op == "tanh":
            self._emit(np.tanh, bufs[0], out=out)
        elif op == "exp":
            self._emit(np.exp, bufs[0], out=out)
        elif op == "log":
            self._emit(np.log, bufs[0], out=out)
        elif op == "sqrt":
            self._emit(np.sqrt, bufs[0], out=out)
        elif op == "abs":
            sign = self.arena.empty(node.parents[0].shape)
            self.aux[node.idx] = sign
            self._emit(np.sign, bufs[0], out=sign)
            self._emit(np.absolute, bufs[0], out=out)
        elif op == "sum":
            self._emit(np.sum, bufs[0], axis=node.attrs["axis"],
                       keepdims=node.attrs["keepdims"], out=out)
        elif op == "mean":
            self._emit(np.mean, bufs[0], axis=node.attrs["axis"],
                       keepdims=node.attrs["keepdims"], out=out)
        elif op == "concat":
            self._emit(np.concatenate, bufs, axis=node.attrs["axis"],
                       out=out)
        else:
            raise TraceError(
                "fused executor cannot replay op {!r}".format(op))

    # -- backward ------------------------------------------------------
    def _compile_backward(self, root):
        seed = self.arena.ones(root.shape)
        self.gradbuf[root.idx] = seed
        self._received.add(root.idx)
        order = self._toposort(root)
        for node in reversed(order):
            if node.idx not in self._received:
                continue
            if node.kind != "op" or not node.tracked:
                continue
            self._emit_backward(node)

    def _toposort(self, root):
        # Byte-for-byte the traversal of Tensor.backward, so the
        # reversed order — and with it every gradient accumulation
        # order — matches the eager engine.
        order, seen = [], set()
        stack = [(root, False)]
        while stack:
            cur, processed = stack.pop()
            if processed:
                order.append(cur)
                continue
            if cur.idx in seen:
                continue
            seen.add(cur.idx)
            stack.append((cur, True))
            parents = cur.parents if cur.tracked else ()
            for parent in parents:
                if parent.idx not in seen:
                    stack.append((parent, False))
        return order

    def _grad_target(self, node):
        buf = self.gradbuf.get(node.idx)
        if buf is None:
            buf = self.arena.empty(node.shape)
            self.gradbuf[node.idx] = buf
        return buf

    def _contrib_ref(self, parent, src):
        """Accumulate an existing buffer/view (broadcastable up) as a
        gradient contribution, replicating first-write-then-add."""
        dst = self._grad_target(parent)
        if parent.idx in self._received:
            self._emit(np.add, dst, src, out=dst)
        else:
            self._emit(np.copyto, dst, src)
            self._received.add(parent.idx)

    def _contrib(self, parent, raw_shape, emit_raw):
        """Accumulate a computed contribution.

        ``emit_raw(dst)`` emits instructions writing the raw gradient
        (shape ``raw_shape``) into ``dst``; an ``_unbroadcast``
        reduction chain is appended when the parent is smaller.
        """
        raw_shape = tuple(raw_shape)
        if raw_shape == tuple(parent.shape):
            dst = self._grad_target(parent)
            if parent.idx in self._received:
                tmp = self.arena.empty(raw_shape)
                emit_raw(tmp)
                self._emit(np.add, dst, tmp, out=dst)
            else:
                emit_raw(dst)
                self._received.add(parent.idx)
        else:
            tmp = self.arena.empty(raw_shape)
            emit_raw(tmp)
            self._contrib_ref(parent,
                              self._emit_unbroadcast(tmp, parent.shape))

    def _contrib_down(self, parent, src):
        """A pass-through contribution (raw gradient is ``src`` itself)."""
        if tuple(src.shape) == tuple(parent.shape):
            self._contrib_ref(parent, src)
        else:
            self._contrib_ref(parent,
                              self._emit_unbroadcast(src, parent.shape))

    def _emit_unbroadcast(self, buf, shape):
        """Emit the exact reduction sequence of ``tensor._unbroadcast``."""
        shape = tuple(shape)
        cur, cur_shape = buf, tuple(buf.shape)
        extra = len(cur_shape) - len(shape)
        if extra > 0:
            nxt_shape = cur_shape[extra:]
            nxt = self.arena.empty(nxt_shape)
            self._emit(np.sum, cur, axis=tuple(range(extra)), out=nxt)
            cur, cur_shape = nxt, nxt_shape
        axes = tuple(i for i, s in enumerate(shape)
                     if s == 1 and cur_shape[i] != 1)
        if axes:
            nxt_shape = tuple(1 if i in axes else s
                              for i, s in enumerate(cur_shape))
            nxt = self.arena.empty(nxt_shape)
            self._emit(np.sum, cur, axis=axes, keepdims=True, out=nxt)
            cur, cur_shape = nxt, nxt_shape
        return cur.reshape(shape)

    def _emit_backward(self, node):
        g = self.gradbuf[node.idx]
        op = node.op
        ps = node.parents
        out = self.buf[node.idx]
        if op == "add":
            for parent in ps:
                if parent.requires_grad:
                    self._contrib_down(parent, g)
        elif op == "sub":
            a, b = ps
            if a.requires_grad:
                self._contrib_down(a, g)
            if b.requires_grad:
                self._contrib(b, g.shape, lambda dst: self._emit(
                    np.negative, g, out=dst))
        elif op == "neg":
            if ps[0].requires_grad:
                self._contrib(ps[0], g.shape, lambda dst: self._emit(
                    np.negative, g, out=dst))
        elif op == "mul":
            a, b = ps
            abuf, bbuf = self.buf[a.idx], self.buf[b.idx]
            if a.requires_grad:
                self._contrib(a, g.shape, lambda dst: self._emit(
                    np.multiply, g, bbuf, out=dst))
            if b.requires_grad:
                self._contrib(b, g.shape, lambda dst: self._emit(
                    np.multiply, g, abuf, out=dst))
        elif op == "div":
            a, b = ps
            abuf, bbuf = self.buf[a.idx], self.buf[b.idx]
            if a.requires_grad:
                self._contrib(a, g.shape, lambda dst: self._emit(
                    np.divide, g, bbuf, out=dst))
            if b.requires_grad:
                tb = self.arena.empty(b.shape)

                def raw(dst):
                    # ((-grad) * a) / (b ** 2), the reference FP order
                    self._emit(np.negative, g, out=dst)
                    self._emit(np.multiply, dst, abuf, out=dst)
                    self._emit(np.power, bbuf, 2, out=tb)
                    self._emit(np.divide, dst, tb, out=dst)
                self._contrib(b, g.shape, raw)
        elif op == "pow":
            if ps[0].requires_grad:
                abuf = self.buf[ps[0].idx]
                exponent = node.attrs["exponent"]
                ta = self.arena.empty(ps[0].shape)

                def raw(dst):
                    # ((grad * e) * a ** (e - 1)), the reference FP order
                    self._emit(np.multiply, g, exponent, out=dst)
                    self._emit(np.power, abuf, exponent - 1, out=ta)
                    self._emit(np.multiply, dst, ta, out=dst)
                self._contrib(ps[0], g.shape, raw)
        elif op == "matmul":
            self._emit_matmul_backward(node, g)
        elif op == "relu":
            if ps[0].requires_grad:
                mask = self.aux[node.idx]
                self._contrib(ps[0], g.shape, lambda dst: self._emit(
                    np.multiply, g, mask, out=dst))
        elif op == "sigmoid":
            if ps[0].requires_grad:
                t = self.arena.empty(node.shape)

                def raw(dst):
                    # (grad * out) * (1.0 - out)
                    self._emit(np.multiply, g, out, out=dst)
                    self._emit(np.subtract, 1.0, out, out=t)
                    self._emit(np.multiply, dst, t, out=dst)
                self._contrib(ps[0], g.shape, raw)
        elif op == "tanh":
            if ps[0].requires_grad:
                t = self.arena.empty(node.shape)

                def raw(dst):
                    # grad * (1.0 - out ** 2)
                    self._emit(np.power, out, 2, out=t)
                    self._emit(np.subtract, 1.0, t, out=t)
                    self._emit(np.multiply, g, t, out=dst)
                self._contrib(ps[0], g.shape, raw)
        elif op == "exp":
            if ps[0].requires_grad:
                self._contrib(ps[0], g.shape, lambda dst: self._emit(
                    np.multiply, g, out, out=dst))
        elif op == "log":
            if ps[0].requires_grad:
                abuf = self.buf[ps[0].idx]
                self._contrib(ps[0], g.shape, lambda dst: self._emit(
                    np.divide, g, abuf, out=dst))
        elif op == "sqrt":
            if ps[0].requires_grad:
                def raw(dst):
                    # (grad * 0.5) / out
                    self._emit(np.multiply, g, 0.5, out=dst)
                    self._emit(np.divide, dst, out, out=dst)
                self._contrib(ps[0], g.shape, raw)
        elif op == "abs":
            if ps[0].requires_grad:
                sign = self.aux[node.idx]
                self._contrib(ps[0], g.shape, lambda dst: self._emit(
                    np.multiply, g, sign, out=dst))
        elif op == "sum":
            if ps[0].requires_grad:
                axis, keepdims = node.attrs["axis"], node.attrs["keepdims"]
                gsrc = g
                if axis is not None and not keepdims:
                    gsrc = np.expand_dims(g, axis)
                self._contrib_ref(ps[0], gsrc)
        elif op == "mean":
            if ps[0].requires_grad:
                axis, keepdims = node.attrs["axis"], node.attrs["keepdims"]
                count = node.attrs["count"]
                t = self.arena.empty(node.shape)
                self._emit(np.divide, g, count, out=t)
                gsrc = t
                if axis is not None and not keepdims:
                    gsrc = np.expand_dims(t, axis)
                self._contrib_ref(ps[0], gsrc)
        elif op == "reshape":
            if ps[0].requires_grad:
                self._contrib_ref(ps[0], g.reshape(ps[0].shape))
        elif op == "swapaxes":
            if ps[0].requires_grad:
                self._contrib_ref(ps[0], np.swapaxes(
                    g, node.attrs["axis1"], node.attrs["axis2"]))
        elif op == "transpose":
            if ps[0].requires_grad:
                self._contrib_ref(ps[0], g.T)
        elif op == "concat":
            pieces = np.split(g, node.attrs["splits"],
                              axis=node.attrs["axis"])
            for parent, piece in zip(ps, pieces):
                if parent.requires_grad:
                    self._contrib_ref(parent, piece)
        else:
            raise TraceError(
                "fused executor cannot differentiate op {!r}".format(op))

    def _emit_matmul_backward(self, node, g):
        a, b = node.parents
        abuf, bbuf = self.buf[a.idx], self.buf[b.idx]
        an, bn = len(a.shape), len(b.shape)
        if an == 1 and bn == 1:
            if a.requires_grad:
                self._contrib(a, a.shape, lambda dst: self._emit(
                    np.multiply, g, bbuf, out=dst))
            if b.requires_grad:
                self._contrib(b, b.shape, lambda dst: self._emit(
                    np.multiply, g, abuf, out=dst))
            return
        if an == 1:
            if a.requires_grad:
                self._contrib(a, a.shape, lambda dst: self._emit(
                    np.matmul, g, bbuf.T, out=dst))
            if b.requires_grad:
                self._contrib(b, b.shape, lambda dst: self._emit(
                    np.outer, abuf, g, out=dst))
            return
        if bn == 1:
            if a.requires_grad:
                self._contrib(a, a.shape, lambda dst: self._emit(
                    np.outer, g, bbuf, out=dst))
            if b.requires_grad:
                self._contrib(b, b.shape, lambda dst: self._emit(
                    np.matmul, abuf.T, g, out=dst))
            return
        if a.requires_grad:
            bT = np.swapaxes(bbuf, -1, -2)
            raw_shape = np.broadcast_shapes(
                g.shape[:-2], bT.shape[:-2]) + (g.shape[-2], bT.shape[-1])
            self._contrib(a, raw_shape, lambda dst: self._emit(
                np.matmul, g, bT, out=dst))
        if b.requires_grad:
            aT = np.swapaxes(abuf, -1, -2)
            raw_shape = np.broadcast_shapes(
                aT.shape[:-2], g.shape[:-2]) + (aT.shape[-2], g.shape[-1])
            self._contrib(b, raw_shape, lambda dst: self._emit(
                np.matmul, aT, g, out=dst))


def compile_plan(tracer, *, root=None, outputs=None, optimizer=None,
                 betas=(0.9, 0.999), eps=1e-8):
    """Compile a traced graph into a :class:`Plan`.

    ``root`` names the scalar loss node to differentiate (omit for
    forward-only plans); ``outputs`` maps result names to traced nodes;
    ``optimizer`` bakes an in-plan ``"adam"`` / ``"sgd"`` update for
    :meth:`Plan.run_adapt`.  Raises :class:`TraceError` when the graph
    contains an op the fused executor cannot replay bit-exactly.
    """
    return _Builder(tracer).build(root, outputs or {}, optimizer,
                                  betas, eps)
