"""Gradient-descent optimizers for the NN substrate.

``SGD`` performs the plain update of Eq. 12 (local, learning rate rho) and
Eq. 13 (global, learning rate lambda); ``Adam`` is provided for the Basic
(non-meta) classifier which in the paper is trained conventionally.
"""

from __future__ import annotations

import numpy as np

__all__ = ["Optimizer", "SGD", "Adam"]


class Optimizer:
    """Base optimizer over an explicit parameter list."""

    def __init__(self, params, lr):
        self.params = list(params)
        if not self.params:
            raise ValueError("optimizer got an empty parameter list")
        if lr <= 0:
            raise ValueError("learning rate must be positive, got {}".format(lr))
        self.lr = lr

    def zero_grad(self):
        for param in self.params:
            param.zero_grad()

    def step(self):
        raise NotImplementedError

    # -- state dict protocol ---------------------------------------------
    def state_dict(self):
        """Checkpointable optimizer state (hyper-params + buffers).

        Parameter *values* are not included — they belong to the module's
        own ``state_dict``; this captures everything else needed so that
        ``load_state_dict`` followed by further ``step`` calls is
        bit-identical to never having serialized at all.
        """
        return {"kind": type(self).__name__.lower(), "lr": float(self.lr)}

    def load_state_dict(self, state):
        """Restore buffers written by :meth:`state_dict` (in place)."""
        if state.get("kind") != type(self).__name__.lower():
            raise ValueError("optimizer state is for {!r}, not {!r}".format(
                state.get("kind"), type(self).__name__.lower()))
        self.lr = float(state["lr"])

    def _check_buffers(self, buffers, name):
        if len(buffers) != len(self.params):
            raise ValueError(
                "optimizer state has {} {} buffers for {} parameters"
                .format(len(buffers), name, len(self.params)))
        for buffer, param in zip(buffers, self.params):
            if np.shape(buffer) != param.data.shape:
                raise ValueError(
                    "{} buffer shape {} does not match parameter shape {}"
                    .format(name, np.shape(buffer), param.data.shape))


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum."""

    def __init__(self, params, lr, momentum=0.0, velocity=None):
        super().__init__(params, lr)
        if not 0.0 <= momentum < 1.0:
            raise ValueError("momentum must be in [0, 1)")
        self.momentum = momentum
        if velocity is None:
            self._velocity = [np.zeros_like(p.data) for p in self.params]
        else:
            # Adopted (pooled) buffers: validated, zeroed in place, and
            # updated in place — the lender sees this optimizer's state.
            self._check_buffers(velocity, "velocity")
            self._velocity = list(velocity)
            for buffer in self._velocity:
                buffer.fill(0.0)

    def state_dict(self):
        state = super().state_dict()
        state["momentum"] = float(self.momentum)
        state["velocity"] = [v.copy() for v in self._velocity]
        return state

    def load_state_dict(self, state):
        super().load_state_dict(state)
        self._check_buffers(state["velocity"], "velocity")
        self.momentum = float(state["momentum"])
        self._velocity = [np.asarray(v, dtype=np.float64).copy()
                         for v in state["velocity"]]

    def step(self):
        for param, velocity in zip(self.params, self._velocity):
            if param.grad is None:
                continue
            if self.momentum:
                velocity *= self.momentum
                velocity += param.grad
                update = velocity
            else:
                update = param.grad
            param.data = param.data - self.lr * update


class Adam(Optimizer):
    """Adam (Kingma & Ba, 2015)."""

    def __init__(self, params, lr=1e-3, betas=(0.9, 0.999), eps=1e-8,
                 moments=None):
        super().__init__(params, lr)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self._step = 0
        if moments is None:
            self._m = [np.zeros_like(p.data) for p in self.params]
            self._v = [np.zeros_like(p.data) for p in self.params]
        else:
            # Adopted (pooled) first/second-moment buffers: validated,
            # zeroed in place, and updated in place.  A fresh-constructed
            # Adam over pooled buffers is therefore bit-identical to one
            # over newly allocated zeros.
            m_buffers, v_buffers = moments
            self._check_buffers(m_buffers, "first-moment")
            self._check_buffers(v_buffers, "second-moment")
            self._m = list(m_buffers)
            self._v = list(v_buffers)
            for buffer in self._m:
                buffer.fill(0.0)
            for buffer in self._v:
                buffer.fill(0.0)

    def state_dict(self):
        state = super().state_dict()
        state.update({
            "beta1": float(self.beta1), "beta2": float(self.beta2),
            "eps": float(self.eps), "step": int(self._step),
            "m": [m.copy() for m in self._m],
            "v": [v.copy() for v in self._v],
        })
        return state

    def load_state_dict(self, state):
        super().load_state_dict(state)
        self._check_buffers(state["m"], "first-moment")
        self._check_buffers(state["v"], "second-moment")
        self.beta1 = float(state["beta1"])
        self.beta2 = float(state["beta2"])
        self.eps = float(state["eps"])
        self._step = int(state["step"])
        self._m = [np.asarray(m, dtype=np.float64).copy()
                   for m in state["m"]]
        self._v = [np.asarray(v, dtype=np.float64).copy()
                   for v in state["v"]]

    def step(self):
        self._step += 1
        b1, b2 = self.beta1, self.beta2
        bias1 = 1.0 - b1 ** self._step
        bias2 = 1.0 - b2 ** self._step
        for param, m, v in zip(self.params, self._m, self._v):
            if param.grad is None:
                continue
            m *= b1
            m += (1 - b1) * param.grad
            v *= b2
            v += (1 - b2) * param.grad ** 2
            # In-place evaluation of
            #   param - (lr * (m / bias1)) / (sqrt(v / bias2) + eps)
            # in exactly that floating-point order — the serving layer's
            # parity guarantee relies on sequential and batched updates
            # producing identical bits, so only the temporaries differ.
            update = m / bias1
            update *= self.lr
            denom = v / bias2
            np.sqrt(denom, out=denom)
            denom += self.eps
            update /= denom
            param.data = param.data - update
