"""Gradient-descent optimizers for the NN substrate.

``SGD`` performs the plain update of Eq. 12 (local, learning rate rho) and
Eq. 13 (global, learning rate lambda); ``Adam`` is provided for the Basic
(non-meta) classifier which in the paper is trained conventionally.
"""

from __future__ import annotations

import numpy as np

__all__ = ["Optimizer", "SGD", "Adam"]


class Optimizer:
    """Base optimizer over an explicit parameter list."""

    def __init__(self, params, lr):
        self.params = list(params)
        if not self.params:
            raise ValueError("optimizer got an empty parameter list")
        if lr <= 0:
            raise ValueError("learning rate must be positive, got {}".format(lr))
        self.lr = lr

    def zero_grad(self):
        for param in self.params:
            param.zero_grad()

    def step(self):
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum."""

    def __init__(self, params, lr, momentum=0.0):
        super().__init__(params, lr)
        if not 0.0 <= momentum < 1.0:
            raise ValueError("momentum must be in [0, 1)")
        self.momentum = momentum
        self._velocity = [np.zeros_like(p.data) for p in self.params]

    def step(self):
        for param, velocity in zip(self.params, self._velocity):
            if param.grad is None:
                continue
            if self.momentum:
                velocity *= self.momentum
                velocity += param.grad
                update = velocity
            else:
                update = param.grad
            param.data = param.data - self.lr * update


class Adam(Optimizer):
    """Adam (Kingma & Ba, 2015)."""

    def __init__(self, params, lr=1e-3, betas=(0.9, 0.999), eps=1e-8):
        super().__init__(params, lr)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self._step = 0
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]

    def step(self):
        self._step += 1
        b1, b2 = self.beta1, self.beta2
        bias1 = 1.0 - b1 ** self._step
        bias2 = 1.0 - b2 ** self._step
        for param, m, v in zip(self.params, self._m, self._v):
            if param.grad is None:
                continue
            m *= b1
            m += (1 - b1) * param.grad
            v *= b2
            v += (1 - b2) * param.grad ** 2
            # In-place evaluation of
            #   param - (lr * (m / bias1)) / (sqrt(v / bias2) + eps)
            # in exactly that floating-point order — the serving layer's
            # parity guarantee relies on sequential and batched updates
            # producing identical bits, so only the temporaries differ.
            update = m / bias1
            update *= self.lr
            denom = v / bias2
            np.sqrt(denom, out=denom)
            denom += self.eps
            update /= denom
            param.data = param.data - update
