"""From-scratch neural-network substrate (autograd, layers, optimizers).

The paper implements its meta-learner on PyTorch; this package provides the
equivalent functionality on plain numpy so the reproduction has no deep
learning framework dependency.  See DESIGN.md section 2.
"""

from . import functional, init
from .layers import MLP, Linear, Module, ReLU, Sequential, Sigmoid
from .optim import Adam, Optimizer, SGD
from .tensor import Parameter, Tensor, no_grad

__all__ = [
    "Tensor", "Parameter", "no_grad",
    "Module", "Linear", "ReLU", "Sigmoid", "Sequential", "MLP",
    "Optimizer", "SGD", "Adam",
    "functional", "init",
]
