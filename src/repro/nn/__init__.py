"""From-scratch neural-network substrate (autograd, layers, optimizers).

The paper implements its meta-learner on PyTorch; this package provides the
equivalent functionality on plain numpy so the reproduction has no deep
learning framework dependency.  See DESIGN.md section 2.
"""

from . import compile, functional, init
from .batching import (BatchedUISClassifier, fused_local_adapt, grad_stacks,
                       load_flat_stack, stack_conversions, stacked_predict,
                       theta_r_grad_stack)
from .compile import backend_scope, get_backend, set_backend
from .layers import (MLP, BatchedLinear, Linear, Module, ReLU, Sequential,
                     Sigmoid, batch_modules, unstack_modules)
from .optim import Adam, Optimizer, SGD
from .tensor import Parameter, Tensor, no_grad

__all__ = [
    "Tensor", "Parameter", "no_grad",
    "Module", "Linear", "ReLU", "Sigmoid", "Sequential", "MLP",
    "BatchedLinear", "batch_modules", "unstack_modules",
    "BatchedUISClassifier", "fused_local_adapt", "stack_conversions",
    "load_flat_stack", "theta_r_grad_stack", "grad_stacks", "stacked_predict",
    "Optimizer", "SGD", "Adam",
    "get_backend", "set_backend", "backend_scope",
    "functional", "init", "compile",
]
