"""From-scratch neural-network substrate (autograd, layers, optimizers).

The paper implements its meta-learner on PyTorch; this package provides the
equivalent functionality on plain numpy so the reproduction has no deep
learning framework dependency.  See DESIGN.md section 2.
"""

from . import functional, init
from .layers import (MLP, BatchedLinear, Linear, Module, ReLU, Sequential,
                     Sigmoid, batch_modules, unstack_modules)
from .optim import Adam, Optimizer, SGD
from .tensor import Parameter, Tensor, no_grad

__all__ = [
    "Tensor", "Parameter", "no_grad",
    "Module", "Linear", "ReLU", "Sigmoid", "Sequential", "MLP",
    "BatchedLinear", "batch_modules", "unstack_modules",
    "Optimizer", "SGD", "Adam",
    "functional", "init",
]
