"""Reverse-mode automatic differentiation on numpy arrays.

This module is the foundation of the neural-network substrate used by the
LTE meta-learner.  It implements a small but complete autograd engine:
a :class:`Tensor` wraps a numpy array and records the operations applied to
it; calling :meth:`Tensor.backward` propagates gradients to every tensor
with ``requires_grad=True`` via a topological sort of the recorded graph.

The design mirrors the core of PyTorch's autograd (which the paper's
implementation relies on) at a fraction of the surface area, and is verified
against numerical differentiation in ``tests/nn/test_gradcheck.py``.
"""

from __future__ import annotations

import contextlib

import numpy as np

__all__ = ["Tensor", "Parameter", "no_grad", "is_grad_enabled"]

_GRAD_ENABLED = [True]

# Active op tracers (innermost last).  Installed by repro.nn.compile
# while it records a program; every ``Tensor._from_op`` call reports the
# op name, parents and attributes to the top tracer.  Kept as a plain
# module-level list so the non-tracing hot path pays only one truthiness
# check.
_TRACERS = []


def _push_tracer(tracer):
    """Activate an op tracer (see :mod:`repro.nn.compile.trace`)."""
    _TRACERS.append(tracer)


def _pop_tracer(tracer):
    """Deactivate ``tracer``; must be the innermost active one."""
    if not _TRACERS or _TRACERS[-1] is not tracer:
        raise RuntimeError("tracer stack corrupted")
    _TRACERS.pop()


@contextlib.contextmanager
def no_grad():
    """Context manager disabling graph construction (inference mode)."""
    _GRAD_ENABLED.append(False)
    try:
        yield
    finally:
        _GRAD_ENABLED.pop()


def is_grad_enabled():
    """Return True when operations should record the autograd graph."""
    return _GRAD_ENABLED[-1]


def _unbroadcast(grad, shape):
    """Sum ``grad`` down to ``shape``, undoing numpy broadcasting."""
    if grad.shape == shape:
        return grad
    # Sum over the leading axes that broadcasting added.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over axes that were 1 in the original shape.
    axes = tuple(i for i, s in enumerate(shape) if s == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


def _as_array(value):
    if isinstance(value, Tensor):
        raise TypeError("expected raw data, got Tensor")
    return np.asarray(value, dtype=np.float64)


class Tensor:
    """A numpy array with reverse-mode autograd support.

    Parameters
    ----------
    data:
        Array-like payload; stored as ``float64`` for gradient-check accuracy.
    requires_grad:
        Whether gradients should be accumulated into :attr:`grad`.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents")
    __array_priority__ = 100  # numpy defers binary ops to Tensor

    def __init__(self, data, requires_grad=False):
        self.data = _as_array(data)
        self.requires_grad = bool(requires_grad)
        self.grad = None
        self._backward = None
        self._parents = ()

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _wrap(other):
        return other if isinstance(other, Tensor) else Tensor(other)

    @staticmethod
    def _from_op(data, parents, backward, op=None, attrs=None):
        """Create a graph node. ``backward(grad)`` yields per-parent grads.

        ``op`` / ``attrs`` name the operation for the trace hooks of
        :mod:`repro.nn.compile`; they are ignored unless a tracer is
        active, so the eager path pays only one truthiness check.
        """
        track = is_grad_enabled() and any(p.requires_grad for p in parents)
        out = Tensor(data, requires_grad=track)
        if track:
            out._parents = tuple(parents)
            out._backward = backward
        if _TRACERS:
            _TRACERS[-1].record(out, op, parents, attrs, track)
        return out

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def shape(self):
        return self.data.shape

    @property
    def ndim(self):
        return self.data.ndim

    @property
    def size(self):
        return self.data.size

    def __len__(self):
        return len(self.data)

    def __repr__(self):
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return "Tensor({!r}{})".format(self.data, grad_flag)

    def item(self):
        return float(self.data)

    def numpy(self):
        """Return the underlying numpy array (shared, not copied)."""
        return self.data

    def detach(self):
        """Return a new tensor sharing data but detached from the graph."""
        out = Tensor(self.data)
        return out

    def zero_grad(self):
        self.grad = None

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other):
        other = self._wrap(other)

        def backward(grad):
            return (_unbroadcast(grad, self.shape),
                    _unbroadcast(grad, other.shape))

        return self._from_op(self.data + other.data, (self, other), backward,
                             "add")

    __radd__ = __add__

    def __neg__(self):
        def backward(grad):
            return (-grad,)

        return self._from_op(-self.data, (self,), backward, "neg")

    def __sub__(self, other):
        other = self._wrap(other)

        def backward(grad):
            return (_unbroadcast(grad, self.shape),
                    _unbroadcast(-grad, other.shape))

        return self._from_op(self.data - other.data, (self, other), backward,
                             "sub")

    def __rsub__(self, other):
        return self._wrap(other).__sub__(self)

    def __mul__(self, other):
        other = self._wrap(other)

        def backward(grad):
            return (_unbroadcast(grad * other.data, self.shape),
                    _unbroadcast(grad * self.data, other.shape))

        return self._from_op(self.data * other.data, (self, other), backward,
                             "mul")

    __rmul__ = __mul__

    def __truediv__(self, other):
        other = self._wrap(other)

        def backward(grad):
            ga = _unbroadcast(grad / other.data, self.shape)
            gb = _unbroadcast(-grad * self.data / (other.data ** 2), other.shape)
            return (ga, gb)

        return self._from_op(self.data / other.data, (self, other), backward,
                             "div")

    def __rtruediv__(self, other):
        return self._wrap(other).__truediv__(self)

    def __pow__(self, exponent):
        if not np.isscalar(exponent):
            raise TypeError("only scalar exponents are supported")

        def backward(grad):
            return (grad * exponent * self.data ** (exponent - 1),)

        return self._from_op(self.data ** exponent, (self,), backward, "pow",
                             {"exponent": exponent})

    def __matmul__(self, other):
        other = self._wrap(other)

        def backward(grad):
            a, b = self.data, other.data
            # Matmul backward is the hot path's most expensive op; skip
            # the gemm for a side that cannot receive gradient (e.g. the
            # constant input batch of a Linear layer).
            need_a = self.requires_grad or self._backward is not None
            need_b = other.requires_grad or other._backward is not None
            if a.ndim == 1 and b.ndim == 1:  # dot product -> scalar
                return (grad * b if need_a else None,
                        grad * a if need_b else None)
            if a.ndim == 1:  # (k,) @ (k, n) -> (n,)
                return (grad @ b.T if need_a else None,
                        np.outer(a, grad) if need_b else None)
            if b.ndim == 1:  # (m, k) @ (k,) -> (m,)
                return (np.outer(grad, b) if need_a else None,
                        a.T @ grad if need_b else None)
            ga = _unbroadcast(grad @ np.swapaxes(b, -1, -2), a.shape) \
                if need_a else None
            gb = _unbroadcast(np.swapaxes(a, -1, -2) @ grad, b.shape) \
                if need_b else None
            return (ga, gb)

        return self._from_op(self.data @ other.data, (self, other), backward,
                             "matmul")

    # ------------------------------------------------------------------
    # Elementwise non-linearities
    # ------------------------------------------------------------------
    def relu(self):
        mask = self.data > 0

        def backward(grad):
            return (grad * mask,)

        return self._from_op(self.data * mask, (self,), backward, "relu")

    def sigmoid(self):
        out_data = np.empty_like(self.data)
        pos = self.data >= 0
        out_data[pos] = 1.0 / (1.0 + np.exp(-self.data[pos]))
        exp_x = np.exp(self.data[~pos])
        out_data[~pos] = exp_x / (1.0 + exp_x)

        def backward(grad):
            return (grad * out_data * (1.0 - out_data),)

        return self._from_op(out_data, (self,), backward, "sigmoid")

    def tanh(self):
        out_data = np.tanh(self.data)

        def backward(grad):
            return (grad * (1.0 - out_data ** 2),)

        return self._from_op(out_data, (self,), backward, "tanh")

    def exp(self):
        out_data = np.exp(self.data)

        def backward(grad):
            return (grad * out_data,)

        return self._from_op(out_data, (self,), backward, "exp")

    def log(self):
        def backward(grad):
            return (grad / self.data,)

        return self._from_op(np.log(self.data), (self,), backward, "log")

    def sqrt(self):
        out_data = np.sqrt(self.data)

        def backward(grad):
            return (grad * 0.5 / out_data,)

        return self._from_op(out_data, (self,), backward, "sqrt")

    def abs(self):
        sign = np.sign(self.data)

        def backward(grad):
            return (grad * sign,)

        return self._from_op(np.abs(self.data), (self,), backward, "abs")

    def clip(self, low, high):
        mask = (self.data > low) & (self.data < high)

        def backward(grad):
            return (grad * mask,)

        return self._from_op(np.clip(self.data, low, high), (self,), backward,
                             "clip", {"low": low, "high": high})

    # ------------------------------------------------------------------
    # Reductions and shape ops
    # ------------------------------------------------------------------
    def sum(self, axis=None, keepdims=False):
        def backward(grad):
            g = np.asarray(grad)
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis)
            return (np.broadcast_to(g, self.shape).copy(),)

        return self._from_op(self.data.sum(axis=axis, keepdims=keepdims),
                             (self,), backward, "sum",
                             {"axis": axis, "keepdims": keepdims})

    def mean(self, axis=None, keepdims=False):
        if axis is None:
            count = self.data.size
        else:
            count = self.data.shape[axis]

        def backward(grad):
            g = np.asarray(grad) / count
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis)
            return (np.broadcast_to(g, self.shape).copy(),)

        return self._from_op(self.data.mean(axis=axis, keepdims=keepdims),
                             (self,), backward, "mean",
                             {"axis": axis, "keepdims": keepdims,
                              "count": count})

    def reshape(self, *shape):
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        old_shape = self.shape

        def backward(grad):
            return (grad.reshape(old_shape),)

        return self._from_op(self.data.reshape(shape), (self,), backward,
                             "reshape")

    def flatten(self):
        return self.reshape(-1)

    def swapaxes(self, axis1, axis2):
        """Exchange two axes (the batched analogue of ``.T``).

        ``.T`` reverses *all* axes, which is wrong for stacked (K x m x n)
        parameter tensors where the batch axis must stay put; the serving
        hot path transposes per-task matrices with ``swapaxes(-1, -2)``.
        """
        def backward(grad):
            return (np.swapaxes(grad, axis1, axis2),)

        return self._from_op(np.swapaxes(self.data, axis1, axis2),
                             (self,), backward, "swapaxes",
                             {"axis1": axis1, "axis2": axis2})

    @property
    def T(self):
        def backward(grad):
            return (grad.T,)

        return self._from_op(self.data.T, (self,), backward, "transpose")

    def __getitem__(self, index):
        def backward(grad):
            full = np.zeros_like(self.data)
            np.add.at(full, index, grad)
            return (full,)

        return self._from_op(self.data[index], (self,), backward, "getitem",
                             {"index": index})

    @staticmethod
    def concat(tensors, axis=-1):
        """Concatenate tensors along ``axis`` with gradient support."""
        tensors = [Tensor._wrap(t) for t in tensors]
        sizes = [t.data.shape[axis] for t in tensors]
        splits = np.cumsum(sizes)[:-1]

        def backward(grad):
            return tuple(np.ascontiguousarray(g)
                         for g in np.split(grad, splits, axis=axis))

        data = np.concatenate([t.data for t in tensors], axis=axis)
        return Tensor._from_op(data, tuple(tensors), backward, "concat",
                               {"axis": axis, "splits": splits})

    @staticmethod
    def stack(tensors, axis=0):
        """Stack tensors along a new ``axis`` with gradient support."""
        tensors = [Tensor._wrap(t) for t in tensors]

        def backward(grad):
            moved = np.moveaxis(grad, axis, 0)
            return tuple(np.ascontiguousarray(moved[i])
                         for i in range(len(tensors)))

        data = np.stack([t.data for t in tensors], axis=axis)
        return Tensor._from_op(data, tuple(tensors), backward, "stack",
                               {"axis": axis})

    # ------------------------------------------------------------------
    # Backpropagation
    # ------------------------------------------------------------------
    def backward(self, grad=None):
        """Backpropagate from this tensor through the recorded graph."""
        if grad is None:
            if self.data.size != 1:
                raise ValueError(
                    "grad must be provided for non-scalar backward()")
            grad = np.ones_like(self.data)
        else:
            grad = np.asarray(grad, dtype=np.float64)

        order = []
        seen = set()

        def visit(node):
            stack = [(node, False)]
            while stack:
                cur, processed = stack.pop()
                if processed:
                    order.append(cur)
                    continue
                if id(cur) in seen:
                    continue
                seen.add(id(cur))
                stack.append((cur, True))
                for parent in cur._parents:
                    if id(parent) not in seen:
                        stack.append((parent, False))

        visit(self)

        grads = {id(self): grad}
        for node in reversed(order):
            node_grad = grads.pop(id(node), None)
            if node_grad is None:
                continue
            if node.requires_grad and node._backward is None:
                # Leaf tensor: accumulate.
                node.grad = node_grad if node.grad is None \
                    else node.grad + node_grad
            if node._backward is None:
                continue
            parent_grads = node._backward(node_grad)
            for parent, pgrad in zip(node._parents, parent_grads):
                if pgrad is None or not (parent.requires_grad
                                         or parent._backward is not None):
                    continue
                key = id(parent)
                if key in grads:
                    grads[key] = grads[key] + pgrad
                else:
                    grads[key] = pgrad


class Parameter(Tensor):
    """A tensor that is a trainable module parameter."""

    def __init__(self, data):
        super().__init__(data, requires_grad=True)

    def copy_(self, data):
        """In-place overwrite of the parameter value (keeps identity)."""
        array = data.data if isinstance(data, Tensor) else np.asarray(data)
        if array.shape != self.data.shape:
            raise ValueError("shape mismatch in copy_: {} vs {}".format(
                array.shape, self.data.shape))
        self.data = array.astype(np.float64).copy()
        return self

    # -- state dict protocol (mirrors Module, for standalone parameters) --
    def state_dict(self):
        """Deep copy of the parameter value (checkpointable leaf)."""
        return self.data.copy()

    def load_state_dict(self, state):
        """Inverse of :meth:`state_dict`; in-place, keeps identity."""
        return self.copy_(state)
