"""Neural-network modules: Linear, activations, Sequential, MLP.

A :class:`Module` owns named :class:`~repro.nn.tensor.Parameter` objects and
supports the state-dict save/load protocol used by the meta-training loop to
reset local (task-wise) parameters from the meta-learned initialization
(Algorithm 2, lines 4-5).
"""

from __future__ import annotations

from collections import OrderedDict

import numpy as np

from . import init
from .tensor import Parameter, Tensor

__all__ = ["Module", "Linear", "ReLU", "Sigmoid", "Sequential", "MLP",
           "BatchedLinear", "batch_modules", "unstack_modules"]


class Module:
    """Base class for NN building blocks."""

    def __init__(self):
        self._parameters = OrderedDict()
        self._modules = OrderedDict()

    # -- attribute bookkeeping ------------------------------------------
    def __setattr__(self, name, value):
        if isinstance(value, Parameter):
            self.__dict__.setdefault("_parameters", OrderedDict())[name] = value
        elif isinstance(value, Module):
            self.__dict__.setdefault("_modules", OrderedDict())[name] = value
        object.__setattr__(self, name, value)

    # -- parameter access -----------------------------------------------
    def named_parameters(self, prefix=""):
        """Yield ``(dotted_name, Parameter)`` pairs, depth first."""
        for name, param in self._parameters.items():
            yield prefix + name, param
        for name, module in self._modules.items():
            yield from module.named_parameters(prefix + name + ".")

    def parameters(self):
        for _, param in self.named_parameters():
            yield param

    def num_parameters(self):
        """Total number of scalar parameters in the module tree."""
        return sum(p.size for p in self.parameters())

    def zero_grad(self):
        for param in self.parameters():
            param.zero_grad()

    # -- state dict protocol ----------------------------------------------
    def state_dict(self):
        """Deep-copied mapping of parameter names to numpy arrays."""
        return {name: param.data.copy()
                for name, param in self.named_parameters()}

    def load_state_dict(self, state):
        """Overwrite parameters in place from :meth:`state_dict` output."""
        params = dict(self.named_parameters())
        missing = set(params) - set(state)
        unexpected = set(state) - set(params)
        if missing or unexpected:
            raise KeyError("state dict mismatch: missing={} unexpected={}"
                           .format(sorted(missing), sorted(unexpected)))
        for name, array in state.items():
            params[name].copy_(array)

    # -- flat parameter vector (used by the UIS-feature memory M_R) -------
    def flat_parameters(self):
        """All parameters concatenated into one 1-D numpy vector."""
        return np.concatenate([p.data.ravel() for p in self.parameters()]) \
            if self._has_params() else np.zeros(0)

    def load_flat_parameters(self, vector):
        """Inverse of :meth:`flat_parameters`."""
        vector = np.asarray(vector, dtype=np.float64)
        offset = 0
        for param in self.parameters():
            size = param.size
            param.copy_(vector[offset:offset + size].reshape(param.data.shape))
            offset += size
        if offset != vector.size:
            raise ValueError("flat vector size mismatch: {} != {}"
                             .format(vector.size, offset))

    def _has_params(self):
        return any(True for _ in self.parameters())

    # -- call protocol -----------------------------------------------------
    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)


class Linear(Module):
    """Affine map ``y = x W + b`` with Kaiming-uniform initialization."""

    def __init__(self, in_features, out_features, rng=None, bias=True):
        super().__init__()
        rng = rng or np.random.default_rng()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(
            init.kaiming_uniform(in_features, out_features, rng))
        self.bias = Parameter(np.zeros(out_features)) if bias else None

    def forward(self, x):
        x = Tensor._wrap(x)
        out = x @ self.weight
        if self.bias is not None:
            out = out + self.bias
        return out

    def __repr__(self):
        return "Linear({}, {})".format(self.in_features, self.out_features)


class ReLU(Module):
    """Elementwise rectified linear activation."""

    def forward(self, x):
        return Tensor._wrap(x).relu()

    def __repr__(self):
        return "ReLU()"


class Sigmoid(Module):
    """Elementwise logistic activation."""

    def forward(self, x):
        return Tensor._wrap(x).sigmoid()

    def __repr__(self):
        return "Sigmoid()"


class Sequential(Module):
    """Chain of modules applied in order."""

    def __init__(self, *modules):
        super().__init__()
        self._order = []
        for i, module in enumerate(modules):
            name = "m{}".format(i)
            setattr(self, name, module)
            self._order.append(name)

    def forward(self, x):
        for name in self._order:
            x = getattr(self, name)(x)
        return x

    def __iter__(self):
        return (getattr(self, name) for name in self._order)

    def __repr__(self):
        inner = ", ".join(repr(m) for m in self)
        return "Sequential({})".format(inner)


class BatchedLinear(Module):
    """K independent affine maps fused into one stacked tensor op.

    Holds ``weight`` of shape (K, in, out) and ``bias`` of shape
    (K, 1, out); ``forward`` maps a stacked input (K, n, in) to
    (K, n, out) with a single batched matmul, so K per-task layers train
    in one autograd graph.  Slice k computes exactly what the k-th
    source :class:`Linear` would — the serving layer relies on this for
    bit-level parity with sequential adaptation.
    """

    def __init__(self, k, in_features, out_features, rng=None, bias=True):
        super().__init__()
        rng = rng or np.random.default_rng()
        self.k = int(k)
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(np.stack(
            [init.kaiming_uniform(in_features, out_features, rng)
             for _ in range(self.k)]))
        self.bias = Parameter(np.zeros((self.k, 1, out_features))) \
            if bias else None

    @classmethod
    def from_linears(cls, linears):
        """Stack structurally identical :class:`Linear` layers.

        Built directly from the source parameters (no throwaway random
        initialization) — this runs on the serving hot path for every
        adaptation bucket and batched prediction.
        """
        first = linears[0]
        for lin in linears:
            if (lin.in_features, lin.out_features) != (first.in_features,
                                                       first.out_features):
                raise ValueError("cannot batch Linear layers of mixed shape")
            if (lin.bias is None) != (first.bias is None):
                raise ValueError("cannot batch Linear layers of mixed bias")
        out = cls.__new__(cls)
        Module.__init__(out)
        out.k = len(linears)
        out.in_features = first.in_features
        out.out_features = first.out_features
        out.weight = Parameter(np.stack([lin.weight.data
                                         for lin in linears]))
        out.bias = Parameter(np.stack([lin.bias.data[None, :]
                                       for lin in linears])) \
            if first.bias is not None else None
        return out

    def unstack_into(self, linears):
        """Write the per-slice parameters back into K Linear layers."""
        if len(linears) != self.k:
            raise ValueError("expected {} layers, got {}".format(
                self.k, len(linears)))
        for i, lin in enumerate(linears):
            lin.weight.copy_(self.weight.data[i])
            if lin.bias is not None:
                lin.bias.copy_(self.bias.data[i, 0])

    def forward(self, x):
        x = Tensor._wrap(x)
        out = x @ self.weight
        if self.bias is not None:
            out = out + self.bias
        return out

    def __repr__(self):
        return "BatchedLinear(k={}, {}, {})".format(
            self.k, self.in_features, self.out_features)


def batch_modules(modules):
    """Fuse K structurally identical modules into one batched module.

    ``Linear`` layers become a :class:`BatchedLinear`; ``Sequential``
    containers (including :class:`MLP`) are batched child by child;
    stateless activations pass through.  The result consumes stacked
    (K, n, features) inputs.
    """
    first = modules[0]
    if isinstance(first, Linear):
        return BatchedLinear.from_linears(modules)
    if isinstance(first, Sequential):
        children = [batch_modules([getattr(m, name) for m in modules])
                    for name in first._order]
        return Sequential(*children)
    if isinstance(first, (ReLU, Sigmoid)):
        return type(first)()
    raise TypeError("cannot batch modules of type {}".format(type(first)))


def unstack_modules(batched, modules):
    """Inverse of :func:`batch_modules`: copy slice k back into module k."""
    if isinstance(batched, BatchedLinear):
        batched.unstack_into(modules)
    elif isinstance(batched, Sequential):
        for b_name, s_name in zip(batched._order, modules[0]._order):
            child = getattr(batched, b_name)
            if isinstance(child, (BatchedLinear, Sequential)):
                unstack_modules(child, [getattr(m, s_name) for m in modules])
    elif not isinstance(batched, (ReLU, Sigmoid)):
        raise TypeError("cannot unstack module of type {}".format(
            type(batched)))


class MLP(Sequential):
    """Fully connected network with ReLU between hidden layers.

    The paper's embedding and classification blocks are stacks of fully
    connected layers with ReLU activations (Section VIII-A); this helper
    builds them from a list of layer widths.
    """

    def __init__(self, sizes, rng=None, final_activation=None):
        if len(sizes) < 2:
            raise ValueError("MLP needs at least input and output sizes")
        rng = rng or np.random.default_rng()
        modules = []
        for i in range(len(sizes) - 1):
            modules.append(Linear(sizes[i], sizes[i + 1], rng=rng))
            if i < len(sizes) - 2:
                modules.append(ReLU())
        if final_activation is not None:
            modules.append(final_activation)
        super().__init__(*modules)
        self.sizes = tuple(sizes)
