"""Weight initialization schemes for the NN substrate."""

from __future__ import annotations

import numpy as np

__all__ = ["kaiming_uniform", "xavier_uniform", "normal", "zeros"]


def kaiming_uniform(fan_in, fan_out, rng):
    """He/Kaiming uniform init, the default for ReLU networks."""
    bound = np.sqrt(6.0 / fan_in)
    return rng.uniform(-bound, bound, size=(fan_in, fan_out))


def xavier_uniform(fan_in, fan_out, rng):
    bound = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-bound, bound, size=(fan_in, fan_out))


def normal(shape, rng, std=0.01):
    return rng.normal(0.0, std, size=shape)


def zeros(shape):
    return np.zeros(shape)
