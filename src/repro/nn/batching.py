"""Shared task-stacking substrate for fused multi-task training.

One few-shot UIS-classifier task is far too small to saturate anything —
its cost is Python/autograd overhead.  Both the *online* serving hot path
(:mod:`repro.serve.batched`) and the *offline* meta-training engine
(:mod:`repro.train.engine`) therefore stack K structurally identical
tasks into fused ``(K, ...)`` tensors and train them as ONE autograd
program.  This module is the shared substrate both layers build on:

* :class:`BatchedUISClassifier` — K per-task classifier copies fused
  into stacked :class:`~repro.nn.BatchedLinear` blocks, mirroring
  ``UISClassifier.forward`` over a leading batch axis;
* :func:`fused_local_adapt` — the fused few-shot optimization loop
  (per-task-reduced BCE + pos-weight, one Adam/SGD over the stacks);
* :func:`theta_r_grad_stack` / :func:`grad_stacks` — per-task gradient
  slices out of the stacked parameters, in the exact layout of the
  corresponding per-task model (the meta-training global phase and the
  memory EMA updates consume these);
* :func:`stacked_predict` — fused no-grad 0/1 predictions.

Because the stacked computation is block-diagonal across tasks, every
task receives exactly the gradients and optimizer updates the sequential
path would give it — bit for bit.  The parity suites in ``tests/serve``
and ``tests/train`` verify this end to end.

The module is deliberately duck-typed: it touches only the
``uis_block`` / ``tuple_block`` / ``clf_block`` / ``config`` surface of
the models it stacks, so :mod:`repro.nn` does not import
:mod:`repro.core`.
"""

from __future__ import annotations

import numpy as np

from .compile import get_backend
from .functional import batched_pos_weight
from .layers import Module, batch_modules, unstack_modules
from .tensor import Parameter, Tensor

__all__ = ["BatchedUISClassifier", "fused_local_adapt", "stack_conversions",
           "load_flat_stack", "theta_r_grad_stack", "grad_stacks",
           "copy_grad_stacks", "stacked_predict"]


class BatchedUISClassifier(Module):
    """K structurally identical UIS classifiers fused into stacked blocks.

    Mirrors ``UISClassifier.forward`` over a leading batch axis:
    features (K, ku) and tuples (K, n, width) map to logits (K, n).
    Built from per-task model instances (whose parameters seed the
    stacks) and unstacked back into them after training.
    """

    def __init__(self, models):
        super().__init__()
        first = models[0]
        for model in models:
            if model.config != first.config:
                raise ValueError("cannot batch UISClassifiers of mixed "
                                 "configuration")
        self.k = len(models)
        self.ku = first.ku
        self.embed_size = first.embed_size
        self.use_conversion = first.use_conversion
        self.uis_block = batch_modules([m.uis_block for m in models])
        self.tuple_block = batch_modules([m.tuple_block for m in models])
        self.clf_block = batch_modules([m.clf_block for m in models])

    def unstack_into(self, models):
        """Copy the adapted per-slice parameters back into K models."""
        unstack_modules(self.uis_block, [m.uis_block for m in models])
        unstack_modules(self.tuple_block, [m.tuple_block for m in models])
        unstack_modules(self.clf_block, [m.clf_block for m in models])

    def forward(self, feature_vectors, tuple_vectors, conversion=None):
        """Stacked interestingness logits.

        Parameters
        ----------
        feature_vectors:
            (K, ku) UIS feature vectors, one per task.
        tuple_vectors:
            (K, n, input_width) preprocessed tuple batches.
        conversion:
            Optional (K, Ne, 3Ne) stacked conversion matrices.

        Returns
        -------
        Tensor of shape (K, n) with raw logits.
        """
        if self.use_conversion and conversion is None:
            raise ValueError("use_conversion=True requires conversion")
        if not self.use_conversion and conversion is not None:
            raise ValueError("conversion given but use_conversion=False")
        v_r = Tensor._wrap(feature_vectors)
        x = Tensor._wrap(tuple_vectors)
        n = x.shape[1]

        emb_r = self.uis_block(v_r.reshape(self.k, 1, self.ku))  # (K, 1, Ne)
        emb_x = self.tuple_block(x)                              # (K, n, Ne)
        # Differentiable broadcast of each task's emb_R to its n rows —
        # same tiler trick as the sequential forward, batched by numpy's
        # matmul broadcasting: (n, 1) @ (K, 1, Ne) -> (K, n, Ne).
        tiler = Tensor(np.ones((n, 1)))
        emb_r_rows = tiler @ emb_r
        interaction = emb_r_rows * emb_x
        combined = Tensor.concat([emb_r_rows, emb_x, interaction],
                                 axis=-1)                        # (K, n, 3Ne)
        if conversion is not None:
            conversion = Tensor._wrap(conversion)
            combined = combined @ conversion.swapaxes(-1, -2)    # (K, n, Ne)
        logits = self.clf_block(combined)                        # (K, n, 1)
        return logits.reshape(self.k, n)


def stack_conversions(conversions):
    """Stack per-task conversion matrices into one (K, Ne, 3Ne) Parameter.

    ``conversions`` may be ``None`` or a list of matrices; a list must be
    all-``None`` (returns ``None``) or all-present — mixed tasks cannot
    share one fused program.
    """
    if conversions is None:
        return None
    present = [c is not None for c in conversions]
    if not any(present):
        return None
    if not all(present):
        raise ValueError("cannot fuse tasks with and without conversion "
                         "matrices into one program")
    return Parameter(np.stack(conversions))


def load_flat_stack(module, flat_stack):
    """Write (K, S) per-slice flat parameter vectors into a batched module.

    The inverse relationship to ``Module.load_flat_parameters`` applied
    slice-wise: row k lands in slice k of every stacked parameter, in
    declaration order — so stacking K flat vectors produced by the
    per-task rule gives every slice exactly the parameters the per-task
    ``load_flat_parameters`` would.
    """
    flat_stack = np.asarray(flat_stack, dtype=np.float64)
    k = flat_stack.shape[0]
    offset = 0
    for param in module.parameters():
        if param.data.shape[0] != k:
            raise ValueError("parameter stack height {} != {} rows".format(
                param.data.shape[0], k))
        size = param.size // k
        param.copy_(flat_stack[:, offset:offset + size].reshape(
            param.data.shape))
        offset += size
    if offset != flat_stack.shape[1]:
        raise ValueError("flat stack width mismatch: {} != {}".format(
            flat_stack.shape[1], offset))


def fused_local_adapt(models, features, xs, ys, *, conversions=None,
                      steps=1, lr=0.01, optimizer_kind="adam",
                      balance_classes=True, batched=None):
    """Fused few-shot optimization of K stacked tasks (the local phase).

    Stacks ``models`` (and their task-wise conversion matrices, if any)
    and runs ``steps`` iterations of per-task-reduced BCE descent: the
    loss is the *sum of per-task mean losses*, which is block-diagonal,
    so each task's parameters see exactly their own sequential gradient
    and one Adam/SGD instance updates all K tasks at once.

    Parameters
    ----------
    models:
        K per-task classifier instances (already task-wise initialized);
        their parameters seed the stacks and are **not** written back —
        call ``batched.unstack_into(models)`` for that.
    features / xs / ys:
        (K, ku) feature vectors, (K, n, width) labelled tuples, (K, n)
        0/1 targets.
    conversions:
        Optional per-task (Ne, 3Ne) matrices (see
        :func:`stack_conversions`), or an already stacked (K, Ne, 3Ne)
        array.
    batched:
        Optional pre-built :class:`BatchedUISClassifier` whose stacks
        already hold the task-wise initializations (``models`` is then
        ignored); the offline engine uses this to stack straight off the
        meta-learned template without constructing K model copies.

    Returns
    -------
    ``(batched, conversion)`` — the trained
    :class:`BatchedUISClassifier` and the stacked conversion
    :class:`Parameter` (or ``None``).  The gradients of the *last* step
    are left on the parameters so callers can slice them
    (:func:`theta_r_grad_stack`) before reusing the stacks.

    Execution runs on the active :mod:`repro.nn.compile` backend.
    Parity guarantee: every backend evaluates the identical float64 op
    sequence in the identical order, so the adapted parameters,
    last-step gradients, and downstream predictions are bit-identical
    regardless of backend (the ``-m compile`` suite asserts this
    against the eager reference).
    """
    if batched is None:
        batched = BatchedUISClassifier(models)
    if isinstance(conversions, np.ndarray):
        conversion = Parameter(conversions)
    else:
        conversion = stack_conversions(conversions)

    features = np.asarray(features, dtype=np.float64)
    xs = np.asarray(xs, dtype=np.float64)
    ys = np.asarray(ys, dtype=np.float64)
    pos_weight = batched_pos_weight(ys) if balance_classes else None

    get_backend().local_adapt(batched, conversion, features, xs, ys,
                              pos_weight, steps=steps, lr=lr,
                              optimizer_kind=optimizer_kind)
    return batched, conversion


def theta_r_grad_stack(batched):
    """Per-task flattened UIS-block gradients, shape (K, theta_r_size).

    Slice k matches the ``theta_r_grad`` the sequential
    ``MetaTrainer.adapt`` reports for task k: each parameter's gradient
    raveled in declaration order, missing gradients as zeros.
    """
    k = batched.k
    parts = []
    for param in batched.uis_block.parameters():
        if param.grad is None:
            parts.append(np.zeros((k, param.size // k)))
        else:
            parts.append(np.asarray(param.grad).reshape(k, -1))
    return np.concatenate(parts, axis=1) if parts else np.zeros((k, 0))


def grad_stacks(batched):
    """``{dotted_name: (K, ...) gradient}`` over the three stacked blocks.

    The dotted names equal those of the per-task model
    (``uis_block.m0.weight`` ...), so slice k reshaped to the per-task
    parameter shape is exactly the gradient the sequential global phase
    would accumulate for task k.
    """
    return {name: param.grad for name, param in batched.named_parameters()}


def copy_grad_stacks(stacks):
    """Detached float64 copies of a :func:`grad_stacks` mapping.

    Under the fused :mod:`repro.nn.compile` backend the gradient arrays
    alias the plan's reusable workspace, so they are only valid until
    the next program runs.  Take copies before holding them across
    another forward/backward; values are preserved bit-for-bit, so the
    deterministic reduction downstream is unaffected.  (Shipping stacks
    over a process pipe also detaches them — pickling copies — but an
    explicit copy keeps the lifetime obvious.)
    """
    return {name: None if grad is None
            else np.array(grad, dtype=np.float64)
            for name, grad in stacks.items()}


def stacked_predict(batched, features, xs, conversion=None, threshold=0.5):
    """Fused no-grad 0/1 predictions, shape (K, n).

    The sigmoid probabilities come from the active
    :mod:`repro.nn.compile` backend (bit-identical across backends).
    """
    proba = get_backend().predict_proba(batched, features, xs,
                                        conversion=conversion)
    return (proba >= threshold).astype(np.int64)
