"""Functional building blocks: losses, similarities, activations.

These operate on :class:`repro.nn.tensor.Tensor` values and are composed by
the LTE meta-learner (Section VI of the paper): binary cross-entropy for the
classification loss (Eq. 12/13) and cosine similarity + softmax for the
memory attention (Eq. 7).
"""

from __future__ import annotations

import numpy as np

from .tensor import Tensor

__all__ = [
    "sigmoid", "relu", "softmax", "log_softmax",
    "binary_cross_entropy_with_logits", "balanced_pos_weight", "mse_loss",
    "batched_binary_cross_entropy_with_logits", "batched_pos_weight",
    "cosine_similarity",
]

_EPS = 1e-12


def sigmoid(x):
    """Numerically stable elementwise logistic function."""
    return Tensor._wrap(x).sigmoid()


def relu(x):
    return Tensor._wrap(x).relu()


def softmax(x, axis=-1):
    """Softmax along ``axis`` (shift-invariant, stable)."""
    x = Tensor._wrap(x)
    shifted = x - np.max(x.data, axis=axis, keepdims=True)
    exp = shifted.exp()
    return exp / exp.sum(axis=axis, keepdims=True)


def log_softmax(x, axis=-1):
    x = Tensor._wrap(x)
    shifted = x - np.max(x.data, axis=axis, keepdims=True)
    return shifted - shifted.exp().sum(axis=axis, keepdims=True).log()


def binary_cross_entropy_with_logits(logits, targets, reduction="mean",
                                     pos_weight=None):
    """BCE loss on raw logits.

    Uses the standard stable formulation
    ``max(z, 0) - z*y + log(1 + exp(-|z|))`` so that no intermediate
    overflows for large magnitude logits.

    Parameters
    ----------
    logits:
        Tensor of raw classifier scores (any shape).
    targets:
        Array-like of 0/1 labels broadcastable to ``logits``.
    reduction:
        ``"mean"``, ``"sum"`` or ``"none"``.
    pos_weight:
        Optional scalar weight multiplying the positive-example terms —
        counteracts class imbalance in few-shot exploration, where an
        interest region often covers a small fraction of the labelled
        tuples.
    """
    logits = Tensor._wrap(logits)
    targets = np.asarray(
        targets.data if isinstance(targets, Tensor) else targets,
        dtype=np.float64)
    # max(z,0) - z*y + log1p(exp(-|z|)), assembled from differentiable ops:
    # relu(z) - z*y + softplus(-|z|)
    softplus = (1.0 + (-logits.abs()).exp()).log()
    losses = logits.relu() - logits * targets + softplus
    if pos_weight is not None and pos_weight != 1.0:
        weights = np.where(targets == 1.0, float(pos_weight), 1.0)
        losses = losses * weights
    if reduction == "mean":
        return losses.mean()
    if reduction == "sum":
        return losses.sum()
    if reduction == "none":
        return losses
    raise ValueError("unknown reduction: {!r}".format(reduction))


def balanced_pos_weight(targets, cap=10.0):
    """n_negative / n_positive, capped; 1.0 when a class is absent."""
    targets = np.asarray(
        targets.data if isinstance(targets, Tensor) else targets,
        dtype=np.float64).ravel()
    n_pos = float((targets == 1).sum())
    n_neg = float((targets == 0).sum())
    if n_pos == 0 or n_neg == 0:
        return 1.0
    return float(min(cap, n_neg / n_pos))


def batched_binary_cross_entropy_with_logits(logits, targets, pos_weight=None,
                                             reduction="mean"):
    """Per-task BCE over a stacked (K, n) logit batch.

    The serving hot path trains K independent few-shot tasks in one
    autograd graph; each task's loss must reduce over *its own* examples
    only, so the reduction runs along the last axis and returns a (K,)
    tensor (one loss per task).  Summing that vector and calling backward
    yields for every task exactly the gradient the sequential per-task
    ``binary_cross_entropy_with_logits(...).mean()`` would.

    Parameters
    ----------
    logits:
        Tensor of shape (K, n) — K tasks, n examples each.
    targets:
        0/1 array broadcastable to ``logits``.
    pos_weight:
        Optional per-task positive-class weights, shape (K, 1) (or a
        scalar applied to every task).
    reduction:
        ``"mean"`` / ``"sum"`` over each task's examples, or ``"none"``.
    """
    logits = Tensor._wrap(logits)
    targets = np.asarray(
        targets.data if isinstance(targets, Tensor) else targets,
        dtype=np.float64)
    softplus = (1.0 + (-logits.abs()).exp()).log()
    losses = logits.relu() - logits * targets + softplus
    if pos_weight is not None:
        pos_weight = np.asarray(pos_weight, dtype=np.float64)
        weights = np.where(targets == 1.0,
                           np.broadcast_to(pos_weight, targets.shape), 1.0)
        losses = losses * weights
    if reduction == "mean":
        return losses.mean(axis=-1)
    if reduction == "sum":
        return losses.sum(axis=-1)
    if reduction == "none":
        return losses
    raise ValueError("unknown reduction: {!r}".format(reduction))


def batched_pos_weight(targets, cap=10.0):
    """Per-task :func:`balanced_pos_weight` over a (K, n) label batch.

    Returns a (K, 1) array suitable as the ``pos_weight`` of
    :func:`batched_binary_cross_entropy_with_logits`; tasks missing a
    class get weight 1.0, matching the sequential helper task by task.
    """
    targets = np.atleast_2d(np.asarray(
        targets.data if isinstance(targets, Tensor) else targets,
        dtype=np.float64))
    n_pos = (targets == 1).sum(axis=-1).astype(np.float64)
    n_neg = (targets == 0).sum(axis=-1).astype(np.float64)
    with np.errstate(divide="ignore", invalid="ignore"):
        ratio = np.where((n_pos > 0) & (n_neg > 0),
                         np.minimum(cap, n_neg / np.maximum(n_pos, 1.0)),
                         1.0)
    return ratio[:, None]


def mse_loss(pred, target, reduction="mean"):
    pred = Tensor._wrap(pred)
    target = np.asarray(
        target.data if isinstance(target, Tensor) else target,
        dtype=np.float64)
    losses = (pred - target) ** 2
    if reduction == "mean":
        return losses.mean()
    if reduction == "sum":
        return losses.sum()
    if reduction == "none":
        return losses
    raise ValueError("unknown reduction: {!r}".format(reduction))


def cosine_similarity(vector, matrix):
    """Cosine similarity between a vector and each row of a matrix.

    This is the ``Sim`` function of Eq. 7: given a UIS feature vector
    ``v_R`` (length ku) and the memory matrix ``M_vR`` (m x ku), return the
    length-m vector of cosine similarities.  Differentiable in both inputs.
    """
    vector = Tensor._wrap(vector)
    matrix = Tensor._wrap(matrix)
    dot = matrix @ vector
    v_norm = ((vector * vector).sum() + _EPS).sqrt()
    m_norm = ((matrix * matrix).sum(axis=1) + _EPS).sqrt()
    return dot / (v_norm * m_norm)
