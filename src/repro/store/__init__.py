"""Chunked columnar dataset store with zone-map pruning.

``repro.store`` is the out-of-core data substrate: tables split into
fixed-size row chunks (in memory or memory-mapped from disk), each chunk
carrying a zone map (per-attribute min/max, row count, NaN flags, content
digest).  The scan planner turns any region predicate into a chunk-pruned
evaluation — whole chunks whose zone map cannot intersect the region's
conservative bounding box are skipped before the exact packed membership
test runs on the survivors, bit-identically to a full scan.

Callers across the stack branch on ``hasattr(rows, "iter_chunks")``
rather than importing this package: the chunk-iteration protocol *is*
the store interface, and the duck check keeps every layer importable
without the store loaded.
"""

from .chunks import (DEFAULT_CHUNK_ROWS, ChunkStore, StoreCorruptedError,
                     StoreReadOnlyError, ZoneMaps)
from .ingest import FreshnessMonitor
from .scan import (ChunkScan, optimizer_chunk_keep, region_bounds,
                   scan_region, session_chunk_keep)

__all__ = [
    "ChunkStore", "ZoneMaps", "DEFAULT_CHUNK_ROWS",
    "StoreCorruptedError", "StoreReadOnlyError", "FreshnessMonitor",
    "ChunkScan", "region_bounds", "scan_region", "optimizer_chunk_keep",
    "session_chunk_keep",
]
