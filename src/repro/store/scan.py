"""Zone-map scan planner: prune chunks a region provably cannot touch.

Every region type in the system admits a *conservative bounding-box
form*: a conjunction of groups, each group a disjunction of per-column
boxes, such that every point the region accepts lies — for every group —
inside some box of that group on the group's columns.  The sources:

* hull-backed regions (``Hull``, ``UnionRegion``): the packed engine's
  padded float32 gate (:attr:`~repro.geometry.engine.PackedHulls.
  gate_bounds`), already a proven superset of the exact facet test;
* ``BoxRegion`` and ``SynthesizedQuery``: the boxes themselves (their
  membership tests are exact interval comparisons);
* ``ScaledRegion``: the wrapped region's bounds mapped back through the
  min-max scaler's affine inverse, widened for rounding, with bounds
  touching the clip limits 0/1 opened to +-inf (clipping makes the
  transform non-injective there, so every raw preimage must survive);
* ``ConjunctiveRegion``: one group per hull/box part, mapped onto the
  part's column subset; parts with no known bounds simply contribute no
  group (they never cause pruning).

A chunk whose zone map (NaN-ignoring per-column min/max) fails the
interval-overlap test against every box of some group contains no member
of the region: rows with finite values lie outside every box, and rows
with NaN coordinates fail every membership predicate in the system (all
facet/interval comparisons are ``False`` under NaN).  Pruned + exact is
therefore **bit-identical** to full exact — verified by the property
fuzz in ``tests/store/test_zonemap_pruning.py``.
"""

from __future__ import annotations

import numpy as np

from ..geometry.convex_hull import Hull
from ..geometry.engine import PackedHulls
from ..geometry.regions import (BoxRegion, ConjunctiveRegion, ScaledRegion,
                                UnionRegion)
from ..obs import default_registry

__all__ = ["ChunkScan", "region_bounds", "scan_region",
           "optimizer_chunk_keep", "session_chunk_keep"]


def _widen(lo, hi):
    """Open a box outward by a small relative margin (rounding slack)."""
    pad_lo = 1e-12 * np.maximum(1.0, np.abs(lo))
    pad_hi = 1e-12 * np.maximum(1.0, np.abs(hi))
    return lo - pad_lo, hi + pad_hi


def _unscale_bounds(scaler, lo, hi, columns):
    """Map normalized-space boxes back to raw space, conservatively.

    The scaler's transform is affine-increasing per column *inside* the
    fitted range and clipped to [0, 1] outside it; a scaled bound at (or
    beyond) a clip limit therefore has an unbounded raw preimage.
    """
    mn = scaler.min_ if columns is None else scaler.min_[list(columns)]
    mx = scaler.max_ if columns is None else scaler.max_[list(columns)]
    span = np.where(mx > mn, mx - mn, 1.0)
    lo_raw, hi_raw = _widen(lo * span + mn, hi * span + mn)
    lo_raw = np.where(lo <= 0.0, -np.inf, lo_raw)
    hi_raw = np.where(hi >= 1.0, np.inf, hi_raw)
    return lo_raw, hi_raw


def region_bounds(region):
    """Conservative bounding-box form of a region predicate.

    Returns a list of conjunct groups ``(columns, lo, hi)`` — ``columns``
    a tuple of column indices relative to the region's input row (or
    ``None`` for the whole row), ``lo`` / ``hi`` float64 ``(n_parts, k)``
    box stacks — or ``None`` when the region offers no usable bounds
    (every chunk must then be scanned).  A group with zero parts encodes
    an always-empty region: every chunk is prunable.
    """
    if isinstance(region, Hull):
        lo, hi = PackedHulls([region]).gate_bounds
        return [(None, lo, hi)]
    if isinstance(region, UnionRegion):
        lo, hi = region.compiled().gate_bounds
        return [(None, lo, hi)]
    if isinstance(region, BoxRegion):
        lo, hi = _widen(region.lo[None, :].astype(np.float64),
                        region.hi[None, :].astype(np.float64))
        return [(None, lo, hi)]
    if isinstance(region, ScaledRegion):
        inner = region_bounds(region.region)
        if inner is None:
            return None
        return [(cols, *_unscale_bounds(region.scaler, lo, hi, cols))
                for cols, lo, hi in inner]
    if isinstance(region, ConjunctiveRegion):
        groups = []
        for cols, sub in region.subspace_regions:
            sub_groups = region_bounds(sub)
            if sub_groups is None:
                continue   # unconstrained part: never causes pruning
            for sub_cols, lo, hi in sub_groups:
                mapped = cols if sub_cols is None \
                    else tuple(cols[c] for c in sub_cols)
                groups.append((tuple(mapped), lo, hi))
        return groups or None
    if hasattr(region, "boxes") and hasattr(region, "predicate"):
        # SynthesizedQuery (duck-typed: repro.store must not import
        # repro.explore).  Its predicate is an exact DNF of boxes.
        d = len(region.attribute_names)
        if not region.boxes:
            return [(None, np.zeros((0, d)), np.zeros((0, d)))]
        lo = np.vstack([np.asarray(lo, dtype=np.float64)
                        for lo, _ in region.boxes])
        hi = np.vstack([np.asarray(hi, dtype=np.float64)
                        for _, hi in region.boxes])
        return [(None, *_widen(lo, hi))]
    return None


def _membership(region, rows):
    """Exact boolean membership for any supported predicate object."""
    if hasattr(region, "contains"):
        return np.asarray(region.contains(rows), dtype=bool)
    return np.asarray(region.predicate(rows)) == 1


class ChunkScan:
    """A planned, zone-map-pruned evaluation of one region over a store.

    Parameters
    ----------
    store:
        The :class:`~repro.store.ChunkStore` to scan.
    region:
        Any region predicate (``Hull`` / ``UnionRegion`` /
        ``ConjunctiveRegion`` / ``ScaledRegion`` / ``BoxRegion`` /
        ``SynthesizedQuery`` / custom ``Region``).
    columns:
        Store columns the region's input dimensions refer to (default:
        all, in order) — e.g. a subspace's column tuple for a
        per-subspace UIS region.
    first_chunk:
        Freshness watermark: chunks before this index are skipped
        outright (the caller already holds their answer from a previous
        scan of the same store version prefix).  Incremental serving
        passes a session's closed-chunk watermark here.

    The plan is computed at construction: :meth:`chunk_mask` tells which
    chunks survive pruning, :meth:`row_mask` runs the exact membership
    test on the survivors only.  ``pruned + exact == full exact`` holds
    bit-for-bit because pruned chunks provably contain no member.
    """

    def __init__(self, store, region, columns=None, first_chunk=0):
        self.store = store
        self.region = region
        self.columns = None if columns is None \
            else tuple(int(c) for c in columns)
        base = self.columns if self.columns is not None \
            else tuple(range(store.n_attributes))
        expected = getattr(region, "dim", None)
        if expected is None and hasattr(region, "attribute_names"):
            expected = len(region.attribute_names)
        if expected is not None and expected != len(base):
            raise ValueError(
                "region over {} dims scanned against {} store columns"
                .format(expected, len(base)))
        self._base = base
        zone = store.zone_maps
        keep = np.ones(zone.n_chunks, dtype=bool)
        self.first_chunk = max(0, min(int(first_chunk), zone.n_chunks))
        keep[:self.first_chunk] = False
        groups = region_bounds(region)
        if groups is not None:
            for cols, lo, hi in groups:
                sel = list(base) if cols is None \
                    else [base[c] for c in cols]
                zmin = zone.mins[:, sel]
                zmax = zone.maxs[:, sel]
                # (chunks, parts, cols): a chunk can hold a member of a
                # part only if every column range overlaps the part's
                # box.  NaN zone entries (no finite value in the chunk's
                # column) compare False on both sides — correctly pruned,
                # since NaN coordinates fail every membership test.
                overlap = ((zmin[:, None, :] <= hi[None, :, :])
                           & (zmax[:, None, :] >= lo[None, :, :]))
                keep &= overlap.all(axis=2).any(axis=1)
        self._keep = keep
        self._prunable = groups is not None
        # Cumulative pruning telemetry (process default registry, under
        # store.scan.*) — the per-plan breakdown stays in `stats`.
        metrics = default_registry()
        metrics.counter("store.scan.plans").inc()
        scanned = int(keep.sum())
        metrics.counter("store.scan.chunks.scanned").inc(scanned)
        metrics.counter("store.scan.chunks.watermark_skipped") \
            .inc(self.first_chunk)
        metrics.counter("store.scan.chunks.pruned") \
            .inc(len(keep) - scanned - self.first_chunk)

    # ------------------------------------------------------------------
    def chunk_mask(self):
        """Boolean ``(n_chunks,)``: True where the chunk must be scanned."""
        return self._keep.copy()

    @property
    def stats(self):
        """Pruning accounting: chunks/rows scanned vs skipped."""
        counts = self.store.zone_maps.counts
        scanned = int(self._keep.sum())
        return {
            "chunks": int(len(self._keep)),
            "chunks_scanned": scanned,
            "chunks_watermarked": int(self.first_chunk),
            "chunks_pruned": int(len(self._keep) - scanned
                                 - self.first_chunk),
            "rows_total": int(counts.sum()),
            "rows_scanned": int(counts[self._keep].sum()),
            "prunable": bool(self._prunable),
        }

    def row_mask(self):
        """Exact boolean membership over all rows, scanning survivors only."""
        store = self.store
        out = np.zeros(store.n_rows, dtype=bool)
        cols = None if self.columns is None else list(self.columns)
        for ci in np.flatnonzero(self._keep):
            block = store.chunk(ci)
            if cols is not None:
                block = block[:, cols]
            start = int(store.offsets[ci])
            out[start:start + len(block)] = _membership(self.region, block)
        return out


def scan_region(store, region, columns=None):
    """Boolean row mask of ``region`` over ``store``, chunk-pruned."""
    return ChunkScan(store, region, columns=columns).row_mask()


def optimizer_chunk_keep(store, columns, scaler, optimizer):
    """Chunks a few-shot optimizer's refinement could mark positive.

    The Meta* refinement demotes every positive prediction outside the
    outer subregion and promotes only points inside the inner subregion,
    so a chunk intersecting *neither* region's conservative bbox (in raw
    coordinates, through the subspace scaler) ends up all-negative
    regardless of the classifier — it can be skipped entirely without
    changing a bit of the output.  Returns a ``(n_chunks,)`` keep mask,
    or ``None`` when the optimizer gives no pruning leverage: no
    optimizer, or no **outer** region — the outer demotion is the step
    that zeroes classifier positives in skipped chunks, so without it
    pruning would be unsound even if an inner region existed.
    """
    if optimizer is None or optimizer.outer_region is None:
        return None
    regions = [r for r in (optimizer.outer_region, optimizer.inner_region)
               if r is not None]
    keep = np.zeros(store.zone_maps.n_chunks, dtype=bool)
    for region in regions:
        scan = ChunkScan(store, ScaledRegion(region, scaler),
                         columns=columns)
        keep |= scan._keep
    return keep


def session_chunk_keep(store, subsessions):
    """Chunks a whole conjunctive session could mark positive.

    ``subsessions`` maps each subspace to its online state (anything
    with ``state.scaler`` and ``optimizer`` — the framework's
    ``_SubspaceSession``).  One subspace's refinement zeroing a chunk
    zeroes the whole conjunction, so the per-subspace keeps from
    :func:`optimizer_chunk_keep` are ANDed; subspaces with no pruning
    leverage contribute all-True.  This is the single soundness site
    shared by ``ExplorationSession.predict_store`` and
    ``SessionManager.predict_many_store``.
    """
    keep = np.ones(store.zone_maps.n_chunks, dtype=bool)
    for subspace, subsession in subsessions.items():
        chunk_keep = optimizer_chunk_keep(
            store, subspace.columns, subsession.state.scaler,
            subsession.optimizer)
        if chunk_keep is not None:
            keep &= chunk_keep
    return keep
