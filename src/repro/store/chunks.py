"""Chunked columnar dataset store with per-chunk zone maps.

The in-memory :class:`~repro.data.schema.Table` materializes every
dataset as one dense float64 matrix — every UIS build, oracle call and
prediction pass scans all rows, and nothing larger than RAM fits at all.
:class:`ChunkStore` is the out-of-core substrate underneath it: a table
split into fixed-size **row chunks**, each chunk held as per-column
contiguous arrays (Fortran-ordered in memory, or a memory-mapped ``.npy``
file on disk) and summarized by a **zone map** — per-attribute min/max,
row count, NaN flags and a content digest.

Zone maps are what make region predicates *skip* data instead of
scanning it: a chunk whose per-column range cannot intersect a region's
conservative bounding box provably contains no member, so the scan
planner (:mod:`repro.store.scan`) drops it without touching its bytes.
Chunk membership is row-independent everywhere in the system (facet
tests, encoders, classifiers), so chunk-at-a-time evaluation is
bit-identical to one full-table pass by construction.

Stores are **appendable** (:meth:`ChunkStore.append_blocks`): appends
extend the mutable tail chunk and add new chunks, while every *closed*
(full) chunk keeps its bytes and digest bit-stable — so per-chunk
digest-keyed caches stay warm across appends.  Each content change bumps
a monotonically increasing ``store_version``; sessions use it (plus the
store's stable ``uid``) as a freshness watermark to scan only chunks
newer than their last answer.

On-disk layout (one directory per store, format version 2)::

    store.json            format + store version, uid, name, attributes,
                          shape, digest, per-chunk filenames, provenance
    zonemaps-vNNNNN.npz   mins / maxs / counts / has_nan / chunk digests
                          (one file per store_version; old ones removed
                          after the manifest commit)
    chunk-NNNNN.npy       one Fortran-ordered float64 array per chunk;
                          a rewritten tail gets a fresh generation name
                          (chunk-NNNNN-vNNNNN.npy), never an in-place
                          truncate-rewrite

Appends are crash-safe: new chunk bytes and the new zone-map file are
written under names no live manifest references, and the single
``os.replace`` of ``store.json`` is the commit point — a crash at any
earlier moment leaves the previous store fully intact.  Format-version-1
directories (pre-append layout) still open, read-only.

Chunks are written streaming (constant memory) and opened lazily via
``np.load(..., mmap_mode="r")``, so peak resident memory is bounded by
the chunk size, never the table size.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
import uuid
import warnings

import numpy as np

from ..data.schema import Attribute, Table
from ..obs import default_registry

__all__ = ["DEFAULT_CHUNK_ROWS", "ZoneMaps", "ChunkStore",
           "StoreCorruptedError", "StoreReadOnlyError"]

#: Default rows per chunk: 64Ki rows x 8 float64 columns = 4 MiB.
DEFAULT_CHUNK_ROWS = 65_536

_MANIFEST = "store.json"
_ZONEMAPS_V1 = "zonemaps.npz"
_FORMAT_VERSION = 2
_SUPPORTED_VERSIONS = (1, 2)


class StoreCorruptedError(ValueError):
    """An on-disk store's files do not match its manifest.

    Raised *at open time* for missing, truncated or mis-shaped chunk
    files (fail fast, not deep inside a later serving call) and at chunk
    load time when a file's content digest does not match the zone maps
    (bit rot / tampering).  Subclasses :class:`ValueError` for
    compatibility with callers that caught the untyped error.
    """


class StoreReadOnlyError(RuntimeError):
    """Mutation attempted on a store opened read-only (e.g. format v1)."""


def _chunk_digest(block):
    """128-bit content digest of one chunk (column-major bytes + shape)."""
    block = np.asfortranarray(np.asarray(block, dtype=np.float64))
    h = hashlib.blake2b(digest_size=16)
    h.update(str(block.shape).encode())
    h.update(block.tobytes(order="F"))
    return h.hexdigest()


def _zone_stats(block):
    """(mins, maxs, has_nan) for one chunk; all-NaN columns yield NaN."""
    has_nan = np.isnan(block).any(axis=0)
    with warnings.catch_warnings():
        # An all-NaN column is a legal zone ("no finite range"): the
        # planner prunes it against any finite bound, which is correct
        # because a NaN coordinate fails every membership predicate.
        warnings.simplefilter("ignore", RuntimeWarning)
        mins = np.nanmin(block, axis=0)
        maxs = np.nanmax(block, axis=0)
    return mins, maxs, has_nan


class ZoneMaps:
    """Per-chunk pruning statistics for one :class:`ChunkStore`.

    ``mins`` / ``maxs`` are ``(n_chunks, d)`` NaN-ignoring column ranges
    (NaN where a chunk's column holds no finite value), ``counts`` the
    per-chunk row counts, ``has_nan`` the per-column NaN flags and
    ``digests`` the per-chunk content digests (used as stable prediction
    cache keys and hashed into the store digest).
    """

    __slots__ = ("mins", "maxs", "counts", "has_nan", "digests")

    def __init__(self, mins, maxs, counts, has_nan, digests):
        self.mins = np.atleast_2d(np.asarray(mins, dtype=np.float64))
        self.maxs = np.atleast_2d(np.asarray(maxs, dtype=np.float64))
        self.counts = np.asarray(counts, dtype=np.int64).ravel()
        self.has_nan = np.atleast_2d(np.asarray(has_nan, dtype=bool))
        self.digests = [str(d) for d in digests]
        n = len(self.counts)
        if n == 0:
            d = self.mins.shape[1] if self.mins.ndim == 2 else 0
            self.mins = self.mins.reshape(0, d)
            self.maxs = self.maxs.reshape(0, d)
            self.has_nan = self.has_nan.reshape(0, d)
        shapes = {self.mins.shape, self.maxs.shape, self.has_nan.shape}
        if len(shapes) != 1 or len(self.digests) != n:
            raise ValueError("inconsistent zone-map shapes")

    @property
    def n_chunks(self):
        return len(self.counts)

    @property
    def n_rows(self):
        return int(self.counts.sum())

    def column_bounds(self, columns=None):
        """Global NaN-ignoring (lo, hi) over all chunks for ``columns``."""
        mins = self.mins if columns is None else self.mins[:, list(columns)]
        maxs = self.maxs if columns is None else self.maxs[:, list(columns)]
        if len(mins) == 0:
            width = mins.shape[1]
            return (np.full(width, np.nan), np.full(width, np.nan))
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            return np.nanmin(mins, axis=0), np.nanmax(maxs, axis=0)

    def extended(self, other):
        """A new :class:`ZoneMaps` = these rows followed by ``other``'s."""
        if other.n_chunks == 0:
            return ZoneMaps(self.mins, self.maxs, self.counts,
                            self.has_nan, list(self.digests))
        if self.n_chunks == 0:
            return ZoneMaps(other.mins, other.maxs, other.counts,
                            other.has_nan, list(other.digests))
        return ZoneMaps(
            np.vstack([self.mins, other.mins]),
            np.vstack([self.maxs, other.maxs]),
            np.concatenate([self.counts, other.counts]),
            np.vstack([self.has_nan, other.has_nan]),
            list(self.digests) + list(other.digests))

    def truncated(self, n_chunks):
        """A new :class:`ZoneMaps` keeping only the first ``n_chunks``."""
        n = int(n_chunks)
        zones = ZoneMaps(self.mins[:n], self.maxs[:n], self.counts[:n],
                         self.has_nan[:n], list(self.digests[:n]))
        if n == 0:
            # Preserve the column width through the empty slice.
            d = self.mins.shape[1]
            zones.mins = zones.mins.reshape(0, d)
            zones.maxs = zones.maxs.reshape(0, d)
            zones.has_nan = zones.has_nan.reshape(0, d)
        return zones

    def state(self):
        """npz-serializable array dict (digests as fixed-width unicode)."""
        return {
            "mins": self.mins, "maxs": self.maxs, "counts": self.counts,
            "has_nan": self.has_nan,
            "digests": np.asarray(self.digests, dtype="U32"),
        }

    @classmethod
    def from_state(cls, state):
        return cls(state["mins"], state["maxs"], state["counts"],
                   state["has_nan"], [str(d) for d in state["digests"]])


class _ZoneBuilder:
    """Accumulates zone-map rows chunk by chunk (streaming builds)."""

    def __init__(self, width):
        self.width = int(width)
        self.mins, self.maxs, self.counts = [], [], []
        self.has_nan, self.digests = [], []

    def add(self, block):
        mins, maxs, has_nan = _zone_stats(block)
        self.mins.append(mins)
        self.maxs.append(maxs)
        self.counts.append(len(block))
        self.has_nan.append(has_nan)
        self.digests.append(_chunk_digest(block))

    def build(self):
        if not self.counts:
            empty = np.zeros((0, self.width))
            return ZoneMaps(empty, empty.copy(), np.zeros(0, dtype=np.int64),
                            np.zeros((0, self.width), dtype=bool), [])
        return ZoneMaps(np.vstack(self.mins), np.vstack(self.maxs),
                        np.asarray(self.counts), np.vstack(self.has_nan),
                        self.digests)


def _chunk_filename(index):
    return "chunk-{:05d}.npy".format(index)


def _tail_filename(index, store_version):
    # A rewritten tail chunk gets a generation-stamped name so the commit
    # never truncate-rewrites a file a live manifest (or mmap) references.
    return "chunk-{:05d}-v{:05d}.npy".format(index, store_version)


def _zone_filename(store_version):
    return "zonemaps-v{:05d}.npz".format(store_version)


def _atomic_save(path, array):
    tmp = path + ".tmp"
    with open(tmp, "wb") as fh:
        np.save(fh, array)
    os.replace(tmp, path)


def _freeze(block):
    # Always a private copy: freezing a caller-owned view in place would
    # alias the store to mutable external memory.
    block = np.array(block, dtype=np.float64, order="F", copy=True)
    block.flags.writeable = False
    return block


def _iter_rechunk(blocks, width, chunk_rows):
    """Re-chunk arbitrary row blocks to exactly ``chunk_rows`` rows.

    Yields full chunks as they fill (the final yielded chunk may be
    short); O(chunk_rows) buffered memory.  This is the single chunking
    rule shared by :meth:`ChunkStore.from_blocks` and
    :meth:`ChunkStore.append_blocks`, which is what makes an appended
    store bit-identical to a one-shot build over the same rows.
    """
    buffered, buffered_rows = [], 0
    for block in blocks:
        block = np.asarray(block, dtype=np.float64)
        if block.ndim != 2 or block.shape[1] != width:
            raise ValueError(
                "block shape {} does not match {} attributes".format(
                    block.shape, width))
        if not len(block):
            continue
        buffered.append(block)
        buffered_rows += len(block)
        while buffered_rows >= chunk_rows:
            merged = buffered[0] if len(buffered) == 1 \
                else np.vstack(buffered)
            yield merged[:chunk_rows]
            rest = merged[chunk_rows:]
            buffered = [rest] if len(rest) else []
            buffered_rows = len(rest)
    if buffered_rows:
        yield buffered[0] if len(buffered) == 1 else np.vstack(buffered)


class ChunkStore:
    """A table split into fixed-size row chunks with zone maps.

    Quacks like :class:`~repro.data.schema.Table` for the metadata the
    framework needs (``attributes`` / ``attribute`` / ``column_index`` /
    ``n_rows`` / ``sample_rows``) while exposing the chunked substrate
    (``iter_chunks`` / ``take`` / ``scan``) the out-of-core paths ride.
    Build one with :meth:`from_table`, :meth:`from_blocks` (streaming,
    constant memory) or :meth:`open` (memory-mapped from disk); grow it
    with :meth:`append_blocks`.
    """

    def __init__(self, name, attributes, chunks, zone_maps, directory=None,
                 chunk_rows=DEFAULT_CHUNK_ROWS, provenance=None,
                 store_version=1, uid=None, read_only=False, files=None):
        self.name = str(name)
        self.attributes = [a if isinstance(a, Attribute) else Attribute(a)
                           for a in attributes]
        self._index = {a.name: i for i, a in enumerate(self.attributes)}
        if len(self._index) != len(self.attributes):
            raise ValueError("duplicate attribute names")
        self.zone_maps = zone_maps
        self.chunk_rows = int(chunk_rows)
        self.directory = directory
        self.provenance = dict(provenance) if provenance else None
        # chunks: per-slot ndarray (in-memory store) or None (lazily
        # memory-mapped from self.directory on first access).
        self._chunks = list(chunks)
        if len(self._chunks) != zone_maps.n_chunks:
            raise ValueError("chunk list does not match zone maps")
        #: Monotonically increasing content version: bumped by every
        #: append (and recorded in the manifest), never by reads.  The
        #: serving layer uses it as a freshness watermark; the
        #: materialization caches below invalidate against it.
        self.store_version = int(store_version)
        #: Stable store identity, preserved across appends and reopens
        #: (unlike ``digest``, which changes with content).  Watermarks
        #: key on ``(uid, store_version)``.
        self.uid = str(uid) if uid else uuid.uuid4().hex
        self.read_only = bool(read_only)
        if files is not None:
            self._files = [str(f) for f in files]
        else:
            self._files = [_chunk_filename(i)
                           for i in range(len(self._chunks))]
        if len(self._files) != len(self._chunks):
            raise ValueError("chunk file list does not match zone maps")
        self._zone_name = _zone_filename(self.store_version)
        self._digest = None
        self._data = None
        self._offsets = None
        self._cached_at = self.store_version

    def _check_materialized(self):
        # Stale-cache guard: every cached materialization (_data, _digest,
        # offsets) is valid only for the store_version it was computed at.
        if self._cached_at != self.store_version:
            self._data = None
            self._digest = None
            self._offsets = None
            self._cached_at = self.store_version

    # ------------------------------------------------------------------
    # Table-compatible metadata
    # ------------------------------------------------------------------
    @property
    def offsets(self):
        """Global start row per chunk (``n_chunks + 1`` cumulative sums)."""
        self._check_materialized()
        if self._offsets is None:
            self._offsets = np.concatenate(
                [[0], np.cumsum(self.zone_maps.counts)]).astype(np.int64)
        return self._offsets

    @property
    def n_rows(self):
        return int(self.offsets[-1])

    @property
    def n_attributes(self):
        return len(self.attributes)

    @property
    def n_chunks(self):
        return self.zone_maps.n_chunks

    @property
    def closed_chunks(self):
        """How many leading chunks are full and therefore immutable.

        Only the final chunk can be short; it is the *open tail* that
        future appends rewrite.  Everything before it keeps its bytes and
        digest bit-stable forever — the prefix watermarked serving may
        safely reuse.
        """
        n = self.n_chunks
        if n and int(self.zone_maps.counts[-1]) < self.chunk_rows:
            return n - 1
        return n

    @property
    def attribute_names(self):
        return [a.name for a in self.attributes]

    def column_index(self, name):
        try:
            return self._index[name]
        except KeyError:
            raise KeyError("no attribute {!r} in store {!r}".format(
                name, self.name)) from None

    def attribute(self, name):
        return self.attributes[self.column_index(name)]

    def __len__(self):
        return self.n_rows

    def __repr__(self):
        return ("ChunkStore({!r}, rows={}, chunks={}, attrs={}, v{}, {})"
                .format(self.name, self.n_rows, self.n_chunks,
                        self.attribute_names, self.store_version,
                        "disk:" + self.directory if self.directory
                        else "memory"))

    # ------------------------------------------------------------------
    # Chunk access
    # ------------------------------------------------------------------
    def chunk(self, index):
        """The ``(rows, d)`` float64 array of one chunk (read-only).

        In-memory chunks are Fortran-ordered frozen arrays; on-disk
        chunks are opened lazily as read-only memory maps, verified
        against the zone map's recorded content digest on first load
        (so a swapped or bit-rotted chunk file raises
        :class:`StoreCorruptedError` instead of silently serving wrong
        rows), and cached.
        """
        block = self._chunks[index]
        if block is None:
            path = os.path.join(self.directory, self._files[index])
            block = np.load(path, mmap_mode="r")
            if _chunk_digest(block) != self.zone_maps.digests[index]:
                raise StoreCorruptedError(
                    "chunk file {!r} does not match the digest recorded "
                    "in the store's zone maps; the file was modified or "
                    "corrupted after the store was written".format(path))
            self._chunks[index] = block
        return block

    def chunk_digest(self, index):
        """Stable content digest of one chunk (cache-key material)."""
        return self.zone_maps.digests[index]

    def iter_chunks(self, columns=None):
        """Yield ``(start_row, block)`` per chunk, optionally projected."""
        columns = None if columns is None else list(columns)
        for i in range(self.n_chunks):
            block = self.chunk(i)
            if columns is not None:
                block = block[:, columns]
            yield int(self.offsets[i]), block

    def take(self, indices, columns=None):
        """Gather rows by global index, preserving the given order.

        Touches only the chunks the indices fall in; the result is
        bit-identical to ``table.data[indices]`` on the same data.
        """
        indices = np.asarray(indices, dtype=np.int64).ravel()
        if indices.size and (indices.min() < 0
                             or indices.max() >= self.n_rows):
            raise IndexError("row index out of range")
        columns = None if columns is None else list(columns)
        width = self.n_attributes if columns is None else len(columns)
        out = np.empty((indices.size, width), dtype=np.float64)
        owner = np.searchsorted(self.offsets, indices, side="right") - 1
        for ci in np.unique(owner):
            sel = owner == ci
            block = self.chunk(ci)
            rows = block[indices[sel] - self.offsets[ci]]
            out[sel] = rows if columns is None else rows[:, columns]
        return out

    def sample_rows(self, n, seed=None):
        """Uniform row sample without replacement (Table-compatible)."""
        from ..data.sampling import random_indices
        return self.take(random_indices(self.n_rows, n, seed=seed))

    def column_bounds(self, columns=None):
        """Exact global NaN-ignoring (lo, hi) straight off the zone maps."""
        return self.zone_maps.column_bounds(columns)

    def column_has_nan(self, columns=None):
        """Per-column NaN presence anywhere in the store, off the zone
        maps (no data pass).  The offline phase fails fast on NaN
        columns instead of fitting NaN scalers/encoders; scans do not
        need it (NaN fails every membership predicate)."""
        flags = self.zone_maps.has_nan if columns is None \
            else self.zone_maps.has_nan[:, list(columns)]
        if len(flags) == 0:
            return np.zeros(flags.shape[1], dtype=bool)
        return flags.any(axis=0)

    def scan(self, region, columns=None, first_chunk=0):
        """A zone-map-pruned :class:`~repro.store.scan.ChunkScan` plan."""
        from .scan import ChunkScan
        return ChunkScan(self, region, columns=columns,
                         first_chunk=first_chunk)

    # ------------------------------------------------------------------
    # Materialization (compatibility escape hatches)
    # ------------------------------------------------------------------
    @property
    def data(self):
        """Materialized ``(n_rows, d)`` matrix, cached per store version.

        Compatibility escape hatch for code written against ``Table``:
        costs O(table) memory, so out-of-core paths must use
        :meth:`iter_chunks` / :meth:`take` instead.  The cache is keyed
        to ``store_version``: an append invalidates it, so reads never
        serve pre-append rows.
        """
        self._check_materialized()
        if self._data is None:
            if self.n_chunks == 0:
                self._data = np.zeros((0, self.n_attributes))
            else:
                self._data = np.ascontiguousarray(
                    np.vstack([self.chunk(i) for i in range(self.n_chunks)]))
            self._data.flags.writeable = False
        return self._data

    def to_table(self):
        """Materialize as an in-memory :class:`~repro.data.schema.Table`."""
        table = Table(self.name, self.attributes, np.array(self.data))
        table.provenance = dict(self.provenance) if self.provenance else None
        return table

    # ------------------------------------------------------------------
    # Builders
    # ------------------------------------------------------------------
    @classmethod
    def from_blocks(cls, name, attributes, blocks,
                    chunk_rows=DEFAULT_CHUNK_ROWS, directory=None,
                    provenance=None):
        """Build a store from an iterable of row blocks, streaming.

        Blocks are re-chunked to exactly ``chunk_rows`` rows (the last
        chunk may be short).  With ``directory`` every completed chunk is
        written to disk and dropped from memory immediately, so building
        a store of any size needs O(chunk_rows) memory; without it the
        chunks stay in memory (Fortran-ordered, read-only).  Stale chunk
        and zone-map files from a previous store in the same directory
        are removed after the manifest commit.
        """
        chunk_rows = int(chunk_rows)
        if chunk_rows < 1:
            raise ValueError("chunk_rows must be >= 1")
        attributes = [a if isinstance(a, Attribute) else Attribute(a)
                      for a in attributes]
        width = len(attributes)
        if directory is not None:
            os.makedirs(directory, exist_ok=True)
        zones = _ZoneBuilder(width)
        chunks, files = [], []
        for block in _iter_rechunk(blocks, width, chunk_rows):
            block = _freeze(block)
            zones.add(block)
            files.append(_chunk_filename(len(chunks)))
            if directory is None:
                chunks.append(block)
            else:
                _atomic_save(os.path.join(directory, files[-1]), block)
                chunks.append(None)

        store = cls(name, attributes, chunks, zones.build(),
                    directory=directory, chunk_rows=chunk_rows,
                    provenance=provenance, files=files)
        if directory is not None:
            store._write_manifest()
            store._remove_stale_files()
        return store

    @classmethod
    def from_table(cls, table, chunk_rows=DEFAULT_CHUNK_ROWS, directory=None,
                   name=None):
        """Chunk an in-memory table, preserving row order exactly."""
        data = table.data

        def blocks():
            for start in range(0, len(data), int(chunk_rows)):
                yield data[start:start + int(chunk_rows)]

        return cls.from_blocks(
            name or table.name, table.attributes, blocks(),
            chunk_rows=chunk_rows, directory=directory,
            provenance=getattr(table, "provenance", None))

    # ------------------------------------------------------------------
    # Appends
    # ------------------------------------------------------------------
    def append_blocks(self, blocks):
        """Append row blocks in place; returns the number of rows added.

        The open tail chunk (if any) is merged with the new rows and
        re-chunked by the same rule as :meth:`from_blocks`, so the
        resulting store is bit-identical — rows, zone maps, chunk
        digests, store digest — to a one-shot build over the concatenated
        rows.  Closed chunks are never touched: their bytes, digests and
        (for disk stores) files stay bit-stable, which keeps digest-keyed
        prediction caches warm across appends.

        Each append that adds rows bumps ``store_version``.  On disk the
        commit is crash-safe: the rewritten tail gets a fresh
        generation-stamped filename, the new zone maps a fresh versioned
        filename, and the single rename of ``store.json`` is the commit
        point — a crash anywhere earlier leaves the previous manifest
        pointing at fully intact files.  Concurrent *readers* of the same
        directory should call :meth:`refresh` to adopt the new version;
        concurrent writers are not supported.
        """
        if self.read_only:
            raise StoreReadOnlyError(
                "store {!r} was opened read-only (format v1 layout); "
                "rewrite it with save() to a new directory to get an "
                "appendable v2 store".format(self.name))
        t0 = time.perf_counter()
        width = self.n_attributes
        zone = self.zone_maps
        tail_index = None
        tail_rows = None
        if self.n_chunks and int(zone.counts[-1]) < self.chunk_rows:
            tail_index = self.n_chunks - 1
            tail_rows = np.array(self.chunk(tail_index))

        def stream():
            if tail_rows is not None:
                yield tail_rows
            for block in blocks:
                yield block

        base = self.n_chunks if tail_index is None else tail_index
        zones_new = _ZoneBuilder(width)
        staged = []
        for block in _iter_rechunk(stream(), width, self.chunk_rows):
            block = _freeze(block)
            zones_new.add(block)
            staged.append(block)
        staged_rows = sum(len(b) for b in staged)
        appended = staged_rows - (0 if tail_rows is None else len(tail_rows))
        if appended <= 0:
            # Nothing new: bits unchanged, so the version must not move
            # (digest-equal iff version-equal for a fixed uid).
            return 0

        new_version = self.store_version + 1
        files = list(self._files[:base])
        disk = self.directory is not None
        for k, block in enumerate(staged):
            index = base + k
            name = _tail_filename(index, new_version) \
                if index == tail_index else _chunk_filename(index)
            files.append(name)
            if disk:
                _atomic_save(os.path.join(self.directory, name), block)

        rollback = (self.zone_maps, self._files, self._chunks,
                    self.store_version, self._zone_name)
        self.zone_maps = zone.truncated(base).extended(zones_new.build())
        self._files = files
        self._chunks = list(self._chunks[:base]) + \
            ([None] * len(staged) if disk else staged)
        self.store_version = new_version
        try:
            if disk:
                self._write_manifest()
        except BaseException:
            (self.zone_maps, self._files, self._chunks,
             self.store_version, self._zone_name) = rollback
            self._data = None
            self._digest = None
            self._offsets = None
            self._cached_at = self.store_version
            raise
        if disk:
            self._remove_stale_files()
        metrics = default_registry()
        metrics.counter("store.ingest.commits").inc()
        metrics.counter("store.ingest.append.rows").inc(appended)
        metrics.histogram("store.ingest.append.seconds") \
            .observe(time.perf_counter() - t0)
        return appended

    def refresh(self):
        """Adopt appends another handle (or process) committed to disk.

        Re-reads the manifest and zone maps in place, keeping cached
        mmaps for chunks whose digest and filename are unchanged (the
        closed prefix), so a long-lived reader — a shard worker, say —
        catches up with an appended store without re-verifying untouched
        chunks.  No-op for in-memory stores.  Returns ``self``.
        """
        if self.directory is None:
            return self
        fresh = ChunkStore.open(self.directory, validate=False)
        if fresh.uid != self.uid:
            # The directory was swapped wholesale (e.g. an in-place
            # cluster_by): nothing cached carries over.
            chunks = [None] * fresh.n_chunks
        else:
            chunks = []
            for i, d in enumerate(fresh.zone_maps.digests):
                same = (i < len(self._chunks)
                        and self.zone_maps.digests[i] == d
                        and self._files[i] == fresh._files[i])
                chunks.append(self._chunks[i] if same else None)
        self.name = fresh.name
        self.attributes = fresh.attributes
        self._index = fresh._index
        self.zone_maps = fresh.zone_maps
        self.chunk_rows = fresh.chunk_rows
        self.provenance = fresh.provenance
        self._chunks = chunks
        self._files = fresh._files
        self.store_version = fresh.store_version
        self.uid = fresh.uid
        self.read_only = fresh.read_only
        self._zone_name = fresh._zone_name
        self._data = None
        self._digest = None
        self._offsets = None
        self._cached_at = self.store_version
        return self

    def cluster_by(self, column, directory=None, bins=32):
        """Rewrite the store with rows bucketed by one column's value.

        Zone maps only prune when chunks have value locality; a store
        ingested in arbitrary row order has chunks spanning the full
        attribute range and prunes nothing.  This is the streaming
        ``CLUSTER BY``: one pass partitions every chunk's rows into
        ``bins`` equal-width bands of ``column`` (NaN rows in a trailing
        bucket), spilling full bands to disk for disk-backed builds, and
        the bands re-emit in order — O(table) read I/O, O(bins * chunk)
        memory.  Row content is preserved exactly as a multiset
        (non-finite values included; the row *order* changes, which is
        the point): the rewritten chunks carry tight zone ranges on the
        cluster column.

        Clustering **into the store's own directory** is safe: the new
        store is built in a temporary sibling directory and atomically
        swapped in (truncate-rewriting the live ``chunk-NNNNN.npy`` files
        under the source's cached mmaps would be a SIGBUS/garbage hazard,
        and a shrinking chunk count would leave stale tail files).  After
        the swap this source object detaches from the directory (all its
        chunks are already resident from the partition pass) and becomes
        read-only.
        """
        import shutil
        import tempfile

        j = self.column_index(column) if isinstance(column, str) \
            else int(column)
        lo, hi = self.column_bounds([j])
        lo, hi = float(lo[0]), float(hi[0])
        if not np.isfinite(lo) or not np.isfinite(hi) or hi <= lo:
            n_bins = 1
            edges = np.array([-np.inf, np.inf])
        else:
            n_bins = max(1, int(bins))
            edges = np.linspace(lo, hi, n_bins + 1)
            edges[0], edges[-1] = -np.inf, np.inf

        same_dir = (directory is not None and self.directory is not None
                    and os.path.abspath(directory)
                    == os.path.abspath(self.directory))
        build_dir = directory
        parent = None
        if same_dir:
            parent = os.path.dirname(os.path.abspath(directory)) or "."
            build_dir = tempfile.mkdtemp(prefix=".cluster-build-",
                                         dir=parent)

        spill_dir = None
        if self.directory is not None or build_dir is not None:
            if build_dir is not None:
                os.makedirs(build_dir, exist_ok=True)
            spill_dir = tempfile.mkdtemp(prefix=".cluster-spill-",
                                         dir=build_dir)
        buckets = [[] for _ in range(n_bins + 1)]   # pending row blocks
        pending = np.zeros(n_bins + 1, dtype=np.int64)
        spills = [[] for _ in range(n_bins + 1)]    # arrays or npy paths

        def flush(b):
            if not buckets[b]:
                return
            block = buckets[b][0] if len(buckets[b]) == 1 \
                else np.vstack(buckets[b])
            if spill_dir is not None:
                path = os.path.join(spill_dir, "s{:04d}-{:06d}.npy".format(
                    b, len(spills[b])))
                np.save(path, np.ascontiguousarray(block))
                spills[b].append(path)
            else:
                spills[b].append(np.array(block))
            buckets[b].clear()
            pending[b] = 0

        try:
            for _, chunk in self.iter_chunks():
                values = chunk[:, j]
                # Half-open bands; +-inf land in the edge bands (the
                # outer edges are forced to +-inf), NaN in the trailing
                # bucket — every row lands in exactly one bucket.
                band = np.searchsorted(edges, values, side="right") - 1
                band = np.clip(band, 0, n_bins - 1)
                band[np.isnan(values)] = n_bins
                for b in np.unique(band):
                    b = int(b)
                    rows = np.asarray(chunk)[band == b]
                    buckets[b].append(rows)
                    pending[b] += len(rows)
                    if pending[b] >= self.chunk_rows:
                        flush(b)
            for b in range(n_bins + 1):
                flush(b)

            def blocks():
                for per_band in spills:
                    for item in per_band:
                        yield np.load(item) if isinstance(item, str) \
                            else item

            provenance = dict(self.provenance or {})
            provenance["clustered_by"] = self.attributes[j].name
            result = ChunkStore.from_blocks(
                self.name, self.attributes, blocks(),
                chunk_rows=self.chunk_rows, directory=build_dir,
                provenance=provenance)
        finally:
            if spill_dir is not None:
                shutil.rmtree(spill_dir, ignore_errors=True)

        if same_dir:
            target = os.path.abspath(directory)
            trash = tempfile.mkdtemp(prefix=".cluster-old-", dir=parent)
            os.rename(target, os.path.join(trash, "store"))
            os.rename(build_dir, target)
            shutil.rmtree(trash, ignore_errors=True)
            # This source object no longer owns a directory: every chunk
            # is resident (the partition pass loaded them all), so it
            # keeps serving reads, but it can never write again.
            self.directory = None
            self.read_only = True
            result = ChunkStore.open(target)
        return result

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    @property
    def digest(self):
        """Deterministic store digest over schema + per-chunk digests.

        Cheap (no data re-read): each chunk digest was computed in the
        single pass that built its zone map, so two stores digest equal
        iff they hold the same attributes and the same chunked bytes —
        the identity :mod:`repro.persist` fingerprints checkpoints with.
        Identity metadata (``uid``, ``store_version``, filenames) is
        deliberately excluded: an appended store digests equal to a
        one-shot build over the same rows.
        """
        self._check_materialized()
        if self._digest is None:
            h = hashlib.blake2b(digest_size=16)
            for a in self.attributes:
                h.update(a.name.encode())
                h.update(a.hint.encode())
            h.update(str((self.n_rows, self.chunk_rows)).encode())
            for d in self.zone_maps.digests:
                h.update(d.encode())
            self._digest = h.hexdigest()
        return self._digest

    def _write_manifest(self):
        zone_name = _zone_filename(self.store_version)
        manifest = {
            "format_version": _FORMAT_VERSION,
            "name": self.name,
            "attributes": [{"name": a.name, "hint": a.hint}
                           for a in self.attributes],
            "n_rows": self.n_rows,
            "n_chunks": self.n_chunks,
            "chunk_rows": self.chunk_rows,
            "digest": self.digest,
            "provenance": self.provenance,
            "store_version": self.store_version,
            "uid": self.uid,
            "zone_file": zone_name,
            "chunk_files": list(self._files),
        }
        # The new zone maps go to a version-stamped file no existing
        # manifest references; the manifest rename below is the single
        # commit point that switches both atomically.
        zones_tmp = os.path.join(self.directory, zone_name + ".tmp")
        with open(zones_tmp, "wb") as fh:
            np.savez(fh, **self.zone_maps.state())
        os.replace(zones_tmp, os.path.join(self.directory, zone_name))
        manifest_tmp = os.path.join(self.directory, _MANIFEST + ".tmp")
        with open(manifest_tmp, "w") as fh:
            json.dump(manifest, fh, indent=1, sort_keys=True)
        os.replace(manifest_tmp, os.path.join(self.directory, _MANIFEST))
        self._zone_name = zone_name

    def _remove_stale_files(self):
        """Best-effort cleanup of store files no longer referenced.

        Run only *after* a manifest commit: removes superseded tail
        chunks, old zone-map versions, leftover ``.tmp`` files and chunk
        files from a previous (larger) store in the same directory.
        """
        keep = set(self._files)
        keep.add(self._zone_name)
        for entry in os.listdir(self.directory):
            if entry in keep or entry == _MANIFEST:
                continue
            stale = ((entry.startswith("chunk-") and entry.endswith(".npy"))
                     or (entry.startswith("zonemaps")
                         and entry.endswith(".npz"))
                     or entry.endswith(".tmp"))
            if not stale:
                continue
            path = os.path.join(self.directory, entry)
            if not os.path.isfile(path):
                continue
            try:
                os.unlink(path)
            except OSError:
                pass

    def save(self, directory):
        """Write this store to ``directory``; returns the on-disk store.

        Materializes a compacted copy (fresh uid, ``store_version`` 1) —
        also the upgrade path for read-only format-v1 stores.
        """
        if self.directory is not None \
                and os.path.abspath(self.directory) \
                == os.path.abspath(directory):
            return self
        return ChunkStore.from_blocks(
            self.name, self.attributes,
            (block for _, block in self.iter_chunks()),
            chunk_rows=self.chunk_rows, directory=directory,
            provenance=self.provenance)

    def validate_files(self):
        """Fail fast if any chunk file is missing, truncated or reshaped.

        Reads only each file's npy header (O(n_chunks) small reads, no
        data pass) and checks the promised shape/dtype against the zone
        maps and the promised byte count against the file size.  Content
        bit-flips that preserve the size are still caught later, by the
        digest check on first :meth:`chunk` load.
        """
        if self.directory is None:
            return
        width = self.n_attributes
        for i, name in enumerate(self._files):
            path = os.path.join(self.directory, name)
            rows = int(self.zone_maps.counts[i])
            if not os.path.isfile(path):
                raise StoreCorruptedError(
                    "chunk file {!r} is missing; the store directory was "
                    "modified after the manifest was written".format(path))
            try:
                with open(path, "rb") as fh:
                    version = np.lib.format.read_magic(fh)
                    if version == (1, 0):
                        shape, _, dtype = \
                            np.lib.format.read_array_header_1_0(fh)
                    elif version == (2, 0):
                        shape, _, dtype = \
                            np.lib.format.read_array_header_2_0(fh)
                    else:
                        raise StoreCorruptedError(
                            "chunk file {!r} uses unsupported npy format "
                            "{!r}".format(path, version))
                    data_start = fh.tell()
            except StoreCorruptedError:
                raise
            except Exception as error:
                raise StoreCorruptedError(
                    "chunk file {!r} has an unreadable npy header "
                    "({})".format(path, error)) from None
            if shape != (rows, width) or dtype != np.dtype(np.float64):
                raise StoreCorruptedError(
                    "chunk file {!r} holds shape {} dtype {} but the zone "
                    "maps record a ({}, {}) float64 chunk".format(
                        path, shape, dtype, rows, width))
            expected = data_start + int(np.prod(shape)) * dtype.itemsize
            actual = os.path.getsize(path)
            if actual != expected:
                raise StoreCorruptedError(
                    "chunk file {!r} is {} bytes but its header promises "
                    "{}; the file is truncated or padded".format(
                        path, actual, expected))

    @classmethod
    def open(cls, directory, validate=True):
        """Open an on-disk store; chunks memory-map lazily on access.

        Format-v2 stores open appendable; format-v1 directories (written
        before appends existed) open **read-only**.  With ``validate``
        (the default) every chunk file's presence, shape and byte size is
        checked up front — a damaged directory raises
        :class:`StoreCorruptedError` here instead of deep inside a later
        serving call.
        """
        manifest_path = os.path.join(directory, _MANIFEST)
        if not os.path.isfile(manifest_path):
            raise FileNotFoundError(
                "no chunk store at {!r}: {} is missing".format(
                    directory, _MANIFEST))
        with open(manifest_path) as fh:
            manifest = json.load(fh)
        version = manifest.get("format_version")
        if version not in _SUPPORTED_VERSIONS:
            raise ValueError(
                "store at {!r} uses format version {!r}; this build reads "
                "versions {}".format(directory, version,
                                     list(_SUPPORTED_VERSIONS)))
        zone_name = manifest.get("zone_file", _ZONEMAPS_V1)
        zone_path = os.path.join(directory, zone_name)
        if not os.path.isfile(zone_path):
            raise StoreCorruptedError(
                "store at {!r} is missing its zone-map file {!r}".format(
                    directory, zone_name))
        with np.load(zone_path, allow_pickle=False) as npz:
            zones = ZoneMaps.from_state({k: npz[k] for k in npz.files})
        attributes = [Attribute(e["name"], hint=e["hint"])
                      for e in manifest["attributes"]]
        files = manifest.get("chunk_files")
        if files is None:
            files = [_chunk_filename(i) for i in range(zones.n_chunks)]
        if len(files) != zones.n_chunks:
            raise StoreCorruptedError(
                "store at {!r} lists {} chunk files for {} chunks".format(
                    directory, len(files), zones.n_chunks))
        uid = manifest.get("uid")
        if uid is None:
            # v1 stores are immutable, so the content digest is a stable
            # identity for them.
            uid = "v1:" + str(manifest.get("digest", ""))
        store = cls(manifest["name"], attributes,
                    [None] * zones.n_chunks, zones, directory=directory,
                    chunk_rows=manifest["chunk_rows"],
                    provenance=manifest.get("provenance"),
                    store_version=manifest.get("store_version", 1),
                    uid=uid, read_only=(version == 1), files=files)
        store._zone_name = zone_name
        if store.digest != manifest.get("digest"):
            raise StoreCorruptedError(
                "store at {!r} fails its digest check (manifest says {}, "
                "zone maps hash to {}); the directory was modified or "
                "partially written".format(directory, manifest.get("digest"),
                                           store.digest))
        if validate:
            store.validate_files()
        return store
