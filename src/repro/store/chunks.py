"""Chunked columnar dataset store with per-chunk zone maps.

The in-memory :class:`~repro.data.schema.Table` materializes every
dataset as one dense float64 matrix — every UIS build, oracle call and
prediction pass scans all rows, and nothing larger than RAM fits at all.
:class:`ChunkStore` is the out-of-core substrate underneath it: a table
split into fixed-size **row chunks**, each chunk held as per-column
contiguous arrays (Fortran-ordered in memory, or a memory-mapped ``.npy``
file on disk) and summarized by a **zone map** — per-attribute min/max,
row count, NaN flags and a content digest.

Zone maps are what make region predicates *skip* data instead of
scanning it: a chunk whose per-column range cannot intersect a region's
conservative bounding box provably contains no member, so the scan
planner (:mod:`repro.store.scan`) drops it without touching its bytes.
Chunk membership is row-independent everywhere in the system (facet
tests, encoders, classifiers), so chunk-at-a-time evaluation is
bit-identical to one full-table pass by construction.

On-disk layout (one directory per store)::

    store.json      format version, name, attributes, shape, digest,
                    dataset provenance
    zonemaps.npz    mins / maxs / counts / has_nan / per-chunk digests
    chunk-00000.npy one Fortran-ordered float64 array per chunk

Chunks are written streaming (constant memory) and opened lazily via
``np.load(..., mmap_mode="r")``, so peak resident memory is bounded by
the chunk size, never the table size.
"""

from __future__ import annotations

import hashlib
import json
import os
import warnings

import numpy as np

from ..data.schema import Attribute, Table

__all__ = ["DEFAULT_CHUNK_ROWS", "ZoneMaps", "ChunkStore"]

#: Default rows per chunk: 64Ki rows x 8 float64 columns = 4 MiB.
DEFAULT_CHUNK_ROWS = 65_536

_MANIFEST = "store.json"
_ZONEMAPS = "zonemaps.npz"
_FORMAT_VERSION = 1


def _chunk_digest(block):
    """128-bit content digest of one chunk (column-major bytes + shape)."""
    block = np.asfortranarray(np.asarray(block, dtype=np.float64))
    h = hashlib.blake2b(digest_size=16)
    h.update(str(block.shape).encode())
    h.update(block.tobytes(order="F"))
    return h.hexdigest()


def _zone_stats(block):
    """(mins, maxs, has_nan) for one chunk; all-NaN columns yield NaN."""
    has_nan = np.isnan(block).any(axis=0)
    with warnings.catch_warnings():
        # An all-NaN column is a legal zone ("no finite range"): the
        # planner prunes it against any finite bound, which is correct
        # because a NaN coordinate fails every membership predicate.
        warnings.simplefilter("ignore", RuntimeWarning)
        mins = np.nanmin(block, axis=0)
        maxs = np.nanmax(block, axis=0)
    return mins, maxs, has_nan


class ZoneMaps:
    """Per-chunk pruning statistics for one :class:`ChunkStore`.

    ``mins`` / ``maxs`` are ``(n_chunks, d)`` NaN-ignoring column ranges
    (NaN where a chunk's column holds no finite value), ``counts`` the
    per-chunk row counts, ``has_nan`` the per-column NaN flags and
    ``digests`` the per-chunk content digests (used as stable prediction
    cache keys and hashed into the store digest).
    """

    __slots__ = ("mins", "maxs", "counts", "has_nan", "digests")

    def __init__(self, mins, maxs, counts, has_nan, digests):
        self.mins = np.atleast_2d(np.asarray(mins, dtype=np.float64))
        self.maxs = np.atleast_2d(np.asarray(maxs, dtype=np.float64))
        self.counts = np.asarray(counts, dtype=np.int64).ravel()
        self.has_nan = np.atleast_2d(np.asarray(has_nan, dtype=bool))
        self.digests = [str(d) for d in digests]
        n = len(self.counts)
        if n == 0:
            d = self.mins.shape[1] if self.mins.ndim == 2 else 0
            self.mins = self.mins.reshape(0, d)
            self.maxs = self.maxs.reshape(0, d)
            self.has_nan = self.has_nan.reshape(0, d)
        shapes = {self.mins.shape, self.maxs.shape, self.has_nan.shape}
        if len(shapes) != 1 or len(self.digests) != n:
            raise ValueError("inconsistent zone-map shapes")

    @property
    def n_chunks(self):
        return len(self.counts)

    @property
    def n_rows(self):
        return int(self.counts.sum())

    def column_bounds(self, columns=None):
        """Global NaN-ignoring (lo, hi) over all chunks for ``columns``."""
        mins = self.mins if columns is None else self.mins[:, list(columns)]
        maxs = self.maxs if columns is None else self.maxs[:, list(columns)]
        if len(mins) == 0:
            width = mins.shape[1]
            return (np.full(width, np.nan), np.full(width, np.nan))
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            return np.nanmin(mins, axis=0), np.nanmax(maxs, axis=0)

    def state(self):
        """npz-serializable array dict (digests as fixed-width unicode)."""
        return {
            "mins": self.mins, "maxs": self.maxs, "counts": self.counts,
            "has_nan": self.has_nan,
            "digests": np.asarray(self.digests, dtype="U32"),
        }

    @classmethod
    def from_state(cls, state):
        return cls(state["mins"], state["maxs"], state["counts"],
                   state["has_nan"], [str(d) for d in state["digests"]])


class _ZoneBuilder:
    """Accumulates zone-map rows chunk by chunk (streaming builds)."""

    def __init__(self, width):
        self.width = int(width)
        self.mins, self.maxs, self.counts = [], [], []
        self.has_nan, self.digests = [], []

    def add(self, block):
        mins, maxs, has_nan = _zone_stats(block)
        self.mins.append(mins)
        self.maxs.append(maxs)
        self.counts.append(len(block))
        self.has_nan.append(has_nan)
        self.digests.append(_chunk_digest(block))

    def build(self):
        if not self.counts:
            empty = np.zeros((0, self.width))
            return ZoneMaps(empty, empty.copy(), np.zeros(0, dtype=np.int64),
                            np.zeros((0, self.width), dtype=bool), [])
        return ZoneMaps(np.vstack(self.mins), np.vstack(self.maxs),
                        np.asarray(self.counts), np.vstack(self.has_nan),
                        self.digests)


def _chunk_filename(index):
    return "chunk-{:05d}.npy".format(index)


def _freeze(block):
    # Always a private copy: freezing a caller-owned view in place would
    # alias the store to mutable external memory.
    block = np.array(block, dtype=np.float64, order="F", copy=True)
    block.flags.writeable = False
    return block


class ChunkStore:
    """A table split into fixed-size row chunks with zone maps.

    Quacks like :class:`~repro.data.schema.Table` for the metadata the
    framework needs (``attributes`` / ``attribute`` / ``column_index`` /
    ``n_rows`` / ``sample_rows``) while exposing the chunked substrate
    (``iter_chunks`` / ``take`` / ``scan``) the out-of-core paths ride.
    Build one with :meth:`from_table`, :meth:`from_blocks` (streaming,
    constant memory) or :meth:`open` (memory-mapped from disk).
    """

    def __init__(self, name, attributes, chunks, zone_maps, directory=None,
                 chunk_rows=DEFAULT_CHUNK_ROWS, provenance=None):
        self.name = str(name)
        self.attributes = [a if isinstance(a, Attribute) else Attribute(a)
                           for a in attributes]
        self._index = {a.name: i for i, a in enumerate(self.attributes)}
        if len(self._index) != len(self.attributes):
            raise ValueError("duplicate attribute names")
        self.zone_maps = zone_maps
        self.chunk_rows = int(chunk_rows)
        self.directory = directory
        self.provenance = dict(provenance) if provenance else None
        # chunks: per-slot ndarray (in-memory store) or None (lazily
        # memory-mapped from self.directory on first access).
        self._chunks = list(chunks)
        if len(self._chunks) != zone_maps.n_chunks:
            raise ValueError("chunk list does not match zone maps")
        self.offsets = np.concatenate(
            [[0], np.cumsum(zone_maps.counts)]).astype(np.int64)
        self._digest = None
        self._data = None

    # ------------------------------------------------------------------
    # Table-compatible metadata
    # ------------------------------------------------------------------
    @property
    def n_rows(self):
        return int(self.offsets[-1])

    @property
    def n_attributes(self):
        return len(self.attributes)

    @property
    def n_chunks(self):
        return self.zone_maps.n_chunks

    @property
    def attribute_names(self):
        return [a.name for a in self.attributes]

    def column_index(self, name):
        try:
            return self._index[name]
        except KeyError:
            raise KeyError("no attribute {!r} in store {!r}".format(
                name, self.name)) from None

    def attribute(self, name):
        return self.attributes[self.column_index(name)]

    def __len__(self):
        return self.n_rows

    def __repr__(self):
        return "ChunkStore({!r}, rows={}, chunks={}, attrs={}, {})".format(
            self.name, self.n_rows, self.n_chunks, self.attribute_names,
            "disk:" + self.directory if self.directory else "memory")

    # ------------------------------------------------------------------
    # Chunk access
    # ------------------------------------------------------------------
    def chunk(self, index):
        """The ``(rows, d)`` float64 array of one chunk (read-only).

        In-memory chunks are Fortran-ordered frozen arrays; on-disk
        chunks are opened lazily as read-only memory maps, verified
        against the zone map's recorded content digest on first load
        (so a swapped or bit-rotted chunk file raises instead of
        silently serving wrong rows), and cached.
        """
        block = self._chunks[index]
        if block is None:
            path = os.path.join(self.directory, _chunk_filename(index))
            block = np.load(path, mmap_mode="r")
            if _chunk_digest(block) != self.zone_maps.digests[index]:
                raise ValueError(
                    "chunk file {!r} does not match the digest recorded "
                    "in the store's zone maps; the file was modified or "
                    "corrupted after the store was written".format(path))
            self._chunks[index] = block
        return block

    def chunk_digest(self, index):
        """Stable content digest of one chunk (cache-key material)."""
        return self.zone_maps.digests[index]

    def iter_chunks(self, columns=None):
        """Yield ``(start_row, block)`` per chunk, optionally projected."""
        columns = None if columns is None else list(columns)
        for i in range(self.n_chunks):
            block = self.chunk(i)
            if columns is not None:
                block = block[:, columns]
            yield int(self.offsets[i]), block

    def take(self, indices, columns=None):
        """Gather rows by global index, preserving the given order.

        Touches only the chunks the indices fall in; the result is
        bit-identical to ``table.data[indices]`` on the same data.
        """
        indices = np.asarray(indices, dtype=np.int64).ravel()
        if indices.size and (indices.min() < 0
                             or indices.max() >= self.n_rows):
            raise IndexError("row index out of range")
        columns = None if columns is None else list(columns)
        width = self.n_attributes if columns is None else len(columns)
        out = np.empty((indices.size, width), dtype=np.float64)
        owner = np.searchsorted(self.offsets, indices, side="right") - 1
        for ci in np.unique(owner):
            sel = owner == ci
            block = self.chunk(ci)
            rows = block[indices[sel] - self.offsets[ci]]
            out[sel] = rows if columns is None else rows[:, columns]
        return out

    def sample_rows(self, n, seed=None):
        """Uniform row sample without replacement (Table-compatible)."""
        from ..data.sampling import random_indices
        return self.take(random_indices(self.n_rows, n, seed=seed))

    def column_bounds(self, columns=None):
        """Exact global NaN-ignoring (lo, hi) straight off the zone maps."""
        return self.zone_maps.column_bounds(columns)

    def column_has_nan(self, columns=None):
        """Per-column NaN presence anywhere in the store, off the zone
        maps (no data pass).  The offline phase fails fast on NaN
        columns instead of fitting NaN scalers/encoders; scans do not
        need it (NaN fails every membership predicate)."""
        flags = self.zone_maps.has_nan if columns is None \
            else self.zone_maps.has_nan[:, list(columns)]
        if len(flags) == 0:
            return np.zeros(flags.shape[1], dtype=bool)
        return flags.any(axis=0)

    def scan(self, region, columns=None):
        """A zone-map-pruned :class:`~repro.store.scan.ChunkScan` plan."""
        from .scan import ChunkScan
        return ChunkScan(self, region, columns=columns)

    # ------------------------------------------------------------------
    # Materialization (compatibility escape hatches)
    # ------------------------------------------------------------------
    @property
    def data(self):
        """Materialized ``(n_rows, d)`` matrix, cached.

        Compatibility escape hatch for code written against ``Table``:
        costs O(table) memory, so out-of-core paths must use
        :meth:`iter_chunks` / :meth:`take` instead.
        """
        if self._data is None:
            if self.n_chunks == 0:
                self._data = np.zeros((0, self.n_attributes))
            else:
                self._data = np.ascontiguousarray(
                    np.vstack([self.chunk(i) for i in range(self.n_chunks)]))
            self._data.flags.writeable = False
        return self._data

    def to_table(self):
        """Materialize as an in-memory :class:`~repro.data.schema.Table`."""
        table = Table(self.name, self.attributes, np.array(self.data))
        table.provenance = dict(self.provenance) if self.provenance else None
        return table

    # ------------------------------------------------------------------
    # Builders
    # ------------------------------------------------------------------
    @classmethod
    def from_blocks(cls, name, attributes, blocks,
                    chunk_rows=DEFAULT_CHUNK_ROWS, directory=None,
                    provenance=None):
        """Build a store from an iterable of row blocks, streaming.

        Blocks are re-chunked to exactly ``chunk_rows`` rows (the last
        chunk may be short).  With ``directory`` every completed chunk is
        written to disk and dropped from memory immediately, so building
        a store of any size needs O(chunk_rows) memory; without it the
        chunks stay in memory (Fortran-ordered, read-only).
        """
        chunk_rows = int(chunk_rows)
        if chunk_rows < 1:
            raise ValueError("chunk_rows must be >= 1")
        attributes = [a if isinstance(a, Attribute) else Attribute(a)
                      for a in attributes]
        width = len(attributes)
        if directory is not None:
            os.makedirs(directory, exist_ok=True)
        zones = _ZoneBuilder(width)
        chunks, buffered = [], []
        buffered_rows = 0

        def emit(block):
            block = _freeze(block)
            zones.add(block)
            if directory is None:
                chunks.append(block)
            else:
                np.save(os.path.join(
                    directory, _chunk_filename(len(chunks))), block)
                chunks.append(None)

        for block in blocks:
            block = np.asarray(block, dtype=np.float64)
            if block.ndim != 2 or block.shape[1] != width:
                raise ValueError(
                    "block shape {} does not match {} attributes".format(
                        block.shape, width))
            buffered.append(block)
            buffered_rows += len(block)
            while buffered_rows >= chunk_rows:
                merged = buffered[0] if len(buffered) == 1 \
                    else np.vstack(buffered)
                emit(merged[:chunk_rows])
                rest = merged[chunk_rows:]
                buffered = [rest] if len(rest) else []
                buffered_rows = len(rest)
        if buffered_rows:
            emit(buffered[0] if len(buffered) == 1 else np.vstack(buffered))

        store = cls(name, attributes, chunks, zones.build(),
                    directory=directory, chunk_rows=chunk_rows,
                    provenance=provenance)
        if directory is not None:
            store._write_manifest()
        return store

    @classmethod
    def from_table(cls, table, chunk_rows=DEFAULT_CHUNK_ROWS, directory=None,
                   name=None):
        """Chunk an in-memory table, preserving row order exactly."""
        data = table.data

        def blocks():
            for start in range(0, len(data), int(chunk_rows)):
                yield data[start:start + int(chunk_rows)]

        return cls.from_blocks(
            name or table.name, table.attributes, blocks(),
            chunk_rows=chunk_rows, directory=directory,
            provenance=getattr(table, "provenance", None))

    def cluster_by(self, column, directory=None, bins=32):
        """Rewrite the store with rows bucketed by one column's value.

        Zone maps only prune when chunks have value locality; a store
        ingested in arbitrary row order has chunks spanning the full
        attribute range and prunes nothing.  This is the streaming
        ``CLUSTER BY``: one pass partitions every chunk's rows into
        ``bins`` equal-width bands of ``column`` (NaN rows in a trailing
        bucket), spilling full bands to disk for disk-backed builds, and
        the bands re-emit in order — O(table) read I/O, O(bins * chunk)
        memory.  Row content is preserved exactly as a multiset
        (non-finite values included; the row *order* changes, which is
        the point): the rewritten chunks carry tight zone ranges on the
        cluster column.
        """
        import shutil
        import tempfile

        j = self.column_index(column) if isinstance(column, str) \
            else int(column)
        lo, hi = self.column_bounds([j])
        lo, hi = float(lo[0]), float(hi[0])
        if not np.isfinite(lo) or not np.isfinite(hi) or hi <= lo:
            n_bins = 1
            edges = np.array([-np.inf, np.inf])
        else:
            n_bins = max(1, int(bins))
            edges = np.linspace(lo, hi, n_bins + 1)
            edges[0], edges[-1] = -np.inf, np.inf

        spill_dir = None
        if self.directory is not None or directory is not None:
            if directory is not None:
                os.makedirs(directory, exist_ok=True)
            spill_dir = tempfile.mkdtemp(prefix=".cluster-spill-",
                                         dir=directory)
        buckets = [[] for _ in range(n_bins + 1)]   # pending row blocks
        pending = np.zeros(n_bins + 1, dtype=np.int64)
        spills = [[] for _ in range(n_bins + 1)]    # arrays or npy paths

        def flush(b):
            if not buckets[b]:
                return
            block = buckets[b][0] if len(buckets[b]) == 1 \
                else np.vstack(buckets[b])
            if spill_dir is not None:
                path = os.path.join(spill_dir, "s{:04d}-{:06d}.npy".format(
                    b, len(spills[b])))
                np.save(path, np.ascontiguousarray(block))
                spills[b].append(path)
            else:
                spills[b].append(np.array(block))
            buckets[b].clear()
            pending[b] = 0

        try:
            for _, chunk in self.iter_chunks():
                values = chunk[:, j]
                # Half-open bands; +-inf land in the edge bands (the
                # outer edges are forced to +-inf), NaN in the trailing
                # bucket — every row lands in exactly one bucket.
                band = np.searchsorted(edges, values, side="right") - 1
                band = np.clip(band, 0, n_bins - 1)
                band[np.isnan(values)] = n_bins
                for b in np.unique(band):
                    b = int(b)
                    rows = np.asarray(chunk)[band == b]
                    buckets[b].append(rows)
                    pending[b] += len(rows)
                    if pending[b] >= self.chunk_rows:
                        flush(b)
            for b in range(n_bins + 1):
                flush(b)

            def blocks():
                for per_band in spills:
                    for item in per_band:
                        yield np.load(item) if isinstance(item, str) \
                            else item

            provenance = dict(self.provenance or {})
            provenance["clustered_by"] = self.attributes[j].name
            return ChunkStore.from_blocks(
                self.name, self.attributes, blocks(),
                chunk_rows=self.chunk_rows, directory=directory,
                provenance=provenance)
        finally:
            if spill_dir is not None:
                shutil.rmtree(spill_dir, ignore_errors=True)

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    @property
    def digest(self):
        """Deterministic store digest over schema + per-chunk digests.

        Cheap (no data re-read): each chunk digest was computed in the
        single pass that built its zone map, so two stores digest equal
        iff they hold the same attributes and the same chunked bytes —
        the identity :mod:`repro.persist` fingerprints checkpoints with.
        """
        if self._digest is None:
            h = hashlib.blake2b(digest_size=16)
            for a in self.attributes:
                h.update(a.name.encode())
                h.update(a.hint.encode())
            h.update(str((self.n_rows, self.chunk_rows)).encode())
            for d in self.zone_maps.digests:
                h.update(d.encode())
            self._digest = h.hexdigest()
        return self._digest

    def _write_manifest(self):
        manifest = {
            "format_version": _FORMAT_VERSION,
            "name": self.name,
            "attributes": [{"name": a.name, "hint": a.hint}
                           for a in self.attributes],
            "n_rows": self.n_rows,
            "n_chunks": self.n_chunks,
            "chunk_rows": self.chunk_rows,
            "digest": self.digest,
            "provenance": self.provenance,
        }
        # Write-then-rename so a crash mid-save never leaves a manifest
        # pointing at half-written zone maps.
        zones_tmp = os.path.join(self.directory, _ZONEMAPS + ".tmp.npz")
        np.savez(zones_tmp, **self.zone_maps.state())
        os.replace(zones_tmp, os.path.join(self.directory, _ZONEMAPS))
        manifest_tmp = os.path.join(self.directory, _MANIFEST + ".tmp")
        with open(manifest_tmp, "w") as fh:
            json.dump(manifest, fh, indent=1, sort_keys=True)
        os.replace(manifest_tmp, os.path.join(self.directory, _MANIFEST))

    def save(self, directory):
        """Write this store to ``directory``; returns the on-disk store."""
        if self.directory is not None \
                and os.path.abspath(self.directory) \
                == os.path.abspath(directory):
            return self
        return ChunkStore.from_blocks(
            self.name, self.attributes,
            (block for _, block in self.iter_chunks()),
            chunk_rows=self.chunk_rows, directory=directory,
            provenance=self.provenance)

    @classmethod
    def open(cls, directory):
        """Open an on-disk store; chunks memory-map lazily on access."""
        manifest_path = os.path.join(directory, _MANIFEST)
        if not os.path.isfile(manifest_path):
            raise FileNotFoundError(
                "no chunk store at {!r}: {} is missing".format(
                    directory, _MANIFEST))
        with open(manifest_path) as fh:
            manifest = json.load(fh)
        version = manifest.get("format_version")
        if version != _FORMAT_VERSION:
            raise ValueError(
                "store at {!r} uses format version {!r}; this build reads "
                "version {}".format(directory, version, _FORMAT_VERSION))
        with np.load(os.path.join(directory, _ZONEMAPS),
                     allow_pickle=False) as npz:
            zones = ZoneMaps.from_state({k: npz[k] for k in npz.files})
        attributes = [Attribute(e["name"], hint=e["hint"])
                      for e in manifest["attributes"]]
        store = cls(manifest["name"], attributes,
                    [None] * zones.n_chunks, zones, directory=directory,
                    chunk_rows=manifest["chunk_rows"],
                    provenance=manifest.get("provenance"))
        if store.digest != manifest.get("digest"):
            raise ValueError(
                "store at {!r} fails its digest check (manifest says {}, "
                "zone maps hash to {}); the directory was modified or "
                "partially written".format(directory, manifest.get("digest"),
                                           store.digest))
        return store
