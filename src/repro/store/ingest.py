"""Streaming-ingest freshness: detect drift off the zone maps alone.

The offline artifacts — min-max scalers, cluster centers, the
meta-trained phi — are fitted against the data distribution at pretrain
time.  Appends can move that distribution: once incoming rows fall
outside a subspace scaler's fitted range, new points clip to the [0, 1]
boundary, encoders see saturated coordinates, and accuracy decays
silently.  :class:`FreshnessMonitor` watches for exactly that, and it
does so **without touching row data**: appended chunks already carry
zone-map min/max rows, so an ``observe(store)`` call costs O(new chunks)
arithmetic, no I/O.

The drift score per registered subspace is the *relative range
escape*: how far the observed chunk ranges poke outside the fitted
``[min_, max_]`` box, measured in units of the fitted span and maxed
over the subspace's columns.  0 means fully inside; 1.0 means new data
extends a full fitted-range-width beyond the boundary.  Scores
accumulate monotonically across observes (drift does not un-happen
until the artifacts are refit) and reset when the caller refreshes the
subspace and re-registers its new scaler range.

Typical lifecycle (see ``examples/streaming_ingest.py``)::

    monitor = lte.freshness_monitor(threshold=0.2)
    store.append_blocks(new_rows)
    monitor.observe(store)
    for subspace in monitor.drifted():
        lte.refresh_subspace(store, subspace, train=True)
        state = lte.states[subspace]
        monitor.register(subspace, subspace.columns,
                         state.scaler.min_, state.scaler.max_)
    # sharded serving: gateway.refresh_model(monitor.drifted()) instead
"""

from __future__ import annotations

import time
import warnings

import numpy as np

from ..obs import default_registry

__all__ = ["FreshnessMonitor"]


class FreshnessMonitor:
    """Compare appended chunks' zone stats against fitted scaler ranges.

    ``register`` one entry per watched subspace (key is any hashable —
    the framework uses the :class:`~repro.core.subspace.Subspace`
    itself); ``observe`` after appends; ``drifted`` lists the keys whose
    score crossed the threshold.  The monitor binds to the first store
    it observes (by ``uid``) and tracks which chunks it has already
    scored, so repeated observes are incremental: only chunks at or past
    the previously *closed* prefix are (re-)scored — the open tail
    re-scores each time because appends grow it in place.
    """

    def __init__(self, threshold=0.2):
        self.threshold = float(threshold)
        self._ranges = {}        # key -> (columns, lo, hi)
        self._scores = {}        # key -> running max score
        self._store_uid = None
        self._observed_closed = 0

    def register(self, key, columns, lo, hi):
        """Watch ``key``: fitted range ``[lo, hi]`` over store ``columns``.

        Re-registering a key (after a subspace refresh refit its scaler)
        replaces the range and resets the key's score; already-observed
        chunks are not re-scored against the new range — they are what
        the refreshed artifacts were fitted on.
        """
        columns = [int(c) for c in columns]
        lo = np.asarray(lo, dtype=np.float64).ravel()
        hi = np.asarray(hi, dtype=np.float64).ravel()
        if len(lo) != len(columns) or len(hi) != len(columns):
            raise ValueError(
                "range of width {}/{} registered for {} columns".format(
                    len(lo), len(hi), len(columns)))
        self._ranges[key] = (columns, lo, hi)
        self._scores[key] = 0.0

    def keys(self):
        return list(self._ranges)

    def observe(self, store):
        """Score chunks appended since the last observe; returns scores.

        Only zone-map rows are read.  Returns the per-key scores of the
        *newly observed* chunks (not the running maxima; see
        :meth:`report` for those), ``{}`` when nothing new arrived.
        """
        uid = getattr(store, "uid", None)
        if self._store_uid is None:
            self._store_uid = uid
        elif uid != self._store_uid:
            raise ValueError(
                "monitor is bound to store uid {!r}; observed {!r} — one "
                "FreshnessMonitor watches one store".format(
                    self._store_uid, uid))
        zone = store.zone_maps
        start = min(self._observed_closed, zone.n_chunks)
        self._observed_closed = store.closed_chunks
        if start >= zone.n_chunks:
            return {}
        t0 = time.perf_counter()
        fresh = {}
        for key, (columns, lo, hi) in self._ranges.items():
            zmin = zone.mins[start:, columns]
            zmax = zone.maxs[start:, columns]
            with warnings.catch_warnings():
                # All-NaN zone columns contribute no finite range.
                warnings.simplefilter("ignore", RuntimeWarning)
                obs_lo = np.nanmin(zmin, axis=0)
                obs_hi = np.nanmax(zmax, axis=0)
            span = np.where(hi > lo, hi - lo, 1.0)
            under = np.maximum(0.0, lo - obs_lo) / span
            over = np.maximum(0.0, obs_hi - hi) / span
            escape = np.where(np.isnan(under), 0.0, under) \
                + np.where(np.isnan(over), 0.0, over)
            score = float(escape.max()) if len(escape) else 0.0
            fresh[key] = score
            if score > self._scores.get(key, 0.0):
                self._scores[key] = score
        metrics = default_registry()
        metrics.histogram("store.freshness.observe.seconds") \
            .observe(time.perf_counter() - t0)
        drift = metrics.histogram("store.freshness.drift_score")
        for score in fresh.values():
            drift.observe(score)
        return fresh

    def report(self):
        """Running max drift score per registered key."""
        return dict(self._scores)

    def drifted(self):
        """Keys whose running score exceeds the threshold."""
        return [key for key, score in self._scores.items()
                if score > self.threshold]
