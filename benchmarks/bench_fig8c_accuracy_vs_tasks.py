"""Figure 8(c): accuracy vs number of meta-tasks |TM|.

Paper shape: accuracy rises from the smallest task sets, then plateaus
with mild fluctuation — the 'sweet point' argument for early stopping (the
paper picks |TM| = 5000 of the sweep {1000..20000}).
"""

import numpy as np
import pytest

from repro.bench import build_lte, print_series
from repro.core.meta_training import MetaHyperParams, MetaTrainer
from repro.explore.metrics import f1_score

TASK_COUNTS = (10, 40, 120, 240)


def _accuracy_at(lte, n_tasks, n_eval_tasks=8, seed=0):
    state = lte.states[list(lte.states)[0]]
    tasks = state.task_generator.generate(n_tasks)
    held_out = state.task_generator.generate(n_eval_tasks)
    trainer = MetaTrainer(
        ku=state.summary.ku, input_width=state.preprocessor.width,
        params=MetaHyperParams(epochs=1, local_steps=5, pretrain_epochs=2),
        seed=seed)
    trainer.train(tasks, state.encode_scaled)
    scores = []
    for task in held_out:
        adapted, _ = trainer.adapt(task.feature_vector,
                                   state.encode_scaled(task.support_x),
                                   task.support_y, local_steps=10)
        pred = adapted.predict(state.encode_scaled(task.query_x))
        scores.append(f1_score(task.query_y, pred))
    return float(np.mean(scores))


@pytest.mark.benchmark(group="fig8c")
def test_fig8c_accuracy_vs_task_count(benchmark, scale, report):
    def run():
        series = {}
        for dataset in ("car", "sdss"):
            lte = build_lte(dataset, budget=30, scale=scale, train=False)
            series[dataset.upper()] = [
                _accuracy_at(lte, n) for n in TASK_COUNTS]
        return series

    series = benchmark.pedantic(run, rounds=1, iterations=1)
    with report():
        print_series("Figure 8(c): held-out task F1 vs |TM|", "|TM|",
                     list(TASK_COUNTS), series)

    for dataset, values in series.items():
        assert all(0.0 <= v <= 1.0 for v in values)
        # More tasks should not hurt much: the plateau end stays within
        # noise of the sweep maximum and above the smallest-task-set score.
        assert values[-1] >= values[0] - 0.1
