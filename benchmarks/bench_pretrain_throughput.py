"""Offline pretraining throughput: pooled fused engine vs sequential.

The offline phase (Algorithm 2) is LTE's expensive part — Fig. 8b
measures exactly this — and ``repro.train`` attacks it the way
``repro.serve`` attacked the online phase: every Eq. 13 meta-batch of
every meta-subspace runs as ONE stacked autograd program (local steps +
global query backward fused over ``batch_size x n_subspaces`` tasks),
and joint pretraining steps fuse across subspaces.  This bench runs the
*same* ``fit_offline`` twice over a multi-subspace system:

* **sequential** — the task-at-a-time reference executor;
* **batched** — the pooled fused engine (the default).

The engines are bit-identical (asserted here on every subspace's phi,
and property-fuzzed in ``tests/train``), so the speedup is pure
overhead amortization: each of the K stacked tasks pays 1/K-th of the
Python/autograd cost per step.  The batched engine must beat sequential
by ``REPRO_PRETRAIN_MIN_SPEEDUP`` (default 3x) at the acceptance scale
of >= 40 meta-tasks x >= 4 subspaces — and must never be slower.

Set ``REPRO_PRETRAIN_BASELINE=/path/to.json`` to record the series (see
``benchmarks/BENCH_pretrain.json`` for the committed baseline).
"""

import json
import os
import time

import numpy as np
import pytest

from repro.bench import print_series
from repro.core import LTE, LTEConfig
from repro.core.meta_training import MetaHyperParams
from repro.data import make_sdss

#: Meta-tasks per subspace at each point; the largest carries the
#: acceptance bar (>= 40 tasks over the table's 4 two-D subspaces).
QUICK_TASK_COUNTS = (16, 48)
FULL_TASK_COUNTS = (16, 48, 96)
# 3x is the acceptance bar on dedicated hardware; shared CI runners set
# REPRO_PRETRAIN_MIN_SPEEDUP lower so timing noise cannot block merges.
MIN_SPEEDUP = float(os.environ.get("REPRO_PRETRAIN_MIN_SPEEDUP", "3.0"))
BASELINE = os.environ.get("REPRO_PRETRAIN_BASELINE")


def pretrain_config(n_tasks):
    """Serving-sized system (modest embeddings, the realistic regime for
    per-subspace learners) with a meaningful offline plan: 1 joint
    pretraining epoch + 3 meta epochs of 10 local steps."""
    return LTEConfig(budget=30, ku=32, kq=40, n_tasks=n_tasks,
                     embed_size=16, hidden_size=16, n_components=4,
                     meta=MetaHyperParams(epochs=3, local_steps=10,
                                          pretrain_epochs=1))


def _fit(table, n_tasks, engine):
    lte = LTE(pretrain_config(n_tasks))
    start = time.perf_counter()
    lte.fit_offline(table, engine=engine)
    return lte, time.perf_counter() - start


@pytest.mark.train
@pytest.mark.benchmark(group="pretrain")
def test_pretrain_throughput(benchmark, scale, report):
    task_counts = QUICK_TASK_COUNTS if scale.name == "quick" \
        else FULL_TASK_COUNTS
    table = make_sdss(n_rows=5000, seed=7)

    def run():
        series = {"sequential_s": [], "batched_s": [], "speedup": [],
                  "tasks_per_s": []}
        n_subspaces = None
        for n_tasks in task_counts:
            sequential, seq_s = _fit(table, n_tasks, "sequential")
            batched, bat_s = _fit(table, n_tasks, "batched")
            n_subspaces = len(batched.states)
            # The engines must be interchangeable bit for bit — the
            # speedup below is only meaningful if nothing changed.
            for subspace in sequential.states:
                a = sequential.states[subspace].trainer
                b = batched.states[subspace].trainer
                assert np.array_equal(a.model.flat_parameters(),
                                      b.model.flat_parameters())
            series["sequential_s"].append(seq_s)
            series["batched_s"].append(bat_s)
            series["speedup"].append(seq_s / bat_s)
            series["tasks_per_s"].append(n_tasks * n_subspaces / bat_s)
        return series, n_subspaces

    (series, n_subspaces) = benchmark.pedantic(run, rounds=1, iterations=1)
    with report():
        print_series(
            "Offline pretraining wall-clock, {} subspaces (fit_offline "
            "seconds)".format(n_subspaces),
            "|TM| per subspace", list(task_counts), series)

    if BASELINE:
        with open(BASELINE, "w") as fh:
            json.dump({"n_subspaces": n_subspaces,
                       "task_counts": list(task_counts),
                       "series": series}, fh, indent=2, sort_keys=True)

    assert n_subspaces >= 4
    # Acceptance bar: >= MIN_SPEEDUP at the largest scale (>= 40 tasks
    # x >= 4 subspaces) ...
    assert series["speedup"][-1] >= MIN_SPEEDUP, \
        "batched fit_offline only {:.2f}x faster at |TM|={} (min {})".format(
            series["speedup"][-1], task_counts[-1], MIN_SPEEDUP)
    # ... and the fused engine must never lose to sequential.
    assert min(series["speedup"]) >= 1.0
