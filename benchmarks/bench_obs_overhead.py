"""Observability overhead: an instrumented serving wave vs metrics off.

The ``repro.obs`` contract is *near-zero cost*: counters, histograms
and spans on the serving hot path must not tax throughput.  This bench
drives the same 32-session serving wave twice through a
:class:`~repro.serve.SessionManager` —

* **on** — observability enabled (the default), with a live span sink
  collecting events, so every histogram observe, cache counter and
  span on the hot path is really exercised;
* **off** — ``repro.obs`` disabled (the ``REPRO_OBS=off`` fast path:
  null metrics, shared no-op span) over an identical fresh manager —

and asserts the relative overhead stays under 5%
(``REPRO_OBS_MAX_OVERHEAD``, a fraction).  The estimator is built for
noisy shared machines: waves alternate between the modes (GC held off
during each timed region), and the overhead is computed from the
**fastest wave of each mode** — external interference only ever adds
time, so the per-mode minimum over many repeats converges on the true
compute cost while scheduler bursts fall away.  The per-pair ratios
are recorded in the baseline for context.  The no-interference
guarantee rides along: predictions from the two modes must be
bit-identical.

``benchmarks/BENCH_obs.json`` holds the recorded baseline; set
``REPRO_OBS_BASELINE=/path.json`` to re-record.
"""

import gc
import json
import os
import time

import numpy as np
import pytest

from repro import obs
from repro.bench import print_series, subspace_region
from repro.core import LTE, LTEConfig
from repro.core.meta_training import MetaHyperParams
from repro.core.uis import UISMode
from repro.data import make_sdss
from repro.data.subspaces import random_decomposition
from repro.explore import ConjunctiveOracle
from repro.serve import SessionManager

VARIANT = "meta_star"
WAVE = 32                       # concurrent sessions per serving wave
N_ORACLES = 16
REPEATS = 11                    # timed (on, off) pairs; best-of per mode
MAX_OVERHEAD = float(os.environ.get("REPRO_OBS_MAX_OVERHEAD", "0.05"))
BASELINE = os.environ.get("REPRO_OBS_BASELINE")


def _build_lte():
    """Smoke-sized system (mirrors bench_serving_throughput): the
    serving regime is many sessions over small per-subspace learners."""
    table = make_sdss(n_rows=6000, seed=7)
    config = LTEConfig(budget=30, ku=40, kq=60, n_tasks=10,
                       embed_size=32, hidden_size=32, n_components=4,
                       meta=MetaHyperParams(epochs=1, local_steps=3,
                                            pretrain_epochs=1),
                       online_steps=30)
    lte = LTE(config)
    subspaces = random_decomposition(table, dim=config.subspace_dim,
                                     seed=config.seed)[:2]
    lte.fit_offline(table, subspaces=subspaces)
    return lte, subspaces


def _oracles(lte, subspaces, count):
    return [
        ConjunctiveOracle({
            s: subspace_region(lte.states[s], UISMode(1, 30),
                               seed=100 + 7 * k + i)
            for i, s in enumerate(subspaces)})
        for k in range(count)
    ]


def _wave(lte, subspaces, oracles, eval_rows):
    """One timed 32-session serving wave on a fresh manager.

    Returns (seconds, predictions) — a fresh manager per run so both
    modes pay identical cache-cold costs and neither inherits the
    other's adapted sessions.
    """
    manager = SessionManager(lte)
    # GC pauses at these sub-second durations are the dominant noise
    # source, and they land asymmetrically (whichever wave crosses a
    # collection threshold pays); collect up front and keep the
    # collector out of the timed region on both sides.
    gc.collect()
    gc.disable()
    try:
        start = time.perf_counter()
        sids = [manager.open_session(variant=VARIANT, subspaces=subspaces,
                                     seed=k)
                for k in range(WAVE)]
        for k, sid in enumerate(sids):
            for subspace, tuples in manager.initial_tuples(sid).items():
                manager.submit_labels(
                    sid, subspace,
                    oracles[k % len(oracles)].label_subspace(subspace,
                                                             tuples))
        manager.flush()
        predictions = manager.predict_many(sids, eval_rows)
        # A second scoring pass hits the prediction cache — the cheap
        # path where per-call instrumentation overhead shows up loudest.
        manager.predict_many(sids, eval_rows)
        seconds = time.perf_counter() - start
    finally:
        gc.enable()
    return seconds, {sid: predictions[sid].copy() for sid in sids}


@pytest.mark.obs
@pytest.mark.benchmark(group="obs")
def test_obs_overhead(benchmark, scale, report):

    def run():
        lte, subspaces = _build_lte()
        eval_rows = lte.table.sample_rows(400, seed=1)
        oracles = _oracles(lte, subspaces, N_ORACLES)
        on_pred, off_pred = None, None
        events = 0
        ratios, on_times, off_times = [], [], []
        # One untimed warm-up wave: the first wave of the process pays
        # allocator/cache warm-up that would otherwise land entirely on
        # whichever mode runs first.
        _wave(lte, subspaces, oracles, eval_rows)

        def timed_on():
            nonlocal on_pred, events
            with obs.enabled_scope(True):
                with obs.capture() as captured:
                    seconds, on_pred = _wave(lte, subspaces, oracles,
                                             eval_rows)
                events = max(events, len(captured))
            return seconds

        def timed_off():
            nonlocal off_pred
            with obs.enabled_scope(False):
                seconds, off_pred = _wave(lte, subspaces, oracles,
                                          eval_rows)
            return seconds

        for repeat in range(REPEATS):
            # Alternate which mode runs first so ordering bias inside a
            # pair cancels across repeats.
            if repeat % 2 == 0:
                on_s, off_s = timed_on(), timed_off()
            else:
                off_s, on_s = timed_off(), timed_on()
            on_times.append(on_s)
            off_times.append(off_s)
            ratios.append(on_s / off_s)
        return ratios, on_times, off_times, events, on_pred, off_pred

    (ratios, on_times, off_times, events, on_pred, off_pred), = \
        [benchmark.pedantic(run, rounds=1, iterations=1)]
    on_seconds, off_seconds = min(on_times), min(off_times)
    overhead = on_seconds / off_seconds - 1.0
    with report():
        print_series(
            "Observability overhead ({} sessions/wave, {} timed pairs)"
            .format(WAVE, REPEATS), "mode", ["on", "off"],
            {"best_seconds": [on_seconds, off_seconds],
             "sessions/s": [WAVE / on_seconds, WAVE / off_seconds]})
        print("  overhead (best-of-{} per mode): {:+.2%} (max {:.0%});"
              " {} span events captured".format(REPEATS, overhead,
                                                MAX_OVERHEAD, events))

    if BASELINE:
        with open(BASELINE, "w") as fh:
            json.dump({"scale": scale.name, "wave": WAVE,
                       "repeats": REPEATS,
                       "cpu_count": os.cpu_count() or 1,
                       "on_seconds": on_seconds,
                       "off_seconds": off_seconds,
                       "pair_ratios": ratios,
                       "overhead": overhead,
                       "span_events": events}, fh, indent=2,
                      sort_keys=True)

    # The instrumentation really fired on the on side...
    assert events > 0
    # ...and never touched a prediction: bit-for-bit identical output.
    assert sorted(on_pred) == sorted(off_pred)
    for sid, ref_sid in zip(sorted(on_pred), sorted(off_pred)):
        assert np.array_equal(on_pred[sid], off_pred[ref_sid])
    # The acceptance bar: < 5% overhead on the 32-session wave
    # (REPRO_OBS_MAX_OVERHEAD relaxes it on noisy shared runners).
    assert overhead < MAX_OVERHEAD, \
        "observability overhead was {:+.2%} (max {:.0%})".format(
            overhead, MAX_OVERHEAD)
