"""Figure 8(d): accuracy vs online learning rate — the effect of
meta-learning.

Paper shape: Meta, initialized with meta-knowledge, is insensitive to the
online learning rate and is already strong at lr = 1e-4; Basic, trained
from random initialization with the same number of online steps, collapses
at small learning rates (paper: F1 0.25 vs 0.70 at lr 1e-4 on SDSS).
"""

import numpy as np
import pytest

from repro.bench import build_lte, print_series
from repro.core.meta_learner import UISClassifier
from repro.explore.metrics import f1_score
from repro.nn import Adam
from repro.nn.functional import binary_cross_entropy_with_logits

LEARNING_RATES = (1e-4, 1e-3, 1e-2)
ONLINE_STEPS = 20


def _meta_f1(lte, tasks, lr):
    state = lte.states[list(lte.states)[0]]
    scores = []
    for task in tasks:
        adapted, _ = state.trainer.adapt(
            task.feature_vector, state.encode_scaled(task.support_x),
            task.support_y, local_steps=ONLINE_STEPS, local_lr=lr)
        pred = adapted.predict(state.encode_scaled(task.query_x))
        scores.append(f1_score(task.query_y, pred))
    return float(np.mean(scores))


def _basic_f1(lte, tasks, lr):
    state = lte.states[list(lte.states)[0]]
    scores = []
    for i, task in enumerate(tasks):
        model = UISClassifier(ku=state.summary.ku,
                              input_width=state.preprocessor.width,
                              seed=100 + i)
        optimizer = Adam(model.parameters(), lr=lr)
        encoded = state.encode_scaled(task.support_x)
        targets = task.support_y.astype(float)
        for _ in range(ONLINE_STEPS):
            optimizer.zero_grad()
            logits = model.forward(task.feature_vector, encoded)
            binary_cross_entropy_with_logits(logits, targets).backward()
            optimizer.step()
        pred = model.predict(task.feature_vector,
                             state.encode_scaled(task.query_x))
        scores.append(f1_score(task.query_y, pred))
    return float(np.mean(scores))


@pytest.mark.benchmark(group="fig8d")
@pytest.mark.parametrize("dataset", ["car", "sdss"])
def test_fig8d_online_learning_rate(benchmark, scale, report, dataset):
    lte = build_lte(dataset, budget=30, scale=scale)
    state = lte.states[list(lte.states)[0]]
    tasks = state.task_generator.generate(max(4, scale.n_test_uirs))

    def run():
        return {
            "Meta": [_meta_f1(lte, tasks, lr) for lr in LEARNING_RATES],
            "Basic": [_basic_f1(lte, tasks, lr) for lr in LEARNING_RATES],
        }

    series = benchmark.pedantic(run, rounds=1, iterations=1)
    with report():
        print_series(
            "Figure 8(d): F1 vs online lr ({} , {} steps)".format(
                dataset.upper(), ONLINE_STEPS),
            "lr", list(LEARNING_RATES), series)

    # Meta dominates Basic at the smallest learning rate (the headline).
    assert series["Meta"][0] > series["Basic"][0]
    # Meta is less sensitive to the learning rate than Basic.
    meta_spread = max(series["Meta"]) - min(series["Meta"])
    basic_spread = max(series["Basic"]) - min(series["Basic"])
    assert meta_spread <= basic_spread + 0.1
