"""Figure 4(b): label budget needed to reach F1 = 0.75 vs dimensionality.

Paper shape: Meta* reaches the target with < 150 labels through 4-8D;
DSM and AL-SVM need far more in 6-8D (off the chart at 8D).  A method that
never reaches the target within the sweep is reported at the sweep cap.
"""

import pytest

from _common import (run_fullspace_baselines, run_lte_methods,
                     subspaces_for_dims)
from repro.bench import (budget_to_reach, build_lte, convex_oracles,
                         eval_rows_for, print_series)

DIMS = (4, 6, 8)
BUDGETS = (30, 55, 80, 105)
TARGET_F1 = 0.75


@pytest.mark.benchmark(group="fig4b")
def test_fig4b_budget_to_target_f1(benchmark, scale, report):
    def run():
        needed = {name: [] for name in ("Meta*", "Meta", "Basic", "DSM")}
        for dim in DIMS:
            curves = {name: {} for name in needed}
            for budget in BUDGETS:
                lte = build_lte("sdss", budget=budget, scale=scale)
                subspaces = subspaces_for_dims(lte, dim)
                oracles = convex_oracles(lte, subspaces,
                                         n_uirs=max(2, scale.n_test_uirs // 2),
                                         seed=2000 + dim)
                eval_rows = eval_rows_for(lte, scale)
                scores = run_lte_methods(lte, oracles, eval_rows, subspaces)
                scores.update(run_fullspace_baselines(
                    lte, oracles, eval_rows, subspaces, budget=budget,
                    pool_size=scale.pool_size, kinds=("dsm",)))
                for name in needed:
                    curves[name][budget] = scores[name]
            cap = max(BUDGETS) + 45  # "far exceeding the sweep"
            for name in needed:
                reached = budget_to_reach(curves[name], TARGET_F1)
                needed[name].append(cap if reached is None else reached)
        return needed

    needed = benchmark.pedantic(run, rounds=1, iterations=1)
    with report():
        print_series(
            "Figure 4(b): labels to reach F1={} (SDSS)".format(TARGET_F1),
            "|Du|", ["{}D".format(d) for d in DIMS],
            {k: [float(v) for v in vs] for k, vs in needed.items()})

    # The meta variants never need more labels than DSM at any dimension
    # (evaluated on the better of Meta/Meta* per dim — single-run budget
    # thresholds are noisy at quick scale).
    best_meta = [min(m, ms) for m, ms in zip(needed["Meta"],
                                             needed["Meta*"])]
    assert all(m <= d for m, d in zip(best_meta, needed["DSM"]))
