"""Ablations of the reproduction's design choices (DESIGN.md §6).

Not a paper figure: quantifies what each switchable component contributes
at bench scale, on held-out subspace tasks (SDSS, B=30):

* ``full``            — the default Meta configuration;
* ``no_memories``     — plain first-order MAML (Eqs. 6-10/14-16 off);
* ``no_affinity``     — tuple representation without the center-affinity
                        channel;
* ``no_pretrain``     — literal Algorithm 2 (no joint pretraining phase);
* ``no_balance``      — unweighted BCE (no class balancing).
"""

import numpy as np
import pytest

from repro.bench import build_lte, get_table, make_config, print_series
from repro.core.framework import LTE
from repro.explore.metrics import f1_score

ABLATIONS = ("full", "no_memories", "no_affinity", "no_pretrain",
             "no_balance")


def _config_for(name, scale):
    config = make_config(budget=30, scale=scale)
    if name == "no_memories":
        config.use_memories = False
    elif name == "no_affinity":
        config.center_affinity = False
    elif name == "no_pretrain":
        config.meta.pretrain_epochs = 0
    elif name == "no_balance":
        config.meta.balance_classes = False
    return config


def _meta_f1_on_held_out(lte, n_tasks=8):
    state = lte.states[list(lte.states)[0]]
    held_out = state.task_generator.generate(n_tasks)
    scores = []
    for task in held_out:
        adapted, _ = state.trainer.adapt(
            task.feature_vector, state.encode_scaled(task.support_x),
            task.support_y, local_steps=15, local_lr=0.01)
        pred = adapted.predict(state.encode_scaled(task.query_x))
        scores.append(f1_score(task.query_y, pred))
    return float(np.mean(scores))


@pytest.mark.benchmark(group="ablations")
def test_ablations(benchmark, scale, report):
    table = get_table("sdss", scale)

    def run():
        results = {}
        for name in ABLATIONS:
            lte = LTE(_config_for(name, scale))
            subspaces = None
            # Train only the first subspace: ablations are subspace-level.
            lte.fit_offline(table, train=False)
            first = list(lte.states)[0]
            lte.train_subspace(first)
            results[name] = [_meta_f1_on_held_out(lte)]
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    with report():
        print_series("Ablations: Meta F1 on held-out tasks (SDSS, B=30)",
                     "config", ["F1"],
                     {k: v for k, v in results.items()})

    full = results["full"][0]
    assert 0.0 <= full <= 1.0
    # Each component should not massively help when removed: the full
    # configuration stays within noise of (or above) every ablation.
    for name in ABLATIONS[1:]:
        assert full >= results[name][0] - 0.15, (name, results)


def test_build_lte_variants_cached_separately(scale):
    """Ablation builds must not collide in the workload cache."""
    a = build_lte("sdss", budget=30, scale=scale, use_memories=True,
                  train=False)
    b = build_lte("sdss", budget=30, scale=scale, use_memories=False,
                  train=False)
    assert a is not b
