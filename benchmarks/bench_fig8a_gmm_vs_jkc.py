"""Figure 8(a): effectiveness of the tabular representations (GMM vs JKC).

Paper shape: GMM-only already trains a usable classifier; integrating both
GMM and JKC ("Basic") improves it further; *without* the multi-modal
representations (plain min-max) the model can hardly be trained.

Reproduction note (see EXPERIMENTS.md): the paper's catastrophic min-max
failure stems from feeding raw unnormalized attribute values to the NN;
this reproduction normalizes every subspace internally, which already
removes the gradient-saturation pathology, so the min-max ablation trains
too.  The bench therefore asserts only that every multi-modal encoding
trains and stays competitive; the contrast is strongest in the low-step
few-shot regime used here.  The center-affinity channel is disabled so the
comparison isolates the GMM/JKC encodings themselves (DESIGN.md §6).
"""

import numpy as np
import pytest

from repro.bench import (build_lte, eval_rows_for, mean_f1_lte, mode_oracles,
                         print_matrix)
from repro.core.uis import UISMode

ENCODINGS = ("gmm", "jkc", "both", "minmax")
BUDGET = 30


@pytest.mark.benchmark(group="fig8a")
def test_fig8a_gmm_vs_jkc(benchmark, scale, report):
    def run():
        table = {}
        subspace_names = None
        for mode in ENCODINGS:
            lte = build_lte("sdss", budget=BUDGET, scale=scale,
                            preprocessing_mode=mode, center_affinity=False)
            lte.config.basic_steps = 25  # few-shot regime: encodings matter
            subspaces = list(lte.states)[:3]  # the paper's D1-D3
            if subspace_names is None:
                subspace_names = ["D{}".format(i + 1)
                                  for i in range(len(subspaces))]
            eval_rows = eval_rows_for(lte, scale)
            row = []
            for i, subspace in enumerate(subspaces):
                oracles = mode_oracles(lte, [subspace], UISMode(4, 20),
                                       n_uirs=max(2, scale.n_test_uirs // 2),
                                       seed=8000 + i)
                row.append(mean_f1_lte(lte, oracles, eval_rows, "basic",
                                       subspaces=[subspace]))
            table[mode] = row
        return subspace_names, table

    subspace_names, table = benchmark.pedantic(run, rounds=1, iterations=1)
    with report():
        print_matrix("Figure 8(a): tabular representations (Basic, B=30)",
                     list(ENCODINGS), subspace_names,
                     [table[m] for m in ENCODINGS])

    means = {m: float(np.mean(v)) for m, v in table.items()}
    # Every multi-modal encoding trains a usable classifier...
    for name in ("gmm", "jkc", "both"):
        assert means[name] > 0.3, means
    # ...and the family is competitive with plain min-max (the paper's
    # catastrophic min-max failure needs unnormalized inputs; see the
    # module docstring).
    assert max(means["gmm"], means["jkc"], means["both"]) \
        > means["minmax"] - 0.1
    # The integrated encoding is at least competitive with either alone.
    assert means["both"] >= min(means["gmm"], means["jkc"]) - 0.05
