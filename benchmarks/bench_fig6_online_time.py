"""Figure 6: online exploration wall-clock time vs budget B.

Paper shape: DSM's online cost grows roughly linearly with B (an SVM
retrain + selection per label) and with dimensionality, reaching tens of
seconds; Meta*'s cost is a handful of gradient steps, roughly flat in both
B and dimension, and orders of magnitude lower.
"""

import numpy as np
import pytest

from _common import subspaces_for_dims
from repro.baselines import DSMExplorer
from repro.bench import build_lte, convex_oracles, print_series
from repro.bench.harness import baseline_oracle_pairs

BUDGETS = (30, 105)
DIMS = (4, 8)


@pytest.mark.benchmark(group="fig6")
def test_fig6_online_exploration_time(benchmark, scale, report):
    def run():
        series = {}
        xs = []
        for dim in DIMS:
            for name in ("DSM({}D)".format(dim), "Meta*({}D)".format(dim)):
                series[name] = []
        for budget in BUDGETS:
            xs.append(budget)
            lte = build_lte("sdss", budget=budget, scale=scale)
            for dim in DIMS:
                subspaces = subspaces_for_dims(lte, dim)
                oracle = convex_oracles(lte, subspaces, n_uirs=1,
                                        seed=4000 + dim)[0]
                # --- Meta*: time the label-feeding / adaptation phase.
                session = lte.start_session(variant="meta_star",
                                            subspaces=subspaces)
                for sub, tuples in session.initial_tuples().items():
                    session.submit_labels(
                        sub, oracle.label_subspace(sub, tuples))
                series["Meta*({}D)".format(dim)].append(
                    session.adapt_seconds)
                # --- DSM: time the full active-learning loop.
                columns = [c for s in subspaces for c in s.columns]
                rows = lte.table.data[:3000, columns]
                (orc, project), = baseline_oracle_pairs([oracle], subspaces)
                import time
                start = time.perf_counter()
                explorer = DSMExplorer(budget=budget,
                                       pool_size=scale.pool_size, seed=0)
                explorer.explore(
                    rows, lambda pts: orc.ground_truth(project(pts)))
                series["DSM({}D)".format(dim)].append(
                    time.perf_counter() - start)
        return xs, series

    xs, series = benchmark.pedantic(run, rounds=1, iterations=1)
    with report():
        print_series("Figure 6: online exploration time (seconds)", "B", xs,
                     series)

    # DSM must be at least an order of magnitude slower at the top budget.
    for dim in DIMS:
        dsm = series["DSM({}D)".format(dim)][-1]
        meta = series["Meta*({}D)".format(dim)][-1]
        assert dsm > 10 * meta
    # DSM cost grows with budget; Meta* stays roughly flat.
    assert series["DSM(8D)"][-1] > series["DSM(8D)"][0]
    flat_ratio = (series["Meta*(8D)"][-1]
                  / max(series["Meta*(8D)"][0], 1e-9))
    assert flat_ratio < 10
