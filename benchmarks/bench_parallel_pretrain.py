"""Data-parallel pretraining scaling: fit_offline wall-clock vs workers.

``engine="parallel"`` fans each fused meta-batch / pretrain fusion
group of the offline phase (Algorithm 2) out across N forked worker
processes; reduction, memory-EMA updates and RNG draws stay on the
master, so the result is bit-identical to the single-process fused
engine at every worker count.  This bench runs the *same*
``fit_offline`` once under the batched engine (the single-process
reference) and once per worker count under the parallel engine over a
multi-subspace system at >= 48 meta-tasks x 4 subspaces, and reports

* **fit seconds / speedup vs batched** per worker count, and
* **encode+train peak memory** of the store-streamed task-set path
  (``stream=True``) next to the materialized default.

Scaling expectation: the span compute dominates and runs concurrently,
so on hardware with >= 4 cores the 4-worker fit must beat the
single-process fused engine by ``REPRO_TRAIN_MIN_SPEEDUP`` (default
2x).  On runners with fewer cores than workers that parallelism
physically cannot appear; the default bar then drops to a
*fork-and-pipe tax* check (>= 0.5x: shipping spans across processes
must not collapse throughput).  ``BENCH_parallel_pretrain.json``
records the measured series together with the recording machine's
``cpu_count`` so baselines are read in context.

Correctness rides along at every point: every parallel fit (and the
store-streamed fit) is checked bit-for-bit against the batched
reference — phi, histories and memories — before any timing is
reported.

Env knobs: ``REPRO_TRAIN_BENCH_WORKERS`` (default ``1,2,4``),
``REPRO_TRAIN_MIN_SPEEDUP``, ``REPRO_TRAIN_PARALLEL_BASELINE=/p.json``
to record, ``REPRO_SCALE`` (quick: 5K-row table, medium: 200K, paper:
2M rows — the on-disk streamed regime).
"""

import json
import os
import time
import tracemalloc

import numpy as np
import pytest

from repro.bench import print_series
from repro.core import LTE, LTEConfig
from repro.core.meta_training import MetaHyperParams
from repro.data import make_sdss

N_TASKS = 48                      # per subspace; 4 subspaces on sdss
WORKER_COUNTS = tuple(int(x) for x in
                      os.environ.get("REPRO_TRAIN_BENCH_WORKERS",
                                     "1,2,4").split(","))
ROWS = {"quick": 5_000, "medium": 200_000, "paper": 2_000_000}
# The 2x acceptance bar needs as many cores as workers; see module doc.
_CORES = os.cpu_count() or 1
MIN_SPEEDUP = float(os.environ.get(
    "REPRO_TRAIN_MIN_SPEEDUP",
    "2.0" if _CORES >= max(WORKER_COUNTS) else "0.5"))
BASELINE = os.environ.get("REPRO_TRAIN_PARALLEL_BASELINE")


def pretrain_config():
    """Serving-sized system with a meaningful offline plan (mirrors
    bench_pretrain_throughput): 1 joint pretraining epoch + 3 meta
    epochs of 10 local steps over 48 tasks x 4 subspaces."""
    return LTEConfig(budget=30, ku=32, kq=40, n_tasks=N_TASKS,
                     embed_size=16, hidden_size=16, n_components=4,
                     meta=MetaHyperParams(epochs=3, local_steps=10,
                                          pretrain_epochs=1))


def _fit(table, **kwargs):
    lte = LTE(pretrain_config())
    start = time.perf_counter()
    lte.fit_offline(table, **kwargs)
    return lte, time.perf_counter() - start


def _assert_identical(reference, candidate, label):
    for subspace in reference.states:
        a = reference.states[subspace].trainer
        b = candidate.states[subspace].trainer
        assert np.array_equal(a.model.flat_parameters(),
                              b.model.flat_parameters()), \
            "{}: phi diverged on {}".format(label, subspace)
        assert a.history == b.history, label
        if a.memories is not None:
            sa, sb = a.memories.state_dict(), b.memories.state_dict()
            for key in ("M_vR", "M_R", "M_CP"):
                assert np.array_equal(sa[key], sb[key]), (label, key)


@pytest.mark.train_parallel
@pytest.mark.benchmark(group="train_parallel")
def test_parallel_pretrain_scaling(benchmark, scale, report, tmp_path):
    n_rows = ROWS.get(scale.name, ROWS["quick"])
    table = make_sdss(n_rows=n_rows, seed=7)

    def run():
        batched, batched_s = _fit(table, engine="batched")
        n_subspaces = len(batched.states)
        series = {"parallel_s": [], "speedup": []}
        for workers in WORKER_COUNTS:
            parallel, seconds = _fit(table, engine="parallel",
                                     workers=workers)
            # Speedup is only meaningful if nothing changed — the
            # determinism contract is part of the acceptance.
            _assert_identical(batched, parallel,
                              "workers={}".format(workers))
            series["parallel_s"].append(seconds)
            series["speedup"].append(batched_s / seconds)

        # Store-streamed task sets: same phi, chunk-bounded memory.
        tracemalloc.start()
        materialized, _ = _fit(table, engine="batched")
        _, peak_mat = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        tracemalloc.start()
        streamed, _ = _fit(table, engine="parallel",
                           workers=min(2, max(WORKER_COUNTS)),
                           stream=str(tmp_path / "stream"))
        _, peak_stream = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        _assert_identical(batched, materialized, "materialized rerun")
        _assert_identical(batched, streamed, "streamed")
        return (series, batched_s, n_subspaces,
                {"materialized_mb": peak_mat / 1e6,
                 "streamed_mb": peak_stream / 1e6})

    series, batched_s, n_subspaces, peaks = benchmark.pedantic(
        run, rounds=1, iterations=1)
    speedup = series["speedup"][-1]
    with report():
        print_series(
            "Data-parallel pretraining, {} subspaces x {} tasks, {}-row "
            "table (fit_offline seconds; batched reference {:.2f}s)"
            .format(n_subspaces, N_TASKS, n_rows, batched_s),
            "workers", list(WORKER_COUNTS), series)
        print_series(
            "  encode+train peak memory, MB ({} cpu cores)".format(_CORES),
            "path", ["materialized", "streamed"],
            {"mb": [peaks["materialized_mb"], peaks["streamed_mb"]]})

    if BASELINE:
        with open(BASELINE, "w") as fh:
            json.dump({"scale": scale.name, "rows": n_rows,
                       "n_tasks": N_TASKS, "n_subspaces": n_subspaces,
                       "workers": list(WORKER_COUNTS),
                       "cpu_count": _CORES, "batched_s": batched_s,
                       "speedup": speedup, "series": series,
                       "peaks_mb": peaks}, fh, indent=2, sort_keys=True)

    assert n_subspaces >= 4
    # The scaling bar (2x at 4 workers on >= 4 cores; fork-and-pipe tax
    # floor otherwise — see module doc; CI relaxes via
    # REPRO_TRAIN_MIN_SPEEDUP).
    assert speedup >= MIN_SPEEDUP, \
        "parallel fit_offline at {} workers was only {:.2f}x the batched " \
        "engine (min {})".format(WORKER_COUNTS[-1], speedup, MIN_SPEEDUP)
