"""Table II: accuracy across generalized UIS modes M1-M7 (B=30).

Paper shape (per dataset): Meta* >= Meta >= Basic >= SVMr >= SVM in every
mode; accuracy drops as psi shrinks (M1->M4, smaller parts are harder) and
the meta-learning lift over Basic is largest for small alpha (M5).
Roughly half the generated UISs are concave or disconnected, so DSM is not
run — with non-convex regions it degenerates into SVM (Section VIII-C).
"""

import numpy as np
import pytest

from _common import run_lte_methods, run_svm_variants
from repro.bench import build_lte, eval_rows_for, mode_oracles, print_matrix
from repro.core.uis import PAPER_MODES

METHODS = ("Meta*", "Meta", "Basic", "SVMr", "SVM")
MODES = tuple(PAPER_MODES)  # M1..M7
BUDGET = 30


@pytest.mark.benchmark(group="table2")
@pytest.mark.parametrize("dataset", ["car", "sdss"])
def test_table2_uis_modes(benchmark, scale, report, dataset):
    lte = build_lte(dataset, budget=BUDGET, scale=scale)
    subspace = list(lte.states)[0]
    eval_rows = eval_rows_for(lte, scale)

    def run():
        table = {name: [] for name in METHODS}
        for mode_name in MODES:
            mode = PAPER_MODES[mode_name]
            oracles = mode_oracles(lte, [subspace], mode,
                                   n_uirs=scale.n_test_uirs,
                                   seed=5000 + hash(mode_name) % 1000)
            scores = run_lte_methods(lte, oracles, eval_rows, [subspace])
            scores.update(run_svm_variants(lte, oracles, eval_rows,
                                           [subspace]))
            for name in METHODS:
                table[name].append(scores[name])
        return table

    table = benchmark.pedantic(run, rounds=1, iterations=1)
    with report():
        print_matrix("Table II ({}, B={})".format(dataset.upper(), BUDGET),
                     METHODS, MODES, [table[m] for m in METHODS])

    means = {name: float(np.mean(vals)) for name, vals in table.items()}
    # Headline orderings on the mode-averaged accuracy (loose at quick
    # scale): the NN family beats the SVM family, preprocessing helps SVM,
    # and the meta variants improve on Basic.
    assert means["Meta*"] >= means["SVM"]
    assert means["Meta"] >= means["Basic"] - 0.05
    assert means["SVMr"] >= means["SVM"] - 0.05
    assert means["Meta*"] >= means["Basic"] - 0.02
