"""Figure 5(a-d): accuracy vs label budget B on 2/4/6/8D (SDSS).

Paper shape: every method improves with B; DSM is best (or near-best) in
the 2D panel (convex+conjunctive is its home assumption) but collapses as
dimensionality grows, while Meta/Meta* dominate from 4D upward.
"""

import pytest

from _common import (run_fullspace_baselines, run_lte_methods,
                     subspaces_for_dims)
from repro.bench import build_lte, convex_oracles, eval_rows_for, print_series

BUDGETS = (30, 55, 80, 105)
DIMS = (2, 4, 6, 8)


@pytest.mark.benchmark(group="fig5")
@pytest.mark.parametrize("dim", DIMS)
def test_fig5_accuracy_vs_budget(benchmark, scale, report, dim):
    def run():
        series = {name: [] for name in ("Meta*", "Meta", "Basic", "DSM")}
        for budget in BUDGETS:
            lte = build_lte("sdss", budget=budget, scale=scale)
            subspaces = subspaces_for_dims(lte, dim)
            oracles = convex_oracles(lte, subspaces,
                                     n_uirs=max(2, scale.n_test_uirs // 2),
                                     seed=3000 + dim)
            eval_rows = eval_rows_for(lte, scale)
            scores = run_lte_methods(lte, oracles, eval_rows, subspaces)
            scores.update(run_fullspace_baselines(
                lte, oracles, eval_rows, subspaces, budget=budget,
                pool_size=scale.pool_size, kinds=("dsm",)))
            for name in series:
                series[name].append(scores[name])
        return series

    series = benchmark.pedantic(run, rounds=1, iterations=1)
    with report():
        print_series("Figure 5: F1 vs B (SDSS, {}D)".format(dim), "B",
                     list(BUDGETS), series)

    assert all(0.0 <= v <= 1.0 for vs in series.values() for v in vs)
    if dim >= 6:
        # High dimension: the meta variants dominate DSM at every budget.
        # (Joint positive rates are < 1% here, so single-budget F1 values
        # are noisy at quick scale — compare the sweep best.)
        assert max(series["Meta*"]) > max(series["DSM"])
        assert max(series["Meta"]) > max(series["DSM"])
    else:
        # More budget should not hurt much: compare sweep ends loosely.
        assert series["Meta*"][-1] >= series["Meta*"][0] - 0.15
