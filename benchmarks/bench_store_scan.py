"""Store scan throughput: zone-map chunk pruning vs full-table scans.

Region prediction over a large exploratory table is the hot loop the
chunk store exists for: a user's interest region occupies a small slice
of the attribute space, so most chunks of a table with any write
locality (time-ordered appends, segment loads, clustered ingest) can be
skipped on their zone maps alone.  This bench builds an on-disk CAR-like
table ordered by its first attribute (the classic append pattern),
draws UIS-style interest regions (unions of convex hulls over a narrow
band of the sort attribute), and times the same membership query two
ways:

* **full scan** — every chunk is read and run through the exact packed
  membership kernel (pruning disabled);
* **pruned scan** — :class:`~repro.store.ChunkScan` drops chunks whose
  zone maps cannot intersect the region's conservative bboxes, then
  runs the identical kernel on the survivors.

Masks must agree bit for bit at every size (the planner's contract);
the pruned scan must beat the full scan by ``REPRO_STORE_MIN_SPEEDUP``
(default 5x) at the largest size, where peak traced allocations must
also stay bounded by chunks, not the table.

Set ``REPRO_STORE_BASELINE=/path/to.json`` to record the series (see
``benchmarks/BENCH_store.json`` for the committed baseline).
"""

import json
import os
import time
import tracemalloc

import numpy as np
import pytest

from repro.bench import print_series
from repro.geometry import Hull, UnionRegion
from repro.store import ChunkScan, ChunkStore

CHUNK_ROWS = 16_384
#: Rows per size; the largest carries the acceptance bar.
QUICK_SIZES = (100_000, 300_000, 1_000_000)
FULL_SIZES = QUICK_SIZES + (3_000_000,)
# 5x is the acceptance bar on dedicated hardware; shared CI runners set
# REPRO_STORE_MIN_SPEEDUP lower so timing noise cannot block merges.
MIN_SPEEDUP = float(os.environ.get("REPRO_STORE_MIN_SPEEDUP", "5.0"))
BASELINE = os.environ.get("REPRO_STORE_BASELINE")


def build_store(n_rows, directory, seed=0):
    """On-disk table with append locality: blocks ordered by column 0."""
    rng = np.random.default_rng(seed)
    block = 50_000
    edges = np.linspace(0.0, 100.0, -(-n_rows // block) + 1)

    def blocks():
        remaining = n_rows
        for i in range(len(edges) - 1):
            rows = min(block, remaining)
            remaining -= rows
            lead = rng.uniform(edges[i], edges[i + 1], size=rows)
            rest = np.column_stack([
                rng.normal(lead * 0.5, 4.0),
                rng.gamma(2.0, 10.0, size=rows),
                rng.uniform(-50, 50, size=rows),
            ])
            yield np.column_stack([np.sort(lead), rest])

    return ChunkStore.from_blocks(
        "scan-bench", ["t", "a", "b", "c"], blocks(),
        chunk_rows=CHUNK_ROWS, directory=directory)


def interest_region(store, seed=1):
    """UIS-style union of hulls over a narrow band of the sort column."""
    rng = np.random.default_rng(seed)
    lo, hi = store.column_bounds()
    center = rng.uniform(lo[0] + 10, hi[0] - 10)
    hulls = []
    for _ in range(4):
        t0 = center + rng.uniform(-2.0, 2.0)
        pts = np.column_stack([
            rng.uniform(t0, t0 + 1.0, size=12),
            rng.normal(t0 * 0.5, 3.0, size=12),
            rng.uniform(5, 40, size=12),
            rng.uniform(-30, 30, size=12),
        ])
        hulls.append(Hull(pts))
    return UnionRegion(hulls)


def full_scan(store, region):
    """Pruning disabled: every chunk through the exact kernel."""
    out = np.zeros(store.n_rows, dtype=bool)
    for start, block in store.iter_chunks():
        out[start:start + len(block)] = region.contains(block)
    return out


def _best_of(fn, repeats=3):
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


@pytest.mark.store
@pytest.mark.benchmark(group="store")
def test_store_scan_speedup(benchmark, scale, report, tmp_path):
    sizes = QUICK_SIZES if scale.name == "quick" else FULL_SIZES

    def run():
        series = {"full_ms": [], "pruned_ms": [], "speedup": [],
                  "chunks": [], "chunks_scanned": [], "peak_mib": []}
        parity = True
        for n_rows in sizes:
            store = build_store(n_rows, str(tmp_path / str(n_rows)))
            region = interest_region(store)
            region.compiled()   # compile outside the timed section
            scan = ChunkScan(store, region)
            full_s, full_mask = _best_of(lambda: full_scan(store, region))
            pruned_s, pruned_mask = _best_of(
                lambda: ChunkScan(store, region).row_mask())
            parity &= np.array_equal(full_mask, pruned_mask)
            tracemalloc.start()
            ChunkScan(store, region).row_mask()
            _, peak = tracemalloc.get_traced_memory()
            tracemalloc.stop()
            series["full_ms"].append(full_s * 1e3)
            series["pruned_ms"].append(pruned_s * 1e3)
            series["speedup"].append(full_s / pruned_s)
            series["chunks"].append(scan.stats["chunks"])
            series["chunks_scanned"].append(scan.stats["chunks_scanned"])
            series["peak_mib"].append(peak / 2 ** 20)
        return series, parity

    (series, parity), = [benchmark.pedantic(run, rounds=1, iterations=1)]
    labels = ["{}k".format(n // 1000) for n in sizes]
    with report():
        print_series(
            "Store region scan ({}-row chunks, on disk): ms".format(
                CHUNK_ROWS), "rows", labels,
            {"full": series["full_ms"], "pruned": series["pruned_ms"],
             "speedup": series["speedup"]})
        print_series(
            "  chunks touched + peak traced MiB", "rows", labels,
            {"chunks": series["chunks"],
             "scanned": series["chunks_scanned"],
             "peak_mib": series["peak_mib"]})

    if BASELINE:
        with open(BASELINE, "w") as fh:
            json.dump({"chunk_rows": CHUNK_ROWS,
                       "sizes": list(sizes), "series": series},
                      fh, indent=2, sort_keys=True)

    # The planner's contract: exact masks, never "close enough".
    assert parity
    # Acceptance bar: pruned >= MIN_SPEEDUP x full at the largest size.
    assert series["speedup"][-1] >= MIN_SPEEDUP, \
        "pruned scan at {} rows was only {:.2f}x the full scan " \
        "(min {})".format(sizes[-1], series["speedup"][-1], MIN_SPEEDUP)
    # Pruning must never lose to the full scan at any measured size.
    assert min(series["speedup"]) >= 1.0
    # Peak memory is bounded by chunks, not table size: the largest
    # size's traced peak stays within a few chunks' worth of float64.
    chunk_mib = CHUNK_ROWS * 4 * 8 / 2 ** 20
    assert series["peak_mib"][-1] < 16 * chunk_mib, \
        "peak {}MiB exceeds the chunk-bounded budget".format(
            series["peak_mib"][-1])
