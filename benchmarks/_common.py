"""Shared runners for the benchmark suite.

Every bench regenerates one of the paper's tables/figures (Section VIII);
these helpers run the competitor set over a batch of ground-truth UIRs and
return the per-method mean F1 series the benches print and sanity-check.

Budget accounting (documented in EXPERIMENTS.md): LTE methods and the
SVM/SVMr competitors label B tuples *per subspace* (the C_s centers plus
delta random tuples, exactly the paper's initial-exploration protocol);
the full-space baselines DSM and AL-SVM label B full tuples total, with
free query-agnostic seed sampling (the paper excludes the baselines'
initial-sampling cost too).
"""

import numpy as np

from repro.bench import (baseline_oracle_pairs, mean_f1_baseline, mean_f1_lte,
                         mean_f1_subspace_svm)

LTE_VARIANTS = ("meta_star", "meta", "basic")
SERIES_LABELS = {"meta_star": "Meta*", "meta": "Meta", "basic": "Basic",
                 "dsm": "DSM", "al_svm": "AL-SVM", "aide": "AIDE",
                 "svm": "SVM", "svmr": "SVMr"}


def subspaces_for_dims(lte, n_dims):
    """First ceil(n_dims / subspace_dim) meta-subspaces of the system."""
    per = lte.config.subspace_dim
    need = max(1, n_dims // per)
    subs = list(lte.states)[:need]
    if len(subs) < need:
        raise ValueError("system has only {} subspaces".format(len(subs)))
    return subs


def run_lte_methods(lte, oracles, eval_rows, subspaces,
                    variants=LTE_VARIANTS):
    """{'Meta*': f1, 'Meta': f1, 'Basic': f1} over the oracle batch."""
    return {SERIES_LABELS[v]: mean_f1_lte(lte, oracles, eval_rows, v,
                                          subspaces=subspaces)
            for v in variants}


def run_fullspace_baselines(lte, oracles, eval_rows, subspaces, budget,
                            pool_size, kinds=("dsm", "al_svm"),
                            explore_rows=4000):
    """DSM / AL-SVM on the user-interest space columns of the table."""
    columns = [c for s in subspaces for c in s.columns]
    user_eval = eval_rows[:, columns]
    user_full = lte.table.data[:explore_rows, columns]
    pairs = baseline_oracle_pairs(oracles, subspaces)
    out = {}
    for kind in kinds:
        out[SERIES_LABELS[kind]] = mean_f1_baseline(
            kind, user_full, pairs, user_eval, budget=budget,
            pool_size=pool_size)
    return out


def run_svm_variants(lte, oracles, eval_rows, subspaces):
    """SVM (raw min-max features) and SVMr (tabular representation)."""
    return {
        "SVM": mean_f1_subspace_svm(lte, oracles, eval_rows, subspaces,
                                    encoded=False),
        "SVMr": mean_f1_subspace_svm(lte, oracles, eval_rows, subspaces,
                                     encoded=True),
    }


def subspace_level_f1(lte, subspace, regions, variant, eval_points):
    """Mean per-subspace F1 of an LTE variant over ground-truth regions.

    Used by the UIS-mode experiments (Table II, Fig. 8) which measure
    subregion quality rather than full conjunctive UIRs.
    """
    from repro.explore.metrics import f1_score
    from repro.explore.oracle import ConjunctiveOracle

    scores = []
    for region in regions:
        oracle = ConjunctiveOracle({subspace: region})
        session = lte.start_session(variant=variant, subspaces=[subspace])
        for sub, tuples in session.initial_tuples().items():
            session.submit_labels(sub, oracle.label_subspace(sub, tuples))
        pred = session.predict_subspace(subspace, eval_points)
        truth = region.label(eval_points)
        scores.append(f1_score(truth, pred))
    return float(np.mean(scores))
