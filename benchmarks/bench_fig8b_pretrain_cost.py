"""Figure 8(b): offline pre-training cost vs number of meta-tasks |TM|.

Paper shape: both meta-task generation time and meta-training time grow
linearly with |TM|, and the cost is essentially independent of the dataset
size (CAR is half of SDSS but trains only ~12% faster).
"""

import time

import numpy as np
import pytest

from repro.bench import build_lte, print_series
from repro.core.meta_training import MetaHyperParams, MetaTrainer

TASK_COUNTS = (20, 40, 80, 160)


def _stage_times(lte, n_tasks):
    state = lte.states[list(lte.states)[0]]
    start = time.perf_counter()
    tasks = state.task_generator.generate(n_tasks)
    generate_s = time.perf_counter() - start

    trainer = MetaTrainer(
        ku=state.summary.ku, input_width=state.preprocessor.width,
        params=MetaHyperParams(epochs=1, local_steps=5, pretrain_epochs=1),
        seed=0)
    start = time.perf_counter()
    trainer.train(tasks, state.encode_scaled)
    train_s = time.perf_counter() - start
    return generate_s, train_s


@pytest.mark.benchmark(group="fig8b")
def test_fig8b_pretraining_cost(benchmark, scale, report):
    def run():
        series = {"Generate(CAR)": [], "Train(CAR)": [],
                  "Generate(SDSS)": [], "Train(SDSS)": []}
        for dataset in ("car", "sdss"):
            lte = build_lte(dataset, budget=30, scale=scale, train=False)
            for n_tasks in TASK_COUNTS:
                gen_s, train_s = _stage_times(lte, n_tasks)
                series["Generate({})".format(dataset.upper())].append(gen_s)
                series["Train({})".format(dataset.upper())].append(train_s)
        return series

    series = benchmark.pedantic(run, rounds=1, iterations=1)
    with report():
        print_series("Figure 8(b): pre-training cost vs |TM| (seconds)",
                     "|TM|", list(TASK_COUNTS), series)

    # Roughly linear growth: 8x tasks costs less than ~24x time (very loose
    # to absorb scheduler noise) and more than 2x.
    for name in ("Train(CAR)", "Train(SDSS)"):
        ratio = series[name][-1] / max(series[name][0], 1e-9)
        assert 1.5 < ratio < 24.0
    # Cost is driven by |TM|, not dataset size: SDSS (2x rows) within 3x of
    # CAR's training time at the largest task count.
    assert series["Train(SDSS)"][-1] < 3.0 * series["Train(CAR)"][-1] + 1.0
