"""Figure 8(b): offline pre-training cost vs number of meta-tasks |TM|.

Paper shape: both meta-task generation time and meta-training time grow
linearly with |TM|, and the cost is essentially independent of the dataset
size (CAR is half of SDSS but trains only ~12% faster).

On top of the paper's figure, this bench reports the meta-training time
under *both* executors of :mod:`repro.train` — the sequential reference
(``TrainSeq``) and the fused batched engine (``Train``, the default) —
at every |TM|; the two produce bit-identical trainers, so the gap is
pure Python/autograd overhead amortized across the stacked tasks.  The
adapted-evaluation pass (``Eval`` vs ``EvalSeq``) rides the same engine.
"""

import time

import numpy as np
import pytest

from repro.bench import build_lte, print_series
from repro.core.meta_training import MetaHyperParams, MetaTrainer

TASK_COUNTS = (20, 40, 80, 160)


def _trainer(state):
    return MetaTrainer(
        ku=state.summary.ku, input_width=state.preprocessor.width,
        params=MetaHyperParams(epochs=1, local_steps=5, pretrain_epochs=1),
        seed=0)


def _stage_times(lte, n_tasks):
    state = lte.states[list(lte.states)[0]]
    start = time.perf_counter()
    tasks = state.task_generator.generate(n_tasks)
    generate_s = time.perf_counter() - start

    trained = {}
    times = {}
    for engine in ("batched", "sequential"):
        trainer = _trainer(state)
        start = time.perf_counter()
        trainer.train(tasks, state.encode_scaled, engine=engine)
        times[engine] = time.perf_counter() - start
        trained[engine] = trainer
    assert np.array_equal(trained["batched"].model.flat_parameters(),
                          trained["sequential"].model.flat_parameters())

    trainer = trained["batched"]
    eval_tasks = tasks[:min(len(tasks), 20)]
    start = time.perf_counter()
    acc_batched = trainer.evaluate(eval_tasks, state.encode_scaled)
    eval_batched_s = time.perf_counter() - start
    start = time.perf_counter()
    acc_sequential = trainer.evaluate(eval_tasks, state.encode_scaled,
                                      engine="sequential")
    eval_sequential_s = time.perf_counter() - start
    assert acc_batched == acc_sequential
    return (generate_s, times["batched"], times["sequential"],
            eval_batched_s, eval_sequential_s)


@pytest.mark.benchmark(group="fig8b")
def test_fig8b_pretraining_cost(benchmark, scale, report):
    def run():
        series = {"Generate(CAR)": [], "Train(CAR)": [],
                  "TrainSeq(CAR)": [],
                  "Generate(SDSS)": [], "Train(SDSS)": [],
                  "TrainSeq(SDSS)": [],
                  "Eval(SDSS)": [], "EvalSeq(SDSS)": []}
        for dataset in ("car", "sdss"):
            lte = build_lte(dataset, budget=30, scale=scale, train=False)
            for n_tasks in TASK_COUNTS:
                gen_s, train_s, train_seq_s, eval_s, eval_seq_s = \
                    _stage_times(lte, n_tasks)
                name = dataset.upper()
                series["Generate({})".format(name)].append(gen_s)
                series["Train({})".format(name)].append(train_s)
                series["TrainSeq({})".format(name)].append(train_seq_s)
                if dataset == "sdss":
                    series["Eval(SDSS)"].append(eval_s)
                    series["EvalSeq(SDSS)"].append(eval_seq_s)
        return series

    series = benchmark.pedantic(run, rounds=1, iterations=1)
    with report():
        print_series("Figure 8(b): pre-training cost vs |TM| (seconds; "
                     "Train = fused engine, TrainSeq = sequential "
                     "reference)",
                     "|TM|", list(TASK_COUNTS), series)

    # Roughly linear growth: 8x tasks costs less than ~24x time (very loose
    # to absorb scheduler noise) and more than 2x.
    for name in ("Train(CAR)", "Train(SDSS)"):
        ratio = series[name][-1] / max(series[name][0], 1e-9)
        assert 1.5 < ratio < 24.0
    # Cost is driven by |TM|, not dataset size: SDSS (2x rows) within 3x of
    # CAR's training time at the largest task count.
    assert series["Train(SDSS)"][-1] < 3.0 * series["Train(CAR)"][-1] + 1.0
    # The fused engine never loses to the sequential reference at the
    # largest |TM| (they are bit-identical, so faster == strictly better).
    for name in ("CAR", "SDSS"):
        assert series["Train({})".format(name)][-1] <= \
            series["TrainSeq({})".format(name)][-1] * 1.1
