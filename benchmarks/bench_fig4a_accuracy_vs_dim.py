"""Figure 4(a): accuracy vs dimensionality (SDSS, B=30).

Paper shape: all methods degrade as |D_u| grows 2D -> 8D; the SVM-based
baselines (DSM, AL-SVM) drop sharply (DSM ~ -75%) while the NN-based LTE
variants degrade gently (Meta* ~ -18%); Meta* >= Meta >= Basic throughout.
"""

import pytest

from _common import (run_fullspace_baselines, run_lte_methods,
                     subspaces_for_dims)
from repro.bench import build_lte, convex_oracles, eval_rows_for, print_series

DIMS = (2, 4, 6, 8)
BUDGET = 30


@pytest.mark.benchmark(group="fig4a")
def test_fig4a_accuracy_vs_dimension(benchmark, scale, report):
    lte = build_lte("sdss", budget=BUDGET, scale=scale)
    eval_rows = eval_rows_for(lte, scale)

    def run():
        series = {name: [] for name in
                  ("Meta*", "Meta", "Basic", "DSM", "AL-SVM", "AIDE")}
        for dim in DIMS:
            subspaces = subspaces_for_dims(lte, dim)
            oracles = convex_oracles(lte, subspaces,
                                     n_uirs=scale.n_test_uirs,
                                     seed=1000 + dim)
            scores = run_lte_methods(lte, oracles, eval_rows, subspaces)
            scores.update(run_fullspace_baselines(
                lte, oracles, eval_rows, subspaces, budget=BUDGET,
                pool_size=scale.pool_size,
                kinds=("dsm", "al_svm", "aide")))
            for name, value in scores.items():
                series[name].append(value)
        return series

    series = benchmark.pedantic(run, rounds=1, iterations=1)
    with report():
        print_series("Figure 4(a): F1 vs |Du| (SDSS, B=30)", "|Du|",
                     ["{}D".format(d) for d in DIMS], series)

    # Shape assertions (loose: quick scale is noisy).
    assert all(0.0 <= v <= 1.0 for vs in series.values() for v in vs)
    # NN methods dominate the SVM baselines at 8D.
    assert series["Meta*"][-1] > series["DSM"][-1]
    assert series["Meta*"][-1] > series["AL-SVM"][-1]
    # DSM's relative degradation 2D->8D exceeds Meta*'s.
    dsm_drop = series["DSM"][0] - series["DSM"][-1]
    meta_drop = series["Meta*"][0] - series["Meta*"][-1]
    assert dsm_drop > meta_drop - 0.05
