"""Figure 7(a, b): accuracy vs budget on generalized UIRs (CAR, SDSS).

Paper shape: all NN methods (and SVMr) improve with B; plain SVM stays
flat/low because kernel/hyper-parameter choice fails on complex UIS; the
meta variants reach a given accuracy with a smaller budget than Basic.
"""

import numpy as np
import pytest

from _common import run_lte_methods, run_svm_variants
from repro.bench import build_lte, eval_rows_for, mode_oracles, print_series
from repro.core.uis import PAPER_MODES

BUDGETS = (30, 55, 80, 105)
METHODS = ("Meta*", "Meta", "Basic", "SVMr", "SVM")


def mixed_mode_oracles(lte, subspaces, n_uirs, seed):
    """UIRs whose per-subspace modes cycle through Table III."""
    modes = list(PAPER_MODES.values())
    oracles = []
    for i in range(n_uirs):
        mode = modes[i % len(modes)]
        oracles.extend(mode_oracles(lte, subspaces, mode, n_uirs=1,
                                    seed=seed + i))
    return oracles


@pytest.mark.benchmark(group="fig7ab")
@pytest.mark.parametrize("dataset", ["car", "sdss"])
def test_fig7ab_generalized_accuracy_vs_budget(benchmark, scale, report,
                                               dataset):
    def run():
        series = {name: [] for name in METHODS}
        for budget in BUDGETS:
            lte = build_lte(dataset, budget=budget, scale=scale)
            subspaces = list(lte.states)[:2]
            oracles = mixed_mode_oracles(lte, subspaces,
                                         n_uirs=max(2,
                                                    scale.n_test_uirs // 2),
                                         seed=6000)
            eval_rows = eval_rows_for(lte, scale)
            scores = run_lte_methods(lte, oracles, eval_rows, subspaces)
            scores.update(run_svm_variants(lte, oracles, eval_rows,
                                           subspaces))
            for name in METHODS:
                series[name].append(scores[name])
        return series

    series = benchmark.pedantic(run, rounds=1, iterations=1)
    with report():
        print_series(
            "Figure 7({}): generalized UIRs, F1 vs B ({})".format(
                "a" if dataset == "car" else "b", dataset.upper()),
            "B", list(BUDGETS), series)

    assert all(0.0 <= v <= 1.0 for vs in series.values() for v in vs)
    # The meta family ends at least as strong as plain SVM.
    assert max(series["Meta*"][-1], series["Meta"][-1]) \
        >= series["SVM"][-1] - 0.02
    # Budget helps the NN family (allow quick-scale noise).
    assert series["Meta"][-1] >= series["Meta"][0] - 0.1


@pytest.mark.benchmark(group="fig7ab")
def test_fig7_meta_needs_less_budget_than_basic(benchmark, scale, report):
    """Paper: 'Meta with B=55 achieves the same performance as Basic with
    B=80' (CAR) — check the weaker ordering Meta(B) >= Basic(B+25)- eps."""
    def run():
        lte_low = build_lte("car", budget=55, scale=scale)
        lte_high = build_lte("car", budget=80, scale=scale)
        subspaces_low = list(lte_low.states)[:2]
        subspaces_high = list(lte_high.states)[:2]
        oracles_low = mixed_mode_oracles(
            lte_low, subspaces_low, n_uirs=max(2, scale.n_test_uirs // 2),
            seed=6600)
        oracles_high = mixed_mode_oracles(
            lte_high, subspaces_high, n_uirs=max(2, scale.n_test_uirs // 2),
            seed=6600)
        rows_low = eval_rows_for(lte_low, scale)
        rows_high = eval_rows_for(lte_high, scale)
        meta_low = run_lte_methods(lte_low, oracles_low, rows_low,
                                   subspaces_low, variants=("meta",))["Meta"]
        basic_high = run_lte_methods(lte_high, oracles_high, rows_high,
                                     subspaces_high,
                                     variants=("basic",))["Basic"]
        return meta_low, basic_high

    meta_low, basic_high = benchmark.pedantic(run, rounds=1, iterations=1)
    with report():
        print("\nFig 7 budget-efficiency: Meta(B=55) = {:.3f}  "
              "Basic(B=80) = {:.3f}".format(meta_low, basic_high))
    assert meta_low >= basic_high - 0.15
