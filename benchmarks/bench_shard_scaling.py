"""Sharded serving scaling: sessions/sec and latency vs worker count.

A fleet of simulated users opens exploration sessions against a
:class:`~repro.shard.ShardGateway`, labels initial tuples per subspace,
and retrieves predictions over a shared evaluation sample — waves of
concurrent sessions driven through the gateway's submit / flush_all /
predict_many protocol, exactly the serving loop a front end would run.
For each worker count the bench reports

* **sessions/sec** — completed sessions over wall clock, and
* **label-to-prediction latency** — per-session time from its last
  label submission to its predictions being available (p50 / p99 over
  all sessions).

Scaling expectation: adaptation dominates, and the gateway's pipelined
``flush_all`` runs every worker's fused adaptation batch concurrently,
so on hardware with >= 4 cores sessions/sec should at least double from
1 to 4 workers (the ``REPRO_SHARD_MIN_SPEEDUP`` acceptance bar, default
2.0 there).  On runners with fewer cores than workers that parallelism
physically cannot appear; the default bar then drops to a *sharding
tax* check (>= 0.5x: splitting the fused batch across processes must
not collapse throughput).  ``benchmarks/BENCH_shard.json`` records the
measured series together with the recording machine's ``cpu_count`` so
baselines are read in context.

Correctness rides along at every scale:

* a parity subset is re-run on a fresh single-process
  :class:`~repro.serve.SessionManager` — gateway predictions must be
  bit-identical;
* a model-version broadcast (:meth:`ShardGateway.publish_model` of a
  perturbed phi) rolls through mid-workload — no live session may drop,
  error, or change its already-adapted predictions.

Env knobs: ``REPRO_SHARD_WORKERS`` (default ``1,2,4``),
``REPRO_SHARD_MIN_SPEEDUP``, ``REPRO_SHARD_BASELINE=/path.json`` to
record, ``REPRO_SCALE`` (quick: 64 sessions, medium: 1024, paper:
10000 — the paper-scale concurrent-session fleet).
"""

import copy
import json
import os
import time

import numpy as np
import pytest

from repro.bench import print_series, subspace_region
from repro.core import LTE, LTEConfig
from repro.core.meta_training import MetaHyperParams
from repro.core.uis import UISMode
from repro.data import make_sdss
from repro.data.subspaces import random_decomposition
from repro.explore import ConjunctiveOracle
from repro.serve import SessionManager
from repro.shard import ShardGateway

VARIANT = "meta_star"
WAVE = 32                       # concurrent sessions per serving wave
N_ORACLES = 16                  # distinct ground-truth interests, cycled
WORKER_COUNTS = tuple(int(x) for x in
                      os.environ.get("REPRO_SHARD_WORKERS",
                                     "1,2,4").split(","))
SESSIONS = {"quick": 64, "medium": 1024, "paper": 10_000}
# The 2x acceptance bar needs as many cores as workers; see module doc.
_CORES = os.cpu_count() or 1
MIN_SPEEDUP = float(os.environ.get(
    "REPRO_SHARD_MIN_SPEEDUP",
    "2.0" if _CORES >= max(WORKER_COUNTS) else "0.5"))
BASELINE = os.environ.get("REPRO_SHARD_BASELINE")


def _build_lte():
    """Smoke-sized system (mirrors bench_serving_throughput): the
    sharded regime is many sessions over small per-subspace learners."""
    table = make_sdss(n_rows=6000, seed=7)
    config = LTEConfig(budget=30, ku=40, kq=60, n_tasks=10,
                       embed_size=32, hidden_size=32, n_components=4,
                       meta=MetaHyperParams(epochs=1, local_steps=3,
                                            pretrain_epochs=1),
                       online_steps=30)
    lte = LTE(config)
    subspaces = random_decomposition(table, dim=config.subspace_dim,
                                     seed=config.seed)[:2]
    lte.fit_offline(table, subspaces=subspaces)
    return lte, subspaces


def _oracles(lte, subspaces, count):
    return [
        ConjunctiveOracle({
            s: subspace_region(lte.states[s], UISMode(1, 30),
                               seed=100 + 7 * k + i)
            for i, s in enumerate(subspaces)})
        for k in range(count)
    ]


def _feed(target, sid, oracle):
    for subspace, tuples in target.initial_tuples(sid).items():
        target.submit_labels(sid, subspace,
                             oracle.label_subspace(subspace, tuples))


def _drive(gateway, oracles, n_sessions, subspaces, eval_rows):
    """Run the serving workload; (sessions/sec, p50 s, p99 s)."""
    latencies = []
    start = time.perf_counter()
    done = 0
    while done < n_sessions:
        wave = min(WAVE, n_sessions - done)
        sids, submitted = [], {}
        for k in range(wave):
            sid = gateway.open_session(variant=VARIANT,
                                       subspaces=subspaces,
                                       seed=done + k)
            _feed(gateway, sid, oracles[(done + k) % len(oracles)])
            submitted[sid] = time.perf_counter()
            sids.append(sid)
        gateway.flush_all()
        gateway.predict_many(sids, eval_rows)
        finished = time.perf_counter()
        latencies.extend(finished - submitted[sid] for sid in sids)
        for sid in sids:        # bounded session tables at paper scale
            gateway.close_session(sid)
        done += wave
    seconds = time.perf_counter() - start
    return (n_sessions / seconds,
            float(np.percentile(latencies, 50)),
            float(np.percentile(latencies, 99)))


def _perturb_phi(lte, scale=1.5, shift=0.1):
    """A stand-in for a re-pretrained phi with the same identity."""
    swapped = copy.deepcopy(lte)
    for state in swapped.states.values():
        if state.trainer is None:
            continue
        sd = state.trainer.state_dict()

        def twist(node):
            if isinstance(node, np.ndarray) and \
                    np.issubdtype(node.dtype, np.floating):
                return node * scale + shift
            if isinstance(node, dict):
                return {k: twist(v) for k, v in node.items()}
            if isinstance(node, list):
                return [twist(v) for v in node]
            return node

        sd["model"] = twist(sd["model"])
        state.trainer.load_state_dict(sd)
    return swapped


def _parity_and_broadcast(lte, subspaces, oracles, eval_rows):
    """Bit-for-bit gateway vs single-process parity on a subset, plus a
    mid-workload model broadcast that must drop nothing."""
    seeds = list(range(8))
    with ShardGateway(lte, n_workers=2) as gateway:
        sids = [gateway.open_session(variant=VARIANT, subspaces=subspaces,
                                     seed=s) for s in seeds]
        for k, sid in enumerate(sids):
            _feed(gateway, sid, oracles[k % len(oracles)])
        gateway.flush_all()
        sharded = gateway.predict_many(sids, eval_rows)

        # Roll a new phi through the pool mid-workload.
        gateway.publish_model(_perturb_phi(lte))
        survived = all(gateway.poll(sid)["errors"] == [] for sid in sids)
        after = gateway.predict_many(sids, eval_rows)
        stable = all(np.array_equal(after[sid], sharded[sid])
                     for sid in sids)

    manager = SessionManager(lte)
    ref = [manager.open_session(variant=VARIANT, subspaces=subspaces,
                                seed=s) for s in seeds]
    for k, sid in enumerate(ref):
        _feed(manager, sid, oracles[k % len(oracles)])
    manager.flush()
    reference = manager.predict_many(ref, eval_rows)
    parity = all(np.array_equal(sharded[sid], reference[ref_sid])
                 for sid, ref_sid in zip(sids, ref))
    return parity, survived, stable


@pytest.mark.shard
@pytest.mark.benchmark(group="shard")
def test_shard_scaling(benchmark, scale, report):
    n_sessions = SESSIONS.get(scale.name, SESSIONS["quick"])

    def run():
        lte, subspaces = _build_lte()
        eval_rows = lte.table.sample_rows(400, seed=1)
        oracles = _oracles(lte, subspaces, N_ORACLES)
        series = {"sessions_per_sec": [], "p50_ms": [], "p99_ms": []}
        for n_workers in WORKER_COUNTS:
            with ShardGateway(lte, n_workers=n_workers) as gateway:
                rate, p50, p99 = _drive(gateway, oracles, n_sessions,
                                        subspaces, eval_rows)
            series["sessions_per_sec"].append(rate)
            series["p50_ms"].append(p50 * 1e3)
            series["p99_ms"].append(p99 * 1e3)
        checks = _parity_and_broadcast(lte, subspaces, oracles, eval_rows)
        return series, checks

    (series, checks), = [benchmark.pedantic(run, rounds=1, iterations=1)]
    parity, survived, stable = checks
    speedup = series["sessions_per_sec"][-1] / series["sessions_per_sec"][0]
    with report():
        print_series(
            "Sharded serving ({} sessions, label->prediction)".format(
                n_sessions), "workers", list(WORKER_COUNTS),
            {"sessions/s": series["sessions_per_sec"],
             "p50_ms": series["p50_ms"], "p99_ms": series["p99_ms"]})
        print_series(
            "  scaling vs 1 worker ({} cpu cores)".format(_CORES),
            "workers", list(WORKER_COUNTS),
            {"x": [r / series["sessions_per_sec"][0]
                   for r in series["sessions_per_sec"]]})

    if BASELINE:
        with open(BASELINE, "w") as fh:
            json.dump({"scale": scale.name, "sessions": n_sessions,
                       "workers": list(WORKER_COUNTS),
                       "cpu_count": _CORES, "speedup": speedup,
                       "series": series}, fh, indent=2, sort_keys=True)

    # Sharding must never corrupt a session: bit-for-bit parity with the
    # single-process manager, and broadcasts drop nothing.
    assert parity
    assert survived and stable
    # The scaling bar (2x on >= 4 cores; sharding-tax floor otherwise —
    # see module doc; CI relaxes via REPRO_SHARD_MIN_SPEEDUP).
    assert speedup >= MIN_SPEEDUP, \
        "sessions/sec at {} workers was only {:.2f}x the 1-worker rate " \
        "(min {})".format(WORKER_COUNTS[-1], speedup, MIN_SPEEDUP)
