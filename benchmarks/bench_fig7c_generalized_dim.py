"""Figure 7(c): accuracy vs UIR dimensionality on generalized UIRs (B=30).

Paper shape: with complex (concave/disconnected) UISs combined across
4/6/8D, the NN methods stay relatively stable with dimension and dominate
SVM, whose accuracy is low throughout.
"""

import pytest

from _common import run_lte_methods, subspaces_for_dims
from bench_fig7ab_generalized_budget import mixed_mode_oracles
from repro.bench import (build_lte, eval_rows_for, mean_f1_subspace_svm,
                         print_series)

DIMS = (4, 6, 8)
BUDGET = 30


@pytest.mark.benchmark(group="fig7c")
def test_fig7c_generalized_accuracy_vs_dim(benchmark, scale, report):
    lte = build_lte("sdss", budget=BUDGET, scale=scale)
    eval_rows = eval_rows_for(lte, scale)

    def run():
        series = {name: [] for name in ("Meta*", "Meta", "Basic", "SVM")}
        for dim in DIMS:
            subspaces = subspaces_for_dims(lte, dim)
            oracles = mixed_mode_oracles(
                lte, subspaces, n_uirs=max(2, scale.n_test_uirs // 2),
                seed=7000 + dim)
            scores = run_lte_methods(lte, oracles, eval_rows, subspaces)
            scores["SVM"] = mean_f1_subspace_svm(
                lte, oracles, eval_rows, subspaces, encoded=False)
            for name in series:
                series[name].append(scores[name])
        return series

    series = benchmark.pedantic(run, rounds=1, iterations=1)
    with report():
        print_series("Figure 7(c): generalized UIRs, F1 vs |Du| "
                     "(SDSS, B=30)", "|Du|",
                     ["{}D".format(d) for d in DIMS], series)

    assert all(0.0 <= v <= 1.0 for vs in series.values() for v in vs)
    # Meta* dominates plain SVM at every dimension.
    assert all(m >= s - 0.02
               for m, s in zip(series["Meta*"], series["SVM"]))
