"""Geometry kernel throughput: packed halfspace engine vs per-hull loop.

The Meta* online budget is spent in geometric refinement — membership of
(points x hulls) in unions of convex hulls.  This bench builds UIS-style
hull sets (each hull circumscribes the ``psi`` nearest of ``ku`` random
cluster centers, exactly the Section V-C construction) and times two
implementations of the same two queries:

* **union membership** (``UnionRegion.contains``): the historical
  short-circuit loop over ``Hull.contains`` vs the packed engine;
* **membership matrix** (``refine_batch``'s shape: every hull's mask):
  a per-hull loop vs :meth:`PackedHulls.membership`.

Masks must agree bit for bit at every size; the packed path must beat
the loop by ``REPRO_GEO_MIN_SPEEDUP`` (default 5x) on union membership
at the largest size — 10k points x 64 hulls at the quick scale.

Set ``REPRO_GEO_BASELINE=/path/to.json`` to record the series (see
``benchmarks/BENCH_geometry.json`` for the committed baseline).
"""

import json
import os
import time

import numpy as np
import pytest

from repro.bench import print_series
from repro.geometry import Hull, PackedHulls

N_POINTS = 10_000
PSI = 12
KU = 400
#: (dim, n_hulls) grid; the largest size carries the acceptance bar.
QUICK_SIZES = ((2, 8), (2, 64), (4, 8), (4, 64))
FULL_SIZES = QUICK_SIZES + ((4, 256), (6, 64))
# The acceptance bar is 5x on dedicated hardware; shared CI runners set
# REPRO_GEO_MIN_SPEEDUP lower so timing noise cannot block merges.
MIN_SPEEDUP = float(os.environ.get("REPRO_GEO_MIN_SPEEDUP", "5.0"))
BASELINE = os.environ.get("REPRO_GEO_BASELINE")


def build_workload(dim, n_hulls, seed=0):
    """UIS-style hulls + a query set straddling the unit cube."""
    rng = np.random.default_rng(seed)
    centers = rng.uniform(size=(KU, dim))
    hulls = []
    for _ in range(n_hulls):
        anchor = centers[int(rng.integers(KU))]
        order = np.argsort(np.linalg.norm(centers - anchor, axis=1))
        hulls.append(Hull(centers[order[:PSI]]))
    points = rng.uniform(-0.1, 1.1, size=(N_POINTS, dim))
    return hulls, points


def loop_union_contains(hulls, points):
    """The pre-engine ``UnionRegion.contains`` short-circuit loop."""
    mask = np.zeros(len(points), dtype=bool)
    for hull in hulls:
        remaining = ~mask
        if not remaining.any():
            break
        mask[remaining] = hull.contains(points[remaining])
    return mask


def loop_membership(hulls, points):
    """Per-hull membership-matrix loop (the refine_batch shape)."""
    return np.column_stack([hull.contains(points) for hull in hulls])


def _best_of(fn, repeats=3):
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


@pytest.mark.geometry
@pytest.mark.benchmark(group="geometry")
def test_geometry_kernel_speedup(benchmark, scale, report):
    sizes = QUICK_SIZES if scale.name == "quick" else FULL_SIZES

    def run():
        series = {"union_loop_ms": [], "union_packed_ms": [],
                  "union_speedup": [], "matrix_loop_ms": [],
                  "matrix_packed_ms": [], "matrix_speedup": [],
                  "facets": []}
        parity = True
        for dim, n_hulls in sizes:
            hulls, points = build_workload(dim, n_hulls)
            pack = PackedHulls(hulls)
            series["facets"].append(pack.n_facets)
            loop_s, loop_mask = _best_of(
                lambda: loop_union_contains(hulls, points))
            pack_s, pack_mask = _best_of(
                lambda: pack.contains_any(points))
            parity &= np.array_equal(loop_mask, pack_mask)
            series["union_loop_ms"].append(loop_s * 1e3)
            series["union_packed_ms"].append(pack_s * 1e3)
            series["union_speedup"].append(loop_s / pack_s)
            mloop_s, mloop = _best_of(
                lambda: loop_membership(hulls, points))
            mpack_s, mpack = _best_of(lambda: pack.membership(points))
            parity &= np.array_equal(mloop, mpack)
            series["matrix_loop_ms"].append(mloop_s * 1e3)
            series["matrix_packed_ms"].append(mpack_s * 1e3)
            series["matrix_speedup"].append(mloop_s / mpack_s)
        return series, parity

    (series, parity), = [benchmark.pedantic(run, rounds=1, iterations=1)]
    labels = ["{}d x {}h".format(d, h) for d, h in sizes]
    with report():
        print_series(
            "Geometry kernel ({} points): union membership ms"
            .format(N_POINTS), "size", labels,
            {"loop": series["union_loop_ms"],
             "packed": series["union_packed_ms"],
             "speedup": series["union_speedup"]})
        print_series(
            "  membership matrix (refine_batch shape) ms", "size", labels,
            {"loop": series["matrix_loop_ms"],
             "packed": series["matrix_packed_ms"],
             "speedup": series["matrix_speedup"]})

    if BASELINE:
        with open(BASELINE, "w") as fh:
            json.dump({"n_points": N_POINTS, "psi": PSI, "ku": KU,
                       "sizes": [list(s) for s in sizes],
                       "series": series}, fh, indent=2, sort_keys=True)

    # The engine's contract: exact masks, never "close enough".
    assert parity
    # Acceptance bar: packed >= MIN_SPEEDUP x loop on union membership
    # at the largest size (10k x 64 hulls at quick scale).
    assert series["union_speedup"][-1] >= MIN_SPEEDUP, \
        "packed union membership at {} was only {:.2f}x the loop " \
        "(min {})".format(labels[-1], series["union_speedup"][-1],
                          MIN_SPEEDUP)
    # The packed path must never lose to the loop at any measured size.
    assert min(series["union_speedup"]) >= 1.0, \
        "packed path slower than the loop at size {}".format(
            labels[int(np.argmin(series["union_speedup"]))])
