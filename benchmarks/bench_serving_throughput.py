"""Serving throughput: concurrent sessions/sec, batched vs sequential.

The repo's first scale benchmark.  A fleet of K simulated users opens
exploration sessions against one shared pretrained LTE; each labels its
initial tuples per subspace and retrieves predictions over a shared
evaluation sample.  The sequential baseline drives each session through
``run_lte_exploration``; the serving path queues every session on a
:class:`~repro.serve.SessionManager` and adapts them all in fused batches
(``run_concurrent_explorations``).

Expected shape: sequential sessions/sec is flat in K (each session pays
the full Python/autograd overhead), while batched sessions/sec *grows*
with K as the per-step overhead amortizes across the stacked tasks —
crossing 3x at 32 concurrent sessions.

The config is smoke-sized (small embeddings, few meta-tasks) so the whole
bench runs in well under 30 seconds at the quick scale; K=128 is added at
medium/paper scales.

Warm starts: set ``REPRO_PERSIST_WARMSTART=/path/to/checkpoint`` to skip
the offline pretraining cost on repeat runs — the first run saves the
pretrained meta-learners there (:func:`repro.persist.save_pretrained`)
and every later run restores them into freshly prepared offline
artifacts (:func:`repro.persist.load_pretrained`).  The CI persist lane
exercises exactly this save -> kill -> restore path.
"""

import os
import time

import numpy as np
import pytest

from repro.bench import print_series, subspace_region
from repro.core import LTE, LTEConfig
from repro.core.meta_training import MetaHyperParams
from repro.core.uis import UISMode
from repro.data import make_sdss
from repro.data.subspaces import random_decomposition
from repro.explore import (ConjunctiveOracle, run_concurrent_explorations,
                           run_lte_exploration)
from repro.persist import CheckpointError, load_pretrained, save_pretrained

SESSION_COUNTS = (1, 8, 32)
VARIANT = "meta_star"
# The acceptance bar is 3x on dedicated hardware; shared CI runners set
# REPRO_MIN_SPEEDUP lower so timing noise cannot block unrelated merges.
MIN_SPEEDUP = float(os.environ.get("REPRO_MIN_SPEEDUP", "3.0"))
# Optional checkpoint directory for warm-started runs (see module doc).
WARMSTART = os.environ.get("REPRO_PERSIST_WARMSTART")


def _build_serving_lte():
    """Smoke-sized system: the serving regime is many sessions over a
    small per-subspace learner, so modest embeddings are the realistic
    (and fast) configuration.  With ``REPRO_PERSIST_WARMSTART`` set, the
    meta-learners come from (or are saved to) a checkpoint."""
    table = make_sdss(n_rows=6000, seed=7)
    config = LTEConfig(budget=30, ku=40, kq=60, n_tasks=10,
                       embed_size=32, hidden_size=32, n_components=4,
                       meta=MetaHyperParams(epochs=1, local_steps=3,
                                            pretrain_epochs=1),
                       online_steps=30)
    lte = LTE(config)
    subspaces = random_decomposition(table, dim=config.subspace_dim,
                                     seed=config.seed)[:2]
    if WARMSTART and os.path.isfile(os.path.join(WARMSTART,
                                                 "manifest.json")):
        lte.fit_offline(table, subspaces=subspaces, train=False)
        try:
            load_pretrained(WARMSTART, lte)
            return lte, subspaces
        except CheckpointError as error:
            # A corrupt or mismatched checkpoint must not brick the
            # bench: fall back to a cold start and overwrite it.
            print("warm start failed ({}); pretraining cold".format(error))
            lte = LTE(config)
    lte.fit_offline(table, subspaces=subspaces)
    if WARMSTART:
        save_pretrained(WARMSTART, lte,
                        meta={"source": "bench_serving_throughput"})
    return lte, subspaces


def _oracles(lte, subspaces, count):
    return [
        ConjunctiveOracle({
            s: subspace_region(lte.states[s], UISMode(1, 30),
                               seed=100 + 7 * k + i)
            for i, s in enumerate(subspaces)})
        for k in range(count)
    ]


@pytest.mark.smoke
@pytest.mark.benchmark(group="serving")
def test_serving_throughput(benchmark, scale, report):
    session_counts = SESSION_COUNTS if scale.name == "quick" \
        else SESSION_COUNTS + (128,)

    def run():
        lte, subspaces = _build_serving_lte()
        eval_rows = lte.table.sample_rows(400, seed=1)
        series = {"sequential": [], "batched": [], "speedup": []}
        parity = True
        for count in session_counts:
            oracles = _oracles(lte, subspaces, count)
            # Best-of-N wall clock on both sides: a single pass is at the
            # mercy of turbo/cache warm-up noise at these durations.
            repeats = 3 if count >= 32 else 2
            seq_seconds, bat_seconds = float("inf"), float("inf")
            for _ in range(repeats):
                start = time.perf_counter()
                sequential = [run_lte_exploration(lte, oracle, eval_rows,
                                                  variant=VARIANT,
                                                  subspaces=subspaces)
                              for oracle in oracles]
                seq_seconds = min(seq_seconds,
                                  time.perf_counter() - start)
                start = time.perf_counter()
                batched = run_concurrent_explorations(
                    lte, oracles, eval_rows, variant=VARIANT,
                    subspaces=subspaces)
                bat_seconds = min(bat_seconds,
                                  time.perf_counter() - start)
                parity &= all(
                    np.array_equal(s.predictions, b.predictions)
                    for s, b in zip(sequential, batched))
            series["sequential"].append(count / seq_seconds)
            series["batched"].append(count / bat_seconds)
            series["speedup"].append(seq_seconds / bat_seconds)
        return series, parity

    (series, parity), = [benchmark.pedantic(run, rounds=1, iterations=1)]
    with report():
        print_series(
            "Serving throughput ({}): sessions/sec vs concurrency"
            .format(VARIANT), "K", list(session_counts),
            {k: series[k] for k in ("sequential", "batched")})
        print_series("  speedup (sequential time / batched time)", "K",
                     list(session_counts), {"x": series["speedup"]})

    # Batched serving must never corrupt a session: exact parity.
    assert parity
    # The acceptance bar: >= 3x sessions/sec at 32 concurrent sessions
    # (relaxed via REPRO_MIN_SPEEDUP on noisy shared runners).
    at_32 = session_counts.index(32)
    assert series["speedup"][at_32] >= MIN_SPEEDUP, \
        "batched serving speedup at K=32 was only {:.2f}x (min {})".format(
            series["speedup"][at_32], MIN_SPEEDUP)
    # Batched throughput grows with concurrency; sequential stays flat.
    assert series["batched"][at_32] > series["batched"][0]
