"""Extension bench: factorized vs non-factorized DSM vs Meta*.

Not a paper figure.  The paper's DSM baseline labels full-space tuples; its
published system factorizes per subspace when given per-subspace feedback.
This bench puts the three on equal *per-subspace* budgets to show that
(1) factorization rescues DSM's dimensional scaling on its convex home
turf, and (2) the meta-learner remains competitive while making no
convexity assumption at all.
"""

import numpy as np
import pytest

from _common import subspaces_for_dims
from repro.baselines import FactorizedDSMExplorer
from repro.bench import build_lte, convex_oracles, eval_rows_for, print_series
from repro.explore.metrics import f1_score

DIMS = (2, 4, 8)
BUDGET = 30


def dsmf_f1(lte, oracles, eval_rows, subspaces, seed=0):
    scores = []
    for i, oracle in enumerate(oracles):
        explorer = FactorizedDSMExplorer(
            {s: lte.states[s] for s in subspaces}, seed=seed + i)
        session = lte.start_session(variant="basic", subspaces=subspaces,
                                    seed=seed + i)
        for subspace, tuples in session.initial_tuples().items():
            labels = oracle.label_subspace(subspace, tuples)
            explorer.fit_subspace(subspace, tuples, labels)
        scores.append(f1_score(oracle.ground_truth(eval_rows),
                               explorer.predict(eval_rows)))
    return float(np.mean(scores))


@pytest.mark.benchmark(group="dsmf")
def test_dsmf_vs_meta(benchmark, scale, report):
    lte = build_lte("sdss", budget=BUDGET, scale=scale)
    eval_rows = eval_rows_for(lte, scale)

    def run():
        from _common import run_fullspace_baselines, run_lte_methods
        series = {name: [] for name in ("Meta*", "DSM-F", "DSM")}
        for dim in DIMS:
            subspaces = subspaces_for_dims(lte, dim)
            oracles = convex_oracles(lte, subspaces,
                                     n_uirs=scale.n_test_uirs,
                                     seed=9000 + dim)
            series["Meta*"].append(run_lte_methods(
                lte, oracles, eval_rows, subspaces,
                variants=("meta_star",))["Meta*"])
            series["DSM-F"].append(dsmf_f1(lte, oracles, eval_rows,
                                           subspaces))
            series["DSM"].append(run_fullspace_baselines(
                lte, oracles, eval_rows, subspaces, budget=BUDGET,
                pool_size=scale.pool_size, kinds=("dsm",))["DSM"])
        return series

    series = benchmark.pedantic(run, rounds=1, iterations=1)
    with report():
        print_series("Extension: factorized DSM vs Meta* (SDSS, B=30 "
                     "per subspace)", "|Du|",
                     ["{}D".format(d) for d in DIMS], series)

    # Factorization rescues DSM's dimensional scaling on convex truth...
    assert series["DSM-F"][-1] > series["DSM"][-1]
    # ...and Meta* stays competitive without the convexity assumption.
    assert series["Meta*"][-1] > series["DSM-F"][-1] - 0.25
