"""Streaming-ingest freshness: label-to-fresh-prediction latency and
incremental vs full rescan speedup over an appendable chunk store.

The serving-side promise of ``append_blocks``: sessions that already
answered at store version N re-scan only the chunks their freshness
watermark has not covered — the closed prefix is served from the
per-session mark, bit-identically to a full rescan.  This bench drives
the real loop: an on-disk CAR store grows through several appends while
a pool of adapted Meta* sessions keeps predicting over it.

Measured per append:

* **label-to-fresh** — wall time from ``append_blocks`` returning to
  fresh predictions for every live session (the freshness SLA of the
  ingest path);
* **incremental vs full** — the watermarked ``predict_many_store``
  against the same call with the marks dropped (a restored manager's
  cold rescan), both on a cold prediction cache;
* **accounting** — ``SessionManager.last_store_scan`` must show at most
  ``sessions x new_chunks`` chunk evaluations on the incremental path.

The run ends with a drift-swap smoke: an out-of-range append trips the
:class:`~repro.store.FreshnessMonitor`, the flagged subspace is
refreshed + re-pretrained, and the live sessions' predictions still
match a full rescan bit for bit.

The incremental path must beat the full rescan by
``REPRO_INGEST_MIN_SPEEDUP`` (default 2.5x) on the last (largest)
append; set ``REPRO_INGEST_BASELINE=/path/to.json`` to record the
series (``benchmarks/BENCH_ingest.json`` holds the committed baseline).
"""

import copy
import json
import os
import time

import numpy as np
import pytest

from repro.bench import print_series
from repro.bench.workloads import convex_oracles
from repro.core import LTE, LTEConfig
from repro.core.memory import LRUStore
from repro.core.meta_training import MetaHyperParams
from repro.data import build_dataset_store, make_car
from repro.serve import SessionManager
from repro.serve.cache import PredictionCache

CHUNK_ROWS = 16_384
N_SESSIONS = 4
N_APPENDS = 3
#: (base rows, rows per append)
QUICK_SIZE = (150_000, 25_000)
FULL_SIZE = (600_000, 100_000)
# 2.5x is the acceptance bar on dedicated hardware; shared CI runners
# set REPRO_INGEST_MIN_SPEEDUP lower so timing noise cannot block
# merges.
MIN_SPEEDUP = float(os.environ.get("REPRO_INGEST_MIN_SPEEDUP", "2.5"))
BASELINE = os.environ.get("REPRO_INGEST_BASELINE")


def build_system(n_rows, directory):
    store = build_dataset_store("car", n_rows, seed=7,
                                chunk_rows=CHUNK_ROWS, directory=directory)
    lte = LTE(LTEConfig(budget=20, ku=20, kq=25, n_tasks=5,
                        meta=MetaHyperParams(epochs=1, local_steps=2,
                                             batch_size=3,
                                             pretrain_epochs=1),
                        basic_steps=10, online_steps=3,
                        store_sample_rows=2000))
    lte.fit_offline(store, subspaces=None)
    return store, lte


def cold_caches(manager):
    """Drop the digest-keyed prediction/encode caches (restored-manager
    conditions), leaving the sessions' adapted models untouched."""
    manager.cache = PredictionCache(manager.cache.capacity)
    manager._encoded_rows = LRUStore(32)


def _best_of(fn, repeats=2):
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


@pytest.mark.ingest
@pytest.mark.benchmark(group="ingest")
def test_ingest_freshness(benchmark, scale, report, tmp_path):
    base_rows, append_rows = QUICK_SIZE if scale.name == "quick" \
        else FULL_SIZE

    def run():
        store, lte = build_system(base_rows, str(tmp_path / "car"))
        subspaces = list(lte.states)[:2]
        oracles = convex_oracles(lte, subspaces, N_SESSIONS,
                                 psi_choices=(12, 10), seed=5)
        manager = SessionManager(lte)
        sids = []
        for oracle in oracles:
            sid = manager.open_session(variant="meta_star",
                                       subspaces=subspaces)
            for subspace, tuples in manager.initial_tuples(sid).items():
                manager.submit_labels(
                    sid, subspace, oracle.label_subspace(subspace, tuples))
            sids.append(sid)
        manager.flush()
        manager.predict_many_store(sids, store)    # set the watermarks

        series = {"rows": [], "label_to_fresh_ms": [], "incremental_ms": [],
                  "full_ms": [], "speedup": [], "new_chunks": [],
                  "chunk_evals": [], "chunk_evals_possible": []}
        parity = True
        accounted = True
        for b in range(N_APPENDS):
            fresh_rows = make_car(append_rows, seed=100 + b).data
            closed_before = store.closed_chunks
            marks = copy.deepcopy(manager._store_marks)

            start = time.perf_counter()
            store.append_blocks([fresh_rows])
            incremental = manager.predict_many_store(sids, store)
            label_to_fresh = time.perf_counter() - start

            scan = dict(manager.last_store_scan)
            new_chunks = store.n_chunks - closed_before
            # The freshness contract: the incremental path evaluates at
            # most the chunks past each session's watermark.
            accounted &= scan["chunk_evals"] <= len(sids) * new_chunks

            def incremental_run():
                cold_caches(manager)
                manager._store_marks = copy.deepcopy(marks)
                return manager.predict_many_store(sids, store)

            def full_run():
                cold_caches(manager)
                manager._store_marks = {}
                return manager.predict_many_store(sids, store)

            incr_s, incr_result = _best_of(incremental_run)
            full_s, full_result = _best_of(full_run)
            for sid in sids:
                parity &= np.array_equal(incr_result[sid], full_result[sid])
                parity &= np.array_equal(incremental[sid], full_result[sid])
            series["rows"].append(store.n_rows)
            series["label_to_fresh_ms"].append(label_to_fresh * 1e3)
            series["incremental_ms"].append(incr_s * 1e3)
            series["full_ms"].append(full_s * 1e3)
            series["speedup"].append(full_s / incr_s)
            series["new_chunks"].append(new_chunks)
            series["chunk_evals"].append(scan["chunk_evals"])
            series["chunk_evals_possible"].append(
                scan["chunk_evals_possible"])

        # Drift-swap smoke: an out-of-range append trips the monitor,
        # the flagged subspace is refreshed + re-pretrained, and live
        # sessions keep serving full-rescan-identical predictions.
        monitor = lte.freshness_monitor(threshold=0.2)
        monitor.observe(store)
        target = subspaces[0]
        drifting = make_car(append_rows, seed=999).data
        cols = list(target.columns)
        drifting[:, cols] = drifting[:, cols] * 4.0 + 100.0
        start = time.perf_counter()
        store.append_blocks([drifting])
        monitor.observe(store)
        drifted = monitor.drifted()
        lte.refresh_drifted(store, monitor, train=True)
        swap_s = time.perf_counter() - start
        post = manager.predict_many_store(sids, store)
        cold_caches(manager)
        manager._store_marks = {}
        full_post = manager.predict_many_store(sids, store)
        drift_ok = drifted == [target] and monitor.drifted() == [] and \
            all(np.array_equal(post[sid], full_post[sid]) for sid in sids)
        series["drift_swap_ms"] = swap_s * 1e3
        return series, parity, accounted, drift_ok

    (series, parity, accounted, drift_ok), = \
        [benchmark.pedantic(run, rounds=1, iterations=1)]
    labels = ["{}k".format(n // 1000) for n in series["rows"]]
    with report():
        print_series(
            "Streaming ingest ({} sessions, {}-row appends): ms".format(
                N_SESSIONS, append_rows), "rows", labels,
            {"label_to_fresh": series["label_to_fresh_ms"],
             "incremental": series["incremental_ms"],
             "full": series["full_ms"], "speedup": series["speedup"]})
        print_series(
            "  chunk accounting (drift swap {:.0f} ms)".format(
                series["drift_swap_ms"]), "rows", labels,
            {"new_chunks": series["new_chunks"],
             "evals": series["chunk_evals"],
             "possible": series["chunk_evals_possible"]})

    if BASELINE:
        with open(BASELINE, "w") as fh:
            json.dump({"chunk_rows": CHUNK_ROWS, "sessions": N_SESSIONS,
                       "append_rows": append_rows, "series": series},
                      fh, indent=2, sort_keys=True)

    # Bit-identical to a full rescan, always.
    assert parity
    # The incremental path scans only chunks past the watermarks.
    assert accounted
    # Drift detection fired for exactly the perturbed subspace and the
    # refresh rolled through live sessions.
    assert drift_ok
    # Acceptance bar: incremental >= MIN_SPEEDUP x full on the largest
    # store, and never slower at any append.
    assert series["speedup"][-1] >= MIN_SPEEDUP, \
        "incremental scan at {} rows was only {:.2f}x the full rescan " \
        "(min {})".format(series["rows"][-1], series["speedup"][-1],
                          MIN_SPEEDUP)
    assert min(series["speedup"]) >= 1.0
