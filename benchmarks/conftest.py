"""Benchmark-suite fixtures.

Each bench regenerates one table/figure of the paper at the scale selected
by ``REPRO_SCALE`` (quick | medium | paper; default quick).  Results print
outside pytest's capture so they land in the terminal / tee output.
"""

import pytest

from repro.bench import get_scale


@pytest.fixture(scope="session")
def scale():
    s = get_scale()
    return s


@pytest.fixture()
def report(capsys):
    """Callable that prints through pytest's capture."""
    import contextlib

    @contextlib.contextmanager
    def _report():
        with capsys.disabled():
            yield

    return _report
