"""Compiled execution backend: fused trace-and-replay vs eager reference.

``repro.nn.compile`` attacks the cost the stacked engines cannot
amortize away: when the per-program task stacks are small (fine-grained
meta-batches offline, small arrival waves online), eager autograd pays
graph construction, temporary allocation, and per-op Python dispatch on
every step.  The fused backend traces each stacked program once per
shape bucket and replays a flat instruction list over preallocated
buffers, so steady-state steps are pure ufunc work.

Two workloads, both run under ``reference`` and ``fused`` with nothing
else changed:

* **fit_offline** — 48 meta-tasks x 4 subspaces with fine-grained
  meta-batches (batch_size=1, 20 local steps): the regime where the
  offline engine's per-step overhead dominates.
* **serving waves** — 32 ``meta`` sessions served in small arrival
  waves (flush every 1/2/4 arrivals, 30 online steps): the low-latency
  serving regime, where each wave's shape bucket recurs and replay hits
  the plan cache every time.

The backends are bit-identical (asserted here on every subspace's phi
and every session's predictions; fuzzed in ``tests/nn`` ``-m compile``),
so the speedup is pure overhead elimination.  The fused backend must
beat the reference by ``REPRO_COMPILE_MIN_SPEEDUP`` (default 1.5x) on
fit_offline AND on the best serving-wave granularity — and must never
be slower anywhere.

Set ``REPRO_COMPILE_BASELINE=/path/to.json`` to record the series (see
``benchmarks/BENCH_compile.json`` for the committed baseline).
"""

import json
import os
import time

import numpy as np
import pytest

from repro.bench import print_series, subspace_region
from repro.core import LTE, LTEConfig
from repro.core.meta_training import MetaHyperParams
from repro.core.uis import UISMode
from repro.data import make_sdss
from repro.data.subspaces import random_decomposition
from repro.explore import ConjunctiveOracle
from repro.nn.compile import backend_scope
from repro.serve import SessionManager

BACKENDS = ("reference", "fused")
N_SESSIONS = 32
QUICK_WAVE_SIZES = (1, 2, 4)
FULL_WAVE_SIZES = (1, 2, 4, 8)
# 1.5x is the acceptance bar on dedicated hardware; shared CI runners
# set REPRO_COMPILE_MIN_SPEEDUP lower so timing noise cannot block
# merges.
MIN_SPEEDUP = float(os.environ.get("REPRO_COMPILE_MIN_SPEEDUP", "1.5"))
BASELINE = os.environ.get("REPRO_COMPILE_BASELINE")


def _best_of(repeats, fn):
    best_seconds, result = float("inf"), None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best_seconds = min(best_seconds, time.perf_counter() - start)
    return result, best_seconds


# -- workload 1: offline meta-training ---------------------------------

def _offline_config():
    """48 meta-tasks over the table's 4 two-D subspaces, trained with
    fine-grained meta-batches (the overhead-bound offline regime)."""
    return LTEConfig(budget=30, ku=24, kq=16, n_tasks=48,
                     embed_size=16, hidden_size=16, n_components=4,
                     meta=MetaHyperParams(epochs=3, local_steps=20,
                                          batch_size=1, pretrain_epochs=1))


def _run_fit_offline(table):
    results, seconds = {}, {}
    for backend in BACKENDS:
        with backend_scope(backend):
            lte = LTE(_offline_config())
            _, seconds[backend] = _best_of(
                2, lambda lte=lte: lte.fit_offline(table))
            results[backend] = lte
    # fit_offline is idempotent per LTE, so best-of-2 re-fits the same
    # instance; parity is asserted on the final phi of every subspace.
    n_subspaces = len(results["reference"].states)
    parity = all(
        np.array_equal(
            results["reference"].states[s].trainer.model.flat_parameters(),
            results["fused"].states[s].trainer.model.flat_parameters())
        for s in results["reference"].states)
    return {"n_subspaces": n_subspaces, "parity": parity,
            "reference_s": seconds["reference"],
            "fused_s": seconds["fused"],
            "speedup": seconds["reference"] / seconds["fused"]}


# -- workload 2: serving arrival waves ---------------------------------

def _serving_lte(table):
    config = LTEConfig(budget=20, ku=24, kq=30, n_tasks=10,
                       embed_size=16, hidden_size=16, n_components=4,
                       meta=MetaHyperParams(epochs=1, local_steps=3,
                                            pretrain_epochs=1),
                       online_steps=30)
    lte = LTE(config)
    subspaces = random_decomposition(table, dim=config.subspace_dim,
                                     seed=config.seed)[:2]
    lte.fit_offline(table, subspaces=subspaces)
    return lte, subspaces


def _serve_waves(lte, subspaces, oracles, eval_rows, wave_size):
    """Serve N_SESSIONS ``meta`` sessions in arrival waves: every
    ``wave_size`` arrivals, flush the queued adaptations as one batch
    and return predictions for the new sessions."""
    manager = SessionManager(lte)
    predictions = []
    for lo in range(0, N_SESSIONS, wave_size):
        sids = [manager.open_session(variant="meta", subspaces=subspaces)
                for _ in range(wave_size)]
        for oracle, sid in zip(oracles[lo:lo + wave_size], sids):
            for subspace, tuples in manager.initial_tuples(sid).items():
                manager.submit_labels(
                    sid, subspace, oracle.label_subspace(subspace, tuples))
        manager.flush()
        wave_preds = manager.predict_many(sids, eval_rows)
        predictions.extend(np.asarray(wave_preds[sid]) for sid in sids)
        for sid in sids:
            manager.close_session(sid)
    return predictions


def _run_serving_waves(table, wave_sizes):
    lte, subspaces = _serving_lte(table)
    eval_rows = lte.table.sample_rows(300, seed=1)
    oracles = [
        ConjunctiveOracle({
            s: subspace_region(lte.states[s], UISMode(1, 16),
                               seed=100 + 7 * k + i)
            for i, s in enumerate(subspaces)})
        for k in range(N_SESSIONS)]
    series = {"reference_s": [], "fused_s": [], "speedup": []}
    parity = True
    for wave_size in wave_sizes:
        preds, seconds = {}, {}
        for backend in BACKENDS:
            with backend_scope(backend):
                preds[backend], seconds[backend] = _best_of(
                    3, lambda ws=wave_size: _serve_waves(
                        lte, subspaces, oracles, eval_rows, ws))
        parity &= all(np.array_equal(a, b) for a, b in
                      zip(preds["reference"], preds["fused"]))
        series["reference_s"].append(seconds["reference"])
        series["fused_s"].append(seconds["fused"])
        series["speedup"].append(seconds["reference"] / seconds["fused"])
    return series, parity


@pytest.mark.compile
@pytest.mark.benchmark(group="compile")
def test_compile_backend_speedup(benchmark, scale, report):
    wave_sizes = QUICK_WAVE_SIZES if scale.name == "quick" \
        else FULL_WAVE_SIZES

    def run():
        table = make_sdss(n_rows=4000, seed=7)
        offline = _run_fit_offline(table)
        waves, wave_parity = _run_serving_waves(table, wave_sizes)
        return offline, waves, wave_parity

    (offline, waves, wave_parity) = benchmark.pedantic(run, rounds=1,
                                                       iterations=1)
    with report():
        print_series(
            "fit_offline wall-clock, 48 tasks x {} subspaces (seconds)"
            .format(offline["n_subspaces"]), "backend",
            ["reference", "fused"],
            {"seconds": [offline["reference_s"], offline["fused_s"]],
             "speedup": [1.0, offline["speedup"]]})
        print_series(
            "Serving waves, {} meta sessions (seconds per full run)"
            .format(N_SESSIONS), "wave size", list(wave_sizes),
            {k: waves[k] for k in ("reference_s", "fused_s", "speedup")})

    if BASELINE:
        with open(BASELINE, "w") as fh:
            json.dump({"backend": "fused", "reference": "reference",
                       "cpu_count": os.cpu_count(),
                       "min_speedup": MIN_SPEEDUP,
                       "fit_offline": offline,
                       "serving_waves": {"wave_sizes": list(wave_sizes),
                                         "series": waves}},
                      fh, indent=2, sort_keys=True)

    # The speedup is only meaningful if nothing changed: bit parity.
    assert offline["parity"]
    assert wave_parity
    assert offline["n_subspaces"] >= 4
    # Acceptance bar: >= MIN_SPEEDUP on fit_offline at 48 tasks x 4
    # subspaces AND on the best serving-wave granularity ...
    assert offline["speedup"] >= MIN_SPEEDUP, \
        "fused fit_offline only {:.2f}x faster (min {})".format(
            offline["speedup"], MIN_SPEEDUP)
    assert max(waves["speedup"]) >= MIN_SPEEDUP, \
        "fused serving waves peaked at {:.2f}x (min {})".format(
            max(waves["speedup"]), MIN_SPEEDUP)
    # ... and the fused backend must never lose to the reference.
    assert offline["speedup"] >= 1.0
    assert min(waves["speedup"]) >= 1.0
