"""Concurrent sessions: serve many simulated users from one LTE system.

Demonstrates the serving layer (``repro.serve``):

1. offline: pretrain one shared LTE over two meta-subspaces;
2. online: 16 simulated users open sessions concurrently; every label
   submission queues up and ONE fused tensor program adapts all of them
   (``SessionManager.flush``) — the batched path is bit-identical to
   adapting each session sequentially, just several times faster;
3. each user polls, retrieves their interesting tuples (cached,
   stacked prediction) and keeps exploring with extra labels.

Run:  python examples/concurrent_sessions.py
"""

import time

import numpy as np

from repro.bench import subspace_region
from repro.core import LTE, LTEConfig, UISMode
from repro.core.meta_training import MetaHyperParams
from repro.data import make_sdss
from repro.data.subspaces import random_decomposition
from repro.explore import ConjunctiveOracle, f1_score
from repro.serve import SessionManager

N_USERS = 16


def main():
    print("Building a synthetic SDSS table (10K tuples)...")
    table = make_sdss(n_rows=10_000, seed=7)

    config = LTEConfig(budget=30, ku=40, kq=60, n_tasks=40,
                       embed_size=32, hidden_size=32,
                       meta=MetaHyperParams(epochs=1, local_steps=6),
                       online_steps=30)
    lte = LTE(config)
    subspaces = random_decomposition(table, dim=config.subspace_dim,
                                     seed=config.seed)[:2]
    print("Offline phase: meta-training {} shared subspace learners..."
          .format(len(subspaces)))
    lte.fit_offline(table, subspaces=subspaces)

    # Each simulated user has their own ground-truth interest region.
    rng = np.random.default_rng(42)
    oracles = [
        ConjunctiveOracle({
            s: subspace_region(lte.states[s], UISMode(alpha=1, psi=40),
                               seed=int(rng.integers(2 ** 31)))
            for s in subspaces})
        for _ in range(N_USERS)
    ]

    manager = SessionManager(lte)
    print("\nOnline phase: {} users submit labels concurrently..."
          .format(N_USERS))
    sids = []
    for oracle in oracles:
        sid = manager.open_session(variant="meta_star", subspaces=subspaces)
        for subspace, tuples in manager.initial_tuples(sid).items():
            manager.submit_labels(
                sid, subspace, oracle.label_subspace(subspace, tuples))
        sids.append(sid)
    print("  queued adaptations: {}".format(len(manager.pending())))

    start = time.perf_counter()
    adapted = manager.flush()
    print("  ONE fused batch adapted {} (session, subspace) tasks "
          "in {:.2f}s".format(adapted, time.perf_counter() - start))

    eval_rows = table.sample_rows(2000, seed=1)
    predictions = manager.predict_many(sids, eval_rows)   # stacked forward
    f1s = [f1_score(oracle.ground_truth(eval_rows), predictions[sid])
           for sid, oracle in zip(sids, oracles)]
    print("  mean F1 across users: {:.3f}".format(float(np.mean(f1s))))

    # One user keeps exploring: extra labels queue, re-adapt, re-predict.
    sid, oracle = sids[0], oracles[0]
    subspace = subspaces[0]
    state = lte.states[subspace]
    extra = state.to_raw(state.data[:5])
    manager.add_labels(sid, subspace, extra,
                       oracle.label_subspace(subspace, extra))
    status = manager.poll(sid)          # drives the queued re-adaptation
    print("\nUser 0 added labels; model versions now {}".format(
        {str(s): v for s, v in status["versions"].items()}))
    print("Serving stats: {}".format(manager.stats))


if __name__ == "__main__":
    main()
