"""Data-parallel offline pretraining with resumable checkpoints.

The offline phase (Algorithm 2) is LTE's expensive part.  This example
runs the same ``fit_offline`` three ways —

* single-process fused (``engine="batched"``, the default),
* data-parallel over 2 forked workers (``engine="parallel"``), and
* data-parallel again, streaming the encoded meta-tasks through an
  on-disk chunk store (``stream=...``) so peak memory stays bounded by
  the chunk size instead of the task count —

and verifies the determinism contract the engine guarantees: every phi,
loss history and memory bank is **bit-identical** across all three.  It
then kills a checkpointed parallel run mid-training and resumes it
single-process, showing that epoch-granular ``pretrain-run``
checkpoints interchange freely between engines and worker counts
(they are written only at epoch reduction barriers).

Setting ``REPRO_TRAIN_WORKERS=N`` in the environment does the same
without code changes: it supplies the pool size and switches an
unspecified ``engine`` to ``"parallel"``.

Run:  python examples/parallel_pretraining.py
"""

import os
import shutil
import tempfile
import time

import numpy as np

from repro.core import LTE, LTEConfig
from repro.core.meta_training import MetaHyperParams
from repro.data import make_sdss


def config():
    return LTEConfig(budget=30, ku=32, kq=40, n_tasks=24,
                     embed_size=16, hidden_size=16, n_components=4,
                     meta=MetaHyperParams(epochs=2, local_steps=6,
                                          pretrain_epochs=1))


def fit(table, **kwargs):
    lte = LTE(config())
    start = time.perf_counter()
    lte.fit_offline(table, **kwargs)
    return lte, time.perf_counter() - start


def phi_of(lte):
    return {s: state.trainer.model.flat_parameters()
            for s, state in lte.states.items()}


def assert_same_phi(a, b, label):
    for subspace in a.states:
        assert np.array_equal(phi_of(a)[subspace], phi_of(b)[subspace]), \
            "{}: phi diverged on {}".format(label, subspace)
    print("  {:<28} -> bit-identical phi".format(label))


def main():
    table = make_sdss(n_rows=5000, seed=7)
    print("SDSS table: {} rows; {} meta-tasks per subspace".format(
        table.n_rows, config().n_tasks))

    print("\n1. The same offline run, three ways:")
    batched, t_batched = fit(table, engine="batched")
    print("  batched (1 process)          -> {:.2f}s".format(t_batched))
    parallel, t_parallel = fit(table, engine="parallel", workers=2)
    print("  parallel (2 workers)         -> {:.2f}s".format(t_parallel))
    assert_same_phi(batched, parallel, "parallel vs batched")

    stream_dir = tempfile.mkdtemp(prefix="repro-example-stream-")
    try:
        streamed, t_streamed = fit(table, engine="parallel", workers=2,
                                   stream=stream_dir)
        print("  parallel + streamed tasks    -> {:.2f}s "
              "(encoded tasks spilled under {})".format(
                  t_streamed, stream_dir))
        assert_same_phi(batched, streamed, "streamed vs batched")
    finally:
        shutil.rmtree(stream_dir, ignore_errors=True)

    print("\n2. Kill a checkpointed 2-worker run mid-training, resume "
          "single-process:")
    checkpoint = tempfile.mkdtemp(prefix="repro-example-ckpt-")
    try:
        class Killed(Exception):
            pass

        def kill_after_first_meta_epoch(subspace, stage):
            if isinstance(stage, tuple) and stage[0] == "epoch" \
                    and stage[1] == 0:
                raise Killed()

        interrupted = LTE(config())
        try:
            interrupted.fit_offline(table, engine="parallel", workers=2,
                                    checkpoint=checkpoint,
                                    progress=kill_after_first_meta_epoch)
        except Killed:
            print("  killed after the first meta epoch; checkpoint "
                  "written at the epoch barrier")

        resumed = LTE(config())
        resumed.fit_offline(table, checkpoint=checkpoint)   # batched
        assert_same_phi(batched, resumed, "resumed vs uninterrupted")
    finally:
        shutil.rmtree(checkpoint, ignore_errors=True)

    print("\n3. Or just set the environment switch:")
    os.environ["REPRO_TRAIN_WORKERS"] = "2"
    try:
        env_run, t_env = fit(table)
        print("  REPRO_TRAIN_WORKERS=2        -> {:.2f}s".format(t_env))
        assert_same_phi(batched, env_run, "env switch vs batched")
    finally:
        del os.environ["REPRO_TRAIN_WORKERS"]

    print("\nEvery path converged to the same weights, bit for bit.")


if __name__ == "__main__":
    main()
