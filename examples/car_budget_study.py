"""CAR scenario: how many labels does a bargain-hunter need?

Alice browses a used-car listing database.  She cannot write the filter
for "a deal that feels right", but she can label examples.  This example
measures the accuracy different systems squeeze out of small labelling
budgets on the CAR dataset, and demonstrates that the meta-trained
variants need visibly fewer labels to reach a target accuracy.

Run:  python examples/car_budget_study.py
"""

import numpy as np

from repro.bench import subspace_region
from repro.core import LTE, LTEConfig, UISMode
from repro.core.meta_training import MetaHyperParams
from repro.data import make_car
from repro.explore import ConjunctiveOracle, run_lte_exploration

BUDGETS = (15, 30, 60)
TARGET_F1 = 0.7


def build_system(table, budget):
    lte = LTE(LTEConfig(budget=budget, n_tasks=60,
                        meta=MetaHyperParams(epochs=1, local_steps=8)))
    lte.fit_offline(table)
    return lte


def main():
    table = make_car(n_rows=20_000, seed=9)
    print("CAR table: {} rows, attributes {}".format(
        table.n_rows, ", ".join(table.attribute_names)))

    results = {variant: [] for variant in ("basic", "meta", "meta_star")}
    for budget in BUDGETS:
        print("\nTraining offline for budget B={} per subspace...".format(
            budget))
        lte = build_system(table, budget)
        subspaces = list(lte.states)[:2]

        # Alice's taste: one convex region per subspace (e.g. "newish,
        # moderate mileage" x "mid power, mid displacement").
        rng = np.random.default_rng(1234)
        regions = {
            subspace: subspace_region(lte.states[subspace],
                                      UISMode(alpha=1, psi=35),
                                      seed=int(rng.integers(2 ** 31)))
            for subspace in subspaces
        }
        oracle = ConjunctiveOracle(regions)
        eval_rows = table.sample_rows(5000, seed=2)

        for variant in results:
            result = run_lte_exploration(lte, oracle, eval_rows,
                                         variant=variant,
                                         subspaces=subspaces)
            results[variant].append(result.f1)

    print("\nF1 by per-subspace label budget:")
    print("{:<10s} ".format("B") + "".join(
        "{:>9d}".format(b) for b in BUDGETS))
    for variant, scores in results.items():
        print("{:<10s} ".format(variant) + "".join(
            "{:>9.3f}".format(s) for s in scores))

    for variant, scores in results.items():
        reached = next((b for b, s in zip(BUDGETS, scores)
                        if s >= TARGET_F1), None)
        if reached is None:
            print("{}: never reaches F1 {} within the sweep".format(
                variant, TARGET_F1))
        else:
            print("{}: reaches F1 {} with B={}".format(
                variant, TARGET_F1, reached))


if __name__ == "__main__":
    main()
