"""The complete IDE loop: explore, converge, retrieve, synthesize SQL.

Demonstrates the "Other IDE Modules" of the paper's Section III-B around
the LTE core: after the few-shot exploration, the session reports a
convergence estimate, returns the interesting tuples (final retrieval),
and extracts a human-readable SQL filter approximating the learned
user-interest region (query synthesis).

Run:  python examples/full_ide_loop.py
"""

import numpy as np

from repro.bench import subspace_region
from repro.core import LTE, LTEConfig, UISMode
from repro.core.meta_training import MetaHyperParams
from repro.data import make_car
from repro.explore import ConjunctiveOracle, f1_score, synthesize_query


def main():
    table = make_car(n_rows=15_000, seed=3)
    lte = LTE(LTEConfig(budget=30, n_tasks=60,
                        meta=MetaHyperParams(epochs=1, local_steps=8)))
    print("Offline meta-training on the CAR table...")
    lte.fit_offline(table)

    subspace = list(lte.states)[0]
    region = subspace_region(lte.states[subspace], UISMode(alpha=1, psi=30),
                             seed=5)
    oracle = ConjunctiveOracle({subspace: region})

    # --- Explore -------------------------------------------------------
    session = lte.start_session(variant="meta_star", subspaces=[subspace])
    tuples = session.initial_tuples()[subspace]
    session.submit_labels(subspace, oracle.label_subspace(subspace, tuples))
    print("explored with {} labels".format(oracle.labels_given))

    # --- Converge? -----------------------------------------------------
    estimate = session.convergence_estimate(subspace, sample_rows=500)
    print("convergence estimate (three-set-style resolved fraction): "
          "{:.2f}".format(estimate))

    # --- Final retrieval ------------------------------------------------
    rows = table.sample_rows(5000, seed=1)
    interesting = session.retrieve(rows, limit=5)
    truth = oracle.ground_truth(rows)
    preds = session.predict(rows)
    print("F1 against the hidden ground truth: {:.3f}".format(
        f1_score(truth, preds)))
    print("sample of retrieved interesting tuples "
          "({}):".format(", ".join(table.attribute_names)))
    for row in interesting:
        print("  " + "  ".join("{:>10.1f}".format(v) for v in row))

    # --- Query synthesis -------------------------------------------------
    query = synthesize_query(session, sample_rows=3000, max_depth=6)
    print("\nsynthesized SQL filter (fidelity {:.2f} vs the session's own "
          "predictions):".format(query.fidelity))
    sql = query.to_sql(table_name="cars")
    print(sql if len(sql) < 1200 else sql[:1200] + " ...")
    agreement = float(np.mean(query.predicate(rows) == preds))
    print("\nfilter vs session agreement on fresh rows: {:.3f}".format(
        agreement))


if __name__ == "__main__":
    main()
