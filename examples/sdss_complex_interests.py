"""SDSS scenario: exploring concave and disconnected interest regions.

The paper's motivating example: Bob is an astronomer whose interest over
photometric attributes is too complex for SQL filters — here his interest
region is a *union of several convex parts* per subspace (concave and even
disconnected), exactly the generality that separates LTE from convexity-
bound systems like DSM.  We compare LTE's variants against a per-subspace
SVM fed the same labelled tuples (the paper's Section VIII-C protocol).

Run:  python examples/sdss_complex_interests.py
"""

import numpy as np

from repro.baselines import SubspaceSVMExplorer
from repro.bench import subspace_region
from repro.core import LTE, LTEConfig
from repro.core.meta_training import MetaHyperParams
from repro.core.uis import PAPER_MODES
from repro.data import make_sdss
from repro.explore import ConjunctiveOracle, f1_score, run_lte_exploration


def build_oracle(lte, subspaces, mode, seed):
    rng = np.random.default_rng(seed)
    regions = {
        subspace: subspace_region(lte.states[subspace], mode,
                                  seed=int(rng.integers(2 ** 31)))
        for subspace in subspaces
    }
    return ConjunctiveOracle(regions)


def run_svm_competitor(lte, oracle, subspaces, eval_rows, encoded):
    explorer = SubspaceSVMExplorer(
        {s: lte.states[s] for s in subspaces}, encoded=encoded, seed=0)
    session = lte.start_session(variant="basic", subspaces=subspaces)
    for subspace, tuples in session.initial_tuples().items():
        labels = oracle.label_subspace(subspace, tuples)
        explorer.fit_subspace(subspace, tuples, labels)
    return f1_score(oracle.ground_truth(eval_rows),
                    explorer.predict(eval_rows))


def main():
    table = make_sdss(n_rows=20_000, seed=7)
    lte = LTE(LTEConfig(budget=30, n_tasks=80,
                        meta=MetaHyperParams(epochs=1, local_steps=8)))
    print("Offline meta-training ({} tuples)...".format(table.n_rows))
    lte.fit_offline(table)

    subspaces = list(lte.states)[:2]
    eval_rows = table.sample_rows(5000, seed=3)

    print("\nBob's interests, from mildly to severely complex "
          "(modes of Table III):")
    header = "{:<6s} {:>9s} {:>8s} {:>8s} {:>8s} {:>8s}".format(
        "mode", "Meta*", "Meta", "Basic", "SVMr", "SVM")
    print(header)
    for mode_name in ("M5", "M7", "M1", "M3"):   # alpha = 1, 3, 4, 4
        mode = PAPER_MODES[mode_name]
        scores = {label: [] for label in ("Meta*", "Meta", "Basic",
                                          "SVMr", "SVM")}
        for trial in range(3):  # average a few region draws per mode
            oracle = build_oracle(lte, subspaces, mode,
                                  seed=hash(mode_name) % 99 + trial)
            for variant, label in (("meta_star", "Meta*"),
                                   ("meta", "Meta"), ("basic", "Basic")):
                result = run_lte_exploration(lte, oracle, eval_rows,
                                             variant=variant,
                                             subspaces=subspaces)
                scores[label].append(result.f1)
            scores["SVMr"].append(run_svm_competitor(
                lte, oracle, subspaces, eval_rows, encoded=True))
            scores["SVM"].append(run_svm_competitor(
                lte, oracle, subspaces, eval_rows, encoded=False))
        means = {label: float(np.mean(vals))
                 for label, vals in scores.items()}
        print("{:<6s} {:>9.3f} {:>8.3f} {:>8.3f} {:>8.3f} {:>8.3f}".format(
            mode_name, means["Meta*"], means["Meta"], means["Basic"],
            means["SVMr"], means["SVM"]))
    print("\n(alpha, psi) per mode: M5=(1,20) M7=(3,20) M1=(4,20) M3=(4,10)")
    print("Half the regions are concave or disconnected; SVM cannot "
          "represent them while\nthe NN classifier with meta-knowledge "
          "degrades gracefully.")


if __name__ == "__main__":
    main()
