"""Sharded serving: scale sessions across a pool of worker processes.

Demonstrates the sharding tier (``repro.shard``):

1. offline: pretrain one shared LTE over two meta-subspaces;
2. a :class:`~repro.shard.ShardGateway` forks worker processes, each
   holding an LTE replica warm-started from a shared ``repro.persist``
   checkpoint behind its own ``SessionManager``;
3. simulated users open sessions (deterministically routed to workers),
   submit labels (admission-controlled) and ``flush_all`` runs every
   worker's fused adaptation batch concurrently;
4. a model-version broadcast rolls a re-pretrained phi through the pool
   worker by worker — live sessions keep serving throughout;
5. observability (``repro.obs``): the client stages run inside captured
   spans, ``gateway.metrics()`` merges every worker's registry into one
   fleet view, and the run ends with a per-stage latency breakdown.

Run:  python examples/sharded_serving.py
"""

import copy
import time

import numpy as np

from repro import obs
from repro.bench import subspace_region
from repro.core import LTE, LTEConfig, UISMode
from repro.core.meta_training import MetaHyperParams
from repro.data import make_sdss
from repro.data.subspaces import random_decomposition
from repro.explore import ConjunctiveOracle, f1_score
from repro.shard import Overloaded, ShardGateway

N_USERS = 16
N_WORKERS = 4


def retrain_phi(lte):
    """Stand-in for a re-pretraining run producing a new model version
    (here: the same weights nudged, so the fingerprint changes)."""
    retrained = copy.deepcopy(lte)
    for state in retrained.states.values():
        sd = state.trainer.state_dict()

        def nudge(node):
            if isinstance(node, np.ndarray) and \
                    np.issubdtype(node.dtype, np.floating):
                return node * 1.01
            if isinstance(node, dict):
                return {k: nudge(v) for k, v in node.items()}
            if isinstance(node, list):
                return [nudge(v) for v in node]
            return node

        sd["model"] = nudge(sd["model"])
        state.trainer.load_state_dict(sd)
    return retrained


def main():
    print("Building a synthetic SDSS table (10K tuples)...")
    table = make_sdss(n_rows=10_000, seed=7)

    config = LTEConfig(budget=30, ku=40, kq=60, n_tasks=40,
                       embed_size=32, hidden_size=32,
                       meta=MetaHyperParams(epochs=1, local_steps=6),
                       online_steps=30)
    lte = LTE(config)
    subspaces = random_decomposition(table, dim=config.subspace_dim,
                                     seed=config.seed)[:2]
    print("Offline phase: meta-training {} shared subspace learners..."
          .format(len(subspaces)))
    lte.fit_offline(table, subspaces=subspaces)

    rng = np.random.default_rng(42)
    oracles = [
        ConjunctiveOracle({
            s: subspace_region(lte.states[s], UISMode(alpha=1, psi=40),
                               seed=int(rng.integers(2 ** 31)))
            for s in subspaces})
        for _ in range(N_USERS)
    ]

    with ShardGateway(lte, n_workers=N_WORKERS,
                      max_pending_per_worker=64) as gateway, \
            obs.capture() as events:
        print("\nGateway up: {} workers, model version {}".format(
            gateway.n_workers, gateway.model_version))

        sids = []
        with obs.span("example.label_wave", users=N_USERS):
            for oracle in oracles:
                sid = gateway.open_session(variant="meta_star",
                                           subspaces=subspaces)
                for subspace, tuples in \
                        gateway.initial_tuples(sid).items():
                    try:
                        gateway.submit_labels(
                            sid, subspace,
                            oracle.label_subspace(subspace, tuples))
                    except Overloaded:
                        # Backpressure: drain the pool, then resubmit.
                        gateway.flush_all()
                        gateway.submit_labels(
                            sid, subspace,
                            oracle.label_subspace(subspace, tuples))
                sids.append(sid)
        print("  {} sessions routed across {} workers".format(
            len(sids), gateway.n_workers))

        start = time.perf_counter()
        with obs.span("example.flush_all"):
            adapted = gateway.flush_all()   # workers adapt in parallel
        print("  flush_all adapted {} (session, subspace) tasks "
              "in {:.2f}s".format(adapted, time.perf_counter() - start))

        eval_rows = table.sample_rows(2000, seed=1)
        with obs.span("example.predict_many", rows=len(eval_rows)):
            predictions = gateway.predict_many(sids, eval_rows)
        f1s = [f1_score(oracle.ground_truth(eval_rows), predictions[sid])
               for sid, oracle in zip(sids, oracles)]
        print("  mean F1 across users: {:.3f}".format(float(np.mean(f1s))))

        print("\nRolling model broadcast (new phi, worker by worker)...")
        with obs.span("example.model_broadcast"):
            new_version = gateway.publish_model(retrain_phi(lte))
        print("  pool now serves model {}".format(new_version))
        after = gateway.predict_many(sids, eval_rows)
        unchanged = all(np.array_equal(after[sid], predictions[sid])
                        for sid in sids)
        print("  live sessions survived the roll; adapted predictions "
              "unchanged: {}".format(unchanged))
        print("Pool stats: {}".format({
            "sessions": gateway.stats()["sessions"],
            "alive_workers": gateway.stats()["alive_workers"]}))

        # One merged registry for the whole fleet: every worker ships
        # its metric snapshot over the same pipe RPC the serving
        # traffic uses, and the fixed histogram bucket bounds make the
        # merge a deterministic element-wise add.
        fleet = gateway.metrics()

    print("\nPer-stage latency breakdown (client spans + fleet metrics):")
    print(obs.format_summary(
        obs.summarize_events(events, fleet["merged"])))


if __name__ == "__main__":
    main()
