"""Streaming ingest: grow a store under live sessions, catch drift.

Demonstrates the appendable chunk store and the freshness machinery
(``ChunkStore.append_blocks``, session watermarks,
``FreshnessMonitor``):

1. an on-disk CAR store is built and an LTE system fitted over it; a
   serving engine opens Meta* sessions that label and predict;
2. new rows are *appended* to the live store — closed chunks keep their
   bytes and digests, the manifest commit is a single atomic rename;
3. the sessions predict again: each one re-scans only the chunks past
   its freshness watermark and the merged answer is bit-identical to a
   full rescan (asserted);
4. a batch of out-of-distribution rows lands: the
   ``FreshnessMonitor`` — which reads *zone maps only*, no row data —
   flags the subspaces whose fitted scaler range was escaped;
5. ``refresh_drifted`` rebuilds those subspaces' offline artifacts and
   re-pretrains them; already-open sessions keep their adapted state
   (replace, never mutate), new sessions pick up the fresh fit;
6. observability (``repro.obs``): the whole run executes inside a span
   capture, and the end of the run prints a per-stage latency
   breakdown — client-side stage spans plus the manager's own latency
   histograms, append commit timings and cache hit ratios.

For the multi-process tier the same story runs through
``ShardGateway.refresh_model(drifted)`` — every worker catches up on
the grown store and installs the refreshed artifacts without dropping
a session (see ``examples/sharded_serving.py`` for the gateway setup).

Run:  python examples/streaming_ingest.py
"""

import os
import tempfile
import time

import numpy as np

from repro import obs
from repro.bench.workloads import convex_oracles
from repro.core import LTE, LTEConfig
from repro.core.meta_training import MetaHyperParams
from repro.data import build_dataset_store, make_car
from repro.serve import SessionManager

BASE_ROWS = 120_000
APPEND_ROWS = 20_000
CHUNK_ROWS = 8_192


def main():
    workdir = tempfile.mkdtemp(prefix="repro-streaming-")

    print("Building a {:,}-row on-disk CAR store...".format(BASE_ROWS))
    store = build_dataset_store("car", BASE_ROWS, seed=7,
                                chunk_rows=CHUNK_ROWS,
                                directory=os.path.join(workdir, "car"))
    print("  {} chunks, store version {} (digest {})".format(
        store.n_chunks, store.store_version, store.digest))

    lte = LTE(LTEConfig(budget=20, ku=20, kq=25, n_tasks=5,
                        meta=MetaHyperParams(epochs=1, local_steps=2,
                                             batch_size=3,
                                             pretrain_epochs=1),
                        basic_steps=10, online_steps=3,
                        store_sample_rows=2000))
    lte.fit_offline(store, subspaces=None)
    subspaces = list(lte.states)[:2]
    monitor = lte.freshness_monitor(threshold=0.2)
    monitor.observe(store)

    manager = SessionManager(lte)
    oracles = convex_oracles(lte, subspaces, 3, psi_choices=(12, 10),
                             seed=5)
    # Capture spans for the rest of the run: client-side stage spans
    # below plus the manager's own (serve.manager.adapt / store_scan).
    capture = obs.capture()
    events = capture.__enter__()
    sids = []
    with obs.span("example.adapt_wave", sessions=3):
        for oracle in oracles:
            sid = manager.open_session(variant="meta_star",
                                       subspaces=subspaces)
            for subspace, tuples in manager.initial_tuples(sid).items():
                manager.submit_labels(
                    sid, subspace,
                    oracle.label_subspace(subspace, tuples))
            sids.append(sid)
        manager.flush()
        manager.predict_many_store(sids, store)
    print("  {} sessions adapted and watermarked at version {}".format(
        len(sids), store.store_version))

    print("\nAppending {:,} rows to the live store...".format(APPEND_ROWS))
    start = time.perf_counter()
    with obs.span("example.append", rows=APPEND_ROWS):
        store.append_blocks([make_car(APPEND_ROWS, seed=11).data])
    with obs.span("example.fresh_predict"):
        fresh = manager.predict_many_store(sids, store)
    elapsed = time.perf_counter() - start
    scan = dict(manager.last_store_scan)
    print("  label-to-fresh-prediction in {:.0f} ms: {} of {} possible "
          "chunk evaluations ({} skipped by watermarks, {} by zone "
          "maps)".format(elapsed * 1e3, scan["chunk_evals"],
                         scan["chunk_evals_possible"],
                         scan["watermark_skipped"],
                         scan["pruned_skipped"]))

    manager._store_marks.clear()     # force the full rescan a restored
    full = manager.predict_many_store(sids, store)   # manager would run
    assert all(np.array_equal(fresh[sid], full[sid]) for sid in sids)
    print("  incremental answers are bit-identical to a full rescan")
    assert monitor.observe(store) and monitor.drifted() == []
    print("  in-distribution append: no drift flagged")

    print("\nAppending {:,} out-of-distribution rows...".format(
        APPEND_ROWS))
    drifting = make_car(APPEND_ROWS, seed=13).data
    cols = list(subspaces[0].columns)
    drifting[:, cols] = drifting[:, cols] * 4.0 + 100.0
    with obs.span("example.append", rows=APPEND_ROWS, distribution="ood"):
        store.append_blocks([drifting])
    monitor.observe(store)
    drifted = monitor.drifted()
    print("  monitor (zone maps only) flags: {}".format(
        [tuple(s.names) for s in drifted]))

    start = time.perf_counter()
    with obs.span("example.drift_refresh"):
        lte.refresh_drifted(store, monitor, train=True)
    print("  refreshed + re-pretrained in {:.1f}s; live sessions kept "
          "their adapted state".format(time.perf_counter() - start))

    post = manager.predict_many_store(sids, store)
    manager._store_marks.clear()
    again = manager.predict_many_store(sids, store)
    assert all(np.array_equal(post[sid], again[sid]) for sid in sids)
    fresh_sid = manager.open_session(variant="meta_star",
                                     subspaces=subspaces)
    for subspace, tuples in manager.initial_tuples(fresh_sid).items():
        manager.submit_labels(fresh_sid, subspace,
                              oracles[0].label_subspace(subspace, tuples))
    manager.flush()
    manager.predict_store(fresh_sid, store)
    print("  old sessions serve unchanged; new session adapted under "
          "the refreshed artifacts (store version {})".format(
              store.store_version))

    capture.__exit__(None, None, None)
    # The manager owns its registry; append/freshness metrics live in
    # the process default registry — aggregate() merges every live one.
    print("\nPer-stage latency breakdown (client spans + process "
          "metrics):")
    print(obs.format_summary(obs.summarize_events(events,
                                                  obs.aggregate())))


if __name__ == "__main__":
    main()
