"""Out-of-core exploration: a full explore session over an on-disk
2M-row table in bounded memory.

Demonstrates the chunked columnar store (``repro.store``):

1. a 2,000,000-row synthetic CAR table is *generated chunk by chunk*
   straight onto disk (``build_dataset_store``) — the full table is
   never materialized, peak memory stays O(chunk);
2. the store is re-clustered by registration year
   (``ChunkStore.cluster_by``, a single-pass streaming CLUSTER BY with
   per-band disk spills), giving every chunk a tight zone range — the
   locality zone maps need;
3. the offline phase fits on the store: scalers come off the zone maps
   (exact global bounds, no data pass) and clustering/preprocessing run
   on a bounded stratified chunk sample;
4. a Meta* session labels its initial tuples and predicts over all 2M
   rows chunk-wise — the zone-map planner skips the chunks the user's
   interest region cannot overlap, bit-identically to a dense pass;
5. ``tracemalloc`` proves the online scan allocates chunk-scale
   megabytes, not the ~1 GiB a whole-table encode would cost.

Run:  python examples/out_of_core_session.py
"""

import os
import tempfile
import time
import tracemalloc

import numpy as np

from repro.bench import subspace_region
from repro.core import LTE, LTEConfig, UISMode
from repro.core.meta_training import MetaHyperParams
from repro.data import build_dataset_store
from repro.explore import ConjunctiveOracle, f1_score
from repro.store.scan import session_chunk_keep

N_ROWS = 2_000_000
CHUNK_ROWS = 16_384


def main():
    workdir = tempfile.mkdtemp(prefix="repro-out-of-core-")

    print("Generating a {:,}-row CAR table chunk-by-chunk onto disk..."
          .format(N_ROWS))
    start = time.perf_counter()
    raw = build_dataset_store("car", N_ROWS, seed=7, chunk_rows=CHUNK_ROWS,
                              directory=os.path.join(workdir, "car-raw"))
    print("  {} chunks written in {:.1f}s (digest {})".format(
        raw.n_chunks, time.perf_counter() - start, raw.digest))

    print("Re-clustering by 'year' so zone maps get pruning leverage...")
    start = time.perf_counter()
    store = raw.cluster_by("year",
                           directory=os.path.join(workdir, "car-2m"))
    on_disk = sum(os.path.getsize(os.path.join(store.directory, f))
                  for f in os.listdir(store.directory))
    print("  {} chunks, {:.0f} MiB on disk, clustered in {:.1f}s".format(
        store.n_chunks, on_disk / 2 ** 20, time.perf_counter() - start))

    config = LTEConfig(budget=30, ku=40, kq=60, n_tasks=40,
                       embed_size=32, hidden_size=32,
                       meta=MetaHyperParams(epochs=1, local_steps=6),
                       online_steps=30, store_sample_rows=20_000)
    lte = LTE(config)
    print("Offline phase on the store (bounded stratified chunk samples, "
          "scalers from zone maps)...")
    start = time.perf_counter()
    lte.fit_offline(store, subspaces=None)
    subspaces = list(lte.states)[:2]
    print("  {} subspaces meta-trained in {:.1f}s; per-subspace working "
          "set: {} rows (table: {:,})".format(
              len(lte.states), time.perf_counter() - start,
              len(next(iter(lte.states.values())).data), store.n_rows))

    # A simulated user with a ground-truth interest region.
    oracle = ConjunctiveOracle({
        s: subspace_region(lte.states[s], UISMode(alpha=2, psi=8), seed=19)
        for s in subspaces})

    session = lte.start_session(variant="meta_star", subspaces=subspaces)
    print("Online phase: labelling {} initial tuples per subspace..."
          .format(config.budget))
    for subspace, tuples in session.initial_tuples().items():
        session.submit_labels(subspace,
                              oracle.label_subspace(subspace, tuples))

    keep = session_chunk_keep(store, session._subsessions)
    print("Predicting UIR membership over all {:,} rows: the planner "
          "prunes {}/{} chunks outright...".format(
              store.n_rows, int((~keep).sum()), store.n_chunks))
    tracemalloc.start()
    start = time.perf_counter()
    predictions = session.predict_store(store)
    elapsed = time.perf_counter() - start
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()

    encode_gib = store.n_rows * (
        sum(s.preprocessor.width for s in lte.states.values())) * 8 / 2 ** 30
    print("  scan: {:.2f}s, peak traced allocations {:.1f} MiB "
          "(a whole-table encode would allocate ~{:.1f} GiB)".format(
              elapsed, peak / 2 ** 20, encode_gib))

    print("Scoring against the ground truth (chunk-pruned oracle scan)...")
    truth = oracle.ground_truth(store)
    print("  F1 = {:.3f} over {:,} rows; {:,} predicted interesting"
          .format(f1_score(truth, predictions), store.n_rows,
                  int(predictions.sum())))

    retrieved = session.retrieve(limit=5)
    print("First retrieved tuples:\n{}".format(np.round(retrieved, 1)))
    print("Store directory kept at {} (delete when done).".format(workdir))


if __name__ == "__main__":
    main()
