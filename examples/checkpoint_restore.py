"""Checkpoint & restore: survive a process restart mid-workload.

Demonstrates the persist subsystem (``repro.persist``):

1. offline: pretrain one shared LTE and ship it as an ``lte-pretrained``
   checkpoint (npz + JSON manifest with schema version + content digest);
2. online: users open serving sessions, label, adapt, and predict; the
   whole serving engine — sessions, a still-pending label batch, the
   versioned prediction cache — is snapshotted to disk mid-workload;
3. "the process dies": every live object is dropped;
4. restart: the offline artifacts are re-prepared cheaply
   (``fit_offline(train=False)``), the pretrained weights restore
   instantly, the serving snapshot restores, and the workload continues —
   producing BIT-IDENTICAL predictions (and the same cache hit counters)
   as a control run that was never interrupted.

Run:  python examples/checkpoint_restore.py
"""

import os
import tempfile
import time

import numpy as np

from repro import persist
from repro.bench import subspace_region
from repro.core import LTE, LTEConfig, UISMode
from repro.core.meta_training import MetaHyperParams
from repro.data import make_sdss
from repro.data.subspaces import random_decomposition
from repro.explore import ConjunctiveOracle
from repro.serve import SessionManager

N_USERS = 6


def build_config():
    return LTEConfig(budget=30, ku=40, kq=60, n_tasks=20,
                     embed_size=32, hidden_size=32,
                     meta=MetaHyperParams(epochs=1, local_steps=4),
                     online_steps=20)


def run_workload_until_snapshot(lte, subspaces, oracles, eval_rows):
    """Open sessions, adapt, predict, and leave one batch pending."""
    manager = SessionManager(lte)
    sids = []
    for oracle in oracles:
        sid = manager.open_session(variant="meta_star", subspaces=subspaces)
        for subspace, tuples in manager.initial_tuples(sid).items():
            manager.submit_labels(
                sid, subspace, oracle.label_subspace(subspace, tuples))
        sids.append(sid)
    manager.flush()
    for sid in sids:                     # warm the prediction cache
        manager.predict(sid, eval_rows)
    # User 0 submits an extra label round that is still *queued* when the
    # snapshot is taken — pending work survives the restart too.
    subspace = subspaces[0]
    state = lte.states[subspace]
    extra = state.to_raw(state.data[:5])
    manager.add_labels(sids[0], subspace, extra,
                       oracles[0].label_subspace(subspace, extra))
    return manager, sids


def continue_workload(manager, sids, eval_rows):
    """The post-restart half: drain the queue, re-predict everything."""
    manager.flush()
    return {sid: manager.predict(sid, eval_rows) for sid in sids}


def main():
    workdir = tempfile.mkdtemp(prefix="repro-checkpoints-")
    lte_path = os.path.join(workdir, "lte-pretrained")
    serving_path = os.path.join(workdir, "serving-snapshot")

    print("Building a synthetic SDSS table (8K tuples)...")
    table = make_sdss(n_rows=8_000, seed=7)
    config = build_config()
    lte = LTE(config)
    subspaces = random_decomposition(table, dim=config.subspace_dim,
                                     seed=config.seed)[:2]
    print("Offline phase: meta-training {} shared subspace learners..."
          .format(len(subspaces)))
    start = time.perf_counter()
    lte.fit_offline(table, subspaces=subspaces)
    cold_seconds = time.perf_counter() - start
    persist.save_pretrained(lte_path, lte, meta={"demo": "restart"})
    print("  pretrained artifact saved to {}".format(lte_path))

    rng = np.random.default_rng(42)
    oracles = [
        ConjunctiveOracle({
            s: subspace_region(lte.states[s], UISMode(alpha=1, psi=40),
                               seed=int(rng.integers(2 ** 31)))
            for s in subspaces})
        for _ in range(N_USERS)
    ]
    eval_rows = table.sample_rows(1500, seed=1)

    print("\nOnline phase: {} users adapt + predict, then SNAPSHOT "
          "mid-workload...".format(N_USERS))
    manager, sids = run_workload_until_snapshot(lte, subspaces, oracles,
                                                eval_rows)
    print("  pending at snapshot time: {}".format(manager.pending()))
    persist.save_manager(serving_path, manager)
    summary = persist.inspect_checkpoint(serving_path)
    print("  serving snapshot: {} arrays, {} bytes, digest {} ({})".format(
        summary["n_arrays"], summary["total_bytes"], summary["digest"],
        "verified" if summary["digest_ok"] else "CORRUPT"))

    # Control: the same manager continues uninterrupted.
    control = continue_workload(manager, sids, eval_rows)
    control_stats = manager.stats

    print("\nSimulated crash: dropping the LTE system and the manager.")
    del manager, lte

    print("Restart: re-prepare offline artifacts (no training) + restore.")
    start = time.perf_counter()
    lte = LTE(build_config())
    lte.fit_offline(table, subspaces=subspaces, train=False)
    persist.load_pretrained(lte_path, lte)
    warm_seconds = time.perf_counter() - start
    restored = persist.load_manager(serving_path, lte)
    print("  warm start took {:.2f}s vs {:.2f}s cold pretraining "
          "({:.1f}x faster)".format(warm_seconds, cold_seconds,
                                    cold_seconds / max(warm_seconds, 1e-9)))
    print("  restored pending queue: {}".format(restored.pending()))

    resumed = continue_workload(restored, sids, eval_rows)
    identical = all(np.array_equal(control[sid], resumed[sid])
                    for sid in sids)
    print("\nRestore-and-continue vs uninterrupted run:")
    print("  predictions bit-identical for all {} users: {}".format(
        len(sids), identical))
    print("  cache counters preserved: {} (control {}, restored {})".format(
        control_stats == restored.stats, control_stats["cache"],
        restored.stats["cache"]))
    if not identical or control_stats != restored.stats:
        raise SystemExit("restore parity violated — this is a bug")
    print("\nCheckpoints kept at {} — try:".format(workdir))
    print("  python -m repro.persist inspect {}".format(serving_path))


if __name__ == "__main__":
    main()
