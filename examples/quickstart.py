"""Quickstart: explore a synthetic SDSS table with Learn-to-Explore.

Runs the full pipeline of the paper in under a minute:

1. offline (unsupervised): decompose the table into 2-D meta-subspaces,
   generate synthetic meta-tasks, meta-train one classifier per subspace;
2. online: a simulated user labels 30 tuples per subspace; the pre-trained
   meta-learners fast-adapt; the few-shot optimizer polishes the result;
3. report the F1-score of the inferred user-interest region.

The offline phase runs on the pooled batched engine (``repro.train``):
meta-tasks from all subspaces train in fused stacked programs, epochs
interleaved round-robin.  Pass ``--verbose`` to watch the per-epoch mean
query loss of every subspace as it trains.

Run:  python examples/quickstart.py [--verbose]
"""

import argparse

import numpy as np

from repro.bench import subspace_region
from repro.core import LTE, LTEConfig, UISMode
from repro.core.meta_training import MetaHyperParams
from repro.data import make_sdss
from repro.explore import ConjunctiveOracle, run_lte_exploration


def main(verbose=False):
    print("Building a synthetic SDSS table (20K tuples, 8 attributes)...")
    table = make_sdss(n_rows=20_000, seed=7)

    config = LTEConfig(
        budget=30,                 # labels the user grants per subspace
        n_tasks=80,                # meta-tasks per subspace (paper: 5000)
        meta=MetaHyperParams(epochs=1, local_steps=8),
    )
    lte = LTE(config)
    print("Offline phase: meta-training one learner per 2-D subspace...")

    def progress(subspace, stage):
        if isinstance(stage, tuple) and stage[0] == "epoch":
            _, epoch, mean_loss = stage
            print("    {}  epoch {}  mean query loss {:.4f}".format(
                "x".join(subspace.names), epoch, mean_loss))

    lte.fit_offline(table, progress=progress if verbose else None)
    print("  done in {:.1f}s over {} subspaces".format(
        lte.offline_seconds_, len(lte.states)))

    # Simulate users whose interest spans the first two subspaces: the
    # ground truth is a convex region in each, conjoined (a 4-D UIR).
    # Average over a few random interest regions to smooth draw noise.
    subspaces = list(lte.states)[:2]
    rng = np.random.default_rng(42)
    oracles = []
    for _ in range(3):
        regions = {
            subspace: subspace_region(lte.states[subspace],
                                      UISMode(alpha=1, psi=40),
                                      seed=int(rng.integers(2 ** 31)))
            for subspace in subspaces
        }
        oracles.append(ConjunctiveOracle(regions))

    eval_rows = table.sample_rows(5000, seed=1)
    print("\nOnline phase: {} labels per subspace, fast adaptation "
          "(mean of {} interest regions)...".format(config.budget,
                                                    len(oracles)))
    for variant in ("basic", "meta", "meta_star"):
        f1s, times = [], []
        for oracle in oracles:
            result = run_lte_exploration(lte, oracle, eval_rows,
                                         variant=variant,
                                         subspaces=subspaces)
            f1s.append(result.f1)
            times.append(result.adapt_seconds)
        print("  {:<10s} F1 = {:.3f}   (labels per region: {}, online "
              "adaptation: {:.3f}s)".format(
                  variant, float(np.mean(f1s)),
                  len(subspaces) * config.budget, float(np.mean(times))))

    print("\n'meta' matches or beats 'basic' while adapting with a third "
          "of the gradient\nsteps (the gap widens sharply at small online "
          "learning rates — see the\nFig. 8(d) benchmark); 'meta_star' "
          "adds the geometric FP/FN optimizer on top.")


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--verbose", action="store_true",
                        help="print per-subspace, per-epoch mean query "
                             "losses during offline meta-training")
    main(verbose=parser.parse_args().verbose)
