"""Plugging LTE into an iterative active-learning loop.

The paper notes (Section III-B) that LTE composes with existing IDE
systems: after the initial few-shot adaptation, classic active learning
can keep feeding labels to the meta-learner.  This example runs that
hybrid: initial exploration with budget B, then several uncertainty-
sampling rounds that each query the oracle for a handful more labels and
re-adapt — accuracy should climb with each round.

Run:  python examples/plug_into_active_learning.py
"""

import numpy as np

from repro.bench import subspace_region
from repro.core import LTE, LTEConfig, UISMode
from repro.core.meta_training import MetaHyperParams
from repro.data import make_sdss
from repro.explore import ConjunctiveOracle, f1_score

ROUNDS = 4
LABELS_PER_ROUND = 10


def main():
    table = make_sdss(n_rows=15_000, seed=5)
    lte = LTE(LTEConfig(budget=25, n_tasks=60,
                        meta=MetaHyperParams(epochs=1, local_steps=8)))
    print("Offline meta-training...")
    lte.fit_offline(table)

    subspace = list(lte.states)[0]
    state = lte.states[subspace]
    region = subspace_region(state, UISMode(alpha=2, psi=15), seed=11)
    oracle = ConjunctiveOracle({subspace: region})

    session = lte.start_session(variant="meta", subspaces=[subspace])
    initial = session.initial_tuples()[subspace]
    session.submit_labels(subspace,
                          oracle.label_subspace(subspace, initial))

    raw = subspace.project(table.data)
    eval_points = raw[np.random.default_rng(0).choice(len(raw), 4000,
                                                      replace=False)]
    truth = oracle.ground_truth_subspace(subspace, eval_points)

    def current_f1():
        return f1_score(truth, session.predict_subspace(subspace,
                                                        eval_points))

    print("after initial exploration ({} labels): F1 = {:.3f}".format(
        oracle.labels_given, current_f1()))

    # Candidate pool for uncertainty sampling (raw coordinates).
    pool = raw[np.random.default_rng(1).choice(len(raw), 2000,
                                               replace=False)]
    for round_no in range(1, ROUNDS + 1):
        picks = session.most_uncertain(subspace, pool,
                                       k=LABELS_PER_ROUND)
        chosen = pool[picks]
        labels = oracle.label_subspace(subspace, chosen)
        session.add_labels(subspace, chosen, labels)
        print("round {} (+{} labels, total {}): F1 = {:.3f}".format(
            round_no, LABELS_PER_ROUND, oracle.labels_given, current_f1()))

    print("\nActive-learning rounds refine the meta-adapted classifier "
          "without retraining\nfrom scratch — the plug-in mode the paper "
          "describes for existing IDE systems.")


if __name__ == "__main__":
    main()
